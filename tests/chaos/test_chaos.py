"""Chaos suite: injected faults must degrade the batch, never break it.

Every test drives the real ``BatchEngine`` (real process pools, real
disk cache) under a deterministic :mod:`repro.resilience.faults` plan
and asserts the supervision contract of docs/robustness.md:

* the report is always *complete* — every item has a typed result;
* ``ok=False`` only on the items a fault actually touched;
* transient faults (crash@1, hang@1, error@1) are absorbed by retries;
* persistent faults end in quarantine, not a hung batch;
* with no faults injected, verdicts are bit-identical to a plain run.
"""

import pytest

from repro.dataflow import AnalysisOptions
from repro.engine import BatchEngine, BatchItem
from repro.resilience import faults

ITEM_A = BatchItem(
    name="itema",
    source=(
        "      SUBROUTINE sa(a, n)\n"
        "      REAL a(100)\n"
        "      INTEGER n, i\n"
        "      DO 10 i = 1, n\n"
        "        a(i) = 2.0\n"
        "   10 CONTINUE\n"
        "      END\n"
    ),
)

ITEM_B = BatchItem(
    name="itemb",
    source=(
        "      SUBROUTINE sb(b, m)\n"
        "      REAL b(50)\n"
        "      INTEGER m, j\n"
        "      DO 20 j = 1, m\n"
        "        b(j) = b(j) + 1.0\n"
        "   20 CONTINUE\n"
        "      END\n"
    ),
)


# ITEM_C needs real dataflow analysis (the screen cannot resolve the
# outer loop), so compiling it computes and *stores* routine summaries —
# the cache-fault tests need entries on disk to corrupt
ITEM_C = BatchItem(
    name="itemc",
    source=(
        "      SUBROUTINE sc(a, t, n)\n"
        "      REAL a(100), t(100)\n"
        "      INTEGER n, i, j\n"
        "      DO 10 i = 1, n\n"
        "        DO 20 j = 1, 100\n"
        "          t(j) = a(j) * 2.0\n"
        "   20   CONTINUE\n"
        "        DO 30 j = 1, 100\n"
        "          a(j) = t(j) + 1.0\n"
        "   30   CONTINUE\n"
        "   10 CONTINUE\n"
        "      END\n"
    ),
)


@pytest.fixture(autouse=True)
def fault_env(monkeypatch):
    """Each test sets its plan through the env var (the real transport,
    inherited by pool workers); nothing leaks between tests."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield monkeypatch
    faults.reset()


def inject(monkeypatch, plan: str) -> None:
    monkeypatch.setenv(faults.ENV_VAR, plan)
    faults.reset()


def make_engine(**kw) -> BatchEngine:
    kw.setdefault("jobs", 2)
    kw.setdefault("timeout_per_item", 20.0)
    kw.setdefault("max_attempts", 3)
    kw.setdefault("backoff_base", 0.01)
    return BatchEngine(AnalysisOptions(), **kw)


def assert_clean_rows(report, name: str) -> None:
    rows = report.result(name).rows()
    assert rows, f"{name} produced no verdicts"
    assert all(r["status"] != "unknown (budget)" for r in rows)


class TestWorkerCrash:
    def test_single_crash_is_retried_to_success(self, fault_env):
        inject(fault_env, "worker.crash:itema@1")
        report = make_engine().run([ITEM_A, ITEM_B])
        assert report.complete and report.ok
        assert report.result("itema").attempts >= 2
        assert_clean_rows(report, "itema")
        assert_clean_rows(report, "itemb")
        res = report.telemetry.resilience
        assert res["worker_crashes"] >= 1
        assert res["pool_rebuilds"] >= 1
        assert res["retries"] >= 1
        assert report.exit_code() == 0

    def test_persistent_crash_is_quarantined(self, fault_env):
        inject(fault_env, "worker.crash:itema")
        report = make_engine().run([ITEM_A, ITEM_B])
        assert report.complete
        bad = report.result("itema")
        assert not bad.ok
        assert bad.error_kind == "worker-crash"
        assert bad.quarantined
        assert bad.attempts == 3
        # only the faulted item failed; the innocent one is intact
        assert report.result("itemb").ok
        assert_clean_rows(report, "itemb")
        assert report.telemetry.resilience["quarantined"] == 1
        assert not report.hard_failures()
        assert report.exit_code() == 3


class TestItemTimeout:
    def test_hang_times_out_then_succeeds(self, fault_env):
        inject(fault_env, "item.hang:itema@1")
        report = make_engine(timeout_per_item=1.0).run([ITEM_A, ITEM_B])
        assert report.complete and report.ok
        assert_clean_rows(report, "itema")
        res = report.telemetry.resilience
        assert res["timeouts"] >= 1
        assert res["pool_rebuilds"] >= 1
        assert report.exit_code() == 0

    def test_single_item_hang_still_supervised(self, fault_env):
        # a one-item batch must not fall back to the unsupervised
        # in-process path when a timeout is requested — the hang would
        # block forever with nobody to kill it
        inject(fault_env, "item.hang:itema@1")
        report = make_engine(timeout_per_item=1.0).run([ITEM_A])
        assert report.complete and report.ok
        assert report.telemetry.resilience["timeouts"] >= 1
        assert_clean_rows(report, "itema")

    def test_persistent_hang_is_quarantined_not_deadlocked(self, fault_env):
        inject(fault_env, "item.hang:itema")
        report = make_engine(timeout_per_item=0.5, max_attempts=2).run(
            [ITEM_A, ITEM_B]
        )
        assert report.complete
        bad = report.result("itema")
        assert not bad.ok and bad.error_kind == "timeout"
        assert bad.quarantined
        assert report.result("itemb").ok
        assert report.exit_code() == 3


class TestItemError:
    def test_transient_error_is_retried(self, fault_env):
        inject(fault_env, "item.error:itema@1")
        report = make_engine().run([ITEM_A, ITEM_B])
        assert report.complete and report.ok
        assert report.telemetry.resilience["retries"] >= 1
        assert report.exit_code() == 0

    def test_persistent_error_is_a_hard_failure(self, fault_env):
        inject(fault_env, "item.error:itema")
        report = make_engine().run([ITEM_A, ITEM_B])
        assert report.complete
        bad = report.result("itema")
        assert not bad.ok and bad.error_kind == "internal"
        assert "injected fault" in bad.error
        assert report.result("itemb").ok
        assert report.hard_failures() == [bad]
        assert report.exit_code() == 1


class TestCacheFaults:
    def test_corrupt_cache_entry_recomputes(self, fault_env, tmp_path):
        cache_dir = tmp_path / "cache"
        warm = make_engine(jobs=1, cache_dir=cache_dir)
        baseline = warm.run([ITEM_C])
        assert baseline.telemetry.cache.stores >= 1  # entries on disk
        # second run: the first disk read finds a corrupted entry
        inject(fault_env, "cache.corrupt@1")
        engine = make_engine(jobs=1, cache_dir=cache_dir)
        report = engine.run([ITEM_C])
        assert report.complete and report.ok
        # recomputed, not trusted
        assert report.verdict_rows() == baseline.verdict_rows()
        assert report.telemetry.cache.quarantined >= 1
        assert (cache_dir / "quarantine").exists()

    def test_cache_read_error_is_typed_containment(self, fault_env, tmp_path):
        cache_dir = tmp_path / "cache"
        make_engine(jobs=1, cache_dir=cache_dir).run([ITEM_C])
        inject(fault_env, "cache.read@1")
        report = make_engine(jobs=1, cache_dir=cache_dir).run([ITEM_C])
        assert report.complete  # contained as a typed per-item failure
        bad = report.result("itemc")
        assert not bad.ok and bad.error_kind == "internal"
        assert "injected fault: cache.read" in bad.error


class TestBudgetFault:
    def test_exhausted_budget_degrades_not_fails(self, fault_env):
        inject(fault_env, "budget.exhaust")
        report = make_engine(jobs=1).run([ITEM_A])
        assert report.complete and report.ok  # verdicts, not errors
        rows = report.result("itema").rows()
        assert rows and all(r["status"] == "unknown (budget)" for r in rows)
        assert all(not r["parallel"] for r in rows)
        assert report.degraded
        assert report.telemetry.resilience["degraded_loops"] == len(rows)
        assert report.telemetry.resilience["degraded_items"] == 1
        assert report.exit_code() == 3


class TestNoFaultControl:
    def test_supervised_run_is_bit_identical_to_plain(self):
        plain = BatchEngine(AnalysisOptions(), jobs=1).run([ITEM_A, ITEM_B])
        supervised = make_engine(
            timeout_per_item=30.0, max_attempts=3, retry_seed=7
        ).run([ITEM_A, ITEM_B])
        assert supervised.complete and supervised.ok
        assert supervised.verdict_rows() == plain.verdict_rows()
        assert supervised.exit_code() == plain.exit_code() == 0
        res = supervised.telemetry.resilience
        assert res["retries"] == res["timeouts"] == res["worker_crashes"] == 0

    def test_recovered_chaos_run_matches_control(self, fault_env):
        control = make_engine().run([ITEM_A, ITEM_B]).verdict_rows()
        inject(fault_env, "worker.crash:itema@1")
        chaotic = make_engine().run([ITEM_A, ITEM_B])
        assert chaotic.ok
        assert chaotic.verdict_rows() == control
