"""Chaos suite: injected faults must degrade the batch, never break it.

Every test drives the real ``BatchEngine`` (real process pools, real
disk cache) under a deterministic :mod:`repro.resilience.faults` plan
and asserts the supervision contract of docs/robustness.md:

* the report is always *complete* — every item has a typed result;
* ``ok=False`` only on the items a fault actually touched;
* transient faults (crash@1, hang@1, error@1) are absorbed by retries;
* persistent faults end in quarantine, not a hung batch;
* with no faults injected, verdicts are bit-identical to a plain run.
"""

from pathlib import Path

import pytest

from repro.dataflow import AnalysisOptions
from repro.engine import BatchEngine, BatchItem
from repro.resilience import faults

ITEM_A = BatchItem(
    name="itema",
    source=(
        "      SUBROUTINE sa(a, n)\n"
        "      REAL a(100)\n"
        "      INTEGER n, i\n"
        "      DO 10 i = 1, n\n"
        "        a(i) = 2.0\n"
        "   10 CONTINUE\n"
        "      END\n"
    ),
)

ITEM_B = BatchItem(
    name="itemb",
    source=(
        "      SUBROUTINE sb(b, m)\n"
        "      REAL b(50)\n"
        "      INTEGER m, j\n"
        "      DO 20 j = 1, m\n"
        "        b(j) = b(j) + 1.0\n"
        "   20 CONTINUE\n"
        "      END\n"
    ),
)


# ITEM_C needs real dataflow analysis (the screen cannot resolve the
# outer loop), so compiling it computes and *stores* routine summaries —
# the cache-fault tests need entries on disk to corrupt
ITEM_C = BatchItem(
    name="itemc",
    source=(
        "      SUBROUTINE sc(a, t, n)\n"
        "      REAL a(100), t(100)\n"
        "      INTEGER n, i, j\n"
        "      DO 10 i = 1, n\n"
        "        DO 20 j = 1, 100\n"
        "          t(j) = a(j) * 2.0\n"
        "   20   CONTINUE\n"
        "        DO 30 j = 1, 100\n"
        "          a(j) = t(j) + 1.0\n"
        "   30   CONTINUE\n"
        "   10 CONTINUE\n"
        "      END\n"
    ),
)


@pytest.fixture(autouse=True)
def fault_env(monkeypatch):
    """Each test sets its plan through the env var (the real transport,
    inherited by pool workers); nothing leaks between tests."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield monkeypatch
    faults.reset()


def inject(monkeypatch, plan: str) -> None:
    monkeypatch.setenv(faults.ENV_VAR, plan)
    faults.reset()


def make_engine(**kw) -> BatchEngine:
    kw.setdefault("jobs", 2)
    kw.setdefault("timeout_per_item", 20.0)
    kw.setdefault("max_attempts", 3)
    kw.setdefault("backoff_base", 0.01)
    return BatchEngine(AnalysisOptions(), **kw)


def assert_clean_rows(report, name: str) -> None:
    rows = report.result(name).rows()
    assert rows, f"{name} produced no verdicts"
    assert all(r["status"] != "unknown (budget)" for r in rows)


class TestWorkerCrash:
    def test_single_crash_is_retried_to_success(self, fault_env):
        inject(fault_env, "worker.crash:itema@1")
        report = make_engine().run([ITEM_A, ITEM_B])
        assert report.complete and report.ok
        assert report.result("itema").attempts >= 2
        assert_clean_rows(report, "itema")
        assert_clean_rows(report, "itemb")
        res = report.telemetry.resilience
        assert res["worker_crashes"] >= 1
        assert res["pool_rebuilds"] >= 1
        assert res["retries"] >= 1
        assert report.exit_code() == 0

    def test_persistent_crash_is_quarantined(self, fault_env):
        inject(fault_env, "worker.crash:itema")
        report = make_engine().run([ITEM_A, ITEM_B])
        assert report.complete
        bad = report.result("itema")
        assert not bad.ok
        assert bad.error_kind == "worker-crash"
        assert bad.quarantined
        assert bad.attempts == 3
        # only the faulted item failed; the innocent one is intact
        assert report.result("itemb").ok
        assert_clean_rows(report, "itemb")
        assert report.telemetry.resilience["quarantined"] == 1
        assert not report.hard_failures()
        assert report.exit_code() == 3


class TestItemTimeout:
    def test_hang_times_out_then_succeeds(self, fault_env):
        inject(fault_env, "item.hang:itema@1")
        report = make_engine(timeout_per_item=1.0).run([ITEM_A, ITEM_B])
        assert report.complete and report.ok
        assert_clean_rows(report, "itema")
        res = report.telemetry.resilience
        assert res["timeouts"] >= 1
        assert res["pool_rebuilds"] >= 1
        assert report.exit_code() == 0

    def test_single_item_hang_still_supervised(self, fault_env):
        # a one-item batch must not fall back to the unsupervised
        # in-process path when a timeout is requested — the hang would
        # block forever with nobody to kill it
        inject(fault_env, "item.hang:itema@1")
        report = make_engine(timeout_per_item=1.0).run([ITEM_A])
        assert report.complete and report.ok
        assert report.telemetry.resilience["timeouts"] >= 1
        assert_clean_rows(report, "itema")

    def test_persistent_hang_is_quarantined_not_deadlocked(self, fault_env):
        inject(fault_env, "item.hang:itema")
        report = make_engine(timeout_per_item=0.5, max_attempts=2).run(
            [ITEM_A, ITEM_B]
        )
        assert report.complete
        bad = report.result("itema")
        assert not bad.ok and bad.error_kind == "timeout"
        assert bad.quarantined
        assert report.result("itemb").ok
        assert report.exit_code() == 3


class TestItemError:
    def test_transient_error_is_retried(self, fault_env):
        inject(fault_env, "item.error:itema@1")
        report = make_engine().run([ITEM_A, ITEM_B])
        assert report.complete and report.ok
        assert report.telemetry.resilience["retries"] >= 1
        assert report.exit_code() == 0

    def test_persistent_error_is_a_hard_failure(self, fault_env):
        inject(fault_env, "item.error:itema")
        report = make_engine().run([ITEM_A, ITEM_B])
        assert report.complete
        bad = report.result("itema")
        assert not bad.ok and bad.error_kind == "internal"
        assert "injected fault" in bad.error
        assert report.result("itemb").ok
        assert report.hard_failures() == [bad]
        assert report.exit_code() == 1


class TestCacheFaults:
    def test_corrupt_cache_entry_recomputes(self, fault_env, tmp_path):
        cache_dir = tmp_path / "cache"
        warm = make_engine(jobs=1, cache_dir=cache_dir)
        baseline = warm.run([ITEM_C])
        assert baseline.telemetry.cache.stores >= 1  # entries on disk
        # second run: the first disk read finds a corrupted entry
        inject(fault_env, "cache.corrupt@1")
        engine = make_engine(jobs=1, cache_dir=cache_dir)
        report = engine.run([ITEM_C])
        assert report.complete and report.ok
        # recomputed, not trusted
        assert report.verdict_rows() == baseline.verdict_rows()
        assert report.telemetry.cache.quarantined >= 1
        assert (cache_dir / "quarantine").exists()

    def test_cache_read_error_is_typed_containment(self, fault_env, tmp_path):
        cache_dir = tmp_path / "cache"
        make_engine(jobs=1, cache_dir=cache_dir).run([ITEM_C])
        inject(fault_env, "cache.read@1")
        report = make_engine(jobs=1, cache_dir=cache_dir).run([ITEM_C])
        assert report.complete  # contained as a typed per-item failure
        bad = report.result("itemc")
        assert not bad.ok and bad.error_kind == "internal"
        assert "injected fault: cache.read" in bad.error


class TestBudgetFault:
    def test_exhausted_budget_degrades_not_fails(self, fault_env):
        inject(fault_env, "budget.exhaust")
        report = make_engine(jobs=1).run([ITEM_A])
        assert report.complete and report.ok  # verdicts, not errors
        rows = report.result("itema").rows()
        assert rows and all(r["status"] == "unknown (budget)" for r in rows)
        assert all(not r["parallel"] for r in rows)
        assert report.degraded
        assert report.telemetry.resilience["degraded_loops"] == len(rows)
        assert report.telemetry.resilience["degraded_items"] == 1
        assert report.exit_code() == 3


class TestNoFaultControl:
    def test_supervised_run_is_bit_identical_to_plain(self):
        plain = BatchEngine(AnalysisOptions(), jobs=1).run([ITEM_A, ITEM_B])
        supervised = make_engine(
            timeout_per_item=30.0, max_attempts=3, retry_seed=7
        ).run([ITEM_A, ITEM_B])
        assert supervised.complete and supervised.ok
        assert supervised.verdict_rows() == plain.verdict_rows()
        assert supervised.exit_code() == plain.exit_code() == 0
        res = supervised.telemetry.resilience
        assert res["retries"] == res["timeouts"] == res["worker_crashes"] == 0

    def test_recovered_chaos_run_matches_control(self, fault_env):
        control = make_engine().run([ITEM_A, ITEM_B]).verdict_rows()
        inject(fault_env, "worker.crash:itema@1")
        chaotic = make_engine().run([ITEM_A, ITEM_B])
        assert chaotic.ok
        assert chaotic.verdict_rows() == control


class TestBackendFaults:
    """The shared-tier fault sites: busy exhaustion, read/write I/O
    errors, and corrupt rows must degrade the cache, never the verdicts."""

    def test_persistent_busy_trips_breaker_campaign_stays_correct(
        self, fault_env, tmp_path
    ):
        control = make_engine(jobs=1).run(
            [ITEM_A, ITEM_B, ITEM_C]
        ).verdict_rows()
        inject(fault_env, "backend.busy")
        engine = make_engine(
            jobs=1, cache_dir=tmp_path / "c", cache_backend="shared"
        )
        report = engine.run([ITEM_A, ITEM_B, ITEM_C])
        assert report.complete and report.ok
        assert report.verdict_rows() == control  # degraded local-only
        cache = report.telemetry.cache
        assert cache.breaker_trips >= 1
        assert cache.breaker_skipped >= 1

    def test_backend_read_write_faults_recompute_not_crash(
        self, fault_env, tmp_path
    ):
        cache_dir = tmp_path / "c"
        warm = make_engine(jobs=1, cache_dir=cache_dir,
                           cache_backend="shared")
        baseline = warm.run([ITEM_C])
        assert baseline.ok
        inject(fault_env, "backend.read;backend.write")
        engine = make_engine(jobs=1, cache_dir=cache_dir,
                             cache_backend="shared")
        report = engine.run([ITEM_C])
        assert report.complete and report.ok
        assert report.verdict_rows() == baseline.verdict_rows()
        assert report.telemetry.cache.disk_errors >= 1

    def test_corrupt_row_mid_campaign_quarantined(self, fault_env, tmp_path):
        cache_dir = tmp_path / "c"
        warm = make_engine(jobs=1, cache_dir=cache_dir,
                           cache_backend="shared")
        baseline = warm.run([ITEM_C])
        assert baseline.telemetry.cache.stores >= 1
        inject(fault_env, "cache.corrupt@1")
        engine = make_engine(jobs=1, cache_dir=cache_dir,
                             cache_backend="shared")
        report = engine.run([ITEM_C])
        assert report.complete and report.ok
        assert report.verdict_rows() == baseline.verdict_rows()
        assert report.telemetry.cache.quarantined >= 1


class TestLedgerFault:
    def test_torn_ledger_write_still_resumable(self, fault_env, tmp_path):
        from repro.dataflow import AnalysisOptions as Opts
        from repro.engine.ledger import (
            LedgerWriter, replay, run_identity, verify_identity,
        )

        items = [ITEM_A, ITEM_B, ITEM_C]
        ident = run_identity("batch", items, Opts())
        path = tmp_path / "run.jsonl"
        # tear the second done record mid-line: the writer wedges, the
        # run itself must still complete and stay correct
        inject(fault_env, "ledger.write:item@4")
        with LedgerWriter(path, ident) as w:
            report = make_engine(jobs=1, ledger=w).run(items)
        assert report.complete and report.ok
        rep = replay(path)
        verify_identity(rep.header, ident)
        assert rep.torn_lines == 1
        assert len(rep.done) < len(items)  # progress was lost, not state
        # resume serves the surviving records and recomputes the rest
        fault_env.delenv(faults.ENV_VAR, raising=False)
        faults.reset()
        with LedgerWriter(path, ident, resume=True) as w:
            resumed = make_engine(
                jobs=1, ledger=w,
                resume=rep,
            ).run(items)
        assert resumed.complete and resumed.ok
        assert resumed.verdict_rows() == report.verdict_rows()
        assert replay(path).ended == "complete"


class TestCrashResume:
    """Subprocess-level acceptance: hard kill and graceful drain both
    leave a ledger that resumes to a bit-identical campaign scoreboard."""

    SCOREBOARD = ("files", "errors", "loops", "parallel_loops", "verdicts")

    @staticmethod
    def campaign(tmp_path, *args, env_extra=None, count=30, seed=5,
                 capture=True):
        import os as _os
        import subprocess
        import sys as _sys

        env = dict(_os.environ)
        root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(root / "src")
        env.pop(faults.ENV_VAR, None)
        if env_extra:
            env.update(env_extra)
        # capture=False for runs expected to die via os._exit: orphaned
        # pool workers inherit the pipe fds and would stall EOF forever
        io = dict(capture_output=True) if capture else dict(
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        return subprocess.run(
            [_sys.executable, "-m", "repro.engine.campaign",
             "--count", str(count), "--seed", str(seed), "--jobs", "2",
             *args],
            env=env, cwd=tmp_path, text=True, timeout=300, **io,
        )

    def scoreboard(self, path) -> dict:
        import json

        stats = json.loads(Path(path).read_text())
        return {k: stats[k] for k in self.SCOREBOARD}

    def test_hard_crash_then_resume_matches_uninterrupted(self, tmp_path):
        ref = self.campaign(
            tmp_path, "--cache-dir", str(tmp_path / "ref-cache"),
            "--stats-json", str(tmp_path / "ref.json"),
        )
        assert ref.returncode == 0, ref.stderr

        ledger = tmp_path / "run.jsonl"
        crashed = self.campaign(
            tmp_path, "--cache-dir", str(tmp_path / "cache"),
            "--ledger", str(ledger),
            "--stats-json", str(tmp_path / "crashed.json"),
            env_extra={faults.ENV_VAR: "engine.crash@7"},
            capture=False,
        )
        assert crashed.returncode == 86  # os._exit(86)
        assert ledger.exists()

        resumed = self.campaign(
            tmp_path, "--cache-dir", str(tmp_path / "cache"),
            "--resume", str(ledger),
            "--stats-json", str(tmp_path / "resumed.json"),
        )
        assert resumed.returncode == 0, resumed.stderr
        assert self.scoreboard(tmp_path / "resumed.json") == self.scoreboard(
            tmp_path / "ref.json"
        )

    def test_sigterm_drain_then_resume_matches_uninterrupted(self, tmp_path):
        import json
        import os as _os
        import signal as _signal
        import subprocess
        import sys as _sys
        import time as _time

        count, seed = 400, 5
        ref = self.campaign(
            tmp_path, "--cache-dir", str(tmp_path / "ref-cache"),
            "--stats-json", str(tmp_path / "ref.json"),
            count=count, seed=seed,
        )
        assert ref.returncode == 0, ref.stderr

        env = dict(_os.environ)
        root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(root / "src")
        env.pop(faults.ENV_VAR, None)
        ledger = tmp_path / "drain.jsonl"
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro.engine.campaign",
             "--count", str(count), "--seed", str(seed), "--jobs", "2",
             "--cache-dir", str(tmp_path / "cache"),
             "--ledger", str(ledger),
             "--stats-json", str(tmp_path / "drained.json")],
            env=env, cwd=tmp_path,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        )
        try:
            # wait until real progress is journaled, then pull the plug
            deadline = _time.monotonic() + 120
            while _time.monotonic() < deadline:
                if ledger.exists() and ledger.read_text().count(
                    '"state":"done"'
                ) >= 4:
                    break
                if proc.poll() is not None:
                    break
                _time.sleep(0.05)
            if proc.poll() is None:
                proc.send_signal(_signal.SIGTERM)
            stderr = proc.communicate(timeout=120)[1]
        finally:
            if proc.poll() is None:
                proc.kill()
        if proc.returncode == 0:
            # the campaign outran the signal: nothing was interrupted
            return
        assert proc.returncode == 5, stderr
        assert "resume" in stderr

        resumed = self.campaign(
            tmp_path, "--cache-dir", str(tmp_path / "cache"),
            "--resume", str(ledger),
            "--stats-json", str(tmp_path / "resumed.json"),
            count=count, seed=seed,
        )
        assert resumed.returncode == 0, resumed.stderr
        resumed_stats = json.loads((tmp_path / "resumed.json").read_text())
        assert resumed_stats["resilience"]["resumed_items"] >= 4
        assert self.scoreboard(tmp_path / "resumed.json") == self.scoreboard(
            tmp_path / "ref.json"
        )

    def test_resume_refuses_mismatched_identity(self, tmp_path):
        ledger = tmp_path / "run.jsonl"
        first = self.campaign(
            tmp_path, "--ledger", str(ledger), count=4, seed=5,
        )
        assert first.returncode == 0, first.stderr
        other = self.campaign(
            tmp_path, "--resume", str(ledger), count=4, seed=6,
        )
        assert other.returncode == 2  # usage error: wrong run identity
        assert "mismatch" in other.stderr
