"""Unit tests for region set operations (paper section 3.1)."""

import pytest

from repro.errors import RegionError
from repro.symbolic import Comparer, Env, Predicate, sym
from repro.regions import (
    OMEGA_DIM,
    Range,
    RegularRegion,
    region_covers,
    region_difference,
    region_intersect,
    region_union,
)


def box(*dims) -> RegularRegion:
    return RegularRegion("a", [Range(lo, hi) for lo, hi in dims])


def enum(gars, env):
    out = set()
    for g in gars:
        out |= g.enumerate(env)
    return out


class TestIntersect:
    def test_concrete_2d(self, cmp):
        r1 = box((1, 10), (1, 10))
        r2 = box((5, 20), (8, 9))
        got = enum(region_intersect(r1, r2, cmp), Env())
        assert got == {(i, j) for i in range(5, 11) for j in (8, 9)}

    def test_disjoint_dim_empties_all(self, cmp):
        r1 = box((1, 4), (1, 10))
        r2 = box((6, 9), (1, 10))
        assert region_intersect(r1, r2, cmp).is_empty()

    def test_symbolic_cross_product_of_cases(self, cmp):
        r1 = box((sym("a"), 10), (1, sym("b")))
        r2 = box((1, 10), (1, 10))
        gars = region_intersect(r1, r2, cmp)
        for env in (Env(a=3, b=5), Env(a=0, b=20), Env(a=11, b=3)):
            expect = r1.enumerate(env) & r2.enumerate(env)
            assert enum(gars, env) == expect

    def test_omega_dim_over_approximates(self, cmp):
        r1 = RegularRegion("a", [OMEGA_DIM, Range(1, 5)])
        r2 = box((1, 10), (3, 8))
        gars = region_intersect(r1, r2, cmp)
        assert all(not g.exact for g in gars)
        # the known dimension still intersects
        (g,) = gars.gars
        assert g.region.dims[1] == Range(3, 5)
        assert g.region.dims[0] == Range(1, 10)

    def test_cross_array_rejected(self, cmp):
        with pytest.raises(RegionError):
            region_intersect(box((1, 2)), RegularRegion("b", [Range(1, 2)]), cmp)

    def test_rank_mismatch_rejected(self, cmp):
        with pytest.raises(RegionError):
            region_intersect(box((1, 2)), box((1, 2), (1, 2)), cmp)


class TestUnion:
    def test_identical(self, cmp):
        r = box((1, 5), (1, 5))
        assert region_union(r, r, cmp) == r

    def test_one_dim_merge(self, cmp):
        r1 = box((1, 5), (1, 10))
        r2 = box((6, 9), (1, 10))
        assert region_union(r1, r2, cmp) == box((1, 9), (1, 10))

    def test_two_dims_differ_no_merge(self, cmp):
        r1 = box((1, 5), (1, 5))
        r2 = box((6, 9), (6, 9))
        assert region_union(r1, r2, cmp) is None

    def test_containment(self, cmp):
        r1 = box((1, 10), (1, 10))
        r2 = box((2, 5), (3, 4))
        assert region_union(r1, r2, cmp) == r1
        assert region_union(r2, r1, cmp) == r1

    def test_gap_no_merge(self, cmp):
        assert region_union(box((1, 4)), box((6, 9)), cmp) is None


class TestDifference:
    def test_1d(self, cmp):
        gars = region_difference(box((1, 10)), box((3, 5)), cmp)
        assert enum(gars, Env()) == {(i,) for i in [1, 2, 6, 7, 8, 9, 10]}

    def test_2d_paper_example(self, cmp):
        # (1:100, 1:100) - (20:30, a:30)
        r1 = box((1, 100), (1, 100))
        r2 = box((20, 30), (sym("a"), 30))
        gars = region_difference(r1, r2, cmp)
        for a in (1, 15, 30):
            env = Env(a=a)
            assert enum(gars, env) == r1.enumerate(env) - r2.enumerate(env)

    def test_2d_exact_disjoint_pieces(self, cmp):
        r1 = box((1, 4), (1, 4))
        r2 = box((2, 3), (2, 3))
        gars = region_difference(r1, r2, cmp)
        assert enum(gars, Env()) == r1.enumerate(Env()) - r2.enumerate(Env())

    def test_subtrahend_outside(self, cmp):
        gars = region_difference(box((1, 5)), box((7, 9)), cmp)
        assert enum(gars, Env()) == box((1, 5)).enumerate(Env())

    def test_3d(self, cmp):
        r1 = box((1, 3), (1, 3), (1, 3))
        r2 = box((2, 2), (1, 3), (2, 3))
        gars = region_difference(r1, r2, cmp)
        assert enum(gars, Env()) == r1.enumerate(Env()) - r2.enumerate(Env())

    def test_omega_gives_none(self, cmp):
        r1 = RegularRegion("a", [OMEGA_DIM])
        assert region_difference(r1, box((1, 2)), cmp) is None
        assert region_difference(box((1, 2)), r1, cmp) is None

    def test_incompatible_steps_none(self, cmp):
        r1 = RegularRegion("a", [Range(1, 20, 2)])
        r2 = RegularRegion("a", [Range(1, 20, 3)])
        assert region_difference(r1, r2, cmp) is None


class TestCovers:
    def test_concrete(self, cmp):
        assert region_covers(box((1, 10), (1, 10)), box((2, 3), (4, 5)), cmp)
        assert not region_covers(box((2, 3), (4, 5)), box((1, 10), (1, 10)), cmp)

    def test_symbolic_context(self):
        c = Comparer(Predicate.le(1, "a") & Predicate.le("b", "n"))
        assert region_covers(box((1, sym("n"))), box((sym("a"), sym("b"))), c)

    def test_omega_in_cover_fails_conservatively(self, cmp):
        r1 = RegularRegion("a", [OMEGA_DIM])
        assert not region_covers(r1, box((1, 2)), cmp)
        assert not region_covers(box((1, 2)), r1, cmp)

    def test_different_arrays(self, cmp):
        assert not region_covers(
            box((1, 10)), RegularRegion("b", [Range(1, 2)]), cmp
        )
