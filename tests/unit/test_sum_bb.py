"""Unit tests for the basic-block transfer (SUM_bb)."""

from repro.dataflow import SummaryAnalyzer
from repro.fortran import analyze, parse_program
from repro.hsg import build_hsg
from repro.regions import GARList
from repro.symbolic import Env


def routine_summary(body: str, decls: str = "REAL a(100), b(100)"):
    decl_lines = "".join(f"      {d}\n" for d in decls.split(";") if d)
    src = f"      SUBROUTINE s\n{decl_lines}{body}      END\n"
    hsg = build_hsg(analyze(parse_program(src)))
    return SummaryAnalyzer(hsg).routine_summary("s")


class TestArrayAccesses:
    def test_write_is_mod(self):
        s = routine_summary("      a(3) = 1.0\n")
        assert s.mod.for_array("a").enumerate(Env()) == {(3,)}

    def test_read_is_ue(self):
        s = routine_summary("      x = a(3)\n")
        assert s.ue.for_array("a").enumerate(Env()) == {(3,)}

    def test_write_kills_later_read(self):
        s = routine_summary("      a(3) = 1.0\n      x = a(3)\n")
        assert s.ue.for_array("a").is_empty()

    def test_write_does_not_kill_other_element(self):
        s = routine_summary("      a(3) = 1.0\n      x = a(4)\n")
        assert s.ue.for_array("a").enumerate(Env()) == {(4,)}

    def test_read_before_write_exposed(self):
        s = routine_summary("      x = a(3)\n      a(3) = 1.0\n")
        assert s.ue.for_array("a").enumerate(Env()) == {(3,)}

    def test_rhs_and_subscript_reads_collected(self):
        s = routine_summary("      a(i) = b(j) + b(k)\n",
                            "REAL a(100), b(100);INTEGER i, j, k")
        ue_b = s.ue.for_array("b")
        assert ue_b.enumerate(Env(i=1, j=2, k=5)) == {(2,), (5,)}
        # the scalar subscripts are read too
        assert not s.ue.for_array("i").is_empty()
        assert not s.ue.for_array("j").is_empty()

    def test_same_location_symbolic_subscript_kill(self):
        s = routine_summary("      a(k) = 1.0\n      x = a(k)\n",
                            "REAL a(100);INTEGER k")
        assert s.ue.for_array("a").provably_empty()


class TestScalars:
    def test_scalar_write_and_read(self):
        s = routine_summary("      v = 1\n      x = v\n", "INTEGER v, x")
        assert s.ue.for_array("v").is_empty()
        assert not s.mod.for_array("v").is_empty()

    def test_scalar_read_before_write(self):
        s = routine_summary("      x = v\n      v = 1\n", "INTEGER v, x")
        assert not s.ue.for_array("v").is_empty()

    def test_scalar_substitution_into_subscripts(self):
        # k = j + 1; a(k) = ... must record a(j+1)
        s = routine_summary("      k = j + 1\n      a(k) = 1.0\n",
                            "REAL a(100);INTEGER k, j")
        assert s.mod.for_array("a").enumerate(Env(j=4)) == {(5,)}

    def test_scalar_chain_substitution(self):
        s = routine_summary(
            "      k = j + 1\n      m = k * 2\n      a(m) = 1.0\n",
            "REAL a(100);INTEGER k, j, m",
        )
        assert s.mod.for_array("a").enumerate(Env(j=3)) == {(8,)}

    def test_unconvertible_rhs_becomes_opaque_consistently(self):
        # x = b(1); two later uses of x refer to the same unknown
        s = routine_summary(
            "      x = b(1)\n      a(x) = 1.0\n      y = a(x)\n",
            "REAL b(100), a(100);INTEGER x, y",
        )
        # the write a(x') kills the read a(x') because both share the opaque
        assert s.ue.for_array("a").provably_empty()

    def test_redefinition_breaks_equality(self):
        s = routine_summary(
            "      x = b(1)\n      a(x) = 1.0\n      x = b(2)\n      y = a(x)\n",
            "REAL b(100), a(100);INTEGER x, y",
        )
        assert not s.ue.for_array("a").provably_empty()


class TestIoStatements:
    def test_write_items_are_uses(self):
        s = routine_summary("      WRITE (6, *) a(3)\n")
        assert s.ue.for_array("a").enumerate(Env()) == {(3,)}

    def test_read_array_element_is_inexact_mod(self):
        s = routine_summary("      READ (5, *) a(3)\n")
        mod_a = s.mod.for_array("a")
        assert not mod_a.is_empty()
        assert not mod_a.is_exact()

    def test_read_scalar_makes_value_opaque(self):
        s = routine_summary(
            "      k = 1\n      READ (5, *) k\n      a(k) = 1.0\n",
            "REAL a(100);INTEGER k",
        )
        # a's subscript must NOT have been substituted with 1
        mod_a = s.mod.for_array("a")
        assert all("@" in str(g.region) for g in mod_a)

    def test_read_scalar_does_not_kill_exposed_use(self):
        # READ writes k, so an earlier exposure is what counts; k's own
        # storage is modified (exact kill of later uses)
        s = routine_summary(
            "      READ (5, *) k\n      x = k\n", "INTEGER k, x"
        )
        assert s.ue.for_array("k").is_empty()
