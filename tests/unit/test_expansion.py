"""Unit tests for the expansion function (paper section 4.1)."""

from repro.dataflow.expansion import expand_gar, expand_gar_list
from repro.regions import GAR, GARList, OMEGA_DIM, Range, RegularRegion
from repro.symbolic import Comparer, Env, Predicate, sym


def gar(dims, guard=None, array="a"):
    return GAR(
        guard if guard is not None else Predicate.true(),
        RegularRegion(array, dims),
    )


def oracle(g: GAR, index: str, lo: int, hi: int, step: int, env: Env) -> set:
    out = set()
    i = lo
    while i <= hi:
        out |= g.enumerate(env.extend(**{index: i}))
        i += step
    return out


def check(g, index, lo, hi, envs, step=1, cmp=None):
    cmp = cmp or Comparer()
    result = expand_gar(
        g, index, sym(lo), sym(hi), sym(step), cmp
    )
    for env in envs:
        want = oracle(g, index, env.eval_expr(sym(lo)) if isinstance(lo, str) else lo,
                      env.eval_expr(sym(hi)) if isinstance(hi, str) else hi,
                      step, env)
        got = result.enumerate(env)
        assert got == want, f"{g} over {index}={lo}..{hi}: {got} != {want}"
    return result


class TestIndexFree:
    def test_unchanged_with_trip_guard(self, cmp):
        g = gar([Range(1, "m")])
        out = expand_gar(g, "i", sym(1), sym("n"), sym(1), cmp)
        (res,) = out.gars
        assert res.region == g.region
        # occurs only if the loop runs: 1 <= n
        assert res.guard.evaluate(Env(n=0, m=5)) is False
        assert res.guard.evaluate(Env(n=3, m=5)) is True


class TestPointDims:
    def test_unit_coefficient(self, cmp):
        g = gar([Range.point(sym("i"))])
        out = check(g, "i", 1, 10, [Env()])
        (res,) = out.gars
        assert res.region == RegularRegion("a", [Range(1, 10)])
        assert res.exact

    def test_offset(self, cmp):
        g = gar([Range.point(sym("i") + 4)])
        check(g, "i", 2, 5, [Env()])

    def test_coefficient_two_strided(self, cmp):
        g = gar([Range.point(sym("i") * 2)])
        out = check(g, "i", 1, 5, [Env()])
        (res,) = out.gars
        assert res.region.dims[0].step == sym(2)

    def test_negative_coefficient(self, cmp):
        g = gar([Range.point(-sym("i") + 10)])
        check(g, "i", 1, 4, [Env()])

    def test_loop_step(self, cmp):
        g = gar([Range.point(sym("i"))])
        result = expand_gar(g, "i", sym(1), sym(9), sym(2), Comparer())
        assert result.enumerate(Env()) == {(1,), (3,), (5,), (7,), (9,)}

    def test_symbolic_bounds(self, cmp):
        g = gar([Range.point(sym("i"))])
        result = expand_gar(g, "i", sym("lo"), sym("hi"), sym(1), Comparer())
        assert result.enumerate(Env(lo=3, hi=6)) == {(3,), (4,), (5,), (6,)}
        assert result.enumerate(Env(lo=6, hi=3)) == set()


class TestWindows:
    def test_static_window_union(self, cmp):
        # (i : i+2) over i=1..5 -> (1:7), overlapping so exact
        g = gar([Range(sym("i"), sym("i") + 2)])
        out = check(g, "i", 1, 5, [Env()])
        (res,) = out.gars
        assert res.exact

    def test_sparse_window_inexact_overapprox(self, cmp):
        # (2i : 2i+0) handled as point; use width-1 window with stride-3 idx
        g = gar([Range(sym("i") * 3, sym("i") * 3 + 1)])
        out = expand_gar(g, "i", sym(1), sym(3), sym(1), Comparer())
        got = out.enumerate(Env())
        want = {(3,), (4,), (6,), (7,), (9,), (10,)}
        assert got >= want  # over-approximation
        assert not all(g.exact for g in out.gars)

    def test_growing_upper(self, cmp):
        # (1 : i): nested ranges, exact union (1 : hi)
        g = gar([Range(1, sym("i"))])
        out = check(g, "i", 1, 6, [Env()])
        (res,) = out.gars
        assert res.exact

    def test_shrinking_lower(self, cmp):
        # (i : 10): union (lo : 10)
        g = gar([Range(sym("i"), 10)])
        check(g, "i", 2, 8, [Env()])


class TestGuardHandling:
    def test_bounds_from_guard_tighten(self, cmp):
        # [c <= i <= d] A(i) expanded over 1..n
        g = gar([Range.point(sym("i"))],
                Predicate.ge("i", "c") & Predicate.le("i", "d"))
        result = expand_gar(g, "i", sym(1), sym("n"), sym(1), Comparer())
        for env in (Env(c=3, d=5, n=10), Env(c=0, d=4, n=2), Env(c=8, d=4, n=10)):
            want = oracle(g, "i", 1, env["n"], 1, env)
            assert result.enumerate(env) == want

    def test_paper_example(self):
        # T = [c <= i+1 <= d, (1:i)], loop a <= i <= b
        g = gar(
            [Range(1, sym("i"))],
            Predicate.le("c", sym("i") + 1) & Predicate.le(sym("i") + 1, "d"),
        )
        result = expand_gar(g, "i", sym("a"), sym("b"), sym(1), Comparer())
        for env in (Env(a=1, b=10, c=3, d=8), Env(a=2, b=4, c=1, d=9)):
            want = oracle(g, "i", env["a"], env["b"], 1, env)
            assert result.enumerate(env) == want

    def test_pinned_equality(self, cmp):
        # [i == k] A(i) over 1..n: single element k when within bounds
        g = gar([Range.point(sym("i"))], Predicate.eq("i", "k"))
        result = expand_gar(g, "i", sym(1), sym("n"), sym(1), Comparer())
        assert result.enumerate(Env(k=4, n=10)) == {(4,)}
        assert result.enumerate(Env(k=12, n=10)) == set()
        assert all(g.exact for g in result.gars)

    def test_guard_without_index_kept(self, cmp):
        g = gar([Range.point(sym("i"))], Predicate.boolvar("p"))
        result = expand_gar(g, "i", sym(1), sym(5), sym(1), Comparer())
        assert result.enumerate(Env(p=0)) == set()
        assert result.enumerate(Env(p=1)) == {(k,) for k in range(1, 6)}

    def test_residual_guard_drops_to_overapprox(self, cmp):
        # a clause mixing the index with OR cannot be solved: inexact
        clause = Predicate.le("i", 3) | Predicate.boolvar("p")
        g = gar([Range.point(sym("i"))], clause)
        result = expand_gar(g, "i", sym(1), sym(5), sym(1), Comparer())
        got = result.enumerate(Env(p=0))
        want = oracle(g, "i", 1, 5, 1, Env(p=0))
        assert got >= want
        assert not all(x.exact for x in result.gars)


class TestDimensionRules:
    def test_index_in_two_dims_becomes_omega(self, cmp):
        g = gar([Range.point(sym("i")), Range.point(sym("i"))])
        result = expand_gar(g, "i", sym(1), sym(5), sym(1), Comparer())
        (res,) = result.gars
        assert res.region.dims[0] is OMEGA_DIM
        assert res.region.dims[1] is OMEGA_DIM
        assert not res.exact

    def test_nonlinear_index_becomes_omega(self, cmp):
        g = gar([Range.point(sym("i") * sym("i"))])
        result = expand_gar(g, "i", sym(1), sym(5), sym(1), Comparer())
        (res,) = result.gars
        assert res.region.dims[0] is OMEGA_DIM

    def test_untouched_dims_preserved(self, cmp):
        g = gar([Range.point(sym("i")), Range(1, "m")])
        result = expand_gar(g, "i", sym(1), sym(5), sym(1), Comparer())
        (res,) = result.gars
        assert res.region.dims[1] == Range(1, "m")


class TestListExpansion:
    def test_union_and_simplify(self, cmp):
        lst = GARList.of(
            gar([Range.point(sym("i"))]),
            gar([Range.point(sym("i") + 1)]),
        )
        result = expand_gar_list(lst, "i", sym(1), sym(5), sym(1), Comparer())
        assert result.enumerate(Env()) == {(k,) for k in range(1, 7)}
        assert len(result) == 1  # merged by the simplifier
