"""Unit tests for call-graph construction."""

import pytest

from repro.errors import CallGraphError
from repro.fortran import analyze, build_call_graph, parse_program


def graph_of(source: str):
    return build_call_graph(analyze(parse_program(source)))


class TestCallGraph:
    def test_edges(self):
        cg = graph_of(
            "      PROGRAM p\n      CALL a\n      END\n"
            "      SUBROUTINE a\n      CALL b\n      END\n"
            "      SUBROUTINE b\n      x = 1\n      END\n"
        )
        assert cg.calls("p") == frozenset({"a"})
        assert cg.calls("a") == frozenset({"b"})
        assert cg.is_leaf("b")

    def test_bottom_up_order(self):
        cg = graph_of(
            "      PROGRAM p\n      CALL a\n      END\n"
            "      SUBROUTINE a\n      CALL b\n      END\n"
            "      SUBROUTINE b\n      x = 1\n      END\n"
        )
        assert cg.order.index("b") < cg.order.index("a") < cg.order.index("p")

    def test_function_reference_is_edge(self):
        cg = graph_of(
            "      PROGRAM p\n      x = f(1)\n      END\n"
            "      REAL FUNCTION f(k)\n      f = k\n      END\n"
        )
        assert "f" in cg.calls("p")

    def test_external_calls_not_edges(self):
        cg = graph_of("      PROGRAM p\n      CALL outside(x)\n      END\n")
        assert cg.calls("p") == frozenset()

    def test_direct_recursion_rejected(self):
        with pytest.raises(CallGraphError):
            graph_of("      SUBROUTINE a\n      CALL a\n      END\n")

    def test_mutual_recursion_rejected(self):
        with pytest.raises(CallGraphError):
            graph_of(
                "      SUBROUTINE a\n      CALL b\n      END\n"
                "      SUBROUTINE b\n      CALL a\n      END\n"
            )

    def test_callers_map(self):
        cg = graph_of(
            "      PROGRAM p\n      CALL a\n      END\n"
            "      SUBROUTINE q\n      CALL a\n      END\n"
            "      SUBROUTINE a\n      x = 1\n      END\n"
        )
        assert cg.callers["a"] == {"p", "q"}

    def test_diamond_shape_ok(self):
        cg = graph_of(
            "      PROGRAM p\n      CALL a\n      CALL b\n      END\n"
            "      SUBROUTINE a\n      CALL c\n      END\n"
            "      SUBROUTINE b\n      CALL c\n      END\n"
            "      SUBROUTINE c\n      x = 1\n      END\n"
        )
        assert cg.order.index("c") < cg.order.index("a")
        assert cg.order.index("c") < cg.order.index("b")
