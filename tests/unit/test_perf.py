"""Unit tests for the profiling substrate (repro.perf.profiler)."""

from __future__ import annotations

import pickle

from repro.perf import profiler
from repro.perf.profiler import MISS, BoundedCache
from repro.symbolic import Monomial, Predicate, Relation, RelOp, SymExpr


def _cache(name: str, maxsize: int = 4) -> BoundedCache:
    # unregistered so tests cannot pollute the global registry
    return BoundedCache(name, maxsize=maxsize, register=False)


class TestBoundedCache:
    def test_miss_then_hit(self):
        c = _cache("t")
        assert c.get("k") is MISS
        c.put("k", 42)
        assert c.get("k") == 42
        assert (c.hits, c.misses) == (1, 1)

    def test_none_is_a_legitimate_value(self):
        c = _cache("t")
        c.put("k", None)
        assert c.get("k") is None
        assert c.hits == 1

    def test_put_returns_value(self):
        c = _cache("t")
        assert c.put("k", "v") == "v"

    def test_lru_eviction_order(self):
        c = _cache("t", maxsize=2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # refresh a; b is now LRU
        c.put("c", 3)
        assert c.get("b") is MISS
        assert c.get("a") == 1
        assert c.get("c") == 3
        assert c.evictions == 1

    def test_clear_keeps_counters(self):
        c = _cache("t")
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0
        assert c.hits == 1
        assert c.get("a") is MISS

    def test_resize_evicts_down(self):
        c = _cache("t", maxsize=4)
        for i in range(4):
            c.put(i, i)
        c.resize(2)
        assert len(c) == 2
        assert c.evictions == 2
        # the most recently used entries survive
        assert c.get(3) == 3 and c.get(2) == 2

    def test_stats_shape(self):
        c = _cache("t")
        c.put("a", 1)
        c.get("a")
        c.get("b")
        assert c.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "size": 1,
        }


class TestRegistryAndSnapshot:
    def test_symbolic_caches_registered(self):
        names = set(profiler.caches())
        # the tentpole tables must all report through the registry
        for expected in (
            "monomial.intern",
            "symexpr.intern",
            "relation.intern",
            "comparer.prove",
            "fm.unsat",
            "predicate.conj",
        ):
            assert expected in names

    def test_snapshot_delta_is_flat_and_numeric(self):
        before = profiler.snapshot()
        # force some traffic
        SymExpr.var("snapshot_test") + 1
        after = profiler.snapshot()
        d = profiler.delta(before, after)
        assert all(isinstance(v, (int, float)) for v in d.values())
        assert all(isinstance(k, str) for k in d)
        # delta drops zero entries
        assert profiler.delta(after, after) == {}

    def test_counters_reset(self):
        profiler.COUNTERS.prove_calls += 5
        profiler.reset()
        assert profiler.COUNTERS.prove_calls == 0


class TestProbe:
    def test_probe_captures_only_scoped_activity(self):
        SymExpr.var("probe_warmup")  # traffic before the scope
        with profiler.probe() as pr:
            SymExpr.var("probe_scoped") * 2 + 1
        assert pr.delta  # the scoped expression work registered
        assert all(v > 0 for v in pr.delta.values())
        # keys are flat snapshot keys, subtractable and JSON-ready
        assert all(isinstance(k, str) for k in pr.delta)

    def test_quiet_scope_has_empty_delta(self):
        with profiler.probe() as pr:
            pass
        assert pr.delta == {}

    def test_finish_returns_and_stores(self):
        pr = profiler.probe()
        SymExpr.var("probe_finish") + 1
        returned = pr.finish()
        assert returned is pr.delta

    def test_probe_survives_exceptions(self):
        pr = profiler.probe()
        try:
            with pr:
                SymExpr.var("probe_exc") + 1
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert pr.delta  # __exit__ still closed the scope


class TestHitRate:
    def test_empty_slice_is_none_not_zero(self):
        assert profiler.hit_rate({}) is None
        assert profiler.hit_rate({"counter.prove_calls": 5}) is None

    def test_aggregates_across_caches(self):
        snap = {
            "cache.a.hits": 3.0,
            "cache.a.misses": 1.0,
            "cache.b.hits": 1.0,
            "cache.b.misses": 3.0,
            "cache.a.evictions": 99.0,  # not a lookup, ignored
            "counter.prove_calls": 7.0,  # wrong prefix, ignored
        }
        assert profiler.hit_rate(snap) == 0.5

    def test_prefix_narrows_the_slice(self):
        snap = {
            "cache.a.hits": 1.0,
            "cache.a.misses": 0.0,
            "cache.b.hits": 0.0,
            "cache.b.misses": 1.0,
        }
        assert profiler.hit_rate(snap, prefix="cache.a.") == 1.0
        assert profiler.hit_rate(snap, prefix="cache.b.") == 0.0

    def test_accepts_live_snapshot(self):
        SymExpr.var("hit_rate_traffic") + 1
        rate = profiler.hit_rate(profiler.snapshot())
        assert rate is not None and 0.0 <= rate <= 1.0


class TestTimers:
    def test_disabled_records_nothing(self):
        profiler.reset_timers()
        calls = []

        @profiler.timed("unit_test_phase")
        def work():
            calls.append(1)
            return 7

        profiler.disable()
        assert work() == 7
        assert "unit_test_phase" not in profiler.timers()

        profiler.enable()
        try:
            assert work() == 7
            t = profiler.timers()["unit_test_phase"]
            assert t["calls"] == 1 and t["seconds"] >= 0
        finally:
            profiler.disable()
            profiler.reset_timers()
        assert calls == [1, 1]


class TestInternedPickling:
    """Interned symbolic objects must unpickle through their interning
    constructors — never by mutating a shared instance's slots."""

    def test_monomial_roundtrip_is_interned(self):
        m = Monomial.var("i", 2) * Monomial.var("j")
        clone = pickle.loads(pickle.dumps(m))
        assert clone == m
        # same process, live intern table: identical object
        assert clone is Monomial(m.factors)

    def test_unit_monomial_not_corrupted(self):
        unit = Monomial.unit()
        factors_before = unit.factors
        pickle.loads(pickle.dumps(Monomial.var("k")))
        assert Monomial.unit().factors == factors_before == ()

    def test_symexpr_roundtrip(self):
        e = SymExpr.var("i") * 3 + SymExpr.var("j") - 7
        clone = pickle.loads(pickle.dumps(e))
        assert clone == e and hash(clone) == hash(e)

    def test_relation_roundtrip(self):
        r = Relation(SymExpr.var("i") - SymExpr.var("n"), RelOp.LE)
        clone = pickle.loads(pickle.dumps(r))
        assert clone == r and clone.op is r.op

    def test_predicate_roundtrip(self):
        p = Predicate.le("i", "n") & Predicate.ge("i", 1)
        clone = pickle.loads(pickle.dumps(p))
        assert clone == p
