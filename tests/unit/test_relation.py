"""Unit tests for relational atoms (repro.symbolic.relation)."""

from repro.symbolic import BoolAtom, Relation, RelOp, sym


class TestConstructorsAndNormalization:
    def test_le(self):
        r = Relation.le("i", "n")
        assert r.op is RelOp.LE
        assert r.expr == sym("i") - sym("n")

    def test_lt_integer_tightens(self):
        # i < 5 over integers becomes i - 4 <= 0
        r = Relation.lt("i", 5)
        assert r.op is RelOp.LE
        assert r.expr == sym("i") - 4

    def test_lt_real_stays_strict(self):
        r = Relation.lt("x", 5, integer=False)
        assert r.op is RelOp.LT
        assert r.expr == sym("x") - 5

    def test_ge_gt(self):
        assert Relation.ge("i", 3) == Relation.le(3, "i")
        assert Relation.gt("i", 3) == Relation.le(4, "i")

    def test_eq_ne(self):
        assert Relation.eq("i", "j").op is RelOp.EQ
        assert Relation.ne("i", "j").op is RelOp.NE

    def test_fraction_coefficients_scaled_to_integers(self):
        r = Relation.le(sym("i").div_const(2), 1)  # i/2 <= 1  ->  i - 2 <= 0
        assert r.expr == sym("i") - 2

    def test_gcd_tightening_le(self):
        # 2i - 3 <= 0  =>  i <= 3/2  =>  i <= 1  =>  i - 1 <= 0
        r = Relation(sym("i") * 2 - 3, RelOp.LE)
        assert r.expr == sym("i") - 1

    def test_gcd_le_real_keeps_fraction(self):
        r = Relation(sym("x") * 2 - 3, RelOp.LE, integer=False)
        # divided by 2 exactly: x - 3/2 <= 0
        assert r.expr == sym("x") - sym(3).div_const(2)

    def test_eq_unsolvable_gcd_becomes_false(self):
        # 2i - 3 == 0 has no integer solution
        r = Relation(sym("i") * 2 - 3, RelOp.EQ)
        assert r.truth() is False

    def test_ne_unsolvable_gcd_becomes_true(self):
        r = Relation(sym("i") * 2 - 3, RelOp.NE)
        assert r.truth() is True

    def test_eq_sign_canonical(self):
        assert Relation.eq("i", "j") == Relation.eq("j", "i")
        assert Relation.ne(sym("i") - sym("j"), 0) == Relation.ne(
            sym("j") - sym("i"), 0
        )


class TestTruth:
    def test_constant_truth(self):
        assert Relation.le(1, 2).truth() is True
        assert Relation.le(3, 2).truth() is False
        assert Relation.eq(2, 2).truth() is True
        assert Relation.ne(2, 2).truth() is False
        assert Relation.lt(sym(1).div_const(2), 1, integer=False).truth() is True

    def test_symbolic_truth_unknown(self):
        assert Relation.le("i", "n").truth() is None


class TestNegate:
    def test_negate_le_integer(self):
        # not(i <= n)  <=>  i >= n+1
        r = Relation.le("i", "n").negate()
        assert r == Relation.ge("i", sym("n") + 1)

    def test_negate_real_partition(self):
        r = Relation.le("x", "y", integer=False)
        n = r.negate()
        assert n.op is RelOp.LT
        # negate twice returns an equivalent relation
        assert n.negate() == r

    def test_negate_eq_ne(self):
        assert Relation.eq("i", 0).negate() == Relation.ne("i", 0)
        assert Relation.ne("i", 0).negate() == Relation.eq("i", 0)


class TestImplies:
    def test_same_relation(self):
        r = Relation.le("i", "n")
        assert r.implies(r) is True

    def test_le_weakening(self):
        assert Relation.le("i", 3).implies(Relation.le("i", 5)) is True
        assert Relation.le("i", 5).implies(Relation.le("i", 3)) is None

    def test_le_different_parts_unknown(self):
        assert Relation.le("i", 3).implies(Relation.le("j", 5)) is None

    def test_eq_implies_le(self):
        assert Relation.eq("i", 3).implies(Relation.le("i", 3)) is True
        assert Relation.eq("i", 3).implies(Relation.le("i", 5)) is True
        assert Relation.eq("i", 3).implies(Relation.le("i", 2)) is False

    def test_eq_implies_ne(self):
        assert Relation.eq("i", 3).implies(Relation.ne("i", 4)) is True
        assert Relation.eq("i", 3).implies(Relation.ne("i", 3)) is False

    def test_eq_implies_eq(self):
        assert Relation.eq("i", 3).implies(Relation.eq("i", 3)) is True
        assert Relation.eq("i", 3).implies(Relation.eq("i", 4)) is False

    def test_le_implies_ne(self):
        # i <= 3 guarantees i != 5
        assert Relation.le("i", 3).implies(Relation.ne("i", 5)) is True
        # but not i != 2
        assert Relation.le("i", 3).implies(Relation.ne("i", 2)) is None

    def test_ineq_refutes_eq(self):
        assert Relation.le("i", 3).implies(Relation.eq("i", 5)) is False

    def test_strict_vs_nonstrict(self):
        lt = Relation.lt("x", 3, integer=False)
        le = Relation.le("x", 3, integer=False)
        assert lt.implies(le) is True
        assert le.implies(lt) is None

    def test_implies_boolatom_is_none(self):
        assert Relation.le("i", 3).implies(BoolAtom("p")) is None

    def test_constant_other(self):
        assert Relation.le("i", 3).implies(Relation.le(1, 2)) is True


class TestConflicts:
    def test_conflicting_bounds(self):
        assert Relation.le("i", 3).conflicts(Relation.ge("i", 5))
        assert not Relation.le("i", 3).conflicts(Relation.ge("i", 2))

    def test_eq_vs_ne(self):
        assert Relation.eq("i", 3).conflicts(Relation.ne("i", 3))

    def test_real_strict_complement(self):
        gt = Relation.gt("x", "s", integer=False)
        le = Relation.le("x", "s", integer=False)
        assert gt.conflicts(le)


class TestDataPlumbing:
    def test_substitute(self):
        r = Relation.le("i", "n").substitute({"i": sym("j") + 1})
        assert r == Relation.le(sym("j") + 1, "n")

    def test_rename(self):
        assert Relation.le("i", 3).rename({"i": "k"}) == Relation.le("k", 3)

    def test_free_vars(self):
        assert Relation.le("i", "n").free_vars() == frozenset({"i", "n"})

    def test_evaluate(self):
        r = Relation.le("i", "n")
        assert r.evaluate({"i": 1, "n": 5}) is True
        assert r.evaluate({"i": 7, "n": 5}) is False
        assert Relation.ne("i", 0).evaluate({"i": 0}) is False


class TestBoolAtom:
    def test_identity(self):
        assert BoolAtom("p") == BoolAtom("p", True)
        assert BoolAtom("p") != BoolAtom("p", False)

    def test_negate(self):
        assert BoolAtom("p").negate() == BoolAtom("p", False)
        assert BoolAtom("p").negate().negate() == BoolAtom("p")

    def test_implies(self):
        assert BoolAtom("p").implies(BoolAtom("p")) is True
        assert BoolAtom("p").implies(BoolAtom("p", False)) is False
        assert BoolAtom("p").implies(BoolAtom("q")) is None

    def test_conflicts(self):
        assert BoolAtom("p").conflicts(BoolAtom("p", False))
        assert not BoolAtom("p").conflicts(BoolAtom("q", False))

    def test_substitute_to_var_renames(self):
        out = BoolAtom("p").substitute({"p": sym("q")})
        assert out == BoolAtom("q")

    def test_substitute_to_expr_unrepresentable(self):
        assert BoolAtom("p").substitute({"p": sym("q") + 1}) is None

    def test_substitute_no_hit(self):
        a = BoolAtom("p")
        assert a.substitute({"x": sym(1)}) is a

    def test_evaluate(self):
        assert BoolAtom("p").evaluate({"p": 1}) is True
        assert BoolAtom("p", False).evaluate({"p": 0}) is True

    def test_str(self):
        assert str(BoolAtom("p")) == "p"
        assert str(BoolAtom("p", False)) == ".NOT.p"
