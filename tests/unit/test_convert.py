"""Unit tests for AST → symbolic conversion (repro.dataflow.convert)."""

from fractions import Fraction

from repro.dataflow.convert import (
    ConversionContext,
    to_predicate,
    to_symexpr,
)
from repro.fortran import analyze, parse_program
from repro.fortran.ast_nodes import Assign
from repro.symbolic import Predicate, Relation, RelOp, sym


def ctx_for(decls: str = "", **kw) -> ConversionContext:
    src = (
        "      SUBROUTINE s\n"
        + "".join(f"      {d}\n" for d in decls.split(";") if d)
        + "      zz = 0\n      END\n"
    )
    table = analyze(parse_program(src)).table("s")
    return ConversionContext(table, **kw)


def parse_expr(text: str, ctx: ConversionContext):
    src = f"      SUBROUTINE s2\n      zz = {text}\n      END\n"
    program = parse_program(src)
    stmt = program.unit("s2").body[0]
    assert isinstance(stmt, Assign)
    # resolve applies against the supplied context's table
    from repro.fortran.semantics import _resolve_applies

    _resolve_applies(program.unit("s2"), ctx.table, set(), set())
    return stmt.value


class TestToSymexpr:
    def test_literals_and_vars(self):
        ctx = ctx_for()
        assert to_symexpr(parse_expr("42", ctx), ctx) == sym(42)
        assert to_symexpr(parse_expr("n", ctx), ctx) == sym("n")

    def test_arithmetic(self):
        ctx = ctx_for()
        e = to_symexpr(parse_expr("2 * i + n - 1", ctx), ctx)
        assert e == sym("i") * 2 + sym("n") - 1

    def test_unary(self):
        ctx = ctx_for()
        assert to_symexpr(parse_expr("-i", ctx), ctx) == -sym("i")
        assert to_symexpr(parse_expr("+i", ctx), ctx) == sym("i")

    def test_exact_division(self):
        ctx = ctx_for()
        assert to_symexpr(parse_expr("(4 * i) / 2", ctx), ctx) == sym("i") * 2

    def test_truncating_division_unknown(self):
        ctx = ctx_for()
        assert to_symexpr(parse_expr("i / 2", ctx), ctx) is None

    def test_division_by_symbol_unknown(self):
        ctx = ctx_for()
        assert to_symexpr(parse_expr("i / n", ctx), ctx) is None

    def test_power(self):
        ctx = ctx_for()
        assert to_symexpr(parse_expr("i ** 2", ctx), ctx) == sym("i") * sym("i")

    def test_large_power_unknown(self):
        ctx = ctx_for()
        assert to_symexpr(parse_expr("i ** 9", ctx), ctx) is None

    def test_array_ref_unknown(self):
        ctx = ctx_for("REAL a(10)")
        assert to_symexpr(parse_expr("a(1)", ctx), ctx) is None

    def test_real_literal_unknown(self):
        ctx = ctx_for()
        assert to_symexpr(parse_expr("1.5", ctx), ctx) is None

    def test_parameter_inlined(self):
        ctx = ctx_for("PARAMETER (n = 5)")
        assert to_symexpr(parse_expr("n + 1", ctx), ctx) == sym(6)

    def test_bindings_take_precedence(self):
        ctx = ctx_for()
        ctx.bindings["k"] = sym("j") + 1
        assert to_symexpr(parse_expr("k", ctx), ctx) == sym("j") + 1

    def test_nonsymbolic_mode_rejects_plain_vars(self):
        ctx = ctx_for(symbolic=False)
        assert to_symexpr(parse_expr("n", ctx), ctx) is None
        assert to_symexpr(parse_expr("3", ctx), ctx) == sym(3)

    def test_nonsymbolic_mode_allows_active_indices(self):
        ctx = ctx_for(symbolic=False).with_index("i")
        assert to_symexpr(parse_expr("i + 1", ctx), ctx) == sym("i") + 1

    def test_fresh_opaque_unique(self):
        ctx = ctx_for()
        a = ctx.fresh_opaque("x")
        b = ctx.fresh_opaque("x")
        assert a != b


class TestToPredicate:
    def test_integer_comparison(self):
        ctx = ctx_for()
        p = to_predicate(parse_expr("i .LT. n", ctx), ctx)
        assert p == Predicate.lt("i", "n")

    def test_integer_lt_tightened(self):
        ctx = ctx_for()
        p = to_predicate(parse_expr("i .LT. 5", ctx), ctx)
        (atom,) = p.unit_atoms()
        assert atom.op is RelOp.LE  # integer tightening applied

    def test_real_comparison_strict(self):
        ctx = ctx_for("REAL x, s")
        p = to_predicate(parse_expr("x .GT. s", ctx), ctx)
        (atom,) = p.unit_atoms()
        assert atom.op is RelOp.LT and not atom.integer

    def test_real_literal_bound(self):
        ctx = ctx_for("REAL x")
        p = to_predicate(parse_expr("x .LE. 0.5", ctx), ctx)
        (atom,) = p.unit_atoms()
        assert atom.expr == sym("x") - Fraction(1, 2)

    def test_logical_variable(self):
        ctx = ctx_for("LOGICAL p")
        assert to_predicate(parse_expr("p", ctx), ctx) == Predicate.boolvar("p")

    def test_not(self):
        ctx = ctx_for("LOGICAL p")
        got = to_predicate(parse_expr(".NOT. p", ctx), ctx)
        assert got == Predicate.boolvar("p", False)

    def test_and_or(self):
        ctx = ctx_for("LOGICAL p, q")
        e = parse_expr("p .AND. q", ctx)
        assert to_predicate(e, ctx) == Predicate.boolvar("p") & Predicate.boolvar("q")
        e = parse_expr("p .OR. q", ctx)
        assert to_predicate(e, ctx) == Predicate.boolvar("p") | Predicate.boolvar("q")

    def test_logical_constants(self):
        ctx = ctx_for()
        assert to_predicate(parse_expr(".TRUE.", ctx), ctx).is_true()
        assert to_predicate(parse_expr(".FALSE.", ctx), ctx).is_false()

    def test_array_ref_condition_is_delta(self):
        ctx = ctx_for("REAL b(10)")
        p = to_predicate(parse_expr("b(1) .GT. 0.0", ctx), ctx)
        assert p.is_unknown()

    def test_nonlogical_scalar_is_delta(self):
        ctx = ctx_for()
        assert to_predicate(parse_expr("x", ctx), ctx).is_unknown()

    def test_t2_off_everything_delta(self):
        ctx = ctx_for("LOGICAL p", if_conditions=False)
        assert to_predicate(parse_expr("p", ctx), ctx).is_unknown()
        assert to_predicate(parse_expr("i .LT. 5", ctx), ctx).is_unknown()

    def test_eqv_neqv(self):
        ctx = ctx_for("LOGICAL p, q")
        eqv = to_predicate(parse_expr("p .EQV. q", ctx), ctx)
        assert eqv.evaluate({"p": 1, "q": 1})
        assert not eqv.evaluate({"p": 1, "q": 0})
        neqv = to_predicate(parse_expr("p .NEQV. q", ctx), ctx)
        assert neqv.evaluate({"p": 1, "q": 0})

    def test_mixed_int_real_comparison_is_real(self):
        ctx = ctx_for("REAL x")
        p = to_predicate(parse_expr("i .LT. x", ctx), ctx)
        (atom,) = p.unit_atoms()
        assert not atom.integer
