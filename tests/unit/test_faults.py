"""Unit tests for the deterministic fault-injection substrate."""

import pytest

from repro.resilience import FaultPlan, FaultSpec, parse_plan
from repro.resilience import faults


@pytest.fixture(autouse=True)
def clean_plan(monkeypatch):
    """Never leak an installed plan (or the env var) between tests."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestParsePlan:
    def test_site_only(self):
        plan = parse_plan("item.hang")
        assert plan.specs == (FaultSpec(site="item.hang"),)

    def test_site_key_nth(self):
        plan = parse_plan("worker.crash:MDG@1")
        assert plan.specs == (
            FaultSpec(site="worker.crash", key="MDG", nth=1),
        )

    def test_multiple_specs_and_whitespace(self):
        plan = parse_plan(" worker.crash:MDG@1 ; cache.read@2 ;; item.hang ")
        assert [s.site for s in plan.specs] == [
            "worker.crash",
            "cache.read",
            "item.hang",
        ]
        assert plan.specs[1] == FaultSpec(site="cache.read", nth=2)

    def test_empty_plan(self):
        assert parse_plan("").specs == ()


class TestShouldFire:
    def test_key_filter(self):
        plan = parse_plan("worker.crash:MDG")
        assert plan.should_fire("worker.crash", key="MDG", occurrence=1)
        assert not plan.should_fire("worker.crash", key="TRFD", occurrence=1)
        assert not plan.should_fire("item.hang", key="MDG", occurrence=1)

    def test_wildcard_key(self):
        plan = parse_plan("worker.crash:*")
        assert plan.should_fire("worker.crash", key="anything", occurrence=1)

    def test_nth_occurrence_only(self):
        plan = parse_plan("worker.crash:MDG@2")
        assert not plan.should_fire("worker.crash", key="MDG", occurrence=1)
        assert plan.should_fire("worker.crash", key="MDG", occurrence=2)
        assert not plan.should_fire("worker.crash", key="MDG", occurrence=3)

    def test_no_nth_fires_every_occurrence(self):
        plan = parse_plan("item.hang:X")
        for occurrence in (1, 2, 5):
            assert plan.should_fire("item.hang", key="X", occurrence=occurrence)

    def test_self_counted_occurrences(self):
        plan = parse_plan("cache.read@2")
        # the plan counts (site, key) occurrences itself when the caller
        # does not pass one: the second read fires, others do not
        assert not plan.should_fire("cache.read")
        assert plan.should_fire("cache.read")
        assert not plan.should_fire("cache.read")

    def test_counters_are_per_site_and_key(self):
        plan = parse_plan("cache.read:aa@1")
        assert plan.should_fire("cache.read", key="aa")
        assert not plan.should_fire("cache.read", key="bb")

    def test_empty_plan_never_fires(self):
        assert not FaultPlan().should_fire("worker.crash", occurrence=1)


class TestProcessPlan:
    def test_env_var_is_the_transport(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "budget.exhaust@1")
        faults.reset()
        assert faults.should_fire("budget.exhaust")
        assert not faults.should_fire("budget.exhaust")

    def test_no_env_no_faults(self):
        assert not faults.should_fire("worker.crash", occurrence=1)

    def test_install_forces_a_plan(self):
        faults.install(parse_plan("item.error:X"))
        assert faults.should_fire("item.error", key="X", occurrence=1)
        faults.reset()
        assert not faults.should_fire("item.error", key="X", occurrence=1)
