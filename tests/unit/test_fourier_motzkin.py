"""Unit tests for the Fourier–Motzkin engine."""

from repro.symbolic import (
    BoolAtom,
    Relation,
    definitely_unsat,
    implied_by,
    sym,
)


class TestUnsat:
    def test_empty_is_sat(self):
        assert not definitely_unsat([])

    def test_simple_conflict(self):
        assert definitely_unsat([Relation.le("i", 3), Relation.ge("i", 5)])

    def test_simple_satisfiable(self):
        assert not definitely_unsat([Relation.le("i", 3), Relation.ge("i", 1)])

    def test_transitive_conflict(self):
        # i <= j, j <= k, k <= i - 1
        atoms = [
            Relation.le("i", "j"),
            Relation.le("j", "k"),
            Relation.le("k", sym("i") - 1),
        ]
        assert definitely_unsat(atoms)

    def test_transitive_satisfiable(self):
        atoms = [
            Relation.le("i", "j"),
            Relation.le("j", "k"),
            Relation.le("k", "i"),
        ]
        assert not definitely_unsat(atoms)

    def test_equality_expansion(self):
        assert definitely_unsat([Relation.eq("i", 3), Relation.ge("i", 4)])
        assert not definitely_unsat([Relation.eq("i", 3), Relation.ge("i", 3)])

    def test_ne_split_integer(self):
        # i != 3 with 3 <= i <= 3 forces contradiction
        atoms = [
            Relation.ne("i", 3),
            Relation.ge("i", 3),
            Relation.le("i", 3),
        ]
        assert definitely_unsat(atoms)

    def test_ne_split_satisfiable(self):
        atoms = [Relation.ne("i", 3), Relation.ge("i", 3), Relation.le("i", 4)]
        assert not definitely_unsat(atoms)

    def test_strict_real_conflict(self):
        # x < y and y < x
        atoms = [
            Relation.lt("x", "y", integer=False),
            Relation.lt("y", "x", integer=False),
        ]
        assert definitely_unsat(atoms)

    def test_strict_boundary(self):
        # x < y and y <= x is unsat; x <= y and y <= x is sat (x == y)
        assert definitely_unsat(
            [
                Relation.lt("x", "y", integer=False),
                Relation.le("y", "x", integer=False),
            ]
        )
        assert not definitely_unsat(
            [
                Relation.le("x", "y", integer=False),
                Relation.le("y", "x", integer=False),
            ]
        )

    def test_bool_conflict(self):
        assert definitely_unsat([BoolAtom("p"), BoolAtom("p", False)])
        assert not definitely_unsat([BoolAtom("p"), BoolAtom("q", False)])

    def test_constant_false_atom(self):
        assert definitely_unsat([Relation.le(5, 3)])

    def test_nonlinear_linearization_sound(self):
        # i*i <= 3 and i*i >= 5: the shared monomial conflicts
        sq = sym("i") * sym("i")
        assert definitely_unsat([Relation.le(sq, 3), Relation.ge(sq, 5)])

    def test_nonlinear_distinct_monomials_not_proven(self):
        # i*j >= 5 and i <= 0: genuinely unsat over positive reasoning but
        # the linearization treats i*j as independent; must NOT claim unsat
        atoms = [Relation.ge(sym("i") * sym("j"), 5), Relation.le("i", 0)]
        assert not definitely_unsat(atoms)

    def test_scaled_conflict(self):
        # 2i <= 5 (=> i <= 2) and 3i >= 9 (=> i >= 3)
        assert definitely_unsat(
            [Relation.le(sym("i") * 2, 5), Relation.ge(sym("i") * 3, 9)]
        )


class TestImpliedBy:
    def test_direct(self):
        assert implied_by([Relation.le("i", 3)], Relation.le("i", 5))

    def test_chain(self):
        context = [Relation.le("i", "j"), Relation.le("j", "n")]
        assert implied_by(context, Relation.le("i", "n"))
        assert not implied_by(context, Relation.le("n", "i"))

    def test_equality_context(self):
        assert implied_by([Relation.eq("i", "j")], Relation.le("i", "j"))
        assert implied_by([Relation.eq("i", "j")], Relation.ge("i", "j"))

    def test_integer_gap(self):
        # i <= 3 implies i != 4 (integers)
        assert implied_by([Relation.le("i", 3)], Relation.ne("i", 4))

    def test_not_implied(self):
        assert not implied_by([Relation.le("i", 5)], Relation.le("i", 3))

    def test_empty_context_tautology(self):
        assert implied_by([], Relation.le("i", sym("i") + 1))


class TestEffortCaps:
    """Satellite contract (docs/robustness.md): when a system exceeds the
    elimination effort caps, FM gives up *soundly* — ``definitely_unsat``
    answers False ("could not prove"), never wrong or hung — and the
    bail-out is counted so ``--profile``/``--stats-json`` surface it.

    Every test uses fresh variable names: verdicts are memoized on the
    atom set, and counters only move on a cache miss.
    """

    def test_variable_limit_bails_out_and_counts(self):
        from repro.perf.profiler import COUNTERS
        from repro.symbolic.fourier_motzkin import MAX_VARIABLES

        n = MAX_VARIABLES + 2
        # v0 <= v1 <= ... <= v{n-1} <= v0 - 1: infeasible, but the proof
        # needs elimination over n > MAX_VARIABLES variables
        atoms = [
            Relation.le(f"vcap{k}", f"vcap{k + 1}") for k in range(n - 1)
        ]
        atoms.append(Relation.le(f"vcap{n - 1}", sym("vcap0") - 1))
        before = COUNTERS.fm_var_limit_bailouts
        assert not definitely_unsat(atoms)  # gave up, did not prove
        assert COUNTERS.fm_var_limit_bailouts == before + 1

    def test_constraint_limit_bails_out_and_counts(self):
        from repro.perf.profiler import COUNTERS
        from repro.symbolic.fourier_motzkin import MAX_CONSTRAINTS

        import itertools

        from repro.symbolic.fourier_motzkin import MAX_VARIABLES

        # stay under the variable cap but flood the constraint cap:
        # every ordered pair at three slack levels, all satisfiable
        names = [f"ccap{k}" for k in range(MAX_VARIABLES)]
        atoms = [
            Relation.le(a, sym(b) + c)
            for a, b in itertools.combinations(names, 2)
            for c in range(3)
        ]
        assert len(atoms) > MAX_CONSTRAINTS
        before = COUNTERS.fm_constraint_limit_bailouts
        assert not definitely_unsat(atoms)
        assert COUNTERS.fm_constraint_limit_bailouts == before + 1

    def test_excess_ne_splits_are_dropped_and_counted(self):
        from repro.perf.profiler import COUNTERS
        from repro.symbolic.fourier_motzkin import MAX_NE_SPLITS

        # MAX_NE_SPLITS + 2 disequalities: the extras are dropped (sound
        # weakening), so the squeezed contradiction is no longer provable
        atoms = [
            Relation.ne("necap", k) for k in range(MAX_NE_SPLITS + 2)
        ]
        atoms.append(Relation.ge("necap", 0))
        atoms.append(Relation.le("necap", MAX_NE_SPLITS + 1))
        before = COUNTERS.fm_ne_splits_dropped
        definitely_unsat(atoms)
        assert COUNTERS.fm_ne_splits_dropped == before + 2

    def test_bailout_counters_reach_profile_snapshot(self):
        from repro.perf import profiler

        snap = profiler.snapshot()
        for key in (
            "counter.fm_var_limit_bailouts",
            "counter.fm_constraint_limit_bailouts",
            "counter.fm_ne_splits_dropped",
            "counter.budget_fallbacks",
        ):
            assert key in snap and isinstance(snap[key], int)
