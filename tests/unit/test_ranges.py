"""Unit tests for range triples and their set operations (paper 5.1)."""

import pytest

from repro.errors import RegionError
from repro.symbolic import Comparer, Env, Predicate, sym
from repro.regions import (
    Range,
    range_covers,
    range_difference,
    range_intersect,
    range_union,
)


def enum_pieces(pieces, env):
    """Concrete element set of a guarded range list under env."""
    out = set()
    for pred, rng in pieces:
        if pred.evaluate(env):
            out |= set(rng.enumerate(env))
    return out


class TestRangeBasics:
    def test_point(self):
        r = Range.point(sym("i"))
        assert r.is_point()
        assert r.is_unit_step()

    def test_enumerate(self):
        assert Range(1, 5).enumerate({}) == [1, 2, 3, 4, 5]
        assert Range(1, 9, 3).enumerate({}) == [1, 4, 7]
        assert Range(5, 4).enumerate({}) == []

    def test_enumerate_symbolic(self):
        r = Range("a", sym("a") + 2)
        assert r.enumerate(Env(a=10)) == [10, 11, 12]

    def test_nonpositive_step_rejected(self):
        with pytest.raises(RegionError):
            Range(1, 10, 0)
        with pytest.raises(RegionError):
            Range(1, 10, -1)

    def test_nonempty_pred(self):
        p = Range("a", "b").nonempty_pred()
        assert p == Predicate.le("a", "b")

    def test_shifted(self):
        assert Range(1, 5).shifted(2) == Range(3, 7)

    def test_substitute(self):
        r = Range("i", sym("i") + 1).substitute({"i": sym(4)})
        assert r == Range(4, 5)

    def test_str(self):
        assert str(Range(1, 10)) == "1:10"
        assert str(Range(1, 10, 2)) == "1:10:2"
        assert str(Range.point(sym("j"))) == "j"


class TestIntersect:
    def test_concrete_overlap(self, cmp):
        pieces = range_intersect(Range(1, 10), Range(5, 20), cmp)
        assert enum_pieces(pieces, Env()) == set(range(5, 11))

    def test_concrete_disjoint(self, cmp):
        pieces = range_intersect(Range(1, 4), Range(6, 9), cmp)
        assert enum_pieces(pieces, Env()) == set()

    def test_symbolic_case_split(self, cmp):
        # paper's example: (a:100) n (b:100)
        pieces = range_intersect(Range("a", 100), Range("b", 100), cmp)
        for env in (Env(a=3, b=7), Env(a=7, b=3), Env(a=5, b=5)):
            expect = set(range(env["a"], 101)) & set(range(env["b"], 101))
            assert enum_pieces(pieces, env) == expect

    def test_context_prunes_cases(self):
        c = Comparer(Predicate.le("a", "b"))
        pieces = range_intersect(Range("a", 100), Range("b", 100), c)
        assert len(pieces) == 1

    def test_same_const_step_aligned(self, cmp):
        pieces = range_intersect(Range(1, 20, 3), Range(7, 30, 3), cmp)
        assert enum_pieces(pieces, Env()) == {7, 10, 13, 16, 19}

    def test_same_const_step_misaligned_empty(self, cmp):
        pieces = range_intersect(Range(1, 20, 2), Range(2, 20, 2), cmp)
        assert pieces == []

    def test_equal_symbolic_steps_same_lower(self, cmp):
        pieces = range_intersect(Range("a", 50, "s"), Range("a", 80, "s"), cmp)
        assert pieces is not None
        for env in (Env(a=3, s=4), Env(a=1, s=7)):
            expect = set(Range("a", 50, "s").enumerate(env)) & set(
                Range("a", 80, "s").enumerate(env)
            )
            assert enum_pieces(pieces, env) == expect

    def test_coarse_vs_fine_grid_covered(self, cmp):
        # step 4 range inside a unit-step cover
        pieces = range_intersect(Range(3, 19, 4), Range(1, 100), cmp)
        assert enum_pieces(pieces, Env()) == {3, 7, 11, 15, 19}

    def test_incompatible_steps_unknown(self, cmp):
        assert range_intersect(Range(1, 20, 2), Range(1, 20, 3), cmp) is None

    def test_empty_operand_yields_empty(self, cmp):
        pieces = range_intersect(Range(5, 4), Range(1, 10), cmp)
        assert enum_pieces(pieces, Env()) == set()


class TestUnion:
    def test_adjacent_merge(self, cmp):
        # paper: (1:a) U (a+1:100) == (1:100)
        merged = range_union(Range(1, "a"), Range(sym("a") + 1, 100), cmp)
        assert merged == Range(1, 100)

    def test_overlapping_merge(self, cmp):
        assert range_union(Range(1, 10), Range(5, 20), cmp) == Range(1, 20)

    def test_gap_no_merge(self, cmp):
        assert range_union(Range(1, 4), Range(6, 10), cmp) is None

    def test_identical(self, cmp):
        r = Range("a", "b")
        assert range_union(r, r, cmp) == r

    def test_symbolic_unknown_gap(self, cmp):
        assert range_union(Range(1, "a"), Range("b", 100), cmp) is None

    def test_stepped_merge(self, cmp):
        assert range_union(Range(1, 9, 2), Range(11, 15, 2), cmp) == Range(
            1, 15, 2
        )

    def test_stepped_gap_no_merge(self, cmp):
        assert range_union(Range(1, 9, 2), Range(13, 15, 2), cmp) is None

    def test_contained_possibly_empty(self, cmp):
        # r2 inside r1's bounds but possibly empty: union is r1
        r1 = Range(1, 100)
        r2 = Range("a", "b")
        c = Comparer(Predicate.ge("a", 1) & Predicate.le("b", 100))
        assert range_union(r1, r2, c) == r1


class TestDifference:
    def test_concrete_middle(self, cmp):
        pieces = range_difference(Range(1, 10), Range(4, 6), cmp)
        assert enum_pieces(pieces, Env()) == {1, 2, 3, 7, 8, 9, 10}

    def test_concrete_prefix(self, cmp):
        pieces = range_difference(Range(1, 10), Range(1, 6), cmp)
        assert enum_pieces(pieces, Env()) == {7, 8, 9, 10}

    def test_concrete_all(self, cmp):
        pieces = range_difference(Range(1, 10), Range(1, 10), cmp)
        assert enum_pieces(pieces, Env()) == set()

    def test_paper_symbolic_example(self, cmp):
        # (1:100) - (a:30) = [1<a](1:a-1) U (31:100), for a in range
        pieces = range_difference(Range(1, 100), Range("a", 30), cmp)
        for a in (1, 5, 30):
            expect = set(range(1, 101)) - set(range(a, 31))
            assert enum_pieces(pieces, Env(a=a)) == expect

    def test_misaligned_grids_is_identity(self, cmp):
        pieces = range_difference(Range(1, 20, 2), Range(2, 20, 2), cmp)
        assert enum_pieces(pieces, Env()) == set(range(1, 21, 2))

    def test_incompatible_steps_unknown(self, cmp):
        assert range_difference(Range(1, 20, 2), Range(1, 20, 3), cmp) is None

    def test_stepped_difference(self, cmp):
        pieces = range_difference(Range(1, 21, 2), Range(7, 13, 2), cmp)
        assert enum_pieces(pieces, Env()) == {1, 3, 5, 15, 17, 19, 21}


class TestCovers:
    def test_concrete(self, cmp):
        assert range_covers(Range(1, 10), Range(3, 7), cmp)
        assert not range_covers(Range(3, 7), Range(1, 10), cmp)

    def test_symbolic_with_context(self):
        c = Comparer(Predicate.ge("a", 1) & Predicate.le("b", "n"))
        assert range_covers(Range(1, "n"), Range("a", "b"), c)

    def test_unit_step_covers_stepped(self, cmp):
        assert range_covers(Range(1, 100), Range(5, 50, 5), cmp)

    def test_stepped_does_not_cover_unit(self, cmp):
        assert not range_covers(Range(1, 100, 2), Range(1, 10), cmp)


class TestDividingSteps:
    """Paper 5.1 case 4: one constant step divides the other."""

    def test_intersect_residue_match(self, cmp):
        # (0:24:6) n (0:24:2): every element of the coarse range matches
        pieces = range_intersect(Range(0, 24, 6), Range(0, 24, 2), cmp)
        assert enum_pieces(pieces, Env()) == {0, 6, 12, 18, 24}

    def test_intersect_residue_offset(self, cmp):
        # (1:25:6) n (3:25:2): odd fine grid; coarse elements 1,7,13,19,25
        pieces = range_intersect(Range(1, 25, 6), Range(3, 25, 2), cmp)
        assert enum_pieces(pieces, Env()) == {7, 13, 19, 25}

    def test_intersect_no_residue(self, cmp):
        # (0:24:6) n (1:23:2): fine grid is odd, coarse even — disjoint
        pieces = range_intersect(Range(0, 24, 6), Range(1, 23, 2), cmp)
        assert enum_pieces(pieces, Env()) == set()

    def test_intersect_swapped_order(self, cmp):
        pieces = range_intersect(Range(0, 24, 2), Range(0, 24, 6), cmp)
        assert enum_pieces(pieces, Env()) == {0, 6, 12, 18, 24}

    def test_difference_coarse_minus_fine(self, cmp):
        # (0:24:6) - (0:11:2) removes 0 and 6
        pieces = range_difference(Range(0, 24, 6), Range(0, 11, 2), cmp)
        assert enum_pieces(pieces, Env()) == {12, 18, 24}

    def test_difference_no_overlap_residue(self, cmp):
        pieces = range_difference(Range(0, 24, 6), Range(1, 23, 2), cmp)
        assert enum_pieces(pieces, Env()) == {0, 6, 12, 18, 24}

    def test_fine_minus_coarse_unknown(self, cmp):
        # punching sparse holes is not representable: must give up
        assert range_difference(Range(0, 24, 2), Range(0, 24, 6), cmp) is None

    def test_symbolic_offset_unknown(self, cmp):
        assert range_intersect(Range("a", 24, 6), Range(0, 24, 2), cmp) is None
