"""Unit tests for segment propagation (SUM_segment): IF-condition guards,
branch merging, condensed cycles."""

from repro.dataflow import AnalysisOptions, SummaryAnalyzer
from repro.fortran import analyze, parse_program
from repro.hsg import build_hsg
from repro.symbolic import Env


def summary_of(source: str, options=None, unit: str = "s"):
    hsg = build_hsg(analyze(parse_program(source)))
    return SummaryAnalyzer(hsg, options).routine_summary(unit)


def sub(body: str, decls: str = "REAL a(100)") -> str:
    decl_lines = "".join(f"      {d}\n" for d in decls.split(";") if d)
    return f"      SUBROUTINE s\n{decl_lines}{body}      END\n"


class TestBranchGuards:
    def test_then_branch_guarded(self):
        src = sub(
            "      IF (p) THEN\n        a(1) = 1.0\n      ENDIF\n",
            "REAL a(100);LOGICAL p",
        )
        s = summary_of(src)
        mod_a = s.mod.for_array("a")
        assert mod_a.enumerate(Env(p=1)) == {(1,)}
        assert mod_a.enumerate(Env(p=0)) == set()

    def test_else_branch_negated_guard(self):
        src = sub(
            "      IF (p) THEN\n        a(1) = 1.0\n"
            "      ELSE\n        a(2) = 1.0\n      ENDIF\n",
            "REAL a(100);LOGICAL p",
        )
        s = summary_of(src)
        mod_a = s.mod.for_array("a")
        assert mod_a.enumerate(Env(p=1)) == {(1,)}
        assert mod_a.enumerate(Env(p=0)) == {(2,)}

    def test_both_branches_write_use_killed(self):
        src = sub(
            "      IF (p) THEN\n        a(1) = 1.0\n"
            "      ELSE\n        a(1) = 2.0\n      ENDIF\n"
            "      x = a(1)\n",
            "REAL a(100);LOGICAL p",
        )
        s = summary_of(src)
        assert s.ue.for_array("a").provably_empty()

    def test_one_branch_write_leaves_exposure(self):
        src = sub(
            "      IF (p) THEN\n        a(1) = 1.0\n      ENDIF\n"
            "      x = a(1)\n",
            "REAL a(100);LOGICAL p",
        )
        s = summary_of(src)
        ue_a = s.ue.for_array("a")
        assert ue_a.enumerate(Env(p=0)) == {(1,)}
        assert ue_a.enumerate(Env(p=1)) == set()

    def test_integer_condition_guard(self):
        src = sub(
            "      IF (k .GT. 0) THEN\n        a(1) = 1.0\n      ENDIF\n"
            "      x = a(1)\n",
            "REAL a(100);INTEGER k",
        )
        s = summary_of(src)
        ue_a = s.ue.for_array("a")
        assert ue_a.enumerate(Env(k=0)) == {(1,)}
        assert ue_a.enumerate(Env(k=3)) == set()

    def test_condition_reads_are_uses(self):
        src = sub(
            "      IF (b(2) .GT. 0.0) THEN\n        a(1) = 1.0\n      ENDIF\n",
            "REAL a(100), b(100)",
        )
        s = summary_of(src)
        assert s.ue.for_array("b").enumerate(Env()) == {(2,)}

    def test_array_condition_guard_is_delta(self):
        src = sub(
            "      IF (b(2) .GT. 0.0) THEN\n        a(1) = 1.0\n      ENDIF\n"
            "      x = a(1)\n",
            "REAL a(100), b(100)",
        )
        s = summary_of(src)
        # mod under Delta guard is inexact: the later use stays exposed
        assert not s.mod.for_array("a").is_exact()
        assert not s.ue.for_array("a").is_empty()

    def test_t2_off_guards_are_delta(self):
        src = sub(
            "      IF (p) THEN\n        a(1) = 1.0\n      ENDIF\n",
            "REAL a(100);LOGICAL p",
        )
        s = summary_of(src, AnalysisOptions(if_conditions=False))
        assert not s.mod.for_array("a").is_exact()

    def test_elseif_chain(self):
        src = sub(
            "      IF (k .EQ. 1) THEN\n        a(1) = 1.0\n"
            "      ELSEIF (k .EQ. 2) THEN\n        a(2) = 1.0\n"
            "      ELSE\n        a(3) = 1.0\n      ENDIF\n",
            "REAL a(100);INTEGER k",
        )
        s = summary_of(src)
        mod_a = s.mod.for_array("a")
        assert mod_a.enumerate(Env(k=1)) == {(1,)}
        assert mod_a.enumerate(Env(k=2)) == {(2,)}
        assert mod_a.enumerate(Env(k=7)) == {(3,)}


class TestControlFlowMerges:
    def test_goto_skip_region(self):
        src = sub(
            "      IF (p) GOTO 10\n      a(1) = 1.0\n"
            " 10   x = a(1)\n",
            "REAL a(100);LOGICAL p",
        )
        s = summary_of(src)
        ue_a = s.ue.for_array("a")
        assert ue_a.enumerate(Env(p=1)) == {(1,)}
        assert ue_a.enumerate(Env(p=0)) == set()

    def test_return_path(self):
        src = sub(
            "      IF (p) RETURN\n      a(1) = 1.0\n",
            "REAL a(100);LOGICAL p",
        )
        s = summary_of(src)
        mod_a = s.mod.for_array("a")
        assert mod_a.enumerate(Env(p=0)) == {(1,)}
        assert mod_a.enumerate(Env(p=1)) == set()


class TestCondensedCycles:
    SRC = sub(
        "      k = 1\n"
        " 10   CONTINUE\n"
        "      a(k) = 1.0\n"
        "      k = k + 1\n"
        "      IF (k .LE. n) GOTO 10\n"
        "      x = a(1)\n",
        "REAL a(100);INTEGER k, n",
    )

    def test_cycle_mod_is_omega(self):
        s = summary_of(self.SRC)
        mod_a = s.mod.for_array("a")
        assert not mod_a.is_empty()
        assert not mod_a.is_exact()

    def test_cycle_does_not_kill(self):
        s = summary_of(self.SRC)
        # the use after the cycle must stay exposed (conservative)
        assert not s.ue.for_array("a").is_empty()

    def test_cycle_scalar_write_recorded(self):
        s = summary_of(self.SRC)
        assert not s.mod.for_array("k").is_empty()
