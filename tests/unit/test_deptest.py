"""Unit tests for the conventional dependence tests (repro.deptest)."""

from repro.deptest import (
    LoopBounds,
    ScreenVerdict,
    affine_form,
    banerjee_test,
    classify_pair,
    collect_references,
    gcd_test,
    overlap_possible,
    screen_loop,
    siv_independent,
)
from repro.dataflow.convert import ConversionContext
from repro.fortran import analyze, parse_program
from repro.hsg import build_hsg
from repro.symbolic import Comparer, Predicate, sym


class TestAffineForm:
    def test_simple(self):
        f = affine_form(sym("i") * 2 + 3, ("i",))
        assert f.coeff("i") == 2
        assert f.const == 3
        assert f.symbolic_rest.is_zero()

    def test_symbolic_rest(self):
        f = affine_form(sym("i") + sym("n"), ("i",))
        assert f.coeff("i") == 1
        assert f.symbolic_rest == sym("n")

    def test_nonlinear_index_rejected(self):
        assert affine_form(sym("i") * sym("i"), ("i",)) is None
        assert affine_form(sym("i") * sym("n"), ("i",)) is None

    def test_multi_index(self):
        f = affine_form(sym("i") * 4 + sym("j"), ("i", "j"))
        assert f.coeff("i") == 4 and f.coeff("j") == 1


class TestGcd:
    def test_independent(self):
        # 2i vs 2i'+1: parity conflict
        assert gcd_test([sym("i") * 2], [sym("i") * 2 + 1], ("i",)) is False

    def test_dependent(self):
        assert gcd_test([sym("i") * 2], [sym("i") * 2 + 4], ("i",)) is True

    def test_symbolic_rest_inapplicable(self):
        assert gcd_test([sym("i") + sym("n")], [sym("i")], ("i",)) is None

    def test_matching_symbolic_rest_ok(self):
        got = gcd_test(
            [sym("i") * 2 + sym("n")], [sym("i") * 2 + sym("n") + 1], ("i",)
        )
        assert got is False

    def test_constant_subscripts(self):
        assert gcd_test([sym(3)], [sym(3)], ("i",)) is True
        assert gcd_test([sym(3)], [sym(4)], ("i",)) is False

    def test_any_dimension_refutes(self):
        subs_a = [sym("i"), sym(1)]
        subs_b = [sym("i"), sym(2)]
        assert gcd_test(subs_a, subs_b, ("i",)) is False


class TestBanerjee:
    BOUNDS = {"i": LoopBounds("i", 1, 10)}

    def test_out_of_range(self):
        # i vs i' + 20 cannot meet within 1..10
        got = banerjee_test([sym("i")], [sym("i") + 20], ("i",), self.BOUNDS)
        assert got is False

    def test_in_range(self):
        got = banerjee_test([sym("i")], [sym("i") + 3], ("i",), self.BOUNDS)
        assert got is True

    def test_missing_bounds_inapplicable(self):
        got = banerjee_test([sym("j")], [sym("j") + 20], ("j",), self.BOUNDS)
        assert got is None

    def test_negative_coefficient(self):
        # i vs 22 - i': min = 1-10+... range check
        got = banerjee_test([sym("i")], [-sym("i") + 22], ("i",), self.BOUNDS)
        assert got is False
        got = banerjee_test([sym("i")], [-sym("i") + 10], ("i",), self.BOUNDS)
        assert got is True


class TestSymbolicSiv:
    def test_same_subscript_no_cross_iteration(self, cmp):
        got = siv_independent(sym("i"), sym("i"), "i", sym(1), sym("n"), cmp)
        assert got is True

    def test_distance_one_dependent(self, cmp):
        got = siv_independent(
            sym("i"), sym("i") - 1, "i", sym(1), sym("n"), cmp
        )
        assert got is None  # span n-1 unknown; cannot exclude

    def test_distance_one_with_known_span(self, cmp):
        got = siv_independent(sym("i"), sym("i") - 1, "i", sym(1), sym(10), cmp)
        assert got is False

    def test_distance_beyond_span(self, cmp):
        got = siv_independent(
            sym("i"), sym("i") + 50, "i", sym(1), sym(10), cmp
        )
        assert got is True

    def test_non_integer_distance(self, cmp):
        got = siv_independent(
            sym("i") * 2, sym("i") * 2 + 1, "i", sym(1), sym("n"), cmp
        )
        assert got is True

    def test_invariant_same_symbol(self, cmp):
        got = siv_independent(sym("m"), sym("m"), "i", sym(1), sym("n"), cmp)
        assert got is None or got is False  # same cell each iteration

    def test_symbolic_equal_rests(self, cmp):
        got = siv_independent(
            sym("i") + sym("n"), sym("i") + sym("n"), "i", sym(1), sym("u"), cmp
        )
        assert got is True


class TestOverlap:
    def test_disjoint(self, cmp):
        assert (
            overlap_possible(sym(1), sym(5), sym(7), sym(9), cmp) is False
        )

    def test_overlapping(self, cmp):
        assert overlap_possible(sym(1), sym(5), sym(3), sym(9), cmp) is True

    def test_symbolic_with_context(self):
        c = Comparer(Predicate.lt("u1", "l2"))
        assert (
            overlap_possible(sym("l1"), sym("u1"), sym("l2"), sym("u2"), c)
            is False
        )


class TestScreening:
    def _screen(self, body, decls="REAL a(100), b(100)"):
        decl_lines = "".join(f"      {d}\n" for d in decls.split(";") if d)
        src = f"      SUBROUTINE s\n{decl_lines}{body}      END\n"
        hsg = build_hsg(analyze(parse_program(src)))
        (unit, loop), *_ = hsg.all_loops()
        ctx = ConversionContext(hsg.analyzed.table(unit))
        return screen_loop(loop, ctx, Comparer())

    def test_embarrassingly_parallel(self):
        rep = self._screen(
            "      DO i = 1, n\n        a(i) = b(i)\n      ENDDO\n"
        )
        assert rep.verdict is ScreenVerdict.INDEPENDENT

    def test_recurrence_flagged(self):
        rep = self._screen(
            "      DO i = 2, n\n        a(i) = a(i-1)\n      ENDDO\n"
        )
        assert rep.verdict is ScreenVerdict.POSSIBLE_DEPENDENCE

    def test_scalar_write_flagged(self):
        rep = self._screen(
            "      DO i = 1, n\n        x = b(i)\n        a(i) = x\n      ENDDO\n",
            "REAL a(100), b(100);REAL x",
        )
        assert rep.verdict is ScreenVerdict.POSSIBLE_DEPENDENCE
        assert "x" in rep.scalars_written

    def test_strided_disjoint_independent(self):
        rep = self._screen(
            "      DO i = 1, n\n        a(2*i) = b(i)\n"
            "        x = a(2*i+1)\n      ENDDO\n",
            "REAL a(300), b(100);REAL x",
        )
        # the a-pairs pass the GCD test; the scalar x still flags it
        blocking = [p for p in rep.blocking_pairs() if p.src.array == "a"]
        assert not blocking

    def test_classify_pair(self):
        refs = None
        src = (
            "      SUBROUTINE s\n      REAL a(100)\n"
            "      DO i = 1, n\n        a(i) = a(5)\n      ENDDO\n      END\n"
        )
        hsg = build_hsg(analyze(parse_program(src)))
        (unit, loop), = hsg.all_loops()
        ctx = ConversionContext(hsg.analyzed.table(unit)).with_index("i")
        refs = collect_references(loop, ctx)
        writes = [r for r in refs if r.is_write]
        reads = [r for r in refs if not r.is_write]
        assert classify_pair(writes[0], reads[0], ("i",)) == "siv"
        assert classify_pair(reads[0], reads[0], ("i",)) == "ziv"
