"""Unit tests for HSG construction and condensation."""

import pytest

from repro.errors import HSGError
from repro.fortran import analyze, parse_program
from repro.hsg import (
    BasicBlockNode,
    CallNode,
    CondensedNode,
    FlowGraph,
    IfConditionNode,
    LoopNode,
    build_hsg,
    condense_cycles,
)


def hsg_of(source: str):
    return build_hsg(analyze(parse_program(source)))


def nodes_of_type(graph, cls):
    return [n for n in graph.nodes if isinstance(n, cls)]


class TestBasicStructure:
    def test_straight_line_single_block(self):
        hsg = hsg_of("      SUBROUTINE s\n      x = 1\n      y = 2\n      END\n")
        g = hsg.graph("s")
        blocks = nodes_of_type(g, BasicBlockNode)
        assert len(blocks) == 1
        assert len(blocks[0].stmts) == 2

    def test_if_condition_is_own_node(self):
        src = (
            "      SUBROUTINE s\n      IF (p) THEN\n      x = 1\n"
            "      ELSE\n      x = 2\n      ENDIF\n      END\n"
        )
        g = hsg_of(src).graph("s")
        conds = nodes_of_type(g, IfConditionNode)
        assert len(conds) == 1
        labels = sorted(
            l for _, l in g.succs(conds[0]) if l is not None
        )
        assert labels == [False, True]

    def test_logical_if_two_edges(self):
        src = "      SUBROUTINE s\n      IF (p) x = 1\n      y = 2\n      END\n"
        g = hsg_of(src).graph("s")
        (cond,) = nodes_of_type(g, IfConditionNode)
        assert len(g.succs(cond)) == 2

    def test_loop_node_with_body_subgraph(self):
        src = (
            "      SUBROUTINE s\n      DO i = 1, n\n      a(i) = 0\n"
            "      ENDDO\n      END\n"
        )
        g = hsg_of(src).graph("s")
        (loop,) = nodes_of_type(g, LoopNode)
        assert loop.var == "i"
        assert isinstance(loop.body, FlowGraph)
        assert loop.body.is_dag()

    def test_call_node(self):
        src = "      SUBROUTINE s\n      CALL f(x)\n      END\n"
        g = hsg_of(src).graph("s")
        (call,) = nodes_of_type(g, CallNode)
        assert call.callee == "f"

    def test_graph_is_dag(self):
        src = (
            "      SUBROUTINE s\n      DO i = 1, n\n      IF (p) x = 1\n"
            "      ENDDO\n      y = 2\n      END\n"
        )
        assert hsg_of(src).graph("s").is_dag()

    def test_all_loops_enumeration(self):
        src = (
            "      SUBROUTINE s\n      DO i = 1, n\n      DO j = 1, n\n"
            "      a(i) = j\n      ENDDO\n      ENDDO\n      END\n"
        )
        hsg = hsg_of(src)
        assert [l.var for _, l in hsg.all_loops()] == ["i", "j"]


class TestGotos:
    def test_forward_goto(self):
        src = (
            "      SUBROUTINE s\n      GOTO 10\n      x = 1\n"
            " 10   y = 2\n      END\n"
        )
        g = hsg_of(src).graph("s")
        # x = 1 is unreachable and pruned
        blocks = nodes_of_type(g, BasicBlockNode)
        texts = [str(s) for b in blocks for s in b.stmts]
        assert "y = 2" in texts
        assert "x = 1" not in texts

    def test_conditional_goto_keeps_both_paths(self):
        src = (
            "      SUBROUTINE s\n      IF (p) GOTO 10\n      x = 1\n"
            " 10   y = 2\n      END\n"
        )
        g = hsg_of(src).graph("s")
        texts = [
            str(s)
            for b in nodes_of_type(g, BasicBlockNode)
            for s in b.stmts
        ]
        assert "x = 1" in texts and "y = 2" in texts

    def test_unresolved_goto_rejected_at_unit_level(self):
        with pytest.raises(HSGError):
            hsg_of("      SUBROUTINE s\n      GOTO 99\n      x = 1\n      END\n")

    def test_premature_loop_exit_flagged(self):
        src = (
            "      SUBROUTINE s\n      DO i = 1, n\n"
            "      IF (p) GOTO 99\n      a(i) = 0\n      ENDDO\n"
            " 99   CONTINUE\n      END\n"
        )
        hsg = hsg_of(src)
        (loop,) = [l for _, l in hsg.all_loops()]
        assert loop.has_premature_exit

    def test_return_inside_loop_flags_premature(self):
        src = (
            "      SUBROUTINE s\n      DO i = 1, n\n"
            "      IF (p) RETURN\n      a(i) = 0\n      ENDDO\n      END\n"
        )
        (loop,) = [l for _, l in hsg_of(src).all_loops()]
        assert loop.has_premature_exit

    def test_goto_to_loop_bottom_is_not_premature(self):
        src = (
            "      SUBROUTINE s\n      DO k = 2, 5\n"
            "      IF (b(k) .GT. 0) GOTO 1\n      a(k) = 0\n"
            " 1    ENDDO\n      END\n"
        )
        (loop,) = [l for _, l in hsg_of(src).all_loops()]
        assert not loop.has_premature_exit


class TestCondensation:
    def test_backward_goto_condensed(self):
        src = (
            "      SUBROUTINE s\n      k = 1\n"
            " 10   CONTINUE\n      a(k) = 1\n      k = k + 1\n"
            "      IF (k .LE. n) GOTO 10\n      END\n"
        )
        g = hsg_of(src).graph("s")
        assert g.is_dag()
        assert nodes_of_type(g, CondensedNode)

    def test_condense_cycles_count(self):
        # hand-build a two-node cycle
        g = FlowGraph()
        a = BasicBlockNode([])
        b = BasicBlockNode([])
        g.add_edge(g.entry, a)
        g.add_edge(a, b)
        g.add_edge(b, a)
        g.add_edge(b, g.exit)
        assert not g.is_dag()
        count = condense_cycles(g)
        assert count == 1
        assert g.is_dag()

    def test_self_loop_condensed(self):
        g = FlowGraph()
        a = BasicBlockNode([])
        g.add_edge(g.entry, a)
        g.add_edge(a, a)
        g.add_edge(a, g.exit)
        assert condense_cycles(g) == 1
        assert g.is_dag()

    def test_acyclic_untouched(self):
        g = FlowGraph()
        a = BasicBlockNode([])
        g.add_edge(g.entry, a)
        g.add_edge(a, g.exit)
        assert condense_cycles(g) == 0
        assert len(g) == 3


class TestFlowGraph:
    def test_topological_orders_entry_first(self):
        src = "      SUBROUTINE s\n      x = 1\n      END\n"
        g = hsg_of(src).graph("s")
        order = g.topological()
        assert order[0] is g.entry
        assert order[-1] is g.exit

    def test_duplicate_label_rejected(self):
        with pytest.raises(HSGError):
            hsg_of(
                "      SUBROUTINE s\n 10   x = 1\n 10   y = 2\n      END\n"
            )

    def test_dump_is_text(self):
        g = hsg_of("      SUBROUTINE s\n      x = 1\n      END\n").graph("s")
        assert "BB#" in g.dump()
