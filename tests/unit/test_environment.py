"""Unit tests for evaluation environments and the error hierarchy."""

import pytest

from repro import errors
from repro.symbolic import Env, Predicate, all_envs, sym


class TestEnv:
    def test_mapping_protocol(self):
        env = Env(a=1, b=2)
        assert env["a"] == 1
        assert len(env) == 2
        assert set(env) == {"a", "b"}

    def test_values_coerced_to_int(self):
        env = Env(a=True, b=3)
        assert env["a"] == 1

    def test_extend_is_persistent(self):
        env = Env(a=1)
        env2 = env.extend(b=2)
        assert "b" not in env
        assert env2["b"] == 2 and env2["a"] == 1

    def test_extend_overrides(self):
        assert Env(a=1).extend(a=5)["a"] == 5

    def test_eval_expr(self):
        assert Env(x=3).eval_expr(sym("x") * 2 + 1) == 7

    def test_eval_expr_nonint_raises(self):
        from repro.errors import SymbolicError

        with pytest.raises(SymbolicError):
            Env(x=3).eval_expr(sym("x").div_const(2))

    def test_eval_pred(self):
        env = Env(i=2, n=5)
        assert env.eval_pred(Predicate.le("i", "n"))

    def test_repr(self):
        assert "a=1" in repr(Env(a=1))


class TestAllEnvs:
    def test_exhaustive_enumeration(self):
        envs = list(all_envs(["a", "b"], 0, 1))
        assert len(envs) == 4
        pairs = {(e["a"], e["b"]) for e in envs}
        assert pairs == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_empty_names(self):
        envs = list(all_envs([], 0, 5))
        assert len(envs) == 1


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            errors.SourceError,
            errors.LexError,
            errors.ParseError,
            errors.SemanticError,
            errors.CallGraphError,
            errors.SymbolicError,
            errors.RegionError,
            errors.HSGError,
            errors.AnalysisError,
        ):
            assert issubclass(cls, errors.ReproError)

    def test_lex_error_position(self):
        err = errors.LexError("bad", line=3, col=7)
        assert err.line == 3 and err.col == 7
        assert "line 3" in str(err)

    def test_parse_error_line(self):
        err = errors.ParseError("oops", line=12)
        assert "line 12" in str(err)

    def test_callgraph_is_semantic(self):
        assert issubclass(errors.CallGraphError, errors.SemanticError)


class TestKernelRegistry:
    def test_lookup(self):
        from repro.kernels import get_kernel, kernels_for_program

        k = get_kernel("trfd", "olda", 100)
        assert k.program == "TRFD"
        assert k.loop_id == "olda/100"
        assert k.full_id == "TRFD:olda/100"
        assert len(kernels_for_program("ocean")) == 3

    def test_missing_raises(self):
        from repro.kernels import get_kernel

        with pytest.raises(KeyError):
            get_kernel("NOPE", "x", 1)

    def test_registry_complete(self):
        from repro.kernels import KERNELS

        assert len(KERNELS) == 12
        programs = {k.program for k in KERNELS}
        assert programs == {"TRACK", "MDG", "TRFD", "OCEAN", "ARC2D"}
