"""Unit tests for downward-exposed use sets (repro.dataflow.downward)."""

from repro.parallelize.loop_analysis import (
    dependence_report_with_de,
    variable_dependences,
)
from repro.symbolic import Env
from tests.conftest import compile_source


def routine_de(source: str, unit: str = "s"):
    hsg, analyzer = compile_source(source)
    return analyzer.routine_de(unit)


def sub(body: str, decls: str = "REAL a(100), b(100)") -> str:
    decl_lines = "".join(f"      {d}\n" for d in decls.split(";") if d)
    return f"      SUBROUTINE s\n{decl_lines}{body}      END\n"


class TestStraightLine:
    def test_plain_read_exposed(self):
        de = routine_de(sub("      x = a(3)\n"))
        assert de.for_array("a").enumerate(Env()) == {(3,)}

    def test_read_then_overwrite_not_exposed(self):
        de = routine_de(sub("      x = a(3)\n      a(3) = 1.0\n"))
        assert de.for_array("a").is_empty()

    def test_overwrite_then_read_exposed(self):
        # the mirror of the UE case
        de = routine_de(sub("      a(3) = 1.0\n      x = a(3)\n"))
        assert de.for_array("a").enumerate(Env()) == {(3,)}

    def test_own_statement_write_kills_read(self):
        de = routine_de(sub("      a(3) = a(3) + 1.0\n"))
        assert de.for_array("a").is_empty()

    def test_partial_overwrite(self):
        src = sub(
            "      DO j = 1, 10\n        x = a(j) * 2.0\n      ENDDO\n"
            "      DO j = 1, 4\n        a(j) = 0.0\n      ENDDO\n"
        )
        de = routine_de(src)
        assert de.for_array("a").enumerate(Env()) == {
            (j,) for j in range(5, 11)
        }

    def test_scalar_redefinition_invalidates_value(self):
        # the read a(k) with old k is NOT killed by a later write a(k)
        # with the new k
        src = sub(
            "      x = a(k)\n      k = k + 5\n      a(k) = 1.0\n",
            "REAL a(100);INTEGER k",
        )
        de = routine_de(src)
        assert not de.for_array("a").is_empty()


class TestBranches:
    def test_kill_only_on_one_branch(self):
        src = sub(
            "      x = a(1)\n"
            "      IF (p) THEN\n        a(1) = 0.0\n      ENDIF\n",
            "REAL a(100);LOGICAL p",
        )
        de = routine_de(src)
        de_a = de.for_array("a")
        assert de_a.enumerate(Env(p=0)) == {(1,)}
        assert de_a.enumerate(Env(p=1)) == set()

    def test_read_in_branch_guarded(self):
        src = sub(
            "      IF (p) THEN\n        x = a(2)\n      ENDIF\n",
            "REAL a(100);LOGICAL p",
        )
        de_a = routine_de(src).for_array("a")
        assert de_a.enumerate(Env(p=1)) == {(2,)}
        assert de_a.enumerate(Env(p=0)) == set()


class TestLoopsAndCalls:
    def test_loop_de_excludes_later_iterations(self):
        # iteration i reads a(i); iterations > i write a(i+1): the read of
        # a(i) is never overwritten afterwards except by the NEXT write at
        # a(i) — which never happens — so all reads stay exposed
        src = sub("      DO i = 1, n\n        a(i) = b(i)\n      ENDDO\n")
        de = routine_de(src)
        assert de.for_array("b").enumerate(Env(n=3)) == {(1,), (2,), (3,)}

    def test_loop_de_killed_by_later_iterations(self):
        # iteration i reads a(i+1); iteration i+1 overwrites a(i+1):
        # only the LAST iteration's read survives
        src = sub("      DO i = 1, n\n        a(i) = a(i+1)\n      ENDDO\n")
        de_a = routine_de(src).for_array("a")
        assert de_a.enumerate(Env(n=5)) == {(6,)}

    def test_call_kill(self):
        src = (
            "      SUBROUTINE s\n      REAL a(100)\n      INTEGER n\n"
            "      REAL x\n"
            "      n = 6\n      x = a(3)\n      CALL fill(a, n)\n      END\n"
            "      SUBROUTINE fill(w, m)\n      REAL w(100)\n"
            "      INTEGER m, j\n"
            "      DO j = 1, m\n        w(j) = 1.0\n      ENDDO\n      END\n"
        )
        de_a = routine_de(src).for_array("a")
        assert de_a.enumerate(Env()) == set()

    def test_call_de_mapped(self):
        src = (
            "      SUBROUTINE s\n      REAL a(100)\n      INTEGER n\n"
            "      n = 4\n      CALL reader(a, n)\n      END\n"
            "      SUBROUTINE reader(w, m)\n      REAL w(100)\n"
            "      INTEGER m, j\n      REAL y\n"
            "      DO j = 1, m\n        y = w(j)\n      ENDDO\n      END\n"
        )
        de_a = routine_de(src).for_array("a")
        assert de_a.enumerate(Env()) == {(1,), (2,), (3,), (4,)}


class TestRefinedAntiDependence:
    def test_ue_reports_anti_de_refutes_it(self):
        # iteration i reads a(i+1) (upward exposed) and then overwrites it
        # in the same iteration; iteration i+1 also writes a(i+1) through
        # its a(i') reference.  The UE-based anti test fires (exposed read
        # meets MOD_{>i}), but the same-iteration overwrite precedes any
        # later iteration's write, so no anti dependence actually crosses
        # iterations: the DE-based test (the paper's footnote) sees that.
        src = sub(
            "      DO i = 1, n\n"
            "        x = a(i+1)\n"
            "        a(i+1) = x + 1.0\n"
            "        a(i) = 1.0\n"
            "      ENDDO\n"
        )
        hsg, analyzer = compile_source(src)
        unit, loop = next(iter(hsg.all_loops()))
        record = analyzer.loop_record(unit, loop)
        de_i, _ = analyzer.loop_de_sets(loop, analyzer.context_for(unit))
        ue_report = variable_dependences("a", record, analyzer.comparer)
        de_report = dependence_report_with_de(
            "a", record, de_i, analyzer.comparer
        )
        # UE-based: the exposed read a(i+1) meets MOD_{>i} = a(i+2:n+1)...
        # it actually meets a(i+1) written by iteration i+1 -> anti fires
        assert ue_report.anti
        # DE-based: the same-iteration overwrite removes the exposure
        assert not de_report.anti
        # flow and output are unaffected by the refinement
        assert de_report.flow == ue_report.flow
        assert de_report.output == ue_report.output
