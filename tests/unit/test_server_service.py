"""Unit tests for the daemon's synchronous core (repro.server.service)."""

from __future__ import annotations

import pytest

from repro.driver.panorama import Panorama
from repro.engine.telemetry import loop_report_row
from repro.kernels.figure1 import FIGURE_1A, FIGURE_1B, FIGURE_1C
from repro.perf import profiler
from repro.server.service import AnalysisService, RequestError, ServerConfig


def make_service(**kwargs) -> AnalysisService:
    return AnalysisService(ServerConfig(**kwargs))


def expected_rows(source: str):
    return [loop_report_row(r) for r in Panorama().compile(source).loops]


class TestRequestShape:
    def test_missing_source_is_400(self):
        service = make_service()
        with pytest.raises(RequestError) as err:
            service.analyze({})
        assert err.value.status == 400
        assert err.value.kind == "request"

    def test_non_dict_body_is_400(self):
        with pytest.raises(RequestError) as err:
            make_service().analyze(["not", "an", "object"])
        assert err.value.status == 400

    def test_empty_source_is_400(self):
        with pytest.raises(RequestError) as err:
            make_service().analyze({"source": "   "})
        assert err.value.status == 400

    def test_bad_sizes_is_400(self):
        with pytest.raises(RequestError) as err:
            make_service().analyze({"source": FIGURE_1A, "sizes": {"n": "big"}})
        assert err.value.status == 400

    def test_unknown_option_is_400(self):
        with pytest.raises(RequestError) as err:
            make_service().analyze(
                {"source": FIGURE_1A, "options": {"turbo": True}}
            )
        assert err.value.status == 400
        assert "turbo" in err.value.message

    def test_bad_ablate_is_400(self):
        with pytest.raises(RequestError) as err:
            make_service().build_options({"options": {"ablate": ["T9"]}})
        assert err.value.status == 400

    def test_negative_budget_is_400(self):
        with pytest.raises(RequestError) as err:
            make_service().build_options({"options": {"budget_ms": -5}})
        assert err.value.status == 400


class TestOptionClamping:
    def test_defaults_inherit_server_ceilings(self):
        service = make_service(budget_ms=250.0, budget_steps=10_000)
        options = service.build_options({})
        assert options.budget_ms == 250.0
        assert options.budget_steps == 10_000

    def test_request_may_tighten(self):
        service = make_service(budget_steps=10_000)
        options = service.build_options(
            {"options": {"budget_steps": 100}}
        )
        assert options.budget_steps == 100

    def test_request_cannot_loosen(self):
        service = make_service(budget_ms=100.0, budget_steps=1_000)
        options = service.build_options(
            {"options": {"budget_ms": 60_000, "budget_steps": 10**9}}
        )
        assert options.budget_ms == 100.0
        assert options.budget_steps == 1_000

    def test_ablations_map_to_techniques(self):
        options = make_service().build_options(
            {"options": {"ablate": ["T1", "T3"], "no_fm": True}}
        )
        assert not options.symbolic
        assert options.if_conditions
        assert not options.interprocedural
        assert not options.use_fm


class TestAnalyze:
    def test_verdicts_match_in_process_pipeline(self):
        payload = make_service().analyze(
            {"source": FIGURE_1A, "name": "fig1a.f"}
        )
        assert payload["name"] == "fig1a.f"
        assert payload["loops"] == expected_rows(FIGURE_1A)
        assert payload["degraded"] is False

    def test_request_block_reports_per_request_counters(self):
        # drop global cache *contents* so the first request is cold; the
        # probes are delta-scoped, so surviving counters don't matter
        profiler.clear_caches()
        service = make_service()
        first = service.analyze({"source": FIGURE_1A})
        second = service.analyze({"source": FIGURE_1A})
        assert first["request"]["elapsed_ms"] > 0
        # identical resubmission: every routine summary is served from
        # the resident cache, and the symbolic memo hit rate rises
        assert second["request"]["summary_cache"]["hits"] > 0
        assert second["request"]["summary_cache"]["misses"] == 0
        assert second["request"]["hit_rate"] > first["request"]["hit_rate"]
        assert second["loops"] == first["loops"]

    def test_malformed_source_is_422_typed(self):
        with pytest.raises(RequestError) as err:
            make_service().analyze({"source": "NOT FORTRAN ]["})
        assert err.value.status == 422
        assert err.value.kind in ("source", "analysis")

    def test_failure_does_not_poison_resident_caches(self):
        service = make_service()
        baseline = service.analyze({"source": FIGURE_1A})
        with pytest.raises(RequestError):
            service.analyze({"source": "       DO BROKEN\n"})
        again = service.analyze({"source": FIGURE_1A})
        assert again["loops"] == baseline["loops"]

    def test_budget_degrades_in_band_not_an_error(self):
        payload = make_service().analyze(
            {"source": FIGURE_1A, "options": {"budget_steps": 1}}
        )
        assert payload["degraded"] is True
        assert payload["request"]["degraded_loops"] > 0
        degraded_rows = [row for row in payload["loops"] if row["degraded"]]
        assert degraded_rows
        # conservative, never optimistic: a degraded loop is not parallel
        assert all(not row["parallel"] for row in degraded_rows)
        assert any(row["status"] == "unknown (budget)" for row in degraded_rows)

    def test_audit_rides_in_payload_when_requested(self):
        payload = make_service().analyze(
            {"source": FIGURE_1A, "audit": True}
        )
        assert "audit" in payload
        assert payload["audit"]["counts"]["loops_audited"] >= 1


class TestStreamEvents:
    def test_event_order_and_identity(self):
        events = []
        payload = make_service().analyze_stream(
            {"source": FIGURE_1B, "name": "fig1b.f"}, events.append
        )
        assert payload is not None
        kinds = [e["event"] for e in events]
        assert kinds[0] == "routine_started"
        assert kinds[-1] == "done"
        verdicts = [e for e in events if e["event"] == "loop_verdict"]
        assert len(verdicts) == len(payload["loops"])
        # each routine announced before its first verdict
        seen: set[str] = set()
        current = None
        for event in events:
            if event["event"] == "routine_started":
                current = event["routine"]
                assert current not in seen
                seen.add(current)
            elif event["event"] == "loop_verdict":
                assert event["routine"] == current

    def test_error_event_closes_stream(self):
        events = []
        payload = make_service().analyze_stream(
            {"source": "NOT FORTRAN"}, events.append
        )
        assert payload is None
        assert events[-1]["event"] == "error"
        assert events[-1]["status"] == 422

    def test_done_event_carries_request_stats(self):
        events = []
        make_service().analyze_stream({"source": FIGURE_1A}, events.append)
        done = events[-1]
        assert done["event"] == "done"
        assert done["loops"] == len(
            [e for e in events if e["event"] == "loop_verdict"]
        )
        assert "hit_rate" in done["request"]


class TestWatchSessions:
    def test_unknown_session_is_404(self):
        with pytest.raises(RequestError) as err:
            make_service().watch_submit("w99", {"source": FIGURE_1A})
        assert err.value.status == 404

    def test_edit_reports_only_invalidated_routines(self):
        service = make_service()
        sid = service.watch_open({"name": "fig.f"})["session"]
        rev1 = service.watch_submit(sid, {"source": FIGURE_1C})
        assert rev1["revision"] == 1
        assert rev1["report"]["changed"]  # first revision: everything
        assert not rev1["report"]["invalidated"]
        assert len(rev1["loops"]) == rev1["total_loops"]

        # edit only subroutine `in`: it changes, its caller `main` is
        # invalidated through the callee fingerprint, `out` is reused
        edited = FIGURE_1C.replace("B(J) = x", "B(J) = x * 1.0")
        assert edited != FIGURE_1C
        rev2 = service.watch_submit(sid, {"source": edited})
        assert rev2["revision"] == 2
        report = rev2["report"]
        assert len(report["changed"]) == 1
        assert report["invalidated"]
        assert report["reused"]
        affected = set(report["changed"]) | set(report["invalidated"])
        assert set(report["reused"]).isdisjoint(affected)
        # the response carries only the loops the edit may have moved
        assert {row["routine"] for row in rev2["loops"]} <= affected
        assert len(rev2["loops"]) < rev2["total_loops"]

    def test_close_then_submit_is_404(self):
        service = make_service()
        sid = service.watch_open({})["session"]
        closed = service.watch_close(sid)
        assert closed["closed"] is True
        with pytest.raises(RequestError) as err:
            service.watch_submit(sid, {"source": FIGURE_1A})
        assert err.value.status == 404

    def test_watch_error_does_not_advance_revision(self):
        service = make_service()
        sid = service.watch_open({})["session"]
        service.watch_submit(sid, {"source": FIGURE_1A})
        with pytest.raises(RequestError):
            service.watch_submit(sid, {"source": "BAD ]["})
        rev = service.watch_submit(sid, {"source": FIGURE_1A})
        assert rev["revision"] == 2
        # unchanged resubmission after the failure: everything reused
        assert not rev["report"]["changed"]
        assert rev["report"]["reused"]


class TestIntrospection:
    def test_health_shape(self):
        health = make_service().health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0

    def test_stats_rolls_up_requests(self):
        service = make_service()
        service.analyze({"source": FIGURE_1A})
        service.note_request("analyze")
        service.note_response(200)
        stats = service.stats()
        assert stats["requests"]["analyze"] == 1
        assert stats["responses"]["200"] == 1
        assert stats["telemetry"]["files"] == 1
        assert stats["telemetry"]["loops"] == len(expected_rows(FIGURE_1A))
        assert stats["summary_cache"]["stores"] > 0
        assert stats["server"]["watch_sessions"] == 0
