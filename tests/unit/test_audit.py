"""Unit tests for the static race auditor (N-version re-check of
parallel verdicts)."""

import pytest

from repro.audit import audit_compilation, classify_votes
from repro.dataflow import AnalysisOptions
from repro.driver.panorama import Panorama
from repro.engine.telemetry import loop_report_row, result_to_dict
from repro.resilience import faults, parse_plan


@pytest.fixture(autouse=True)
def clean_plan(monkeypatch):
    """Never leak an installed fault plan (or the env var) between tests."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


def compile_source(source: str):
    # frontier off: these fixtures plant misreports on loops that must
    # stay serial, but FLOW_DEP is a genuine prefix scan the frontier
    # pass would (correctly) upgrade, leaving nothing to misreport
    panorama = Panorama(
        AnalysisOptions(frontier=False), run_machine_model=False
    )
    return panorama.compile(source)


def audit_source(source: str, name: str = "t.f"):
    result = compile_source(source)
    return result, audit_compilation(result, name, source=source)


FLOW_DEP = """\
      subroutine sweep(a, b)
      real a(200), b(200)
      do 10 i = 2, 100
         a(i) = a(i-1) + b(i)
   10 continue
      end
"""

FLOW_DEP_SYMBOLIC = """\
      subroutine sweep(a, b, n)
      integer n
      real a(200), b(200)
      do 10 i = 2, n
         a(i) = a(i-1) + b(i)
   10 continue
      end
"""

FLOW_DEP_GUARDED = """\
      subroutine sweep(a, b)
      real a(200), b(200)
      do 10 i = 2, 100
         if (b(i) .gt. 0.0) then
            a(i) = a(i-1) + b(i)
         endif
   10 continue
      end
"""

SCALAR_RACE = """\
      subroutine carry(b, c)
      real b(100), c(100), t
      t = 0.0
      do 10 i = 1, 50
         c(i) = t
         t = b(i)
   10 continue
      end
"""


class TestCleanLoops:
    def test_independent_loop_audits_clean(self):
        result, report = audit_source(
            """\
      subroutine axpy(a, b)
      real a(100), b(100)
      do 10 i = 1, 100
         a(i) = a(i) + b(i)
   10 continue
      end
"""
        )
        assert result.loops[0].parallel
        assert report.loops_audited == 1
        assert report.pairs_checked >= 1
        assert report.findings == []
        assert report.clean()

    def test_privatized_scalar_is_excluded(self):
        result, report = audit_source(
            """\
      subroutine priv(a, b)
      real a(100), b(100), t
      do 10 i = 1, 100
         t = b(i) * 2.0
         a(i) = t + 1.0
   10 continue
      end
"""
        )
        (loop,) = result.loops
        assert loop.parallel and "t" in loop.verdict.privatized
        assert report.findings == []

    def test_serial_loop_is_not_audited(self):
        result, report = audit_source(FLOW_DEP)
        assert not result.loops[0].parallel
        assert report.loops_audited == 0
        assert report.findings == []


class TestMisreportedLoops:
    """Force the classifier to lie via fault injection; the auditor must
    catch the planted race."""

    def test_confirmed_flow_dependence(self):
        faults.install(parse_plan("classifier.misreport:sweep/10"))
        result, report = audit_source(FLOW_DEP)
        assert result.loops[0].parallel  # the (injected) lie
        assert len(report.confirmed()) == 1
        finding = report.confirmed()[0]
        assert finding.variable == "a"
        assert finding.votes["distance"] == "dependent"
        assert not report.clean()
        codes = [d.code for d in report.diagnostics()]
        assert "PAN101" in codes

    def test_symbolic_bounds_degrade_to_undecided(self):
        faults.install(parse_plan("classifier.misreport:sweep/10"))
        _, report = audit_source(FLOW_DEP_SYMBOLIC)
        assert report.confirmed() == []
        assert len(report.undecided()) >= 1
        assert report.clean()  # notes are not errors
        assert "PAN102" in [d.code for d in report.diagnostics()]

    def test_control_guards_downgrade_to_guarded(self):
        faults.install(parse_plan("classifier.misreport:sweep/10"))
        _, report = audit_source(FLOW_DEP_GUARDED)
        assert report.confirmed() == []
        assert "PAN103" in [d.code for d in report.diagnostics()]

    def test_scalar_output_race(self):
        faults.install(parse_plan("classifier.misreport:carry/10"))
        result, report = audit_source(SCALAR_RACE)
        assert result.loops[0].parallel
        scalar = [f for f in report.findings if f.variable == "t"]
        assert scalar and scalar[0].kind == "confirmed"
        assert "second iteration provably exists" in scalar[0].detail

    def test_diagnostic_carries_span_and_votes(self):
        faults.install(parse_plan("classifier.misreport:sweep/10"))
        _, report = audit_source(FLOW_DEP)
        (diag,) = [d for d in report.diagnostics() if d.code == "PAN101"]
        assert diag.span is not None and diag.span.lineno == 3
        assert "do 10 i = 2, 100" in diag.span.snippet
        assert diag.data["votes"]["distance"] == "dependent"


class TestVoteSynthesis:
    def test_oracle_conflict(self):
        kind, detail = classify_votes(
            {"gcd": "independent", "distance": "dependent"}
        )
        assert kind == "oracle-conflict"
        assert "gcd" in detail and "distance" in detail

    def test_dependent(self):
        kind, _ = classify_votes({"gcd": "possible", "distance": "dependent"})
        assert kind == "dependent"

    def test_independent(self):
        kind, _ = classify_votes({"gcd": "independent", "banerjee": "possible"})
        assert kind == "independent"

    def test_undecided(self):
        kind, _ = classify_votes({"gcd": "possible", "banerjee": "unknown"})
        assert kind == "undecided"


class TestVerdictConflicts:
    """Satellite: privatization failures surface their offending
    intersection in describe() and the JSON row."""

    def test_conflict_reaches_describe_and_row(self):
        result = compile_source(SCALAR_RACE)
        (report,) = result.loops
        assert not report.parallel
        conflicts = report.verdict.conflicts()
        assert "t" in conflicts and conflicts["t"]
        assert "offending intersection" in report.verdict.describe()
        assert loop_report_row(report)["conflicts"] == conflicts

    def test_clean_loop_has_no_conflicts(self):
        result = compile_source(FLOW_DEP)
        row = loop_report_row(result.loops[0])
        assert row["conflicts"] == {}


class TestPayloads:
    def test_result_to_dict_embeds_audit(self):
        result, report = audit_source(FLOW_DEP)
        data = result_to_dict(result, name="t.f", audit=report)
        assert data["audit"]["clean"] is True
        assert data["audit"]["counts"]["loops_audited"] == 0

    def test_counts_roll_up(self):
        faults.install(parse_plan("classifier.misreport:sweep/10"))
        _, report = audit_source(FLOW_DEP)
        counts = report.counts()
        assert counts["confirmed"] == 1
        assert counts["loops_audited"] == 1
        assert counts["pairs_checked"] >= 1
