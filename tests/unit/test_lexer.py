"""Unit tests for the tokenizer."""

import pytest

from repro.errors import LexError
from repro.fortran import tokenize
from repro.fortran.tokens import TokKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasics:
    def test_names_and_ints(self):
        assert kinds("abc 123") == [TokKind.NAME, TokKind.INT]

    def test_underscore_names(self):
        assert texts("my_var") == ["my_var"]

    def test_operators(self):
        assert kinds("( ) , : = + - * /") == [
            TokKind.LPAREN, TokKind.RPAREN, TokKind.COMMA, TokKind.COLON,
            TokKind.ASSIGN, TokKind.PLUS, TokKind.MINUS, TokKind.STAR,
            TokKind.SLASH,
        ]

    def test_power_vs_star(self):
        assert kinds("a ** b * c") == [
            TokKind.NAME, TokKind.POWER, TokKind.NAME, TokKind.STAR,
            TokKind.NAME,
        ]

    def test_concat(self):
        assert kinds("a // b") == [TokKind.NAME, TokKind.CONCAT, TokKind.NAME]

    def test_eof_token_present(self):
        assert tokenize("x")[-1].kind is TokKind.EOF

    def test_unknown_char_raises(self):
        with pytest.raises(LexError):
            tokenize("a ; b")


class TestDottedOperators:
    def test_relational(self):
        assert kinds("a .eq. b .ne. c") == [
            TokKind.NAME, TokKind.EQ, TokKind.NAME, TokKind.NE, TokKind.NAME,
        ]

    def test_logical(self):
        assert kinds(".not. p .and. q .or. r") == [
            TokKind.NOT, TokKind.NAME, TokKind.AND, TokKind.NAME,
            TokKind.OR, TokKind.NAME,
        ]

    def test_logical_constants(self):
        assert kinds(".true. .false.") == [TokKind.TRUE, TokKind.FALSE]

    def test_int_dot_operator_disambiguation(self):
        # "1.eq.2" must lex as INT EQ INT, not as reals
        assert kinds("1.eq.2") == [TokKind.INT, TokKind.EQ, TokKind.INT]

    def test_bare_dot_rejected(self):
        with pytest.raises(LexError):
            tokenize("a . b")


class TestFreeFormRelops:
    def test_two_char(self):
        assert kinds("a == b /= c <= d >= e") == [
            TokKind.NAME, TokKind.EQ, TokKind.NAME, TokKind.NE,
            TokKind.NAME, TokKind.LE, TokKind.NAME, TokKind.GE, TokKind.NAME,
        ]

    def test_one_char(self):
        assert kinds("a < b > c") == [
            TokKind.NAME, TokKind.LT, TokKind.NAME, TokKind.GT, TokKind.NAME,
        ]


class TestNumbers:
    def test_real_with_fraction(self):
        toks = tokenize("1.5")
        assert toks[0].kind is TokKind.REAL and toks[0].text == "1.5"

    def test_real_trailing_dot(self):
        assert tokenize("2.")[0].kind is TokKind.REAL

    def test_real_leading_dot(self):
        assert tokenize(".5")[0].kind is TokKind.REAL

    def test_exponent_forms(self):
        for text in ("1e5", "1.5e-3", "2d0", "1.0e+10"):
            assert tokenize(text)[0].kind is TokKind.REAL, text

    def test_int_then_name_exponentless(self):
        toks = tokenize("1edge")
        # '1e' not followed by digits: INT then NAME
        assert [t.kind for t in toks][:2] == [TokKind.INT, TokKind.NAME]


class TestStrings:
    def test_single_quotes(self):
        tok = tokenize("'hello'")[0]
        assert tok.kind is TokKind.STRING and tok.text == "hello"

    def test_escaped_quote(self):
        assert tokenize("'don''t'")[0].text == "don't"

    def test_double_quotes(self):
        assert tokenize('"hi"')[0].text == "hi"

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")
