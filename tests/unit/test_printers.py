"""Unit tests for the AST unparser, including parse round-trips."""

from repro.fortran import (
    analyze,
    parse_program,
    parse_unit,
    unparse_program,
    unparse_stmt,
    unparse_unit,
)
from repro.kernels import KERNELS
from repro.kernels.figure1 import FIGURE_1A, FIGURE_1B, FIGURE_1C


def roundtrip(source: str) -> None:
    """unparse(parse(source)) must parse to an equivalent program."""
    program = parse_program(source)
    text = unparse_program(program)
    again = parse_program(text)
    assert [u.name for u in again.units] == [u.name for u in program.units]
    # the second round must be a fixed point (canonical form)
    assert unparse_program(again) == text


class TestRoundTrips:
    def test_figure1_examples(self):
        for src in (FIGURE_1A, FIGURE_1B, FIGURE_1C):
            roundtrip(src)

    def test_all_kernels(self):
        seen = set()
        for kernel in KERNELS:
            if kernel.source in seen:
                continue
            seen.add(kernel.source)
            roundtrip(kernel.source)

    def test_declarations_roundtrip(self):
        roundtrip(
            "      SUBROUTINE s(a)\n"
            "      REAL a(10, 0:5)\n"
            "      INTEGER k\n"
            "      DIMENSION w(5)\n"
            "      PARAMETER (n = 3)\n"
            "      COMMON /blk/ c1, c2\n"
            "      a(1, 0) = n\n"
            "      w(1) = c1\n"
            "      END\n"
        )

    def test_control_flow_roundtrip(self):
        roundtrip(
            "      SUBROUTINE s\n"
            "      IF (p) THEN\n        x = 1\n"
            "      ELSEIF (q) THEN\n        x = 2\n"
            "      ELSE\n        x = 3\n      ENDIF\n"
            "      DO i = 1, 10, 2\n        IF (x .GT. 0) GOTO 5\n"
            "        y = i\n 5    ENDDO\n"
            "      RETURN\n      END\n"
        )


class TestStatementForms:
    def test_goto_and_labels(self):
        unit = parse_unit(
            "      SUBROUTINE s\n      GOTO 10\n 10   CONTINUE\n      END\n"
        )
        lines = [l for st in unit.body for l in unparse_stmt(st)]
        assert any("GOTO 10" in l for l in lines)
        assert any("10 CONTINUE" in l for l in lines)

    def test_io_statement(self):
        unit = parse_unit(
            "      SUBROUTINE s\n      WRITE (6, *) x, y\n      END\n"
        )
        (line,) = unparse_stmt(unit.body[0])
        assert line.strip().startswith("WRITE")

    def test_unit_header_forms(self):
        text = unparse_unit(
            parse_unit("      PROGRAM main\n      x = 1\n      END\n")
        )
        assert text.startswith("PROGRAM main")
        text = unparse_unit(
            parse_unit(
                "      INTEGER FUNCTION f(k)\n      f = k\n      END\n"
            )
        )
        assert "FUNCTION f(k)" in text

    def test_analysis_invariant_under_roundtrip(self):
        """The analysis result must be identical on unparsed source."""
        from repro import Panorama

        original = Panorama(run_machine_model=False).compile(FIGURE_1B)
        text = unparse_program(parse_program(FIGURE_1B))
        again = Panorama(run_machine_model=False).compile(text)
        assert [r.status for r in again.loops] == [
            r.status for r in original.loops
        ]
