"""Unit tests for analysis budgets and graceful degradation.

The resilience contract (docs/robustness.md): budget exhaustion never
crashes or hangs a compile — the affected loops degrade to the paper's
conservative whole-array summary and an explicit "unknown (budget)"
verdict, while everything else stays exact.
"""

import pytest

from repro.dataflow import AnalysisOptions
from repro.driver.panorama import Panorama
from repro.errors import (
    BudgetExceeded,
    ParseError,
    SemanticError,
    classify_exception,
)
from repro.parallelize import LoopStatus
from repro.resilience import (
    AnalysisBudget,
    ItemTimeout,
    WorkerCrash,
    active_budget,
    budget_scope,
    charge,
)

LOOP_SRC = (
    "      SUBROUTINE s(a, b, n)\n"
    "      REAL a(100), b(50)\n"
    "      INTEGER n, i\n"
    "      DO 10 i = 1, n\n"
    "        a(i) = b(i) + 1.0\n"
    "   10 CONTINUE\n"
    "      END\n"
)


class TestAnalysisBudget:
    def test_step_budget_raises_with_reason(self):
        budget = AnalysisBudget(max_steps=3)
        budget.charge(3)
        with pytest.raises(BudgetExceeded) as exc:
            budget.charge(1)
        assert exc.value.reason == "steps"

    def test_exhausted_budget_stays_exhausted(self):
        budget = AnalysisBudget(max_steps=0)
        for _ in range(3):
            with pytest.raises(BudgetExceeded):
                budget.charge(1)

    def test_deadline_budget_raises_deadline(self):
        budget = AnalysisBudget(budget_ms=0.0)
        with pytest.raises(BudgetExceeded) as exc:
            # the deadline is only checked every N steps (amortization)
            for _ in range(10_000):
                budget.charge(1)
        assert exc.value.reason == "deadline"

    def test_unlimited_budget_never_raises(self):
        budget = AnalysisBudget()
        budget.charge(100_000)

    def test_charge_is_noop_without_active_budget(self):
        assert active_budget() is None
        charge(1_000_000)  # nothing installed: must not raise

    def test_budget_scope_installs_and_restores(self):
        budget = AnalysisBudget(max_steps=10)
        with budget_scope(budget):
            assert active_budget() is budget
            charge(5)
        assert active_budget() is None
        assert budget.steps == 5

    def test_budget_scope_nests(self):
        outer, inner = AnalysisBudget(), AnalysisBudget()
        with budget_scope(outer):
            with budget_scope(inner):
                assert active_budget() is inner
            assert active_budget() is outer

    def test_budget_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with budget_scope(AnalysisBudget()):
                raise RuntimeError("boom")
        assert active_budget() is None

    def test_none_scope_is_transparent(self):
        with budget_scope(None):
            assert active_budget() is None


class TestBudgetFallback:
    def test_exhausted_budget_degrades_to_unknown(self):
        result = Panorama(
            AnalysisOptions(budget_steps=0), run_machine_model=False
        ).compile(LOOP_SRC)
        (report,) = result.loops
        assert report.status is LoopStatus.UNKNOWN
        assert report.status.value == "unknown (budget)"
        assert report.degraded == "steps"
        assert not report.parallel
        assert result.degraded_loops() == [report]

    def test_conservative_record_covers_declared_bounds(self):
        from tests.conftest import compile_source

        hsg, analyzer = compile_source(LOOP_SRC)
        ((unit, loop),) = list(hsg.all_loops())
        with budget_scope(AnalysisBudget(max_steps=0)):
            record = analyzer.loop_record(unit, loop)
        assert record.degraded == "steps"
        # every referenced array appears whole in MOD and UE, inexact
        for gars in (record.mod, record.ue, record.mod_i, record.ue_i):
            names = {g.array for g in gars}
            assert {"a", "b"} <= names
            assert all(not g.exact for g in gars)
        # declared-bounds shape: a(100) spans 1..100, b(50) spans 1..50
        (a_gar,) = record.mod.for_array("a")
        assert "1:100" in str(a_gar.region)
        (b_gar,) = record.mod.for_array("b")
        assert "1:50" in str(b_gar.region)

    def test_degradation_is_counted(self):
        result = Panorama(
            AnalysisOptions(budget_steps=0), run_machine_model=False
        ).compile(LOOP_SRC)
        assert result.analyzer.stats.budget_degradations >= 1

    def test_classifier_marks_degraded_record_unknown(self):
        from repro.parallelize import classify_loop
        from tests.conftest import compile_source

        hsg, analyzer = compile_source(LOOP_SRC)
        ((unit, loop),) = list(hsg.all_loops())
        with budget_scope(AnalysisBudget(max_steps=0)):
            verdict = classify_loop(analyzer, unit, loop)
        assert verdict.status is LoopStatus.UNKNOWN
        assert not verdict.parallel
        assert any("budget" in r for r in verdict.serial_reasons)
        assert verdict.record is not None
        assert verdict.record.degraded == "steps"

    def test_no_budget_is_bit_identical_to_default(self):
        from repro.engine.telemetry import loop_report_row

        plain = Panorama(run_machine_model=False).compile(LOOP_SRC)
        unlimited = Panorama(
            AnalysisOptions(), run_machine_model=False
        ).compile(LOOP_SRC)
        assert [loop_report_row(r) for r in plain.loops] == [
            loop_report_row(r) for r in unlimited.loops
        ]
        assert plain.loops[0].status is not LoopStatus.UNKNOWN
        assert plain.analyzer.stats.budget_degradations == 0

    def test_generous_budget_does_not_degrade(self):
        result = Panorama(
            AnalysisOptions(budget_steps=10_000_000), run_machine_model=False
        ).compile(LOOP_SRC)
        assert result.degraded_loops() == []
        assert result.loops[0].status is not LoopStatus.UNKNOWN

    def test_cli_exit_code_3_on_degradation(self, tmp_path, capsys):
        from repro.driver.cli import main

        src = tmp_path / "loop.f"
        src.write_text(LOOP_SRC)
        assert main([str(src), "--budget-steps", "0", "--no-machine"]) == 3
        assert main([str(src), "--no-machine"]) == 0


class TestClassifyException:
    def test_taxonomy(self):
        assert classify_exception(BudgetExceeded()) == "budget"
        assert classify_exception(ItemTimeout("t")) == "timeout"
        assert classify_exception(WorkerCrash("w")) == "worker-crash"
        assert classify_exception(ParseError("bad")) == "source"
        assert classify_exception(SemanticError("bad")) == "analysis"
        assert classify_exception(MemoryError()) == "oom"
        assert classify_exception(RuntimeError("bug")) == "internal"
        assert classify_exception(ValueError("bug")) == "internal"

    def test_exit_code_table(self):
        """The CLI-wide exit taxonomy (docs/robustness.md), pinned: these
        values are contract with CI scripts and fleet supervisors."""
        from repro import errors

        assert errors.EXIT_OK == 0
        assert errors.EXIT_HARD_FAILURE == 1
        assert errors.EXIT_USAGE == 2
        assert errors.EXIT_DEGRADED == 3
        assert errors.EXIT_AUDIT_FAILED == 4
        assert errors.EXIT_INTERRUPTED == 5
        codes = [
            errors.EXIT_OK,
            errors.EXIT_HARD_FAILURE,
            errors.EXIT_USAGE,
            errors.EXIT_DEGRADED,
            errors.EXIT_AUDIT_FAILED,
            errors.EXIT_INTERRUPTED,
        ]
        assert codes == sorted(set(codes))  # distinct, stable ordering
