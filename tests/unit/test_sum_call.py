"""Unit tests for call summaries and formal→actual mapping (SUM_call)."""

from repro.dataflow import AnalysisOptions, SummaryAnalyzer
from repro.fortran import analyze, parse_program
from repro.hsg import build_hsg
from repro.symbolic import Env


def summary_of(source: str, unit: str = "s", options=None):
    hsg = build_hsg(analyze(parse_program(source)))
    return SummaryAnalyzer(hsg, options).routine_summary(unit)


FILL = (
    "      SUBROUTINE fill(w, m)\n"
    "      REAL w(100)\n"
    "      INTEGER m, j\n"
    "      DO j = 1, m\n"
    "        w(j) = 1.0\n"
    "      ENDDO\n"
    "      END\n"
)


class TestArrayMapping:
    def test_whole_array_actual_renamed(self):
        src = (
            "      SUBROUTINE s\n      REAL a(100)\n      INTEGER n\n"
            "      n = 7\n      CALL fill(a, n)\n      END\n" + FILL
        )
        s = summary_of(src)
        assert s.mod.for_array("a").enumerate(Env()) == {
            (k,) for k in range(1, 8)
        }
        assert s.ue.for_array("w").is_empty()  # no callee names leak

    def test_scalar_actual_value_substituted(self):
        src = (
            "      SUBROUTINE s(k)\n      REAL a(100)\n      INTEGER k\n"
            "      CALL fill(a, k + 1)\n      END\n" + FILL
        )
        s = summary_of(src)
        assert s.mod.for_array("a").enumerate(Env(k=3)) == {
            (j,) for j in range(1, 5)
        }

    def test_callee_kill_visible_at_caller(self):
        src = (
            "      SUBROUTINE s\n      REAL a(100)\n      INTEGER n, j\n"
            "      REAL x\n"
            "      n = 5\n      CALL fill(a, n)\n"
            "      DO j = 1, n\n        x = a(j)\n      ENDDO\n      END\n"
            + FILL
        )
        s = summary_of(src)
        assert s.ue.for_array("a").provably_empty()

    def test_array_element_actual_degrades_to_omega(self):
        src = (
            "      SUBROUTINE s\n      REAL a(100)\n      INTEGER n\n"
            "      n = 5\n      CALL fill(a(10), n)\n      END\n" + FILL
        )
        s = summary_of(src)
        mod_a = s.mod.for_array("a")
        assert not mod_a.is_empty()
        assert not mod_a.is_exact()

    def test_rank_mismatch_degrades_to_omega(self):
        src = (
            "      SUBROUTINE s\n      REAL a(10, 10)\n      INTEGER n\n"
            "      n = 5\n      CALL fill(a, n)\n      END\n" + FILL
        )
        s = summary_of(src)
        assert not s.mod.for_array("a").is_exact()


class TestScalarEffects:
    WRITER = (
        "      SUBROUTINE setk(k)\n"
        "      INTEGER k\n"
        "      k = 42\n"
        "      END\n"
    )

    def test_scalar_out_param_mod_mapped(self):
        src = (
            "      SUBROUTINE s\n      INTEGER v\n"
            "      CALL setk(v)\n      x = v\n      END\n" + self.WRITER
        )
        s = summary_of(src)
        assert not s.mod.for_array("v").is_empty()
        assert s.ue.for_array("v").is_empty()  # killed by the call's write

    def test_call_invalidates_scalar_value_below(self):
        src = (
            "      SUBROUTINE s\n      REAL a(100)\n      INTEGER v\n"
            "      v = 1\n      CALL setk(v)\n      a(v) = 1.0\n      END\n"
            + self.WRITER
        )
        s = summary_of(src)
        # a's subscript must be the call's result, not 1
        mod_a = s.mod.for_array("a")
        assert all("@" in str(g.region) for g in mod_a)

    def test_expression_actual_reads_components(self):
        reader = (
            "      SUBROUTINE use(k)\n      INTEGER k\n      m = k\n      END\n"
        )
        src = (
            "      SUBROUTINE s\n      INTEGER v\n"
            "      CALL use(v + 1)\n      END\n" + reader
        )
        s = summary_of(src)
        assert not s.ue.for_array("v").is_empty()
        # writing the formal has no caller-visible effect
        assert s.mod.for_array("v").is_empty()


class TestCommonsAndLocals:
    def test_common_names_pass_through(self):
        src = (
            "      SUBROUTINE s\n      COMMON /blk/ w(50)\n      INTEGER n\n"
            "      n = 3\n      CALL cfill(n)\n      END\n"
            "      SUBROUTINE cfill(m)\n      COMMON /blk/ w(50)\n"
            "      INTEGER m, j\n"
            "      DO j = 1, m\n        w(j) = 1.0\n      ENDDO\n      END\n"
        )
        s = summary_of(src)
        assert s.mod.for_array("w").enumerate(Env()) == {(1,), (2,), (3,)}

    def test_callee_local_storage_dropped(self):
        src = (
            "      SUBROUTINE s\n      CALL worker\n      END\n"
            "      SUBROUTINE worker\n      REAL t(10)\n      INTEGER j\n"
            "      DO j = 1, 10\n        t(j) = 1.0\n      ENDDO\n      END\n"
        )
        s = summary_of(src)
        assert s.mod.for_array("t").is_empty()


class TestOpaqueCalls:
    def test_external_call_is_omega(self):
        src = (
            "      SUBROUTINE s\n      REAL a(100)\n"
            "      CALL extern(a)\n      END\n"
        )
        s = summary_of(src)
        assert not s.mod.for_array("a").is_exact()
        assert not s.ue.for_array("a").is_empty()

    def test_t3_off_known_call_is_omega(self):
        src = (
            "      SUBROUTINE s\n      REAL a(100)\n      INTEGER n\n"
            "      n = 5\n      CALL fill(a, n)\n      END\n" + FILL
        )
        s = summary_of(src, options=AnalysisOptions(interprocedural=False))
        assert not s.mod.for_array("a").is_exact()
