"""Unit tests for induction-variable handling (paper section 5.2) and the
iteration-varying scalar soundness treatment."""

from repro.parallelize import LoopStatus
from repro.symbolic import Env
from repro.validate import validate_loop
from tests.conftest import loop_record, loop_verdicts


def sub(body: str, decls: str = "REAL a(100)") -> str:
    decl_lines = "".join(f"      {d}\n" for d in decls.split(";") if d)
    return f"      SUBROUTINE s\n{decl_lines}{body}      END\n"


IV_LOOP = sub(
    "      k = 0\n"
    "      DO i = 1, n\n"
    "        k = k + 1\n"
    "        a(k) = 1.0\n"
    "      ENDDO\n",
    "REAL a(100);INTEGER k, n, i",
)


class TestClosedForms:
    def test_basic_induction_exact_mod(self):
        rec = loop_record(IV_LOOP, "s", "i")
        # k's entry value is 0 inside the routine, but the loop record is
        # in loop-entry terms: a(i + k)
        assert rec.mod_i.for_array("a").enumerate(Env(i=4, k=0, n=9)) == {(4,)}
        assert rec.mod.for_array("a").enumerate(Env(k=0, n=5)) == {
            (j,) for j in range(1, 6)
        }

    def test_mod_lt_tracks_induction(self):
        rec = loop_record(IV_LOOP, "s", "i")
        got = rec.mod_lt.for_array("a").enumerate(Env(i=4, k=0, n=9))
        assert got == {(1,), (2,), (3,)}

    def test_decrementing_induction(self):
        src = sub(
            "      k = 50\n"
            "      DO i = 1, n\n"
            "        k = k - 2\n"
            "        a(k) = 1.0\n"
            "      ENDDO\n",
            "REAL a(100);INTEGER k, n, i",
        )
        rec = loop_record(src, "s", "i")
        got = rec.mod.for_array("a").enumerate(Env(k=50, n=3))
        assert got == {(48,), (46,), (44,)}

    def test_update_after_use(self):
        # the use sees the pre-update value
        src = sub(
            "      k = 0\n"
            "      DO i = 1, n\n"
            "        a(k + 1) = 1.0\n"
            "        k = k + 1\n"
            "      ENDDO\n",
            "REAL a(100);INTEGER k, n, i",
        )
        rec = loop_record(src, "s", "i")
        assert rec.mod.for_array("a").enumerate(Env(k=0, n=4)) == {
            (j,) for j in range(1, 5)
        }

    def test_symbolic_invariant_stride(self):
        # with an unknown-sign symbolic stride the expansion must stay
        # conservative (the progression direction is unknowable)
        src = sub(
            "      k = 0\n"
            "      DO i = 1, n\n"
            "        k = k + m\n"
            "        a(k) = 1.0\n"
            "      ENDDO\n",
            "REAL a(100);INTEGER k, n, m, i",
        )
        rec = loop_record(src, "s", "i")
        mod_a = rec.mod.for_array("a")
        assert not mod_a.is_empty()
        assert not mod_a.is_exact()

    def test_known_positive_symbolic_stride_exact(self):
        # a PARAMETER stride stays symbolic-free after inlining; use an
        # explicit positive constant through a parameter instead
        src = (
            "      SUBROUTINE s(a, n)\n"
            "      REAL a(100)\n"
            "      INTEGER n, i, k\n"
            "      PARAMETER (m = 4)\n"
            "      k = 0\n"
            "      DO i = 1, n\n"
            "        k = k + m\n"
            "        a(k) = 1.0\n"
            "      ENDDO\n"
            "      END\n"
        )
        rec = loop_record(src, "s", "i")
        assert rec.mod.for_array("a").enumerate(Env(k=0, n=3)) == {
            (4,), (8,), (12,)
        }


class TestConservativeFallbacks:
    def test_conditional_update_goes_omega(self):
        src = sub(
            "      k = 0\n"
            "      DO i = 1, n\n"
            "        IF (p) k = k + 1\n"
            "        a(k + 1) = 1.0\n"
            "      ENDDO\n",
            "REAL a(100);INTEGER k, n, i;LOGICAL p",
        )
        rec = loop_record(src, "s", "i")
        assert not rec.mod.for_array("a").is_exact()

    def test_multiple_updates_go_omega(self):
        src = sub(
            "      k = 0\n"
            "      DO i = 1, n\n"
            "        k = k + 1\n"
            "        a(k) = 1.0\n"
            "        k = k + 1\n"
            "      ENDDO\n",
            "REAL a(100);INTEGER k, n, i",
        )
        rec = loop_record(src, "s", "i")
        assert not rec.mod.for_array("a").is_exact()

    def test_non_additive_update_goes_omega(self):
        src = sub(
            "      k = 1\n"
            "      DO i = 1, n\n"
            "        k = k * 2\n"
            "        a(k) = 1.0\n"
            "      ENDDO\n",
            "REAL a(100);INTEGER k, n, i",
        )
        rec = loop_record(src, "s", "i")
        assert not rec.mod.for_array("a").is_exact()

    def test_varying_stride_goes_omega(self):
        src = sub(
            "      k = 0\n"
            "      m = 1\n"
            "      DO i = 1, n\n"
            "        k = k + m\n"
            "        m = m + 1\n"
            "        a(k) = 1.0\n"
            "      ENDDO\n",
            "REAL a(100);INTEGER k, n, m, i",
        )
        rec = loop_record(src, "s", "i")
        assert not rec.mod.for_array("a").is_exact()


class TestSoundnessRegression:
    def test_false_privatization_fixed(self):
        # the validator-found exploit: iteration i writes a(i+2) and reads
        # a(i-2) through the induction variable — a real carried flow dep
        src = sub(
            "      k = 0\n"
            "      DO i = 4, n\n"
            "        k = k + 1\n"
            "        a(k + 6) = 1.0 * i\n"
            "        x = a(k + 2)\n"
            "      ENDDO\n",
            "REAL a(100);INTEGER k, n, i;REAL x",
        )
        report = validate_loop(src, "s", "i", args={"a": [0.0] * 40, "n": 12})
        assert report.ok, report.violations
        verdicts = loop_verdicts(src)
        assert verdicts[("s", "i")].status is LoopStatus.SERIAL

    def test_induction_kernel_validates(self):
        report = validate_loop(
            IV_LOOP, "s", "i", args={"n": 6}, env={"n": 6, "k": 0}
        )
        assert report.ok, report.violations

    def test_induction_work_loop_parallelizes(self):
        # classic pointer-bump fill/consume: exact closed forms let the
        # dependence tests prove independence across iterations
        src = sub(
            "      k = 0\n"
            "      DO i = 1, n\n"
            "        k = k + 2\n"
            "        a(k) = 1.0\n"
            "        a(k - 1) = 2.0\n"
            "      ENDDO\n",
            "REAL a(100);INTEGER k, n, i",
        )
        verdicts = loop_verdicts(src)
        assert verdicts[("s", "i")].parallel
