"""Unit tests for the structured-diagnostics layer (codes, renderers,
SARIF export)."""

import json

import pytest

from repro.diagnostics import (
    RULES,
    Diagnostic,
    Severity,
    SourceSpan,
    diagnostic_from_dict,
    diagnostic_to_dict,
    render_diagnostic,
    render_text,
    resolve_span,
    sarif_log,
    sort_key,
    write_sarif,
)

SOURCE = """\
      subroutine s(a, n)
      integer n
      real a(100)
      do 10 i = 1, n
         a(i) = a(i) + 1.0
   10 continue
      end
"""


class TestRules:
    def test_registry_is_consistent(self):
        for code, rule in RULES.items():
            assert rule.code == code
            assert code.startswith("PAN")
            assert rule.name and rule.short
            assert isinstance(rule.severity, Severity)

    def test_expected_codes_present(self):
        assert {
            "PAN101", "PAN102", "PAN103", "PAN104",
            "PAN201", "PAN202", "PAN203",
            "PAN301", "PAN302",
        } <= set(RULES)

    def test_severity_defaults(self):
        assert RULES["PAN101"].severity is Severity.ERROR
        assert RULES["PAN102"].severity is Severity.NOTE
        assert RULES["PAN103"].severity is Severity.WARNING
        assert RULES["PAN201"].severity is Severity.WARNING
        assert RULES["PAN301"].severity is Severity.ERROR
        assert RULES["PAN302"].severity is Severity.ERROR


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="PAN999", message="nope")

    def test_level_defaults_to_rule_severity(self):
        assert Diagnostic("PAN101", "m").level is Severity.ERROR
        assert Diagnostic("PAN102", "m").level is Severity.NOTE

    def test_explicit_severity_wins(self):
        diag = Diagnostic("PAN102", "m", severity=Severity.ERROR)
        assert diag.level is Severity.ERROR

    def test_sort_key_orders_by_severity(self):
        diags = [
            Diagnostic("PAN102", "note"),
            Diagnostic("PAN101", "error"),
            Diagnostic("PAN201", "warning"),
        ]
        ordered = sorted(diags, key=sort_key)
        assert [d.code for d in ordered] == ["PAN101", "PAN201", "PAN102"]


class TestSpans:
    def test_resolve_span_snippets_the_logical_line(self):
        span = resolve_span("s.f", 4, SOURCE)
        assert span.file == "s.f"
        assert span.lineno == 4
        assert "do 10 i = 1, n" in span.snippet

    def test_resolve_span_without_source(self):
        span = resolve_span("s.f", 4, None)
        assert span == SourceSpan(file="s.f", lineno=4)


class TestRender:
    def test_text_format(self):
        diag = Diagnostic(
            "PAN101", "boom", span=resolve_span("s.f", 4, SOURCE)
        )
        text = render_diagnostic(diag)
        assert text.startswith("s.f:4: error: boom [PAN101]")
        assert "do 10 i = 1, n" in text

    def test_render_text_sorts_by_severity(self):
        text = render_text(
            [Diagnostic("PAN102", "later"), Diagnostic("PAN101", "first")]
        )
        assert text.index("[PAN101]") < text.index("[PAN102]")

    def test_dict_roundtrip(self):
        diag = Diagnostic(
            "PAN103",
            "guarded",
            span=resolve_span("s.f", 5, SOURCE),
            data={"loop": "s/10", "votes": {"gcd": "possible"}},
        )
        back = diagnostic_from_dict(diagnostic_to_dict(diag))
        assert back.code == diag.code
        assert back.message == diag.message
        assert back.level is diag.level
        assert back.span == diag.span
        assert back.data == diag.data


class TestSarif:
    def diags(self):
        return [
            Diagnostic("PAN101", "race", span=resolve_span("s.f", 4, SOURCE)),
            Diagnostic("PAN102", "unknown", span=resolve_span("s.f", 5, SOURCE)),
            Diagnostic("PAN301", "algebra", data={"op": "union"}),
        ]

    def test_log_shape(self):
        log = sarif_log(self.diags())
        assert log["version"] == "2.1.0"
        assert "sarif-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"]
        assert driver["informationUri"]
        rules = driver["rules"]
        ids = [r["id"] for r in rules]
        assert ids == sorted(ids) and len(ids) == len(set(ids))
        # only the codes actually used are declared
        assert set(ids) == {"PAN101", "PAN102", "PAN301"}
        for res in run["results"]:
            assert res["level"] in ("error", "warning", "note")
            assert res["message"]["text"]
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]

    def test_locations_shape(self):
        log = sarif_log(self.diags())
        located = [
            r for r in log["runs"][0]["results"] if r.get("locations")
        ]
        assert located
        for res in located:
            phys = res["locations"][0]["physicalLocation"]
            assert phys["artifactLocation"]["uri"] == "s.f"
            assert phys["region"]["startLine"] >= 1

    def test_write_sarif(self, tmp_path):
        path = tmp_path / "out.sarif"
        write_sarif(self.diags(), path)
        data = json.loads(path.read_text())
        assert data["version"] == "2.1.0"
        assert len(data["runs"][0]["results"]) == 3
