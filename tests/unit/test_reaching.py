"""Unit tests for scalar reaching-definition chains."""

from repro.dataflow.reaching import DefKind, reaching_for_unit
from repro.hsg.nodes import BasicBlockNode, LoopNode
from repro.symbolic import sym
from tests.conftest import compile_source


def sub(body: str, decls: str = "REAL a(100)") -> str:
    decl_lines = "".join(f"      {d}\n" for d in decls.split(";") if d)
    return f"      SUBROUTINE s\n{decl_lines}{body}      END\n"


def reaching_at_exit(source: str):
    hsg, analyzer = compile_source(source)
    rd = reaching_for_unit(analyzer, "s")
    return rd, rd.graph.exit


class TestStraightLine:
    def test_single_definition_reaches(self):
        rd, exit_node = reaching_at_exit(
            sub("      k = 5\n", "INTEGER k")
        )
        (d,) = rd.reaching(exit_node, "k")
        assert d.kind is DefKind.ASSIGN
        assert d.value == sym(5)

    def test_later_definition_kills_earlier(self):
        rd, exit_node = reaching_at_exit(
            sub("      k = 5\n      k = 9\n", "INTEGER k")
        )
        (d,) = rd.reaching(exit_node, "k")
        assert d.value == sym(9)

    def test_undefined_is_entry(self):
        rd, exit_node = reaching_at_exit(sub("      x = k\n", "INTEGER k, x"))
        (d,) = rd.reaching(exit_node, "k")
        assert d.kind is DefKind.ENTRY

    def test_unique_value(self):
        rd, exit_node = reaching_at_exit(
            sub("      k = n + 1\n", "INTEGER k, n")
        )
        assert rd.unique_value(exit_node, "k") == sym("n") + 1


class TestBranches:
    SRC = sub(
        "      IF (p) THEN\n        k = 1\n      ELSE\n        k = 2\n"
        "      ENDIF\n      x = k\n",
        "INTEGER k, x;LOGICAL p",
    )

    def test_both_branch_definitions_reach(self):
        rd, exit_node = reaching_at_exit(self.SRC)
        defs = rd.reaching(exit_node, "k")
        assert {d.value for d in defs} == {sym(1), sym(2)}

    def test_no_unique_value_at_join(self):
        rd, exit_node = reaching_at_exit(self.SRC)
        assert rd.unique_value(exit_node, "k") is None

    def test_one_sided_definition_merges_with_entry(self):
        rd, exit_node = reaching_at_exit(
            sub(
                "      IF (p) THEN\n        k = 1\n      ENDIF\n      x = k\n",
                "INTEGER k, x;LOGICAL p",
            )
        )
        defs = rd.reaching(exit_node, "k")
        # the untouched path keeps the (implicit) entry value; only the
        # assign's def is *recorded*, so a merge must not be unique
        assert any(d.kind is DefKind.ASSIGN for d in defs)


class TestCompoundNodes:
    def test_loop_index_def(self):
        src = sub(
            "      DO i = 1, n\n        a(i) = 0.0\n      ENDDO\n      x = i\n",
            "REAL a(100);INTEGER i, n;REAL x",
        )
        rd, exit_node = reaching_at_exit(src)
        kinds = {d.kind for d in rd.reaching(exit_node, "i")}
        assert DefKind.LOOP_INDEX in kinds

    def test_loop_body_def_does_not_kill(self):
        # a zero-trip loop leaves the pre-loop definition intact
        src = sub(
            "      k = 7\n"
            "      DO i = 1, n\n        k = i\n      ENDDO\n",
            "INTEGER k, i, n",
        )
        rd, exit_node = reaching_at_exit(src)
        values = {d.value for d in rd.reaching(exit_node, "k")}
        assert sym(7) in values
        kinds = {d.kind for d in rd.reaching(exit_node, "k")}
        assert DefKind.LOOP_BODY in kinds

    def test_call_defines_scalar_actuals(self):
        src = (
            "      SUBROUTINE s\n      INTEGER v\n      v = 1\n"
            "      CALL setk(v)\n      END\n"
            "      SUBROUTINE setk(k)\n      INTEGER k\n      k = 42\n"
            "      END\n"
        )
        hsg, analyzer = compile_source(src)
        rd = reaching_for_unit(analyzer, "s")
        kinds = {d.kind for d in rd.reaching(rd.graph.exit, "v")}
        assert DefKind.CALL in kinds

    def test_read_statement_defines(self):
        rd, exit_node = reaching_at_exit(
            sub("      k = 1\n      READ (5, *) k\n", "INTEGER k")
        )
        (d,) = rd.reaching(exit_node, "k")
        assert d.kind is DefKind.READ

    def test_condensed_cycle_defs(self):
        src = sub(
            "      k = 1\n"
            " 10   k = k + 1\n"
            "      IF (k .LE. n) GOTO 10\n",
            "INTEGER k, n",
        )
        rd, exit_node = reaching_at_exit(src)
        kinds = {d.kind for d in rd.reaching(exit_node, "k")}
        assert DefKind.CYCLE in kinds
