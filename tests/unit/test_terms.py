"""Unit tests for monomials (repro.symbolic.terms)."""

import pytest

from repro.symbolic.terms import Monomial


class TestConstruction:
    def test_unit_is_empty(self):
        assert Monomial.unit().is_unit()
        assert Monomial(()).is_unit()
        assert Monomial.unit() == Monomial(())

    def test_var(self):
        m = Monomial.var("x")
        assert m.factors == (("x", 1),)
        assert not m.is_unit()

    def test_var_power(self):
        m = Monomial.var("x", 3)
        assert m.power_of("x") == 3

    def test_merges_repeated_factors(self):
        m = Monomial((("x", 1), ("x", 2)))
        assert m.power_of("x") == 3

    def test_zero_power_dropped(self):
        assert Monomial((("x", 0),)).is_unit()

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Monomial((("x", -1),))

    def test_factors_sorted(self):
        m = Monomial((("z", 1), ("a", 1)))
        assert [n for n, _ in m.factors] == ["a", "z"]


class TestStructure:
    def test_degree(self):
        assert Monomial.unit().degree() == 0
        assert Monomial.var("x").degree() == 1
        assert Monomial((("x", 2), ("y", 1))).degree() == 3

    def test_variables(self):
        m = Monomial((("x", 1), ("y", 2)))
        assert m.variables() == frozenset({"x", "y"})
        assert Monomial.unit().variables() == frozenset()

    def test_contains(self):
        m = Monomial.var("x")
        assert m.contains("x")
        assert not m.contains("y")

    def test_power_of_absent(self):
        assert Monomial.var("x").power_of("y") == 0

    def test_is_linear_var(self):
        assert Monomial.var("x").is_linear_var()
        assert not Monomial.var("x", 2).is_linear_var()
        assert not Monomial((("x", 1), ("y", 1))).is_linear_var()
        assert not Monomial.unit().is_linear_var()


class TestAlgebra:
    def test_mul(self):
        p = Monomial.var("x") * Monomial.var("y")
        assert p.variables() == frozenset({"x", "y"})
        assert p.degree() == 2

    def test_mul_same_var(self):
        p = Monomial.var("x") * Monomial.var("x")
        assert p.power_of("x") == 2

    def test_mul_unit_identity(self):
        m = Monomial.var("x", 2)
        assert m * Monomial.unit() == m
        assert Monomial.unit() * m == m

    def test_divide_by_var(self):
        m = Monomial((("x", 2), ("y", 1)))
        assert m.divide_by_var("x") == Monomial((("x", 1), ("y", 1)))
        assert m.divide_by_var("y") == Monomial.var("x", 2)

    def test_divide_by_absent_var_raises(self):
        with pytest.raises(KeyError):
            Monomial.var("x").divide_by_var("y")


class TestOrderingAndIdentity:
    def test_equality_and_hash(self):
        a = Monomial((("x", 1), ("y", 1)))
        b = Monomial((("y", 1), ("x", 1)))
        assert a == b
        assert hash(a) == hash(b)

    def test_ordering_by_degree(self):
        assert Monomial.var("x") < Monomial.var("x", 2)

    def test_unit_sorts_last(self):
        assert Monomial.var("z") < Monomial.unit()

    def test_lexicographic_within_degree(self):
        assert Monomial.var("a") < Monomial.var("b")

    def test_str(self):
        assert str(Monomial.unit()) == "1"
        assert str(Monomial.var("x")) == "x"
        assert str(Monomial.var("x", 2)) == "x**2"
        assert str(Monomial((("x", 1), ("y", 2)))) == "x*y**2"

    def test_evaluate(self):
        m = Monomial((("x", 2), ("y", 1)))
        assert m.evaluate({"x": 3, "y": 5}) == 45
        assert Monomial.unit().evaluate({}) == 1
