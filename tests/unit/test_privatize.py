"""Unit tests for privatization (candidates, verdicts, copy-out)."""

from repro.privatize import copy_out_needed, find_candidates, privatize_loop
from repro.regions import GAR, GARList, Range, RegularRegion
from repro.symbolic import Comparer, Predicate
from tests.conftest import compile_source, loop_record


def sub(body: str, decls: str = "REAL a(100)") -> str:
    decl_lines = "".join(f"      {d}\n" for d in decls.split(";") if d)
    return f"      SUBROUTINE s\n{decl_lines}{body}      END\n"


WORK_LOOP = sub(
    "      DO i = 1, n\n"
    "        DO j = 1, m\n          t(j) = a(j)\n        ENDDO\n"
    "        DO j = 1, m\n          a(j) = t(j) + 1.0\n        ENDDO\n"
    "      ENDDO\n",
    "REAL a(100), t(100)",
)


class TestCandidates:
    def test_index_invariant_write_is_candidate(self):
        rec = loop_record(WORK_LOOP, "s", "i")
        table = None
        hsg, analyzer = compile_source(WORK_LOOP)
        table = hsg.analyzed.table("s")
        names = {c.name for c in find_candidates(rec, table)}
        assert "t" in names

    def test_index_dependent_write_not_candidate(self):
        src = sub("      DO i = 1, n\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        hsg, _ = compile_source(src)
        names = {c.name for c in find_candidates(rec, hsg.analyzed.table("s"))}
        assert "a" not in names

    def test_loop_index_excluded(self):
        rec = loop_record(WORK_LOOP, "s", "i")
        hsg, _ = compile_source(WORK_LOOP)
        names = {c.name for c in find_candidates(rec, hsg.analyzed.table("s"))}
        assert "i" not in names

    def test_array_vs_scalar_flag(self):
        src = sub(
            "      DO i = 1, n\n        x = a(i)\n        t(1) = x\n      ENDDO\n",
            "REAL a(100), t(100);REAL x",
        )
        rec = loop_record(src, "s", "i")
        hsg, _ = compile_source(src)
        cands = {c.name: c for c in find_candidates(rec, hsg.analyzed.table("s"))}
        assert cands["t"].is_array
        assert not cands["x"].is_array


class TestPrivatizability:
    def test_work_array_privatizable(self):
        rec = loop_record(WORK_LOOP, "s", "i")
        hsg, analyzer = compile_source(WORK_LOOP)
        result = privatize_loop(rec, hsg.analyzed.table("s"), analyzer.comparer)
        assert "t" in result.privatizable_arrays()

    def test_cross_iteration_value_flow_blocks(self):
        src = sub(
            "      DO i = 2, n\n"
            "        x = t(1)\n        t(1) = x + a(i)\n      ENDDO\n",
            "REAL a(100), t(100);REAL x",
        )
        rec = loop_record(src, "s", "i")
        hsg, analyzer = compile_source(src)
        result = privatize_loop(rec, hsg.analyzed.table("s"), analyzer.comparer)
        verdict = result.verdict_for("t")
        assert not verdict.privatizable
        assert not verdict.conflict.is_empty()

    def test_ue_empty_reason_reported(self):
        rec = loop_record(WORK_LOOP, "s", "i")
        hsg, analyzer = compile_source(WORK_LOOP)
        result = privatize_loop(rec, hsg.analyzed.table("s"), analyzer.comparer)
        verdict = result.verdict_for("t")
        assert "UE_i" in verdict.reason

    def test_scalar_privatization(self):
        src = sub(
            "      DO i = 1, n\n        x = a(i)\n        a(i) = x * 2.0\n"
            "      ENDDO\n",
            "REAL a(100);REAL x",
        )
        rec = loop_record(src, "s", "i")
        hsg, analyzer = compile_source(src)
        result = privatize_loop(rec, hsg.analyzed.table("s"), analyzer.comparer)
        assert "x" in result.privatizable_scalars()


class TestCopyOut:
    def _lists(self, lo, hi):
        return GARList.of(
            GAR(Predicate.true(), RegularRegion("t", [Range(lo, hi)]))
        )

    def test_not_used_after(self, cmp):
        decision = copy_out_needed("t", self._lists(1, 10), GARList.empty(), cmp)
        assert not decision.needs_copy_out

    def test_disjoint_later_use(self, cmp):
        decision = copy_out_needed(
            "t", self._lists(1, 10), self._lists(20, 30), cmp
        )
        assert not decision.needs_copy_out

    def test_overlapping_later_use(self, cmp):
        decision = copy_out_needed(
            "t", self._lists(1, 10), self._lists(5, 30), cmp
        )
        assert decision.needs_copy_out
