"""Unit tests for CNF predicates (repro.symbolic.predicate)."""

import pytest

from repro.symbolic import (
    BoolAtom,
    Disjunction,
    Predicate,
    Relation,
    sym,
)
from repro.symbolic.predicate import MAX_CLAUSES


class TestDisjunction:
    def test_drops_false_atoms(self):
        d = Disjunction([Relation.le(3, 2), Relation.le("i", 5)])
        assert d.atoms == frozenset({Relation.le("i", 5)})

    def test_true_atom_makes_tautology(self):
        d = Disjunction([Relation.le(1, 2), Relation.le("i", 5)])
        assert d.always_true

    def test_empty_is_false(self):
        assert Disjunction([]).is_false()
        assert Disjunction([Relation.le(3, 2)]).is_false()

    def test_absorbs_stronger_atom(self):
        # (i<=3) OR (i<=5) == (i<=5)
        d = Disjunction([Relation.le("i", 3), Relation.le("i", 5)])
        assert d.atoms == frozenset({Relation.le("i", 5)})

    def test_complement_pair_tautology(self):
        d = Disjunction([Relation.le("i", 3), Relation.ge("i", 4)])
        assert d.always_true

    def test_real_complement_tautology(self):
        gt = Relation.gt("x", "s", integer=False)
        le = Relation.le("x", "s", integer=False)
        assert Disjunction([gt, le]).always_true

    def test_bool_complement_tautology(self):
        assert Disjunction([BoolAtom("p"), BoolAtom("p", False)]).always_true

    def test_subsumes(self):
        small = Disjunction([Relation.le("i", 3)])
        big = Disjunction([Relation.le("i", 5), BoolAtom("p")])
        assert small.subsumes(big)
        assert not big.subsumes(small)

    def test_evaluate(self):
        d = Disjunction([Relation.le("i", 3), BoolAtom("p")])
        assert d.evaluate({"i": 1, "p": 0}) is True
        assert d.evaluate({"i": 9, "p": 1}) is True
        assert d.evaluate({"i": 9, "p": 0}) is False


class TestPredicateBasics:
    def test_constants(self):
        assert Predicate.true().is_true()
        assert Predicate.false().is_false()
        assert Predicate.unknown().is_unknown()

    def test_of_atom_constant_folds(self):
        assert Predicate.le(1, 2).is_true()
        assert Predicate.le(3, 2).is_false()

    def test_of_atom_symbolic(self):
        p = Predicate.le("i", "n")
        assert p.is_cnf()
        assert len(p.clauses) == 1

    def test_boolvar(self):
        p = Predicate.boolvar("p", False)
        assert p.is_cnf()


class TestConjunction:
    def test_identity_elements(self):
        p = Predicate.le("i", 3)
        assert (p & Predicate.true()) == p
        assert (p & Predicate.false()).is_false()

    def test_unknown_absorbs_except_false(self):
        delta = Predicate.unknown()
        assert (delta & Predicate.le("i", 3)).is_unknown()
        assert (delta & Predicate.false()).is_false()
        assert (delta & Predicate.true()).is_unknown()

    def test_contradiction_detected(self):
        p = Predicate.le("i", 3) & Predicate.ge("i", 5)
        assert p.is_false()

    def test_bool_contradiction(self):
        p = Predicate.boolvar("p") & Predicate.boolvar("p", False)
        assert p.is_false()

    def test_redundant_conjunct_removed(self):
        p = Predicate.le("i", 3) & Predicate.le("i", 5)
        assert p == Predicate.le("i", 3)

    def test_unit_propagation_prunes_clause(self):
        # (i <= 0) AND (i >= 5 OR p)  ->  (i <= 0) AND p
        clause = Disjunction([Relation.ge("i", 5), BoolAtom("p")])
        p = Predicate.le("i", 0) & Predicate.of_clauses([clause])
        assert p == Predicate.le("i", 0) & Predicate.boolvar("p")

    def test_unit_propagation_satisfies_clause(self):
        # (i <= 0) AND (i <= 3 OR p)  ->  (i <= 0)
        clause = Disjunction([Relation.le("i", 3), BoolAtom("p")])
        p = Predicate.le("i", 0) & Predicate.of_clauses([clause])
        assert p == Predicate.le("i", 0)

    def test_empty_clause_after_pruning_is_false(self):
        clause = Disjunction([Relation.ge("i", 5), Relation.ge("i", 9)])
        p = Predicate.le("i", 0) & Predicate.of_clauses([clause])
        assert p.is_false()


class TestDisjunctionOp:
    def test_identity_elements(self):
        p = Predicate.le("i", 3)
        assert (p | Predicate.false()) == p
        assert (p | Predicate.true()).is_true()

    def test_unknown(self):
        assert (Predicate.unknown() | Predicate.le("i", 3)).is_unknown()
        assert (Predicate.unknown() | Predicate.true()).is_true()

    def test_tautology(self):
        p = Predicate.le("i", 3) | Predicate.ge("i", 2)
        assert p.is_true()

    def test_distribution(self):
        a = Predicate.le("i", 3) & Predicate.boolvar("p")
        b = Predicate.ge("j", 5)
        out = a | b
        assert out.is_cnf()
        assert len(out.clauses) == 2

    def test_self_disjunction(self):
        p = Predicate.le("i", 3)
        assert (p | p) == p


class TestNegation:
    def test_constants(self):
        assert Predicate.true().negate().is_false()
        assert Predicate.false().negate().is_true()
        assert Predicate.unknown().negate().is_unknown()

    def test_single_atom(self):
        assert Predicate.le("i", 3).negate() == Predicate.ge("i", 4)

    def test_demorgan_conjunction(self):
        p = (Predicate.le("i", 3) & Predicate.boolvar("p")).negate()
        # not(a and b) == (not a) or (not b): one clause with two atoms
        assert p.is_cnf()
        (clause,) = p.clauses
        assert clause.atoms == frozenset(
            {Relation.ge("i", 4), BoolAtom("p", False)}
        )

    def test_double_negation_roundtrip(self):
        p = Predicate.le("i", "n") & Predicate.boolvar("q", False)
        assert p.negate().negate() == p


class TestImplies:
    def test_false_implies_anything(self):
        assert Predicate.false().implies(Predicate.le("i", 3)) is True

    def test_anything_implies_true(self):
        assert Predicate.le("i", 3).implies(Predicate.true()) is True

    def test_stronger_implies_weaker(self):
        a = Predicate.le("i", 3) & Predicate.boolvar("p")
        b = Predicate.le("i", 5)
        assert a.implies(b) is True
        assert b.implies(a) is None

    def test_unknown_is_none(self):
        assert Predicate.unknown().implies(Predicate.le("i", 3)) is None


class TestSubstitution:
    def test_relational_substitution(self):
        p = Predicate.le("i", "n").substitute({"i": sym("j") + 1})
        assert p == Predicate.le(sym("j") + 1, "n")

    def test_substitution_can_collapse(self):
        p = Predicate.le("i", 5).substitute({"i": sym(3)})
        assert p.is_true()

    def test_bool_binding_to_var_renames(self):
        p = Predicate.boolvar("p").substitute({"p": sym("q")})
        assert p == Predicate.boolvar("q")

    def test_bool_binding_to_expr_degrades_to_unknown(self):
        p = Predicate.boolvar("p").substitute({"p": sym("q") + 1})
        assert p.is_unknown()

    def test_rename(self):
        p = Predicate.le("i", "n").rename({"n": "m"})
        assert p == Predicate.le("i", "m")


class TestEvaluationAndMisc:
    def test_evaluate(self):
        p = Predicate.le("i", 3) & Predicate.boolvar("p")
        assert p.evaluate({"i": 2, "p": 1}) is True
        assert p.evaluate({"i": 2, "p": 0}) is False

    def test_evaluate_unknown_raises(self):
        with pytest.raises(ValueError):
            Predicate.unknown().evaluate({})

    def test_unit_atoms(self):
        p = Predicate.le("i", 3) & (Predicate.boolvar("p") | Predicate.le("j", 0))
        units = p.unit_atoms()
        assert units == [Relation.le("i", 3)]

    def test_free_vars(self):
        p = Predicate.le("i", "n") & Predicate.boolvar("p")
        assert p.free_vars() == frozenset({"i", "n", "p"})

    def test_complexity_cap_degrades_to_unknown(self):
        # build a predicate whose OR-distribution exceeds the clause cap
        big_a = Predicate.true()
        big_b = Predicate.true()
        for k in range(12):
            big_a = big_a & Predicate.le(f"a{k}", k)
            big_b = big_b & Predicate.le(f"b{k}", k)
        assert len(big_a.clauses) * len(big_b.clauses) > MAX_CLAUSES
        assert (big_a | big_b).is_unknown()

    def test_str_forms(self):
        assert str(Predicate.true()) == "True"
        assert str(Predicate.false()) == "False"
        assert str(Predicate.unknown()) == "Delta"
