"""Unit tests for the scan/recurrence recognizer (docs/frontier.md)."""

from fractions import Fraction

from repro.fortran import analyze, parse_program
from repro.hsg import build_hsg
from repro.parallelize.recurrences import (
    AFFINE_SCAN,
    PREFIX_SCAN,
    RUNNING_SCALAR,
    SEGMENTED_SCAN,
    RecurrenceMatch,
    find_recurrences,
)


def first_loop(source: str, routine: str):
    hsg = build_hsg(analyze(parse_program(source)))
    for unit, loop in hsg.all_loops():
        if unit == routine:
            return loop
    raise AssertionError(f"no loop in {routine}")


def matches(source: str, routine: str = "sub"):
    return find_recurrences(first_loop(source, routine))


def wrap(body: str, decls: str = "      REAL A(100), B(100)") -> str:
    return (
        "      SUBROUTINE sub(A, B, n, s)\n"
        f"{decls}\n"
        "      REAL s\n"
        "      INTEGER n, i\n"
        f"{body}"
        "      END\n"
    )


class TestArrayScans:
    def test_prefix_sum(self):
        (m,) = matches(
            wrap(
                "      DO i = 2, n\n"
                "        A(i) = A(i-1) + B(i)\n"
                "      ENDDO\n"
            )
        )
        assert m.shape == PREFIX_SCAN
        assert m.name == "a" and m.operator == "+" and m.distance == 1
        assert m.is_array and not m.guarded

    def test_product_scan(self):
        (m,) = matches(
            wrap(
                "      DO i = 2, n\n"
                "        A(i) = A(i-1) * B(i)\n"
                "      ENDDO\n"
            )
        )
        assert m.shape == PREFIX_SCAN and m.operator == "*"

    def test_max_intrinsic_scan(self):
        (m,) = matches(
            wrap(
                "      DO i = 2, n\n"
                "        A(i) = MAX(A(i-1), B(i))\n"
                "      ENDDO\n"
            )
        )
        assert m.shape == PREFIX_SCAN and m.operator == "max"

    def test_distance_two(self):
        (m,) = matches(
            wrap(
                "      DO i = 3, n\n"
                "        A(i) = A(i-2) + B(i)\n"
                "      ENDDO\n"
            )
        )
        assert m.distance == 2

    def test_affine_scan_carries_coefficient(self):
        (m,) = matches(
            wrap(
                "      DO i = 2, n\n"
                "        A(i) = 3*A(i-1) + B(i)\n"
                "      ENDDO\n"
            )
        )
        assert m.shape == AFFINE_SCAN
        assert Fraction(m.coefficient) == 3

    def test_segmented_scan(self):
        (m,) = matches(
            wrap(
                "      DO i = 2, n\n"
                "        IF (B(i) .GT. 0.0) THEN\n"
                "          A(i) = B(i)\n"
                "        ELSE\n"
                "          A(i) = A(i-1) + B(i)\n"
                "        ENDIF\n"
                "      ENDDO\n"
            )
        )
        assert m.shape == SEGMENTED_SCAN and m.guarded

    def test_guarded_single_update_rejected(self):
        # a skipped iteration leaves a stale cell the chain then reads:
        # not a scan, and must not be reported as one
        assert (
            matches(
                wrap(
                    "      DO i = 2, n\n"
                    "        IF (B(i) .GT. 0.0) THEN\n"
                    "          A(i) = A(i-1) + B(i)\n"
                    "        ENDIF\n"
                    "      ENDDO\n"
                )
            )
            == []
        )

    def test_interleaved_write_breaks_stream_readiness(self):
        # B feeds the increment but is also written in the body, so the
        # two-pass schedule cannot precompute the increment stream
        assert (
            matches(
                wrap(
                    "      DO i = 2, n\n"
                    "        B(i) = A(i) + 1.0\n"
                    "        A(i) = A(i-1) + B(i)\n"
                    "      ENDDO\n"
                )
            )
            == []
        )


class TestScalarScans:
    def test_running_sum(self):
        (m,) = matches(
            wrap(
                "      DO i = 1, n\n"
                "        s = s + B(i)\n"
                "        A(i) = s\n"
                "      ENDDO\n"
            )
        )
        assert m.shape == RUNNING_SCALAR and not m.is_array
        assert m.name == "s" and m.operator == "+"

    def test_plain_reduction_is_not_a_scan(self):
        # without an escaping read the accumulator is a reduction;
        # reporting it as a scan would double-classify
        assert (
            matches(
                wrap(
                    "      DO i = 1, n\n"
                    "        s = s + B(i)\n"
                    "      ENDDO\n"
                )
            )
            == []
        )


class TestPayloads:
    def test_roundtrip(self):
        (m,) = matches(
            wrap(
                "      DO i = 2, n\n"
                "        A(i) = A(i-1) + B(i)\n"
                "      ENDDO\n"
            )
        )
        payload = m.to_payload()
        assert payload["kind"] == "recurrence"
        assert m.matches_payload(payload)

    def test_detail_and_lineno_ignored(self):
        m = RecurrenceMatch(name="a", shape=PREFIX_SCAN, operator="+")
        payload = m.to_payload()
        payload["detail"] = "tampered"
        payload["lineno"] = 999
        assert m.matches_payload(payload)

    def test_claim_fields_compared(self):
        m = RecurrenceMatch(name="a", shape=PREFIX_SCAN, operator="+")
        payload = m.to_payload()
        payload["operator"] = "*"
        assert not m.matches_payload(payload)
