"""Unit tests for GARs and GAR lists (repro.regions.gar)."""

import pytest

from repro.symbolic import Env, Predicate, sym
from repro.regions import GAR, GARList, OMEGA_DIM, Range, RegularRegion


def region(lo, hi, array="a"):
    return RegularRegion(array, [Range(lo, hi)])


class TestGARConstruction:
    def test_guard_gets_nonempty_conditions(self):
        g = GAR(Predicate.true(), region("l", "u"))
        assert g.guard == Predicate.le("l", "u")

    def test_statically_empty_region_folds_guard(self):
        g = GAR(Predicate.true(), region(5, 4))
        assert g.is_empty()

    def test_false_guard_is_empty(self):
        g = GAR(Predicate.false(), region(1, 5))
        assert g.is_empty()

    def test_of_reference(self):
        g = GAR.of_reference("a", [sym("i"), sym("j")])
        assert g.region == RegularRegion.point("a", [sym("i"), sym("j")])
        assert g.exact

    def test_omega(self):
        g = GAR.omega("a", 2)
        assert g.is_omega()
        assert not g.exact

    def test_unknown_guard_is_inexact(self):
        g = GAR(Predicate.unknown(), region(1, 5))
        assert not g.exact

    def test_omega_dims_are_inexact(self):
        g = GAR(Predicate.true(), RegularRegion("a", [OMEGA_DIM]))
        assert not g.exact


class TestGARBehavior:
    def test_provably_empty_via_fm(self):
        g = GAR(Predicate.le("u", sym("l") - 1), region("l", "u"))
        assert g.provably_empty()

    def test_and_guard(self):
        g = GAR(Predicate.true(), region(1, 5)).and_guard(Predicate.boolvar("p"))
        assert g.guard == Predicate.boolvar("p")

    def test_and_guard_true_is_identity(self):
        g = GAR(Predicate.boolvar("p"), region(1, 5))
        assert g.and_guard(Predicate.true()) is g

    def test_and_guard_unknown_inexact(self):
        g = GAR(Predicate.true(), region(1, 5)).and_guard(Predicate.unknown())
        assert not g.exact

    def test_substitute(self):
        g = GAR(Predicate.le("i", "n"), region("i", sym("i") + 2))
        out = g.substitute({"i": sym(3)})
        assert out.region == region(3, 5)
        assert out.guard == Predicate.le(3, "n")

    def test_rename_renames_array_too(self):
        g = GAR(Predicate.true(), region(1, 5)).rename({"a": "a"})
        assert g.array == "a"

    def test_with_array(self):
        g = GAR(Predicate.true(), region(1, 5)).with_array("b")
        assert g.array == "b"

    def test_enumerate_guard_false_env(self):
        g = GAR(Predicate.boolvar("p"), region(1, 3))
        assert g.enumerate(Env(p=0)) == set()
        assert g.enumerate(Env(p=1)) == {(1,), (2,), (3,)}

    def test_enumerate_unknown_guard_raises(self):
        g = GAR(Predicate.unknown(), region(1, 3))
        with pytest.raises(ValueError):
            g.enumerate(Env())

    def test_free_vars(self):
        g = GAR(Predicate.boolvar("p"), region("l", "u"))
        assert g.free_vars() == frozenset({"p", "l", "u"})


class TestGARList:
    def test_drops_statically_empty(self):
        lst = GARList(
            [
                GAR(Predicate.false(), region(1, 5)),
                GAR(Predicate.true(), region(1, 3)),
            ]
        )
        assert len(lst) == 1

    def test_union_and_add(self):
        a = GARList.of(GAR(Predicate.true(), region(1, 3)))
        b = a.add(GAR(Predicate.true(), region(7, 9)))
        assert len(b) == 2
        assert len(a) == 1

    def test_is_exact(self):
        exact = GARList.of(GAR(Predicate.true(), region(1, 3)))
        assert exact.is_exact()
        assert not exact.union(GARList.of(GAR.omega("a", 1))).is_exact()

    def test_arrays_and_for_array(self):
        lst = GARList.of(
            GAR(Predicate.true(), region(1, 3, "a")),
            GAR(Predicate.true(), region(1, 3, "b")),
        )
        assert lst.arrays() == frozenset({"a", "b"})
        assert len(lst.for_array("a")) == 1

    def test_enumerate(self):
        lst = GARList.of(
            GAR(Predicate.true(), region(1, 2)),
            GAR(Predicate.boolvar("p"), region(5, 5)),
        )
        assert lst.enumerate(Env(p=1)) == {(1,), (2,), (5,)}
        assert lst.enumerate(Env(p=0)) == {(1,), (2,)}

    def test_equality_order_insensitive(self):
        g1 = GAR(Predicate.true(), region(1, 3))
        g2 = GAR(Predicate.true(), region(5, 9))
        assert GARList.of(g1, g2) == GARList.of(g2, g1)
        assert hash(GARList.of(g1, g2)) == hash(GARList.of(g2, g1))

    def test_provably_empty(self):
        lst = GARList.of(GAR(Predicate.le("u", sym("l") - 1), region("l", "u")))
        assert lst.provably_empty()
        assert GARList.empty().provably_empty()
