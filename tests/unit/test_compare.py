"""Unit tests for the Comparer facade (repro.symbolic.compare)."""

from repro.symbolic import (
    Comparer,
    Predicate,
    Relation,
    predicate_implies,
    predicate_unsat,
    sym,
)


class TestConstantFolding:
    def test_constants(self, cmp):
        assert cmp.le(1, 2) is True
        assert cmp.le(3, 2) is False
        assert cmp.eq(2, 2) is True
        assert cmp.ne(2, 3) is True

    def test_identical_expressions(self, cmp):
        assert cmp.eq(sym("n") + 1, sym("n") + 1) is True
        assert cmp.le(sym("n"), sym("n")) is True

    def test_constant_difference(self, cmp):
        assert cmp.lt(sym("n"), sym("n") + 1) is True
        assert cmp.le(sym("n") + 2, sym("n")) is False


class TestContext:
    def test_unit_atom_context(self):
        c = Comparer(Predicate.le("i", "n"))
        assert c.le("i", "n") is True
        assert c.le("i", sym("n") + 5) is True

    def test_fm_chain_context(self):
        c = Comparer(Predicate.le("i", "j") & Predicate.le("j", "n"))
        assert c.le("i", "n") is True

    def test_refutation(self):
        c = Comparer(Predicate.ge("i", 5))
        assert c.le("i", 3) is False

    def test_unknowable(self, cmp):
        assert cmp.le("i", "n") is None

    def test_refine(self, cmp):
        refined = cmp.refine(Predicate.le("i", 3))
        assert refined.le("i", 5) is True
        assert cmp.le("i", 5) is None

    def test_refine_with_true_returns_self(self, cmp):
        assert cmp.refine(Predicate.true()) is cmp

    def test_context_unsat(self):
        c = Comparer(Predicate.le("i", 3) & Predicate.ge("i", 5))
        assert c.context_unsat()
        # the predicate layer already folds this to False
        assert c.context.is_false()

    def test_ne_context(self):
        c = Comparer(Predicate.le("i", 3))
        assert c.ne("i", 5) is True


class TestNonSymbolicMode:
    def test_constants_still_work(self):
        c = Comparer(symbolic=False)
        assert c.le(1, 2) is True
        assert c.le(3, 1) is False

    def test_symbolic_comparisons_fail(self):
        c = Comparer(Predicate.le("i", 3), symbolic=False)
        assert c.le("i", 5) is None
        assert c.le("i", "n") is None

    def test_identical_terms_still_cancel(self):
        # term cancellation happens in the relation normalizer, which is
        # part of the representation, not of symbolic *reasoning*
        c = Comparer(symbolic=False)
        assert c.le(sym("i"), sym("i")) is True
        assert c.lt(sym("n"), sym("n") + 1) is True


class TestPredicateHelpers:
    def test_predicate_unsat(self):
        # build an unsat CNF that the constructor alone does not fold:
        # relies on FM over i <= j, j <= i - 1
        p = Predicate.le("i", "j") & Predicate.le("j", sym("i") - 1)
        assert predicate_unsat(p)

    def test_predicate_unsat_false_literal(self):
        assert predicate_unsat(Predicate.false())

    def test_predicate_sat(self):
        assert not predicate_unsat(Predicate.le("i", "j"))

    def test_predicate_implies_syntactic(self):
        a = Predicate.le("i", 3)
        assert predicate_implies(a, Predicate.le("i", 5))

    def test_predicate_implies_via_fm(self):
        a = Predicate.le("i", "j") & Predicate.le("j", "k")
        assert predicate_implies(a, Predicate.le("i", "k"))

    def test_predicate_implies_negative(self):
        assert not predicate_implies(Predicate.le("i", 5), Predicate.le("i", 3))

    def test_predicate_implies_clause_target(self):
        a = Predicate.le("i", 3)
        target = Predicate.le("i", 9) | Predicate.boolvar("p")
        assert predicate_implies(a, target)
