"""Unit tests for the public invalidation-report surface
(repro.engine.incremental: IncrementalReport + diff_revisions)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.incremental import (
    IncrementalEngine,
    IncrementalReport,
    diff_revisions,
)
from repro.kernels.figure1 import FIGURE_1C


@dataclass
class FakeHooks:
    """Just the CachingHooks fields diff_revisions consumes."""

    fingerprints: dict = field(default_factory=dict)
    callees: dict = field(default_factory=dict)
    unit_hashes: dict = field(default_factory=dict)
    reused: set = field(default_factory=set)
    computed: set = field(default_factory=set)


def hooks_for(unit_hashes, callees=None, reused=(), computed=()):
    return FakeHooks(
        fingerprints={name: f"fp:{h}" for name, h in unit_hashes.items()},
        callees={k: frozenset(v) for k, v in (callees or {}).items()},
        unit_hashes=dict(unit_hashes),
        reused=set(reused),
        computed=set(computed),
    )


class TestDiffRevisions:
    def test_first_revision_everything_changed(self):
        hooks = hooks_for({"main": "h1", "sub": "h2"}, computed={"main", "sub"})
        report = diff_revisions("prog.f", {}, hooks)
        assert report.changed == ["main", "sub"]
        assert report.invalidated == []
        assert report.computed == ["main", "sub"]
        assert report.reused == []

    def test_identical_revision_changes_nothing(self):
        hashes = {"main": "h1", "sub": "h2"}
        hooks = hooks_for(hashes, reused={"main", "sub"})
        report = diff_revisions("prog.f", hashes, hooks)
        assert report.changed == []
        assert report.invalidated == []
        assert report.reused == ["main", "sub"]
        assert report.affected() == []

    def test_own_change_detected_by_hash(self):
        hooks = hooks_for({"main": "h1", "sub": "NEW"})
        report = diff_revisions("prog.f", {"main": "h1", "sub": "h2"}, hooks)
        assert report.changed == ["sub"]
        assert report.invalidated == []

    def test_new_routine_counts_as_changed(self):
        hooks = hooks_for({"main": "h1", "fresh": "h9"})
        report = diff_revisions("prog.f", {"main": "h1"}, hooks)
        assert report.changed == ["fresh"]

    def test_caller_invalidated_transitively(self):
        # main -> mid -> leaf; editing leaf stales both callers
        hooks = hooks_for(
            {"main": "h1", "mid": "h2", "leaf": "NEW"},
            callees={"main": {"mid"}, "mid": {"leaf"}, "leaf": set()},
        )
        report = diff_revisions(
            "prog.f", {"main": "h1", "mid": "h2", "leaf": "h3"}, hooks
        )
        assert report.changed == ["leaf"]
        assert report.invalidated == ["main", "mid"]
        assert report.affected() == ["leaf", "main", "mid"]

    def test_sibling_not_invalidated(self):
        # main calls both; editing left must not drag right in
        hooks = hooks_for(
            {"main": "h1", "left": "NEW", "right": "h3"},
            callees={"main": {"left", "right"}, "left": set(), "right": set()},
        )
        report = diff_revisions(
            "prog.f", {"main": "h1", "left": "h2", "right": "h3"}, hooks
        )
        assert report.changed == ["left"]
        assert report.invalidated == ["main"]
        assert "right" not in report.affected()

    def test_changed_routine_not_double_counted_as_invalidated(self):
        # a changed caller of a changed callee stays in `changed` only
        hooks = hooks_for(
            {"main": "NEW1", "leaf": "NEW2"},
            callees={"main": {"leaf"}, "leaf": set()},
        )
        report = diff_revisions(
            "prog.f", {"main": "h1", "leaf": "h2"}, hooks
        )
        assert report.changed == ["leaf", "main"]
        assert report.invalidated == []

    def test_cyclic_call_graph_terminates(self):
        # mutual recursion: the frontier loop must converge, not spin
        hooks = hooks_for(
            {"a": "NEW", "b": "h2"},
            callees={"a": {"b"}, "b": {"a"}},
        )
        report = diff_revisions("prog.f", {"a": "h1", "b": "h2"}, hooks)
        assert report.changed == ["a"]
        assert report.invalidated == ["b"]


class TestReportSerialization:
    def test_to_dict_drops_fingerprints(self):
        report = IncrementalReport(
            name="prog.f",
            changed=["a"],
            invalidated=["b"],
            reused=["c"],
            computed=["a", "b"],
            fingerprints={"a": "fp1", "b": "fp2", "c": "fp3"},
        )
        payload = report.to_dict()
        assert payload == {
            "name": "prog.f",
            "changed": ["a"],
            "invalidated": ["b"],
            "reused": ["c"],
            "computed": ["a", "b"],
        }
        assert "fingerprints" not in payload

    def test_affected_is_sorted_union(self):
        report = IncrementalReport(
            name="p", changed=["z", "a"], invalidated=["m", "a"]
        )
        assert report.affected() == ["a", "m", "z"]

    def test_summary_line_mentions_counts(self):
        report = IncrementalReport(
            name="p.f", changed=["a"], invalidated=["b", "c"], reused=["d"]
        )
        line = report.summary_line()
        assert "1 changed" in line and "2 invalidated" in line


class TestEngineIntegration:
    def test_engine_edit_propagates_through_callers(self):
        engine = IncrementalEngine()
        first = engine.analyze(FIGURE_1C, name="fig1c.f")
        assert first.report.invalidated == []
        assert sorted(first.report.changed) == first.report.affected()

        # edit only subroutine `in`; `main` calls it, `out` does not
        edited = FIGURE_1C.replace("B(J) = x", "B(J) = x * 1.0")
        assert edited != FIGURE_1C
        second = engine.analyze(edited, name="fig1c.f")
        report = second.report
        assert len(report.changed) == 1
        assert report.invalidated  # the caller
        assert report.reused  # the untouched sibling
        assert set(report.reused).isdisjoint(report.affected())
        # the changed routine plus every affected one was recomputed
        assert set(report.affected()) <= set(report.computed)

    def test_diff_report_does_not_advance_revision(self):
        engine = IncrementalEngine()
        engine.analyze(FIGURE_1C, name="fig1c.f")
        before = dict(engine._previous["fig1c.f"])
        hooks = hooks_for(before)  # same hashes as the stored revision
        report = engine.diff_report("fig1c.f", hooks)
        assert report.changed == []
        assert engine._previous["fig1c.f"] == before

    def test_legacy_alias_still_answers(self):
        engine = IncrementalEngine()
        engine.analyze(FIGURE_1C, name="fig1c.f")
        hooks = hooks_for(dict(engine._previous["fig1c.f"]))
        assert engine._diff_report("fig1c.f", hooks).changed == []
