"""Unit tests for subscript-array closed forms (paper section 6).

The paper replaces ARC2D's ``JPLUS``/``JMINUS`` subscript arrays with
their equivalent scalar expressions "through forward substitution by
hand"; :data:`AnalysisOptions.index_array_forms` performs the same
substitution mechanically.
"""

from repro import AnalysisOptions, Panorama
from repro.dataflow.convert import (
    ConversionContext,
    subscript_placeholder,
    to_symexpr,
)
from repro.fortran import analyze, parse_program
from repro.parallelize import LoopStatus
from repro.symbolic import sym

ARC2D_STYLE = """
      SUBROUTINE filt(a, q, jplus, n, m)
      REAL a(200), q(200)
      INTEGER jplus(200)
      INTEGER n, m, i, j
      REAL w(200)
      REAL acc
      DO i = 1, n
        DO j = 1, m
          w(j) = q(j) + q(jplus(j))
        ENDDO
        acc = 0.0
        DO j = 1, m
          acc = acc + w(jplus(j)) + w(j)
        ENDDO
        a(i) = acc
      ENDDO
      END
"""

JPLUS_FORM = AnalysisOptions(
    index_array_forms=(("jplus", subscript_placeholder(1) + 1),)
)


class TestConversion:
    def _ctx(self, forms):
        src = (
            "      SUBROUTINE s\n      INTEGER jm(100)\n"
            "      zz = jm(1)\n      END\n"
        )
        table = analyze(parse_program(src)).table("s")
        return ConversionContext(table, index_array_forms=dict(forms))

    def _expr(self, text):
        src = f"      SUBROUTINE s2\n      INTEGER jm(100)\n      zz = {text}\n      END\n"
        an = analyze(parse_program(src))
        return an.unit("s2").body[0].value, an.table("s2")

    def test_form_substitution(self):
        expr, table = self._expr("jm(k)")
        ctx = ConversionContext(
            table,
            index_array_forms={"jm": subscript_placeholder(1) - 1},
        )
        assert to_symexpr(expr, ctx) == sym("k") - 1

    def test_nested_subscript(self):
        expr, table = self._expr("jm(k + 2)")
        ctx = ConversionContext(
            table,
            index_array_forms={"jm": subscript_placeholder(1) * 2},
        )
        assert to_symexpr(expr, ctx) == (sym("k") + 2) * 2

    def test_without_form_unknown(self):
        expr, table = self._expr("jm(k)")
        ctx = ConversionContext(table)
        assert to_symexpr(expr, ctx) is None

    def test_unconvertible_subscript_stays_unknown(self):
        expr, table = self._expr("jm(zz(3))")
        ctx = ConversionContext(
            table,
            index_array_forms={"jm": subscript_placeholder(1)},
        )
        assert to_symexpr(expr, ctx) is None


class TestEndToEnd:
    def test_without_forms_serial(self):
        result = Panorama(run_machine_model=False).compile(ARC2D_STYLE)
        assert result.loops[0].status is LoopStatus.SERIAL

    def test_with_forms_privatizes(self):
        result = Panorama(JPLUS_FORM, run_machine_model=False).compile(
            ARC2D_STYLE
        )
        outer = result.loops[0]
        assert outer.status is LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        assert "w" in outer.verdict.privatized

    def test_index_array_still_counts_as_read(self):
        result = Panorama(JPLUS_FORM, run_machine_model=False).compile(
            ARC2D_STYLE
        )
        record = result.loops[0].verdict.record
        assert "jplus" in record.ue_i.arrays()
