"""Meta-tests on API quality: every public item is documented.

"Production-quality" here is checkable: public modules, classes, and
functions across the package must carry docstrings, and the package
exports must resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.symbolic",
    "repro.regions",
    "repro.fortran",
    "repro.hsg",
    "repro.dataflow",
    "repro.deptest",
    "repro.privatize",
    "repro.parallelize",
    "repro.machine",
    "repro.driver",
    "repro.codegen",
    "repro.kernels",
]


def all_modules():
    out = []
    for name in PACKAGES:
        pkg = importlib.import_module(name)
        out.append(pkg)
        for info in pkgutil.iter_modules(pkg.__path__):
            out.append(importlib.import_module(f"{name}.{info.name}"))
    out.append(importlib.import_module("repro.validate"))
    out.append(importlib.import_module("repro.errors"))
    return out


@pytest.mark.parametrize(
    "module", all_modules(), ids=lambda m: m.__name__
)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize(
    "module", all_modules(), ids=lambda m: m.__name__
)
def test_public_items_documented(module):
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    # inherited docstrings and trivial dunders excluded by
                    # the underscore filter; require the rest
                    missing.append(f"{name}.{mname}")
    assert not missing, f"{module.__name__}: undocumented {missing}"


def test_all_exports_resolve():
    for name in PACKAGES:
        module = importlib.import_module(name)
        for item in getattr(module, "__all__", []):
            assert hasattr(module, item), f"{name}.__all__ lists {item}"


def test_version():
    assert repro.__version__
