"""Unit tests for non-rectangular regions (paper section 5.3)."""

import pytest

from repro.regions import GARList, Range, RegularRegion
from repro.regions.gar_ops import subtract_lists
from repro.regions.shapes import (
    band,
    contains,
    diagonal,
    dim_symbol,
    enumerate_shaped,
    is_dim_symbol,
    is_shaped,
    shaped,
    shaped_intersect_empty,
    shaped_provably_empty,
    triangle,
)
from repro.symbolic import Comparer, Env, Predicate


class TestConstruction:
    def test_dim_symbol(self):
        assert dim_symbol(1) != dim_symbol(2)
        assert is_dim_symbol("psi%1")
        assert not is_dim_symbol("n")

    def test_dim_symbol_one_based(self):
        with pytest.raises(ValueError):
            dim_symbol(0)

    def test_shaped_gars_are_inexact(self):
        assert not diagonal("a", 5).exact
        assert not triangle("a", 5).exact

    def test_is_shaped(self):
        assert is_shaped(diagonal("a", 4))
        from repro.regions import GAR

        plain = GAR(Predicate.true(), RegularRegion("a", [Range(1, 4)]))
        assert not is_shaped(plain)


class TestSemantics:
    def test_diagonal_enumeration(self):
        d = diagonal("a", 3)
        assert enumerate_shaped(d, Env()) == {(1, 1), (2, 2), (3, 3)}

    def test_upper_triangle_enumeration(self):
        t = triangle("a", 3, upper=True)
        expect = {(i, j) for i in range(1, 4) for j in range(i, 4)}
        assert enumerate_shaped(t, Env()) == expect

    def test_lower_triangle_enumeration(self):
        t = triangle("a", 3, upper=False)
        expect = {(i, j) for i in range(1, 4) for j in range(1, i + 1)}
        assert enumerate_shaped(t, Env()) == expect

    def test_band_enumeration(self):
        b = band("a", 4, 1)
        expect = {
            (i, j)
            for i in range(1, 5)
            for j in range(1, 5)
            if abs(i - j) <= 1
        }
        assert enumerate_shaped(b, Env()) == expect

    def test_symbolic_extent(self):
        d = diagonal("a", "n")
        assert enumerate_shaped(d, Env(n=2)) == {(1, 1), (2, 2)}

    def test_contains(self):
        t = triangle("a", 5)
        assert contains(t, (2, 4), Env())
        assert not contains(t, (4, 2), Env())
        assert not contains(t, (6, 6), Env())


class TestEmptiness:
    def test_contradictory_shape_empty(self):
        g = shaped(
            Predicate.lt(dim_symbol(1), dim_symbol(2))
            & Predicate.lt(dim_symbol(2), dim_symbol(1)),
            RegularRegion("a", [Range(1, 5), Range(1, 5)]),
        )
        assert shaped_provably_empty(g)

    def test_shape_outside_bounds_empty(self):
        # psi1 >= 10 but the dimension only reaches 5
        g = shaped(
            Predicate.ge(dim_symbol(1), 10),
            RegularRegion("a", [Range(1, 5), Range(1, 5)]),
        )
        assert shaped_provably_empty(g)

    def test_nonempty_shape(self):
        assert not shaped_provably_empty(diagonal("a", 5))


class TestDisjointness:
    def test_strict_triangles_disjoint(self):
        upper = shaped(
            Predicate.lt(dim_symbol(1), dim_symbol(2)),
            RegularRegion("a", [Range(1, 5), Range(1, 5)]),
        )
        lower = shaped(
            Predicate.gt(dim_symbol(1), dim_symbol(2)),
            RegularRegion("a", [Range(1, 5), Range(1, 5)]),
        )
        assert shaped_intersect_empty(upper, lower)

    def test_triangle_meets_diagonal(self):
        assert not shaped_intersect_empty(triangle("a", 5), diagonal("a", 5))

    def test_disjoint_rectangles(self):
        a = shaped(
            Predicate.true(), RegularRegion("a", [Range(1, 2), Range(1, 5)])
        )
        b = shaped(
            Predicate.true(), RegularRegion("a", [Range(4, 6), Range(1, 5)])
        )
        assert shaped_intersect_empty(a, b)

    def test_different_arrays_trivially_disjoint(self):
        assert shaped_intersect_empty(diagonal("a", 3), diagonal("b", 3))

    def test_off_diagonals_disjoint(self):
        above = shaped(
            Predicate.eq(dim_symbol(2), dim_symbol(1) + 1),
            RegularRegion("a", [Range(1, 5), Range(1, 5)]),
        )
        below = shaped(
            Predicate.eq(dim_symbol(2), dim_symbol(1) - 1),
            RegularRegion("a", [Range(1, 5), Range(1, 5)]),
        )
        assert shaped_intersect_empty(above, below)


class TestComposition:
    def test_shaped_mod_never_kills(self, cmp):
        """A shaped (inexact) MOD must not kill uses — rectangular
        machinery safety when shapes flow through ordinary operations."""
        from repro.regions import GAR

        use = GAR(
            Predicate.true(), RegularRegion("a", [Range(1, 3), Range(1, 3)])
        )
        out = subtract_lists(
            GARList.of(use), GARList.of(triangle("a", 3)), cmp
        )
        assert out.enumerate(Env()) == use.enumerate(Env())
