"""Unit tests for the Fortran-subset parser."""

import pytest

from repro.errors import ParseError
from repro.fortran import (
    Apply,
    Assign,
    BinOp,
    CallStmt,
    CommonStmt,
    Continue,
    Declaration,
    DimensionStmt,
    DoLoop,
    Goto,
    IfBlock,
    IntLit,
    IoStmt,
    LogicalIf,
    NameRef,
    ParameterStmt,
    Return,
    Stop,
    UnOp,
    parse_program,
    parse_unit,
)


def body_of(source: str):
    return parse_unit(source).body


def first_stmt(statement: str):
    src = f"      SUBROUTINE s\n      {statement}\n      END\n"
    return body_of(src)[0]


def expr_of(text: str):
    stmt = first_stmt(f"zz = {text}")
    assert isinstance(stmt, Assign)
    return stmt.value


class TestUnits:
    def test_program_unit(self):
        u = parse_unit("      PROGRAM main\n      x = 1\n      END\n")
        assert u.kind == "program" and u.name == "main"

    def test_subroutine_with_params(self):
        u = parse_unit("      SUBROUTINE f(a, b)\n      a = b\n      END\n")
        assert u.kind == "subroutine"
        assert u.params == ["a", "b"]

    def test_function_typed(self):
        u = parse_unit(
            "      INTEGER FUNCTION g(x)\n      g = x\n      END\n"
        )
        assert u.kind == "function"
        assert u.result_type == "integer"

    def test_double_precision_function(self):
        u = parse_unit(
            "      DOUBLE PRECISION FUNCTION g(x)\n      g = x\n      END\n"
        )
        assert u.result_type == "doubleprecision"

    def test_headerless_main(self):
        u = parse_unit("      x = 1\n      END\n")
        assert u.kind == "program" and u.name == "main"

    def test_multiple_units(self):
        p = parse_program(
            "      PROGRAM a\n      x = 1\n      END\n"
            "      SUBROUTINE b\n      y = 2\n      END\n"
        )
        assert [u.name for u in p.units] == ["a", "b"]

    def test_missing_end_rejected(self):
        with pytest.raises(ParseError):
            parse_unit("      SUBROUTINE s\n      x = 1\n")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("")


class TestDeclarations:
    def test_type_declaration(self):
        u = parse_unit(
            "      SUBROUTINE s\n      REAL a(10), b\n      a(1) = b\n      END\n"
        )
        decl = u.decls[0]
        assert isinstance(decl, Declaration)
        assert decl.entities[0][0] == "a"
        assert len(decl.entities[0][1]) == 1
        assert decl.entities[1] == ("b", [])

    def test_dimension(self):
        u = parse_unit(
            "      SUBROUTINE s\n      DIMENSION w(5, n)\n      w(1,1) = 0\n      END\n"
        )
        assert isinstance(u.decls[0], DimensionStmt)

    def test_parameter(self):
        u = parse_unit(
            "      SUBROUTINE s\n      PARAMETER (n = 10, m = n + 1)\n"
            "      x = n\n      END\n"
        )
        decl = u.decls[0]
        assert isinstance(decl, ParameterStmt)
        assert decl.bindings[0][0] == "n"

    def test_common(self):
        u = parse_unit(
            "      SUBROUTINE s\n      COMMON /blk/ a, b(3)\n      a = 1\n      END\n"
        )
        decl = u.decls[0]
        assert isinstance(decl, CommonStmt)
        assert decl.block == "blk"

    def test_star_length_type(self):
        u = parse_unit(
            "      SUBROUTINE s\n      INTEGER*4 k\n      k = 1\n      END\n"
        )
        assert isinstance(u.decls[0], Declaration)

    def test_assumed_size_dimension(self):
        u = parse_unit(
            "      SUBROUTINE s(a)\n      REAL a(*)\n      a(1) = 0\n      END\n"
        )
        assert isinstance(u.decls[0], Declaration)

    def test_bounds_range_declarator(self):
        u = parse_unit(
            "      SUBROUTINE s\n      REAL a(0:10)\n      a(0) = 1\n      END\n"
        )
        assert isinstance(u.decls[0], Declaration)


class TestStatements:
    def test_assignment(self):
        s = first_stmt("x = y + 1")
        assert isinstance(s, Assign)
        assert isinstance(s.target, NameRef)

    def test_array_assignment(self):
        s = first_stmt("a(i, j) = 0")
        assert isinstance(s.target, Apply)
        assert len(s.target.args) == 2

    def test_call_with_args(self):
        s = first_stmt("CALL foo(x, y + 1)")
        assert isinstance(s, CallStmt)
        assert s.name == "foo" and len(s.args) == 2

    def test_call_without_args(self):
        s = first_stmt("CALL foo")
        assert isinstance(s, CallStmt) and s.args == []

    def test_goto_forms(self):
        assert isinstance(first_stmt("GOTO 10"), Goto)
        assert isinstance(first_stmt("GO TO 10"), Goto)

    def test_continue_return_stop(self):
        assert isinstance(first_stmt("CONTINUE"), Continue)
        assert isinstance(first_stmt("RETURN"), Return)
        assert isinstance(first_stmt("STOP"), Stop)

    def test_write_print(self):
        s = first_stmt("WRITE (6, *) x, y")
        assert isinstance(s, IoStmt) and len(s.items) == 2
        s = first_stmt("PRINT *, x")
        assert isinstance(s, IoStmt) and s.kind == "print"

    def test_variable_named_call_assignable(self):
        s = first_stmt("call = 3")
        assert isinstance(s, Assign) and s.target.name == "call"

    def test_variable_named_do_assignable(self):
        s = first_stmt("do = 3")
        assert isinstance(s, Assign)


class TestIfForms:
    def test_logical_if(self):
        s = first_stmt("IF (x .GT. 0) y = 1")
        assert isinstance(s, LogicalIf)
        assert isinstance(s.stmt, Assign)

    def test_logical_if_goto(self):
        s = first_stmt("IF (x .GT. 0) GOTO 10")
        assert isinstance(s, LogicalIf)
        assert isinstance(s.stmt, Goto)

    def test_block_if(self):
        src = (
            "      SUBROUTINE s\n"
            "      IF (x .GT. 0) THEN\n"
            "        y = 1\n"
            "      ELSEIF (x .LT. 0) THEN\n"
            "        y = 2\n"
            "      ELSE\n"
            "        y = 3\n"
            "      ENDIF\n"
            "      END\n"
        )
        s = body_of(src)[0]
        assert isinstance(s, IfBlock)
        assert len(s.arms) == 2
        assert len(s.orelse) == 1

    def test_else_if_spelled_out(self):
        src = (
            "      SUBROUTINE s\n"
            "      IF (p) THEN\n"
            "        y = 1\n"
            "      ELSE IF (q) THEN\n"
            "        y = 2\n"
            "      END IF\n"
            "      END\n"
        )
        s = body_of(src)[0]
        assert isinstance(s, IfBlock) and len(s.arms) == 2

    def test_missing_endif_rejected(self):
        with pytest.raises(ParseError):
            parse_unit(
                "      SUBROUTINE s\n      IF (p) THEN\n      y = 1\n      END\n"
            )


class TestDoLoops:
    def test_enddo_form(self):
        src = (
            "      SUBROUTINE s\n      DO i = 1, n\n        a(i) = 0\n"
            "      ENDDO\n      END\n"
        )
        s = body_of(src)[0]
        assert isinstance(s, DoLoop)
        assert s.var == "i" and s.step is None

    def test_step(self):
        src = (
            "      SUBROUTINE s\n      DO i = 1, n, 2\n        a(i) = 0\n"
            "      ENDDO\n      END\n"
        )
        assert body_of(src)[0].step is not None

    def test_labeled_terminator(self):
        src = (
            "      SUBROUTINE s\n      DO 10 i = 1, n\n        a(i) = 0\n"
            " 10   CONTINUE\n      END\n"
        )
        s = body_of(src)[0]
        assert isinstance(s, DoLoop)
        assert s.end_label == 10
        assert isinstance(s.body[-1], Continue)

    def test_shared_terminator(self):
        src = (
            "      SUBROUTINE s\n"
            "      DO 10 i = 1, n\n"
            "      DO 10 j = 1, m\n"
            "        a(i) = j\n"
            " 10   CONTINUE\n"
            "      END\n"
        )
        outer = body_of(src)[0]
        assert isinstance(outer, DoLoop)
        inner = outer.body[0]
        assert isinstance(inner, DoLoop) and inner.var == "j"

    def test_labeled_enddo_keeps_label(self):
        src = (
            "      SUBROUTINE s\n      DO k = 2, 5\n"
            "        IF (b(k) .GT. 0) GOTO 1\n        a(k) = 0\n"
            " 1    ENDDO\n      END\n"
        )
        loop = body_of(src)[0]
        assert isinstance(loop.body[-1], Continue)
        assert loop.body[-1].label == 1

    def test_missing_enddo_rejected(self):
        with pytest.raises(ParseError):
            parse_unit("      SUBROUTINE s\n      DO i = 1, n\n      x = 1\n      END\n")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = expr_of("a + b * c")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_power_right_associative(self):
        e = expr_of("a ** b ** c")
        assert e.op == "**"
        assert isinstance(e.right, BinOp) and e.right.op == "**"

    def test_unary_minus(self):
        e = expr_of("-a + b")
        assert e.op == "+"
        assert isinstance(e.left, UnOp)

    def test_relational_nonassociative(self):
        e = expr_of("a + 1 .LT. b * 2")
        assert e.op == ".lt."

    def test_logical_precedence(self):
        e = expr_of("p .OR. q .AND. r")
        assert e.op == ".or."
        assert isinstance(e.right, BinOp) and e.right.op == ".and."

    def test_not_binds_tighter_than_and(self):
        e = expr_of(".NOT. p .AND. q")
        assert e.op == ".and."
        assert isinstance(e.left, UnOp)

    def test_parentheses(self):
        e = expr_of("(a + b) * c")
        assert e.op == "*"
        assert isinstance(e.left, BinOp) and e.left.op == "+"

    def test_apply_args(self):
        e = expr_of("f(a, b + 1)")
        assert isinstance(e, Apply) and len(e.args) == 2

    def test_int_literal(self):
        e = expr_of("42")
        assert isinstance(e, IntLit) and e.value == 42

    def test_freeform_relops(self):
        e = expr_of("a <= b")
        assert e.op == ".le."
