"""Unit tests for symbolic expressions (repro.symbolic.expr)."""

from fractions import Fraction

import pytest

from repro.errors import SymbolicError
from repro.symbolic import SymExpr, sym
from repro.symbolic.terms import Monomial


class TestConstruction:
    def test_zero(self):
        assert SymExpr().is_zero()
        assert sym(0).is_zero()

    def test_const(self):
        e = SymExpr.const(7)
        assert e.is_constant()
        assert e.constant_value() == 7

    def test_var(self):
        e = SymExpr.var("n")
        assert not e.is_constant()
        assert e.free_vars() == frozenset({"n"})

    def test_coerce_str_int_expr(self):
        assert SymExpr.coerce("x") == SymExpr.var("x")
        assert SymExpr.coerce(3) == SymExpr.const(3)
        e = sym("x") + 1
        assert SymExpr.coerce(e) is e

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            SymExpr.coerce(object())

    def test_zero_coefficients_dropped(self):
        e = sym("x") - sym("x")
        assert e.is_zero()
        assert e.terms == ()


class TestAlgebra:
    def test_add_merges_terms(self):
        e = sym("x") + sym("x") + 1
        assert e.coeff_of_var("x") == 2
        assert e.constant_term() == 1

    def test_sub(self):
        e = (sym("x") + 5) - (sym("y") + 2)
        assert e.coeff_of_var("x") == 1
        assert e.coeff_of_var("y") == -1
        assert e.constant_term() == 3

    def test_neg(self):
        e = -(sym("x") + 1)
        assert e.coeff_of_var("x") == -1
        assert e.constant_term() == -1

    def test_mul_distributes(self):
        e = (sym("x") + 1) * (sym("x") - 1)
        assert e.coeff_of(Monomial.var("x", 2)) == 1
        assert e.coeff_of_var("x") == 0
        assert e.constant_term() == -1

    def test_mul_by_constant(self):
        e = (sym("x") + 2) * 3
        assert e.coeff_of_var("x") == 3
        assert e.constant_term() == 6

    def test_radd_rsub_rmul(self):
        assert 1 + sym("x") == sym("x") + 1
        assert 5 - sym("x") == -(sym("x")) + 5
        assert 2 * sym("x") == sym("x") * 2

    def test_div_const_exact(self):
        e = (sym("x") * 4 + 6).div_const(2)
        assert e.coeff_of_var("x") == 2
        assert e.constant_term() == 3

    def test_div_const_fractional(self):
        e = sym("x").div_const(2)
        assert e.coeff_of_var("x") == Fraction(1, 2)

    def test_div_by_zero_raises(self):
        with pytest.raises(SymbolicError):
            sym("x").div_const(0)

    def test_scaled(self):
        assert sym("x").scaled(Fraction(3, 2)).coeff_of_var("x") == Fraction(3, 2)


class TestStructure:
    def test_degree(self):
        assert sym(3).degree() == 0
        assert sym("x").degree() == 1
        assert (sym("x") * sym("y")).degree() == 2

    def test_is_linear(self):
        assert (sym("x") + sym("y") + 3).is_linear()
        assert not (sym("x") * sym("y")).is_linear()

    def test_is_linear_in(self):
        e = sym("x") * sym("y") + sym("z")
        assert not e.is_linear_in("x")
        assert e.is_linear_in("z")
        assert (sym("x") + sym("y")).is_linear_in("x")

    def test_constant_value_nonconstant(self):
        assert (sym("x") + 1).constant_value() is None

    def test_non_constant_part(self):
        e = sym("x") + 7
        assert e.non_constant_part() == sym("x")

    def test_contains(self):
        e = sym("x") * sym("y")
        assert e.contains("x") and e.contains("y")
        assert not e.contains("z")

    def test_has_integer_coeffs(self):
        assert (sym("x") * 2).has_integer_coeffs()
        assert not sym("x").div_const(2).has_integer_coeffs()

    def test_monomials(self):
        e = sym("x") + 3
        assert Monomial.var("x") in e.monomials()


class TestSubstitutionEvaluation:
    def test_substitute_simple(self):
        e = sym("x") + 1
        assert e.substitute({"x": sym("y")}) == sym("y") + 1

    def test_substitute_simultaneous(self):
        e = sym("x") + sym("y")
        out = e.substitute({"x": sym("y"), "y": sym("x")})
        assert out == sym("x") + sym("y")

    def test_substitute_into_product(self):
        e = sym("x") * sym("x")
        out = e.substitute({"x": sym("y") + 1})
        assert out == (sym("y") + 1) * (sym("y") + 1)

    def test_substitute_no_hit_returns_self(self):
        e = sym("x") + 1
        assert e.substitute({"z": sym("y")}) is e

    def test_rename(self):
        e = sym("x") + sym("y")
        assert e.rename({"x": "a"}) == sym("a") + sym("y")

    def test_evaluate(self):
        e = sym("x") * sym("y") + 3
        assert e.evaluate({"x": 2, "y": 5}) == 13

    def test_evaluate_missing_raises(self):
        with pytest.raises(KeyError):
            sym("x").evaluate({})

    def test_evaluate_int(self):
        assert (sym("x") + 1).evaluate_int({"x": 2}) == 3

    def test_evaluate_int_rejects_fraction(self):
        with pytest.raises(SymbolicError):
            sym("x").div_const(2).evaluate_int({"x": 3})


class TestIdentityAndDisplay:
    def test_eq_with_number(self):
        assert sym(4) == 4
        assert sym("x") != 4

    def test_hash_consistent(self):
        assert hash(sym("x") + 1) == hash(1 + sym("x"))

    def test_str_ordering_constant_last(self):
        assert str(sym("i") + 3) == "i+3"

    def test_str_negative(self):
        assert str(-sym("i") + 1) == "-i+1"

    def test_str_zero(self):
        assert str(SymExpr()) == "0"

    def test_str_coefficient(self):
        assert str(sym("x") * 2) == "2*x"
