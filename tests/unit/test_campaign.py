"""Unit tests for campaign generation, sharding, and stats rollups."""

from __future__ import annotations

import json

import pytest

from repro.engine import GENERATOR_VERSION, generate_campaign, merge_rollups
from repro.engine.campaign import (
    build_library,
    format_scoreboard,
    load_rollup,
    parse_shard,
    shard_items,
)


class TestGenerator:
    def test_same_seed_same_corpus(self):
        a = generate_campaign(50, seed=42)
        b = generate_campaign(50, seed=42)
        assert [(i.name, i.source) for i in a] == [
            (i.name, i.source) for i in b
        ]

    def test_different_seeds_differ(self):
        a = generate_campaign(50, seed=1)
        b = generate_campaign(50, seed=2)
        assert [(i.name, i.source) for i in a] != [
            (i.name, i.source) for i in b
        ]

    def test_mix_contains_all_item_kinds(self):
        kinds = {i.name.split("-")[0] for i in generate_campaign(100, seed=0)}
        assert kinds == {"lib", "app", "nest"}

    def test_count_respected(self):
        assert len(generate_campaign(17, seed=3)) == 17
        with pytest.raises(ValueError):
            generate_campaign(0)

    def test_library_pool_repeats_across_items(self):
        """App items embed byte-identical routine sources — the identity
        that makes cross-item cache reuse possible."""
        library = dict(build_library(5, 8))
        items = generate_campaign(60, seed=5, library_size=8)
        embedded = [
            i for i in items if i.name.startswith("app-")
            if any(src in i.source for src in library.values())
        ]
        assert embedded  # at least one app embeds a pool routine verbatim


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/2") == (1, 2)
        assert parse_shard("3/3") == (3, 3)
        for bad in ("0/2", "3/2", "2", "a/b", "1/0", "-1/2"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_round_robin_partition_is_exact(self):
        items = generate_campaign(41, seed=9)
        shards = [shard_items(items, i, 4) for i in (1, 2, 3, 4)]
        names = [x.name for s in shards for x in s]
        assert sorted(names) == sorted(i.name for i in items)
        assert len(set(names)) == len(items)
        # round-robin: sizes differ by at most one
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_is_identity(self):
        items = generate_campaign(10, seed=0)
        assert [i.name for i in shard_items(items, 1, 1)] == [
            i.name for i in items
        ]


def _payload(**over):
    base = {
        "files": 2, "errors": 0, "loops": 6, "parallel_loops": 4, "jobs": 1,
        "wall_seconds": 1.5,
        "timings": {"total": 1.0},
        "stats": {"nodes_visited": 10, "peak_gar_list": 3},
        "cache": {"hits": 4, "misses": 2},
        "resilience": {"retries": 0},
        "audit": {},
        "symbolic": {},
        "verdicts": {"parallel": 4, "serial": 2},
        "cache_backend": "shared",
        "sched": {"mode": "topo", "edges": 3, "gated_items": 2,
                  "cyclic_items": 0, "opaque_items": 0, "topo_hits": 2},
        "campaign": {"seed": 7, "generator_version": GENERATOR_VERSION,
                     "count": 20, "shard": "1/2"},
    }
    base.update(over)
    return base


class TestRollup:
    def test_counters_sum_and_peaks_max(self):
        second = _payload(
            files=3, loops=9, wall_seconds=2.0,
            stats={"nodes_visited": 5, "peak_gar_list": 9},
            verdicts={"parallel": 5, "parallel (reduction)": 4},
            campaign={"seed": 7, "generator_version": GENERATOR_VERSION,
                      "count": 20, "shard": "2/2"},
        )
        merged = merge_rollups([_payload(), second])
        assert merged["shards"] == 2
        assert merged["files"] == 5
        assert merged["loops"] == 15
        assert merged["stats"]["nodes_visited"] == 15
        assert merged["stats"]["peak_gar_list"] == 9  # max, not sum
        assert merged["verdicts"] == {
            "parallel": 9, "serial": 2, "parallel (reduction)": 4
        }
        assert merged["cache"]["hits"] == 8
        assert merged["cache"]["hit_rate"] == pytest.approx(8 / 12, abs=1e-4)
        assert merged["wall_seconds"] == {"total": 3.5, "max": 2.0}
        assert merged["sched"]["topo_hits"] == 4
        assert merged["campaign"]["seed"] == 7
        assert merged["campaign"]["shards"] == ["1/2", "2/2"]

    def test_seed_and_version_recorded(self):
        merged = merge_rollups([_payload()])
        assert merged["campaign"]["generator_version"] == GENERATOR_VERSION
        assert merged["campaign"]["seed"] == 7
        board = format_scoreboard(merged)
        assert f"seed=7" in board and f"generator=v{GENERATOR_VERSION}" in board

    def test_mixed_campaigns_refused(self):
        other = _payload(
            campaign={"seed": 8, "generator_version": GENERATOR_VERSION,
                      "count": 20, "shard": "2/2"}
        )
        with pytest.raises(ValueError, match="different campaigns"):
            merge_rollups([_payload(), other])

    def test_empty_refused(self):
        with pytest.raises(ValueError):
            merge_rollups([])

    def test_load_rollup_from_files(self, tmp_path):
        p1, p2 = tmp_path / "s1.json", tmp_path / "s2.json"
        p1.write_text(json.dumps(_payload()))
        p2.write_text(json.dumps(_payload(
            campaign={"seed": 7, "generator_version": GENERATOR_VERSION,
                      "count": 20, "shard": "2/2"})))
        merged = load_rollup([str(p1), str(p2)])
        assert merged["shards"] == 2
