"""Unit tests for GAR set operations (paper section 3.1, GAR operations)."""

from repro.symbolic import Comparer, Env, Predicate, sym
from repro.regions import (
    GAR,
    GARList,
    Range,
    RegularRegion,
    gar_intersect,
    gar_subtract,
    gar_union,
    intersect_lists,
    lists_intersect_empty,
    subtract_lists,
    union_lists,
)


def gar(lo, hi, guard=None, array="a", exact=True):
    return GAR(
        guard if guard is not None else Predicate.true(),
        RegularRegion(array, [Range(lo, hi)]),
        exact,
    )


def check_concrete(got: GARList, expect: set, env=None):
    assert got.enumerate(env or Env()) == {(x,) for x in expect}


class TestGARIntersect:
    def test_guards_conjoin(self, cmp):
        t1 = gar(1, 10, Predicate.boolvar("p"))
        t2 = gar(5, 20, Predicate.boolvar("q"))
        out = gar_intersect(t1, t2, cmp)
        check_concrete(out, set(range(5, 11)), Env(p=1, q=1))
        check_concrete(out, set(), Env(p=1, q=0))

    def test_contradictory_guards_empty(self, cmp):
        t1 = gar(1, 10, Predicate.boolvar("p"))
        t2 = gar(5, 20, Predicate.boolvar("p", False))
        assert gar_intersect(t1, t2, cmp).is_empty()

    def test_paper_window_vs_point(self, cmp):
        # [p, (jlow:jup)] n [not p, (jmax)] is empty by guards alone
        t1 = gar("jlow", "jup", Predicate.boolvar("p"))
        t2 = gar("jmax", "jmax", Predicate.boolvar("p", False))
        assert gar_intersect(t1, t2, cmp).provably_empty()

    def test_inexact_operand_inexact_result(self, cmp):
        t1 = gar(1, 10, exact=False)
        t2 = gar(5, 20)
        out = gar_intersect(t1, t2, cmp)
        assert all(not g.exact for g in out)


class TestGARUnion:
    def test_same_region_guards_or(self, cmp):
        t1 = gar(1, 10, Predicate.boolvar("p"))
        t2 = gar(1, 10, Predicate.boolvar("p", False))
        out = gar_union(t1, t2, cmp)
        assert len(out) == 1
        assert out.gars[0].guard.is_true()

    def test_same_guard_regions_merge(self, cmp):
        t1 = gar(1, 5)
        t2 = gar(6, 10)
        out = gar_union(t1, t2, cmp)
        assert len(out) == 1
        check_concrete(out, set(range(1, 11)))

    def test_paper_adjacent_symbolic(self, cmp):
        # T1 = [a<=b, (a:b)], T2 = [b<=c, (b:c)] -> three-piece result
        t1 = gar("a", "b", Predicate.le("a", "b"))
        t2 = gar("b", "c", Predicate.le("b", "c"))
        out = gar_union(t1, t2, cmp)
        for env in (Env(a=1, b=5, c=9), Env(a=5, b=2, c=9), Env(a=1, b=9, c=2)):
            expect = t1.enumerate(env) | t2.enumerate(env)
            assert out.enumerate(env) == expect

    def test_implication_case_merges(self):
        c = Comparer()
        t1 = gar(1, 5, Predicate.boolvar("p") & Predicate.boolvar("q"))
        t2 = gar(6, 10, Predicate.boolvar("p"))
        out = gar_union(t1, t2, c)
        for env in (Env(p=1, q=1), Env(p=1, q=0), Env(p=0, q=0)):
            assert out.enumerate(env) == t1.enumerate(env) | t2.enumerate(env)

    def test_unmergeable_stays_list(self, cmp):
        t1 = gar(1, 3, Predicate.boolvar("p"))
        t2 = gar(7, 9, Predicate.boolvar("q"))
        out = gar_union(t1, t2, cmp)
        assert set(out.gars) == {t1, t2}


class TestGARSubtract:
    def test_plain_subtract(self, cmp):
        out = gar_subtract(gar(1, 10), gar(4, 6), cmp)
        check_concrete(out, {1, 2, 3, 7, 8, 9, 10})

    def test_guarded_subtrahend_escape_branch(self, cmp):
        # writing (4:6) only when p: without p nothing is killed
        out = gar_subtract(gar(1, 10), gar(4, 6, Predicate.boolvar("p")), cmp)
        check_concrete(out, {1, 2, 3, 7, 8, 9, 10}, Env(p=1))
        check_concrete(out, set(range(1, 11)), Env(p=0))

    def test_figure5_shape(self, cmp):
        # (jlow:jup) use minus (jmax) write: boundary case split
        use = gar("jlow", "jup")
        write = gar("jmax", "jmax")
        out = gar_subtract(use, write, cmp)
        for env in (
            Env(jlow=2, jup=9, jmax=5),
            Env(jlow=2, jup=9, jmax=2),
            Env(jlow=2, jup=9, jmax=9),
            Env(jlow=2, jup=9, jmax=40),
        ):
            expect = use.enumerate(env) - write.enumerate(env)
            assert out.enumerate(env) == expect

    def test_inexact_subtrahend_does_not_kill(self, cmp):
        minuend = gar(1, 10)
        subtrahend = gar(1, 10, exact=False)
        out = gar_subtract(minuend, subtrahend, cmp)
        check_concrete(out, set(range(1, 11)))
        assert all(not g.exact for g in out)

    def test_unknown_guard_subtrahend_does_not_kill(self, cmp):
        out = gar_subtract(gar(1, 10), gar(1, 10, Predicate.unknown()), cmp)
        check_concrete(out, set(range(1, 11)))

    def test_different_arrays_untouched(self, cmp):
        out = gar_subtract(gar(1, 10), gar(1, 10, array="b"), cmp)
        check_concrete(out, set(range(1, 11)))

    def test_exact_total_kill(self, cmp):
        out = gar_subtract(gar(1, "n"), gar(1, "n"), cmp)
        assert out.provably_empty()


class TestListOps:
    def test_union_lists_simplifies(self, cmp):
        a = GARList.of(gar(1, 5))
        b = GARList.of(gar(6, 10))
        out = union_lists(a, b, cmp)
        assert len(out) == 1

    def test_intersect_lists_distributes(self, cmp):
        a = GARList.of(gar(1, 5), gar(20, 30))
        b = GARList.of(gar(3, 25))
        out = intersect_lists(a, b, cmp)
        check_concrete(out, {3, 4, 5} | set(range(20, 26)))

    def test_intersect_lists_skips_other_arrays(self, cmp):
        a = GARList.of(gar(1, 5))
        b = GARList.of(gar(1, 5, array="b"))
        assert intersect_lists(a, b, cmp).is_empty()

    def test_subtract_lists_folds(self, cmp):
        minuend = GARList.of(gar(1, 10))
        subtrahend = GARList.of(gar(2, 3), gar(7, 8))
        out = subtract_lists(minuend, subtrahend, cmp)
        check_concrete(out, {1, 4, 5, 6, 9, 10})

    def test_lists_intersect_empty(self, cmp):
        a = GARList.of(gar(1, 5))
        b = GARList.of(gar(7, 9))
        assert lists_intersect_empty(a, b, cmp)
        assert not lists_intersect_empty(a, GARList.of(gar(5, 9)), cmp)

    def test_lists_intersect_empty_symbolic_guarded(self, cmp):
        # a(i) for i in prior iterations vs a(i) used now: guard i >= 2
        use = GARList.of(gar("i", "i"))
        prior = GARList.of(gar(1, sym("i") - 1, Predicate.ge("i", 2)))
        assert lists_intersect_empty(use, prior, cmp)
