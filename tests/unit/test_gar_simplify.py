"""Unit tests for the GAR simplifier (paper section 5.2)."""

from repro.symbolic import Comparer, Env, Predicate, sym
from repro.regions import GAR, GARList, Range, RegularRegion, simplify_gar_list


def gar(lo, hi, guard=None, array="a", exact=True):
    return GAR(
        guard if guard is not None else Predicate.true(),
        RegularRegion(array, [Range(lo, hi)]),
        exact,
    )


class TestSimplify:
    def test_removes_provably_empty(self, cmp):
        lst = GARList.of(
            gar("l", "u", Predicate.le("u", sym("l") - 1)),
            gar(1, 5),
        )
        out = simplify_gar_list(lst, cmp)
        assert len(out) == 1

    def test_merges_same_region_different_guards(self, cmp):
        lst = GARList.of(
            gar(1, 5, Predicate.boolvar("p")),
            gar(1, 5, Predicate.boolvar("p", False)),
        )
        out = simplify_gar_list(lst, cmp)
        assert len(out) == 1
        assert out.gars[0].guard.is_true()

    def test_merges_adjacent_same_guard(self, cmp):
        lst = GARList.of(gar(1, 5), gar(6, 10), gar(11, 20))
        out = simplify_gar_list(lst, cmp)
        assert len(out) == 1
        assert out.gars[0].region == RegularRegion("a", [Range(1, 20)])

    def test_removes_covered(self, cmp):
        lst = GARList.of(gar(1, 100), gar(5, 10))
        out = simplify_gar_list(lst, cmp)
        assert len(out) == 1
        assert out.gars[0].region == RegularRegion("a", [Range(1, 100)])

    def test_coverage_requires_guard_implication(self, cmp):
        big = gar(1, 100, Predicate.boolvar("p"))
        small = gar(5, 10)  # guard True, not implied by p
        out = simplify_gar_list(GARList.of(big, small), cmp)
        assert len(out) == 2

    def test_equal_gars_dedup(self, cmp):
        g = gar(1, 5, Predicate.boolvar("p"))
        out = simplify_gar_list(GARList.of(g, g), cmp)
        assert len(out) == 1

    def test_different_arrays_never_merge(self, cmp):
        lst = GARList.of(gar(1, 5), gar(6, 10, array="b"))
        assert len(simplify_gar_list(lst, cmp)) == 2

    def test_preserves_semantics(self, cmp):
        lst = GARList.of(
            gar(1, "n"),
            gar(sym("n") + 1, sym("n") + 5),
            gar(2, 4, Predicate.boolvar("p")),
        )
        out = simplify_gar_list(lst, cmp)
        for env in (Env(n=3, p=1), Env(n=3, p=0), Env(n=0, p=1)):
            assert out.enumerate(env) == lst.enumerate(env)

    def test_large_lists_skip_quadratic_pass(self, cmp):
        gars = [gar(i * 10, i * 10 + 5) for i in range(50)]
        out = simplify_gar_list(GARList(gars), cmp)
        assert len(out) == 50  # beyond MAX_PAIRWISE: kept as-is
