"""Unit tests for the cost model and machine speedup model."""

import pytest

from repro.fortran import analyze, parse_program
from repro.machine import CostModel, MachineModel


def cost_of(source: str, sizes=None):
    return CostModel(analyze(parse_program(source)), sizes).program_cost()


SIMPLE = (
    "      PROGRAM p\n"
    "      REAL a(100)\n"
    "      INTEGER i\n"
    "      DO 10 i = 1, 100\n"
    "        a(i) = 1.0\n"
    " 10   CONTINUE\n"
    "      END\n"
)


class TestCostModel:
    def test_loop_cost_scales_with_trips(self):
        small = cost_of(SIMPLE.replace("1, 100", "1, 10"))
        big = cost_of(SIMPLE)
        assert big.total > small.total * 5

    def test_loop_record(self):
        cost = cost_of(SIMPLE)
        lc = cost.loop("p", 10)
        assert lc.trips == 100
        assert lc.vectorizable_inner

    def test_symbolic_trip_resolved_from_sizes(self):
        src = SIMPLE.replace("1, 100", "1, n").replace(
            "      INTEGER i\n", "      INTEGER i, n\n"
        )
        cost = cost_of(src, sizes={"n": 40})
        assert cost.loop("p", 10).trips == 40

    def test_symbolic_trip_default_when_unresolvable(self):
        src = SIMPLE.replace("1, 100", "1, n").replace(
            "      INTEGER i\n", "      INTEGER i, n\n"
        )
        cost = cost_of(src)
        assert cost.loop("p", 10).trips == 50  # DEFAULT_TRIP

    def test_percent_of_sequential(self):
        cost = cost_of(SIMPLE)
        lc = cost.loop("p", 10)
        pct = cost.percent_of_sequential(lc)
        assert 90 <= pct <= 100

    def test_call_multiplicity_counted(self):
        src = (
            "      PROGRAM p\n      REAL a(100)\n"
            "      CALL w(a)\n      CALL w(a)\n      END\n"
            "      SUBROUTINE w(a)\n      REAL a(100)\n      INTEGER i\n"
            "      DO 10 i = 1, 50\n        a(i) = 1.0\n 10   CONTINUE\n"
            "      END\n"
        )
        cost = cost_of(src)
        lc = cost.loop("w", 10)
        assert lc.invocations == 2
        assert lc.total_cost == pytest.approx(
            2 * lc.trips * (lc.body_cost + 0.5) + 2
        )

    def test_call_inside_loop_multiplies(self):
        src = (
            "      PROGRAM p\n      REAL a(100)\n      INTEGER k\n"
            "      DO k = 1, 4\n        CALL w(a)\n      ENDDO\n      END\n"
            "      SUBROUTINE w(a)\n      REAL a(100)\n      INTEGER i\n"
            "      DO 10 i = 1, 50\n        a(i) = 1.0\n 10   CONTINUE\n"
            "      END\n"
        )
        cost = cost_of(src)
        assert cost.loop("w", 10).invocations == 4

    def test_vectorizable_detection(self):
        src = (
            "      PROGRAM p\n      REAL a(100)\n      INTEGER i\n"
            "      DO 10 i = 1, 10\n        IF (a(i) .GT. 0.0) a(i) = 0.0\n"
            " 10   CONTINUE\n      END\n"
        )
        assert not cost_of(src).loop("p", 10).vectorizable_inner

    def test_outer_loop_vectorizable_through_inner(self):
        src = (
            "      PROGRAM p\n      REAL a(100)\n      INTEGER i, j\n"
            "      DO 10 i = 1, 10\n"
            "        DO j = 1, 10\n          a(j) = 1.0\n        ENDDO\n"
            " 10   CONTINUE\n      END\n"
        )
        assert cost_of(src).loop("p", 10).vectorizable_inner


class TestMachineModel:
    def _loop(self, trips=100.0, body=50.0, vector=False):
        from repro.machine.costmodel import LoopCost

        return LoopCost(
            routine="p",
            source_label=1,
            var="i",
            lineno=1,
            trips=trips,
            body_cost=body,
            total_cost=trips * body,
            invocations=1.0,
            vectorizable_inner=vector,
        )

    def test_speedup_bounded_by_processors_when_scalar(self):
        model = MachineModel(processors=8, vector_factor=1.0)
        s = model.loop_speedup(self._loop())
        assert 1.0 < s <= 8.0

    def test_vector_loops_exceed_processor_count(self):
        model = MachineModel(processors=8)
        s = model.loop_speedup(self._loop(vector=True))
        assert s > 8.0

    def test_small_trip_counts_limit_speedup(self):
        model = MachineModel(processors=8)
        s = model.loop_speedup(self._loop(trips=3.0, body=500.0))
        assert s < 3.2

    def test_tiny_loops_hurt_by_startup(self):
        model = MachineModel()
        s = model.loop_speedup(self._loop(trips=4.0, body=1.0))
        assert s < 2.0

    def test_program_speedup_amdahl(self):
        model = MachineModel(processors=8, vector_factor=1.0)
        from repro.machine.costmodel import ProgramCost

        lc = self._loop(trips=100.0, body=100.0)
        cost = ProgramCost(total=lc.total_cost * 2, loops=[lc])
        s = model.program_speedup(cost, [lc])
        assert 1.5 < s < 2.1  # half the program parallelizes

    def test_speedup_never_below_one(self):
        model = MachineModel()
        assert model.loop_speedup(self._loop(trips=1.0, body=0.5)) >= 1.0
