"""Unit tests for the call-graph-topology-aware batch scheduler."""

from __future__ import annotations

import pytest

from repro.dataflow import AnalysisOptions
from repro.engine import BatchItem, plan_schedule, resolve_schedule_mode
from repro.engine.scheduler import item_topology
from repro.kernels.synthetic import make_driver, make_routine

LIB_A = make_routine("liba", "private", 200)
LIB_B = make_routine("libb", "reduction", 200)
APP_AB = make_driver("appab", ["liba", "libb"], 200) + LIB_A + LIB_B
APP_A = make_driver("appa", ["liba"], 200) + LIB_A

OPTS = AnalysisOptions()


class TestItemTopology:
    def test_bare_routine_is_pure_provider(self):
        topo = item_topology(LIB_A, OPTS)
        assert len(topo.provides) == 1
        assert topo.consumes == frozenset()
        assert not topo.opaque

    def test_app_consumes_its_callees(self):
        topo = item_topology(APP_AB, OPTS)
        lib_a = item_topology(LIB_A, OPTS)
        lib_b = item_topology(LIB_B, OPTS)
        # the embedded routines carry the same fingerprints as the
        # standalone library items — that identity is the whole game
        assert lib_a.provides < topo.consumes or lib_a.provides <= topo.consumes
        assert lib_b.provides <= topo.consumes
        # the driver itself has no in-item caller: it is provided
        assert len(topo.provides) == 1

    def test_unparseable_source_is_opaque(self):
        topo = item_topology("THIS IS NOT FORTRAN ((", OPTS)
        assert topo.opaque
        assert topo.provides == frozenset() == topo.consumes


class TestPlan:
    def test_providers_ordered_before_consumers(self):
        items = [
            BatchItem("app-ab", APP_AB),
            BatchItem("lib-a", LIB_A),
            BatchItem("app-a", APP_A),
            BatchItem("lib-b", LIB_B),
        ]
        plan = plan_schedule(items, OPTS, "topo")
        assert sorted(plan.order) == [0, 1, 2, 3]
        pos = {idx: k for k, idx in enumerate(plan.order)}
        assert pos[1] < pos[0] and pos[3] < pos[0]  # libs before app-ab
        assert pos[1] < pos[2]  # lib-a before app-a
        assert plan.deps[0] == {1, 3}
        assert plan.deps[2] == {1}
        assert plan.edges == 3
        assert plan.gated_items == 2
        assert plan.mode == "topo"

    def test_plan_is_deterministic(self):
        items = [
            BatchItem("a", APP_AB),
            BatchItem("b", LIB_B),
            BatchItem("c", LIB_A),
        ]
        first = plan_schedule(items, OPTS, "topo")
        second = plan_schedule(items, OPTS, "topo")
        assert first.order == second.order
        assert first.deps == second.deps

    def test_identical_library_items_are_not_mutually_gated(self):
        """Symmetric overlap (same provided fingerprint) creates no
        edge: only provider→consumer asymmetry does."""
        items = [BatchItem("l1", LIB_A), BatchItem("l2", LIB_A)]
        plan = plan_schedule(items, OPTS, "topo")
        assert plan.edges == 0
        assert plan.deps == {0: set(), 1: set()}
        assert plan.cyclic_items == 0

    def test_arbitrary_mode_keeps_input_order(self):
        items = [BatchItem("a", APP_AB), BatchItem("b", LIB_A)]
        plan = plan_schedule(items, OPTS, "arbitrary")
        assert plan.order == [0, 1]
        assert plan.edges == 0

    def test_opaque_items_ride_ungated(self):
        items = [
            BatchItem("bad", "NOT FORTRAN"),
            BatchItem("lib", LIB_A),
            BatchItem("app", APP_A),
        ]
        plan = plan_schedule(items, OPTS, "topo")
        assert plan.opaque_items == 1
        assert plan.deps[0] == set()
        assert sorted(plan.order) == [0, 1, 2]


class TestResolveMode:
    def test_explicit_modes_pass_through(self):
        assert resolve_schedule_mode("topo", 10, 4, None) == "topo"
        assert resolve_schedule_mode("arbitrary", 10, 1, "/tmp/c") == "arbitrary"

    def test_auto_in_process_runs_topo(self):
        assert resolve_schedule_mode("auto", 10, 1, None) == "topo"

    def test_auto_pool_needs_durable_tier(self):
        assert resolve_schedule_mode("auto", 10, 4, "/tmp/c") == "topo"
        assert resolve_schedule_mode("auto", 10, 4, None) == "arbitrary"

    def test_auto_single_item_is_arbitrary(self):
        assert resolve_schedule_mode("auto", 1, 1, None) == "arbitrary"

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown schedule mode"):
            resolve_schedule_mode("topological", 2, 1, None)
