"""Unit tests for the pluggable durable cache tiers (engine/backends.py).

Covers backend selection (arg, env, factory errors), disk-layout
compatibility with pre-split caches, the shared SQLite tier under
concurrent writer processes, corrupt-row quarantine, and contention
accounting.
"""

from __future__ import annotations

import multiprocessing
import os
import sqlite3

import pytest

from repro.engine import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    RoutineCacheEntry,
    SummaryCache,
)
from repro.engine.backends import (
    BACKEND_KINDS,
    ENV_BACKEND_VAR,
    DiskBackend,
    SharedSQLiteBackend,
    default_backend_kind,
    make_backend,
)


def fp(i: int) -> str:
    return f"{i:064x}"


def entry(i: int) -> RoutineCacheEntry:
    return RoutineCacheEntry(fingerprint=fp(i), routine=f"r{i}")


# --------------------------------------------------------------------------- #
# selection
# --------------------------------------------------------------------------- #


class TestSelection:
    def test_memory_only_without_cache_dir(self):
        assert make_backend("shared", None) is None
        assert SummaryCache().backend_name == "memory"

    def test_kind_argument_wins(self, tmp_path):
        assert isinstance(make_backend("disk", tmp_path), DiskBackend)
        assert isinstance(make_backend("shared", tmp_path), SharedSQLiteBackend)

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND_VAR, raising=False)
        assert default_backend_kind() == "disk"
        monkeypatch.setenv(ENV_BACKEND_VAR, "shared")
        assert default_backend_kind() == "shared"
        cache = SummaryCache(tmp_path)
        assert cache.backend_name == "shared"

    def test_bad_env_falls_back_to_disk(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND_VAR, "redis")
        assert default_backend_kind() == "disk"

    def test_unknown_kind_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            make_backend("memcached", tmp_path)

    def test_kinds_are_wired_everywhere(self):
        assert set(BACKEND_KINDS) == {"disk", "shared"}

    def test_backend_instance_accepted(self, tmp_path):
        backend = SharedSQLiteBackend(tmp_path)
        cache = SummaryCache(tmp_path, backend=backend)
        assert cache.backend is backend
        assert backend.stats is cache.stats  # rebound to the cache's sink


# --------------------------------------------------------------------------- #
# disk tier compatibility
# --------------------------------------------------------------------------- #


class TestDiskCompatibility:
    def test_pre_split_layout_still_readable(self, tmp_path):
        """A cache directory written before the backend split (same v3
        container format) must be served verbatim by DiskBackend."""
        old = SummaryCache(tmp_path, backend="disk")
        old.put(entry(1))
        path = old._path(fp(1))
        assert path is not None and path.exists()
        assert path.parent.name == fp(1)[:2]  # unchanged sharding

        fresh = SummaryCache(tmp_path, backend="disk")
        got = fresh.get(fp(1))
        assert got is not None and got.routine == "r1"
        assert fresh.stats.disk_hits == 1

    def test_backends_share_the_fingerprint_keyspace(self, tmp_path):
        """Switching backends relocates entries, never invalidates keys:
        the same fingerprint round-trips through either tier."""
        disk = SummaryCache(tmp_path / "d", backend="disk")
        shared = SummaryCache(tmp_path / "s", backend="shared")
        disk.put(entry(7))
        shared.put(entry(7))
        disk.clear_memory()
        shared.clear_memory()
        a, b = disk.get(fp(7)), shared.get(fp(7))
        assert a is not None and b is not None
        assert a.fingerprint == b.fingerprint == fp(7)


# --------------------------------------------------------------------------- #
# the shared SQLite tier
# --------------------------------------------------------------------------- #


class TestSharedBackend:
    def test_roundtrip_and_counters(self, tmp_path):
        stats = CacheStats()
        backend = SharedSQLiteBackend(tmp_path, stats)
        backend.put(entry(3))
        assert backend.contains(fp(3))
        assert not backend.contains(fp(4))
        got = backend.get(fp(3))
        assert got is not None and got.routine == "r3"
        assert stats.shared_hits == 1
        assert backend.get(fp(4)) is None
        assert stats.shared_misses == 1

    def test_upsert_overwrites(self, tmp_path):
        backend = SharedSQLiteBackend(tmp_path)
        backend.put(entry(5))
        richer = entry(5)
        richer.routine = "renamed"
        backend.put(richer)
        assert backend.entry_count() == 1
        assert backend.get(fp(5)).routine == "renamed"

    def test_corrupt_payload_quarantined(self, tmp_path):
        stats = CacheStats()
        backend = SharedSQLiteBackend(tmp_path, stats)
        backend.put(entry(9))
        conn = sqlite3.connect(backend.db_path)
        conn.execute(
            "UPDATE summaries SET payload = ? WHERE fingerprint = ?",
            (b"\x00garbage", fp(9)),
        )
        conn.commit()
        conn.close()
        assert backend.get(fp(9)) is None  # never served
        assert stats.quarantined == 1
        assert backend.quarantined_rows() == [(fp(9), "checksum")]
        assert backend.entry_count() == 0  # removed from the live table
        assert backend.get(fp(9)) is None  # and not re-quarantined
        assert stats.quarantined == 1

    def test_wrong_version_quarantined(self, tmp_path):
        import hashlib
        import pickle

        stats = CacheStats()
        backend = SharedSQLiteBackend(tmp_path, stats)
        payload = pickle.dumps((CACHE_FORMAT_VERSION + 1, entry(11)))
        digest = hashlib.sha256(payload).digest()
        conn = sqlite3.connect(backend.db_path)
        backend._connection()  # create schema
        conn.execute(
            "INSERT INTO summaries (fingerprint, digest, payload, stored_at)"
            " VALUES (?, ?, ?, 0)",
            (fp(11), digest, payload),
        )
        conn.commit()
        conn.close()
        assert backend.get(fp(11)) is None
        assert backend.quarantined_rows() == [(fp(11), "version")]

    def test_contention_retry_counted(self, tmp_path):
        stats = CacheStats()
        backend = SharedSQLiteBackend(
            tmp_path, stats, max_retries=3, retry_sleep_s=0.0
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert backend._with_retry(flaky) == "ok"
        assert stats.contention_retries == 2
        assert stats.disk_errors == 0

    def test_exhausted_retries_degrade_not_raise(self, tmp_path):
        stats = CacheStats()
        backend = SharedSQLiteBackend(
            tmp_path, stats, max_retries=2, retry_sleep_s=0.0
        )

        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        assert backend._with_retry(always_locked, default="d") == "d"
        assert stats.contention_retries == 2
        assert stats.disk_errors == 1

    def test_pickles_without_connection(self, tmp_path):
        import pickle

        backend = SharedSQLiteBackend(tmp_path)
        backend.put(entry(13))  # opens the handle
        clone = pickle.loads(pickle.dumps(backend))
        assert clone._conn is None
        assert clone.get(fp(13)) is not None  # reopens lazily

    def test_close_then_reuse(self, tmp_path):
        backend = SharedSQLiteBackend(tmp_path)
        backend.put(entry(15))
        backend.close()
        assert backend.get(fp(15)) is not None


def _writer(cache_dir: str, base: int, count: int) -> None:
    backend = SharedSQLiteBackend(cache_dir, retry_sleep_s=0.001)
    for i in range(base, base + count):
        backend.put(
            RoutineCacheEntry(fingerprint=f"{i:064x}", routine=f"r{i}")
        )
    backend.close()
    os._exit(0)


class TestConcurrentWriters:
    def test_n_processes_one_database(self, tmp_path):
        """Four writer processes race on one tier; every row must land
        and verify (WAL + busy retries absorb the contention)."""
        writers, per = 4, 25
        procs = [
            multiprocessing.Process(
                target=_writer, args=(str(tmp_path), w * per, per)
            )
            for w in range(writers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        backend = SharedSQLiteBackend(tmp_path)
        assert backend.entry_count() == writers * per
        for i in range(writers * per):
            got = backend.get(f"{i:064x}")
            assert got is not None and got.routine == f"r{i}"
        assert backend.quarantined_rows() == []


# --------------------------------------------------------------------------- #
# quarantine growth cap
# --------------------------------------------------------------------------- #


def corrupt_disk_entry(backend: DiskBackend, i: int) -> None:
    path = backend.path(fp(i))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not a cache container")


class TestQuarantineCap:
    def test_disk_quarantine_evicts_oldest_beyond_cap(self, tmp_path):
        from repro.resilience import CircuitBreaker

        backend = DiskBackend(
            tmp_path,
            quarantine_cap=3,
            # a lenient breaker: this test is about the cap, and six
            # consecutive corrupt reads would trip the default breaker
            breaker=CircuitBreaker(failure_threshold=1000),
        )
        for i in range(6):
            corrupt_disk_entry(backend, i)
            assert backend.get(fp(i)) is None
        qdir = tmp_path / "quarantine"
        kept = [p for p in qdir.iterdir() if p.is_file()]
        assert len(kept) == 3
        assert backend.stats.quarantined == 6
        assert backend.stats.quarantine_evicted == 3

    def test_shared_quarantine_table_capped(self, tmp_path):
        from repro.resilience import CircuitBreaker

        backend = SharedSQLiteBackend(
            tmp_path,
            quarantine_cap=2,
            breaker=CircuitBreaker(failure_threshold=1000),
        )
        conn = backend._connection()
        for i in range(5):
            conn.execute(
                "INSERT INTO summaries (fingerprint, digest, payload,"
                " stored_at) VALUES (?, zeroblob(32), ?, 0)",
                (fp(i), b"garbage"),
            )
            assert backend.get(fp(i)) is None  # verification fails
        assert len(backend.quarantined_rows()) == 2
        assert backend.stats.quarantined == 5
        assert backend.stats.quarantine_evicted == 3
        # newest evidence survives, oldest was dropped
        kept = {row[0] for row in backend.quarantined_rows()}
        assert kept == {fp(3), fp(4)}


# --------------------------------------------------------------------------- #
# circuit breaker integration
# --------------------------------------------------------------------------- #


class TestBackendBreaker:
    @pytest.fixture(autouse=True)
    def clean_faults(self, monkeypatch):
        from repro.resilience import faults

        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.reset()
        yield monkeypatch
        faults.reset()

    def test_persistent_busy_trips_then_short_circuits(
        self, clean_faults, tmp_path
    ):
        from repro.resilience import CircuitBreaker, faults

        clean_faults.setenv(faults.ENV_VAR, "backend.busy")
        faults.reset()
        backend = SharedSQLiteBackend(
            tmp_path,
            max_retries=1,
            retry_sleep_s=0.0,
            breaker=CircuitBreaker(failure_threshold=3, probe_after=4, seed=0),
        )
        for _ in range(3):  # three busy-exhausted ops trip the breaker
            assert backend.contains(fp(1)) is False
        assert backend.stats.breaker_trips == 1
        before = backend.stats.disk_errors
        backend.contains(fp(1))  # short-circuited: no retry ladder runs
        assert backend.stats.breaker_skipped == 1
        assert backend.stats.disk_errors == before

    def test_probe_recovery_reenables_shared_tier(
        self, clean_faults, tmp_path
    ):
        from repro.resilience import CircuitBreaker, faults

        # exactly three busy faults, then the database is healthy again
        clean_faults.setenv(
            faults.ENV_VAR,
            "backend.busy@1;backend.busy@2;backend.busy@3",
        )
        faults.reset()
        backend = SharedSQLiteBackend(
            tmp_path,
            max_retries=1,
            retry_sleep_s=0.0,
            breaker=CircuitBreaker(failure_threshold=3, probe_after=2, seed=0),
        )
        backend.put(entry(7))  # dropped: ops 1..3 fail and trip
        backend.put(entry(7))
        backend.put(entry(7))
        assert backend.stats.breaker_trips == 1
        # short-circuit window, then the half-open probe succeeds
        got = None
        for _ in range(20):
            got = backend.get(fp(7))
            if backend.stats.breaker_recoveries:
                break
        assert backend.stats.breaker_recoveries == 1
        assert backend.stats.breaker_skipped >= 1
        # recovered for real: a store now lands durably
        backend.put(entry(8))
        assert backend.get(fp(8)) is not None

    def test_read_write_fault_sites_degrade_not_raise(
        self, clean_faults, tmp_path
    ):
        from repro.resilience import faults

        backend = SharedSQLiteBackend(tmp_path)
        backend.put(entry(1))
        clean_faults.setenv(
            faults.ENV_VAR, f"backend.read:{fp(1)[:12]}@1"
        )
        faults.reset()
        assert backend.get(fp(1)) is None  # injected read error = miss
        assert backend.stats.disk_errors >= 1
        assert backend.get(fp(1)) is not None  # next read is healthy

        clean_faults.setenv(faults.ENV_VAR, f"backend.write:{fp(2)[:12]}")
        faults.reset()
        backend.put(entry(2))  # dropped store, no exception
        assert backend.get(fp(2)) is None
        assert backend.entry_count() == 1
