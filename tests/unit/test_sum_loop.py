"""Unit tests for loop summaries (SUM_loop) on small programs."""

import pytest

from repro.symbolic import Env
from tests.conftest import loop_record


def body(program_body: str, decls: str = "REAL a(100)"):
    decl_lines = "".join(f"      {d}\n" for d in decls.split(";") if d)
    return f"      SUBROUTINE s\n{decl_lines}{program_body}      END\n"


class TestWholeLoopSets:
    def test_simple_fill(self):
        src = body("      DO i = 1, n\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        assert rec.mod.for_array("a").enumerate(Env(n=5)) == {
            (k,) for k in range(1, 6)
        }
        assert rec.ue.for_array("a").is_empty()

    def test_read_exposed(self):
        src = body("      DO i = 1, n\n        x = a(i)\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        assert rec.ue.for_array("a").enumerate(Env(n=4)) == {
            (k,) for k in range(1, 5)
        }

    def test_recurrence_ue(self):
        # a(i) = a(i-1): reads a(0:n-1), writes a(1:n); exposed use is
        # a(0) only (the rest comes from previous iterations)
        src = body("      DO i = 1, n\n        a(i) = a(i-1)\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        assert rec.ue.for_array("a").enumerate(Env(n=5)) == {(0,)}

    def test_mod_lt_prior_iterations(self):
        src = body("      DO i = 1, n\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        got = rec.mod_lt.for_array("a").enumerate(Env(i=4, n=10))
        assert got == {(1,), (2,), (3,)}

    def test_mod_gt_later_iterations(self):
        src = body("      DO i = 1, n\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        got = rec.mod_gt.for_array("a").enumerate(Env(i=4, n=6))
        assert got == {(5,), (6,)}

    def test_stepped_loop(self):
        src = body("      DO i = 1, 9, 2\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        assert rec.mod.for_array("a").enumerate(Env()) == {
            (1,), (3,), (5,), (7,), (9,)
        }

    def test_stepped_mod_lt_on_grid(self):
        src = body("      DO i = 1, 9, 2\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        assert rec.mod_lt.for_array("a").enumerate(Env(i=7)) == {
            (1,), (3,), (5,)
        }

    def test_loop_writes_its_index(self):
        src = body("      DO i = 1, n\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        assert not rec.mod.for_array("i").is_empty()


class TestIterationSets:
    def test_work_array_pattern(self):
        src = body(
            "      DO i = 1, n\n"
            "        DO j = 1, m\n          a(j) = 1.0\n        ENDDO\n"
            "        DO j = 1, m\n          x = a(j)\n        ENDDO\n"
            "      ENDDO\n"
        )
        rec = loop_record(src, "s", "i")
        assert rec.ue_i.for_array("a").provably_empty()
        assert rec.mod_i.for_array("a").enumerate(Env(m=3)) == {
            (1,), (2,), (3,)
        }

    def test_partial_kill_leaves_residue(self):
        src = body(
            "      DO i = 1, n\n"
            "        DO j = 2, m\n          a(j) = 1.0\n        ENDDO\n"
            "        DO j = 1, m\n          x = a(j)\n        ENDDO\n"
            "      ENDDO\n"
        )
        rec = loop_record(src, "s", "i")
        assert rec.ue_i.for_array("a").enumerate(Env(m=4, i=1, n=3)) == {(1,)}


class TestConservativeCases:
    def test_premature_exit_mod_inexact(self):
        src = body(
            "      DO i = 1, n\n"
            "        IF (p) GOTO 99\n        a(i) = 1.0\n      ENDDO\n"
            " 99   CONTINUE\n",
            "REAL a(100);LOGICAL p",
        )
        rec = loop_record(src, "s", "i")
        assert rec.has_premature_exit
        assert not rec.mod.is_exact()

    def test_negative_step_set_still_covered(self):
        src = body("      DO i = 10, 1, -1\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        assert rec.negative_step
        got = rec.mod.for_array("a").enumerate(Env())
        assert got >= {(k,) for k in range(1, 11)}

    def test_negative_step_order_sets_inexact(self):
        src = body("      DO i = 10, 1, -1\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        assert not rec.mod_lt.is_exact()
