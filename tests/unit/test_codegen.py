"""Unit tests for directive code generation (repro.codegen)."""

import pytest

from repro import Panorama
from repro.codegen import annotate, clauses_for, directive_lines
from repro.fortran import parse_program

WORK_LOOP = (
    "      SUBROUTINE smooth(a, b, n, m)\n"
    "      REAL a(1000), b(1000)\n"
    "      INTEGER n, m, i, j\n"
    "      REAL t(100)\n"
    "      REAL s\n"
    "      DO i = 1, n\n"
    "        DO j = 1, m\n"
    "          t(j) = a(j)\n"
    "        ENDDO\n"
    "        s = 0.0\n"
    "        DO j = 1, m\n"
    "          s = s + t(j)\n"
    "        ENDDO\n"
    "        b(i) = s\n"
    "      ENDDO\n"
    "      END\n"
)


def compiled(src=WORK_LOOP):
    return Panorama().compile(src)


class TestClauses:
    def test_private_contains_work_array(self):
        result = compiled()
        clauses = clauses_for(result.loops[0], result)
        assert "t" in clauses.private
        assert "s" in clauses.private

    def test_index_vars_deduplicated(self):
        result = compiled()
        clauses = clauses_for(result.loops[0], result)
        assert clauses.index_vars == ("i", "j")

    def test_shared_holds_the_rest(self):
        result = compiled()
        clauses = clauses_for(result.loops[0], result)
        assert "a" in clauses.shared and "b" in clauses.shared
        assert "t" not in clauses.shared

    def test_reduction_clause(self):
        src = (
            "      SUBROUTINE total(a, n, acc)\n"
            "      REAL a(100), acc\n      INTEGER n, i\n"
            "      DO i = 1, n\n        acc = acc + a(i)\n      ENDDO\n"
            "      END\n"
        )
        result = compiled(src)
        clauses = clauses_for(result.loops[0], result)
        assert ("+", "acc") in clauses.reductions

    def test_lastprivate_from_copy_out(self):
        src = WORK_LOOP.replace(
            "      END\n", "      x = t(1)\n      END\n"
        )
        result = compiled(src)
        clauses = clauses_for(result.loops[0], result)
        assert "t" in clauses.lastprivate
        assert "t" not in clauses.private


class TestDirectiveText:
    def test_omp_style(self):
        result = compiled()
        text = annotate(result, style="omp")
        assert "C$OMP PARALLEL DO" in text
        assert "PRIVATE(" in text
        assert "SHARED(" in text
        assert "C$OMP END PARALLEL DO" in text

    def test_sgi_style(self):
        result = compiled()
        text = annotate(result, style="sgi")
        assert "C$DOACROSS" in text
        assert "LOCAL(" in text
        assert "SHARE(" in text

    def test_unknown_style_rejected(self):
        result = compiled()
        with pytest.raises(ValueError):
            annotate(result, style="hpf")

    def test_only_outermost_annotated(self):
        result = compiled()
        text = annotate(result, style="omp")
        assert text.count("C$OMP PARALLEL DO") == 1

    def test_serial_loop_unannotated(self):
        src = (
            "      SUBROUTINE recur(a, n)\n"
            "      REAL a(100)\n      INTEGER n, i\n"
            "      DO i = 2, n\n        a(i) = a(i-1)\n      ENDDO\n"
            "      END\n"
        )
        result = compiled(src)
        text = annotate(result, style="omp")
        assert "C$OMP" not in text

    def test_reduction_directive_rendered(self):
        src = (
            "      SUBROUTINE total(a, n, acc)\n"
            "      REAL a(100), acc\n      INTEGER n, i\n"
            "      DO i = 1, n\n        acc = acc + a(i)\n      ENDDO\n"
            "      END\n"
        )
        text = annotate(compiled(src), style="omp")
        assert "REDUCTION(+:ACC)" in text
        sgi = annotate(compiled(src), style="sgi")
        assert "REDUCTION(ACC)" in sgi


class TestRoundTrip:
    def test_annotated_source_reparses(self):
        result = compiled()
        text = annotate(result, style="omp")
        program = parse_program(text)  # directives are comments
        assert program.unit("smooth")

    def test_reanalysis_agrees(self):
        result = compiled()
        text = annotate(result, style="sgi")
        again = Panorama().compile(text)
        assert [r.status for r in again.loops] == [
            r.status for r in result.loops
        ]

    def test_multi_unit_program(self):
        src = WORK_LOOP + (
            "      PROGRAM main\n      REAL a(1000), b(1000)\n"
            "      CALL smooth(a, b, 10, 5)\n      END\n"
        )
        result = compiled(src)
        text = annotate(result, style="omp")
        assert "PROGRAM main" in text
        assert "SUBROUTINE smooth" in text
        parse_program(text)


class TestInductionClauses:
    def test_induction_variable_privatized(self):
        src = (
            "      SUBROUTINE bump(a, n)\n"
            "      REAL a(100)\n      INTEGER n, i, k\n"
            "      k = 0\n"
            "      DO i = 1, n\n"
            "        k = k + 1\n"
            "        a(k) = 1.0\n"
            "      ENDDO\n"
            "      END\n"
        )
        result = compiled(src)
        loop = [r for r in result.loops if r.var == "i"][0]
        assert loop.parallel
        clauses = clauses_for(loop, result)
        assert "k" in clauses.inductions
        assert "k" in clauses.private
        text = annotate(result, style="omp")
        assert "PRIVATE(" in text and "K" in text
