"""Unit tests for the engine's fingerprinting and two-tier summary cache."""

import pickle

from repro.dataflow import AnalysisOptions
from repro.dataflow.context import LoopSummaryRecord
from repro.dataflow.summary import Summary, scalar_gar
from repro.engine import (
    CACHE_FORMAT_VERSION,
    DISK_MAGIC,
    RoutineCacheEntry,
    SummaryCache,
    fingerprint_program,
    options_key,
    unit_source_hash,
)
from repro.fortran import analyze, parse_program
from repro.fortran.callgraph import build_call_graph
from repro.regions import GARList
from repro.symbolic import SymExpr

CALLER_CALLEE = (
    "      SUBROUTINE top(a, n)\n"
    "      REAL a(100)\n"
    "      INTEGER n, i\n"
    "      DO i = 1, n\n"
    "        CALL leaf(a, i)\n"
    "      ENDDO\n"
    "      END\n"
    "      SUBROUTINE leaf(a, i)\n"
    "      REAL a(100)\n"
    "      INTEGER i\n"
    "      a(i) = {rhs}\n"
    "      END\n"
    "      SUBROUTINE other(b)\n"
    "      REAL b(10)\n"
    "      b(1) = 0.0\n"
    "      END\n"
)


def fingerprints(source, options=None):
    program = parse_program(source)
    analyzed = analyze(program)
    graph = build_call_graph(analyzed)
    return fingerprint_program(program, graph, options or AnalysisOptions())


class TestFingerprints:
    def test_deterministic_across_parses(self):
        src = CALLER_CALLEE.format(rhs="1.0")
        assert fingerprints(src) == fingerprints(src)

    def test_whitespace_and_case_normalized(self):
        a = fingerprints(CALLER_CALLEE.format(rhs="1.0"))
        b = fingerprints(CALLER_CALLEE.format(rhs="1.0").replace(
            "a(i) = 1.0", "A(I)  =   1.0"
        ))
        assert a == b

    def test_callee_change_invalidates_caller(self):
        a = fingerprints(CALLER_CALLEE.format(rhs="1.0"))
        b = fingerprints(CALLER_CALLEE.format(rhs="2.0"))
        assert a["leaf"] != b["leaf"]
        assert a["top"] != b["top"]  # transitive through the call edge
        assert a["other"] == b["other"]  # unrelated routine untouched

    def test_options_change_invalidates_everything(self):
        src = CALLER_CALLEE.format(rhs="1.0")
        a = fingerprints(src)
        b = fingerprints(src, AnalysisOptions(symbolic=False))
        assert all(a[name] != b[name] for name in a)

    def test_options_key_covers_every_toggle(self):
        base = AnalysisOptions()
        for variant in (
            AnalysisOptions(symbolic=False),
            AnalysisOptions(if_conditions=False),
            AnalysisOptions(interprocedural=False),
            AnalysisOptions(use_fm=False),
            AnalysisOptions(index_array_forms=(("ix", SymExpr.const(3)),)),
        ):
            assert options_key(variant) != options_key(base)

    def test_unit_source_hash_is_per_routine(self):
        program = parse_program(CALLER_CALLEE.format(rhs="1.0"))
        edited = parse_program(CALLER_CALLEE.format(rhs="2.0"))
        assert unit_source_hash(program, "leaf") != unit_source_hash(
            edited, "leaf"
        )
        assert unit_source_hash(program, "top") == unit_source_hash(
            edited, "top"
        )


def make_entry(fp="ab" * 32, routine="top"):
    gars = GARList([scalar_gar("t")])
    record = LoopSummaryRecord(
        routine=routine,
        var="i",
        lo=SymExpr.const(1),
        hi=SymExpr.const(10),
        step=SymExpr.const(1),
        mod=gars,
        ue=gars,
    )
    key = (routine, "i", None, 4, frozenset())
    return RoutineCacheEntry(
        fingerprint=fp,
        routine=routine,
        summary=Summary(mod=gars, ue=GARList.empty()),
        loop_records={key: record},
    )


class TestSummaryCache:
    def test_memory_roundtrip(self):
        cache = SummaryCache()
        entry = make_entry()
        cache.put(entry)
        got = cache.get(entry.fingerprint)
        assert got is not None
        assert got.routine == "top"
        assert cache.stats.hits == 1 and cache.stats.memory_hits == 1

    def test_disk_roundtrip_through_pickle(self, tmp_path):
        entry = make_entry()
        SummaryCache(tmp_path).put(entry)
        # a brand-new cache instance sees only the disk tier
        fresh = SummaryCache(tmp_path)
        got = fresh.get(entry.fingerprint)
        assert got is not None
        assert fresh.stats.disk_hits == 1
        assert str(got.summary) == str(entry.summary)
        (key,) = got.loop_records
        assert str(got.loop_records[key]) == str(entry.loop_records[key])

    def test_miss_counts(self, tmp_path):
        cache = SummaryCache(tmp_path)
        assert cache.get("00" * 32) is None
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = SummaryCache(max_memory_entries=2)
        for i in range(3):
            cache.put(make_entry(fp=f"{i:02d}" * 32))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # the oldest entry fell out of the (memory-only) cache
        assert cache.get("00" * 32) is None

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        entry = make_entry()
        cache = SummaryCache(tmp_path)
        cache.put(entry)
        path = cache._path(entry.fingerprint)
        path.write_bytes(b"not a pickle")
        fresh = SummaryCache(tmp_path)
        assert fresh.get(entry.fingerprint) is None
        assert fresh.stats.disk_errors == 1

    def test_version_mismatch_is_a_miss(self, tmp_path):
        entry = make_entry()
        cache = SummaryCache(tmp_path)
        cache.put(entry)
        path = cache._path(entry.fingerprint)
        path.write_bytes(
            pickle.dumps((CACHE_FORMAT_VERSION + 1, entry))
        )
        fresh = SummaryCache(tmp_path)
        assert fresh.get(entry.fingerprint) is None

    def test_adopt_primes_memory_tier(self, tmp_path):
        entry = make_entry()
        SummaryCache(tmp_path).put(entry)
        fresh = SummaryCache(tmp_path)
        assert fresh.adopt([entry.fingerprint]) == 1
        fresh.get(entry.fingerprint)
        assert fresh.stats.memory_hits == 1

    def test_stats_delta(self):
        cache = SummaryCache()
        entry = make_entry()
        cache.put(entry)
        before = cache.stats.copy()
        cache.get(entry.fingerprint)
        delta = cache.stats.delta(before)
        assert delta.hits == 1 and delta.stores == 0


class TestQuarantine:
    """Bad disk entries are verified (magic + SHA-256) before unpickling
    and moved aside to ``quarantine/`` — never re-read, never trusted."""

    def corrupt_and_read(self, tmp_path, mutate):
        entry = make_entry()
        cache = SummaryCache(tmp_path)
        cache.put(entry)
        path = cache._path(entry.fingerprint)
        mutate(path, entry)
        fresh = SummaryCache(tmp_path)
        got = fresh.get(entry.fingerprint)
        return got, fresh, path

    def quarantined_files(self, tmp_path):
        qdir = tmp_path / "quarantine"
        return sorted(p.name for p in qdir.iterdir()) if qdir.exists() else []

    def test_garbage_bytes_are_quarantined(self, tmp_path):
        got, fresh, path = self.corrupt_and_read(
            tmp_path, lambda p, e: p.write_bytes(b"not a pickle")
        )
        assert got is None
        assert fresh.stats.disk_errors == 1
        assert fresh.stats.quarantined == 1
        assert not path.exists()  # moved, not left to poison later reads
        (name,) = self.quarantined_files(tmp_path)
        assert name.endswith(".badmagic")

    def test_truncated_entry_fails_checksum(self, tmp_path):
        def truncate(path, entry):
            data = path.read_bytes()
            path.write_bytes(data[: len(data) - 7])  # torn write

        got, fresh, path = self.corrupt_and_read(tmp_path, truncate)
        assert got is None
        assert fresh.stats.quarantined == 1
        (name,) = self.quarantined_files(tmp_path)
        assert name.endswith(".checksum")

    def test_bit_flip_in_payload_fails_checksum(self, tmp_path):
        def flip(path, entry):
            data = bytearray(path.read_bytes())
            data[-1] ^= 0xFF
            path.write_bytes(bytes(data))

        got, fresh, path = self.corrupt_and_read(tmp_path, flip)
        assert got is None
        assert fresh.stats.quarantined == 1

    def test_version_mismatch_is_quarantined(self, tmp_path):
        import hashlib

        def downgrade(path, entry):
            # a well-formed container carrying a foreign format version
            payload = pickle.dumps((CACHE_FORMAT_VERSION + 1, entry))
            path.write_bytes(
                DISK_MAGIC + hashlib.sha256(payload).digest() + payload
            )

        got, fresh, path = self.corrupt_and_read(tmp_path, downgrade)
        assert got is None
        assert fresh.stats.quarantined == 1
        (name,) = self.quarantined_files(tmp_path)
        assert name.endswith(".version")

    def test_quarantined_entry_is_recomputable(self, tmp_path):
        # after quarantining, a put stores a good entry under the same
        # fingerprint and reads hit again
        got, fresh, path = self.corrupt_and_read(
            tmp_path, lambda p, e: p.write_bytes(b"junk")
        )
        assert got is None
        entry = make_entry()
        fresh.put(entry)
        fresh.clear_memory()
        assert fresh.get(entry.fingerprint) is not None

    def test_quarantined_counter_merges(self):
        from repro.engine import CacheStats

        a, b = CacheStats(quarantined=2), CacheStats(quarantined=3)
        a.merge(b)
        assert a.quarantined == 5
        assert CacheStats(**a.as_dict()).quarantined == 5
