"""Unit tests for Fortran source normalization."""

import pytest

from repro.errors import SourceError
from repro.fortran import normalize


class TestComments:
    def test_c_comment_lines(self):
        lines = normalize("C hello\n      x = 1\n* star comment\n")
        assert len(lines) == 1
        assert lines[0].text == "x = 1"

    def test_bang_comment_line(self):
        lines = normalize("  ! note\n      x = 1\n")
        assert len(lines) == 1

    def test_inline_bang_comment(self):
        lines = normalize("      x = 1 ! trailing\n")
        assert lines[0].text == "x = 1"

    def test_bang_inside_string_kept(self):
        lines = normalize("      s = 'a!b'\n")
        assert "'a!b'" in lines[0].text

    def test_blank_lines_skipped(self):
        assert normalize("\n\n      x = 1\n\n") [0].text == "x = 1"


class TestLabels:
    def test_label_extracted(self):
        lines = normalize("  10  x = 1\n")
        assert lines[0].label == 10
        assert lines[0].text == "x = 1"

    def test_no_label(self):
        assert normalize("      x = 1\n")[0].label is None

    def test_label_without_statement_rejected(self):
        with pytest.raises(SourceError):
            normalize("  10\n")

    def test_lineno_recorded(self):
        lines = normalize("C c\n      x = 1\n      y = 2\n")
        assert [l.lineno for l in lines] == [2, 3]


class TestContinuations:
    def test_fixed_form_continuation(self):
        src = "      x = 1 +\n     &    2\n"
        lines = normalize(src)
        assert len(lines) == 1
        assert lines[0].text == "x = 1 + 2"

    def test_fixed_form_multiple_continuations(self):
        src = "      x = 1 +\n     1    2 +\n     2    3\n"
        lines = normalize(src)
        assert lines[0].text == "x = 1 + 2 + 3"

    def test_free_form_trailing_ampersand(self):
        src = "      x = 1 + &\n        2\n"
        lines = normalize(src)
        assert lines[0].text == "x = 1 + 2"

    def test_case_lowered_outside_strings(self):
        lines = normalize("      CALL Foo('KEEP Me')\n")
        assert lines[0].text == "call foo('KEEP Me')"
