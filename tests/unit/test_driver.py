"""Unit tests for the pipeline facade and CLI."""

import pytest

from repro import AnalysisOptions, LoopStatus, Panorama
from repro.driver.cli import main as cli_main
from repro.driver.report import format_table, yes_no

SOURCE = (
    "      SUBROUTINE smooth(a, b, n, m)\n"
    "      REAL a(1000), b(1000)\n"
    "      INTEGER n, m, i, j\n"
    "      REAL t(100)\n"
    "      REAL s\n"
    "      DO i = 1, n\n"
    "        DO j = 1, m\n"
    "          t(j) = a(j)\n"
    "        ENDDO\n"
    "        s = 0.0\n"
    "        DO j = 1, m\n"
    "          s = s + t(j)\n"
    "        ENDDO\n"
    "        b(i) = s\n"
    "      ENDDO\n"
    "      END\n"
)


class TestPanorama:
    def test_compile_produces_reports(self):
        result = Panorama().compile(SOURCE)
        assert len(result.loops) == 3
        outer = result.loops[0]
        assert outer.status is LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        assert outer.used_dataflow

    def test_conventional_prefilter_skips_dataflow(self):
        result = Panorama().compile(
            "      SUBROUTINE s(a, n)\n      REAL a(100)\n      INTEGER n, i\n"
            "      DO i = 1, n\n        a(i) = 1.0\n      ENDDO\n      END\n"
        )
        (loop,) = result.loops
        assert loop.status is LoopStatus.PARALLEL
        assert not loop.used_dataflow

    def test_prefilter_disabled_forces_dataflow(self):
        result = Panorama(run_conventional=False).compile(
            "      SUBROUTINE s(a, n)\n      REAL a(100)\n      INTEGER n, i\n"
            "      DO i = 1, n\n        a(i) = 1.0\n      ENDDO\n      END\n"
        )
        (loop,) = result.loops
        assert loop.used_dataflow
        assert loop.parallel

    def test_timings_recorded(self):
        result = Panorama().compile(SOURCE)
        assert result.timings.total > 0
        assert result.timings.parse >= 0

    def test_machine_model_fills_speedups(self):
        result = Panorama(sizes={"n": 100, "m": 50}).compile(
            "      PROGRAM p\n      REAL a(1000), b(1000)\n"
            "      INTEGER n, m\n      n = 100\n      m = 50\n"
            "      CALL smooth(a, b, n, m)\n      END\n" + SOURCE
        )
        outer = result.loop("smooth", None)
        assert outer.speedup > 1.0
        assert outer.pct_sequential > 50

    def test_loop_lookup_raises(self):
        result = Panorama().compile(SOURCE)
        with pytest.raises(KeyError):
            result.loop("nosuch", 1)

    def test_options_passed_through(self):
        result = Panorama(AnalysisOptions(interprocedural=False)).compile(SOURCE)
        assert result.analyzer.options.interprocedural is False

    def test_summary_line(self):
        line = Panorama().compile(SOURCE).summary_line()
        assert "loops parallel" in line


class TestCli:
    def test_cli_runs_on_file(self, tmp_path, capsys):
        f = tmp_path / "k.f"
        f.write_text(SOURCE)
        rc = cli_main([str(f)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "smooth" in out
        assert "privatized" in out

    def test_cli_ablation_flag(self, tmp_path, capsys):
        f = tmp_path / "k.f"
        f.write_text(SOURCE)
        rc = cli_main([str(f), "--ablate", "T1", "--no-machine"])
        assert rc == 0

    def test_cli_summaries_flag(self, tmp_path, capsys):
        f = tmp_path / "k.f"
        f.write_text(SOURCE)
        cli_main([str(f), "--summaries"])
        out = capsys.readouterr().out
        assert "MOD_i" in out

    def test_cli_dump_hsg(self, tmp_path, capsys):
        f = tmp_path / "k.f"
        f.write_text(SOURCE)
        cli_main([str(f), "--dump-hsg"])
        out = capsys.readouterr().out
        assert "HSG of smooth" in out

    def test_cli_json_flag(self, tmp_path, capsys):
        import json

        f = tmp_path / "k.f"
        f.write_text(SOURCE)
        rc = cli_main([str(f), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "k.f"
        assert len(payload["loops"]) == 3
        statuses = {row["loop"]: row["status"] for row in payload["loops"]}
        assert statuses["smooth/i"] == "parallel (privatized)"
        assert "timings" in payload and "stats" in payload

    def test_cli_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            cli_main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_cli_prints_analysis_stats(self, tmp_path, capsys):
        f = tmp_path / "k.f"
        f.write_text(SOURCE)
        cli_main([str(f)])
        out = capsys.readouterr().out
        assert "analysis cost:" in out
        assert "HSG nodes visited" in out


class TestReportHelpers:
    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
        assert "a" in text and "333" in text and "T" in text

    def test_yes_no(self):
        assert yes_no(True) == "Yes" and yes_no(False) == "No"


class TestCopyOut:
    SRC = (
        "      SUBROUTINE s(a, b, n, m)\n"
        "      REAL a(100), b(100)\n"
        "      INTEGER n, m, i, j\n"
        "      REAL t(50)\n"
        "      DO i = 1, n\n"
        "        DO j = 1, m\n"
        "          t(j) = b(j) + i\n"
        "        ENDDO\n"
        "        a(i) = t(1)\n"
        "      ENDDO\n"
        "      x = {}\n"
        "      END\n"
    )

    def test_dead_private_array_needs_no_copy_out(self):
        result = Panorama().compile(self.SRC.format("a(3)"))
        outer = result.loops[0]
        (decision,) = outer.copy_out
        assert decision.name == "t"
        assert not decision.needs_copy_out

    def test_live_private_array_needs_copy_out(self):
        result = Panorama().compile(self.SRC.format("t(3)"))
        outer = result.loops[0]
        (decision,) = outer.copy_out
        assert decision.needs_copy_out

    def test_disjoint_later_use_needs_no_copy_out(self):
        # the loop writes t(1:m); a later read of t(60) is outside any
        # written region when m <= 50... but m is symbolic: expect
        # conservative copy-out unless provable — use a constant kernel
        src = self.SRC.replace("DO j = 1, m", "DO j = 1, 40")
        result = Panorama().compile(src.format("t(60)"))
        outer = result.loops[0]
        (decision,) = outer.copy_out
        assert not decision.needs_copy_out


class TestCliEmit:
    def test_cli_emit_omp(self, tmp_path, capsys):
        f = tmp_path / "k.f"
        f.write_text(SOURCE)
        cli_main([str(f), "--emit", "omp"])
        out = capsys.readouterr().out
        assert "C$OMP PARALLEL DO" in out

    def test_cli_emit_sgi(self, tmp_path, capsys):
        f = tmp_path / "k.f"
        f.write_text(SOURCE)
        cli_main([str(f), "--emit", "sgi"])
        out = capsys.readouterr().out
        assert "C$DOACROSS" in out
