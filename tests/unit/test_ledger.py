"""Unit tests for the durable run ledger (engine/ledger.py): identity
binding, transition replay, torn-line tolerance, and digest checking."""

from __future__ import annotations

import json

import pytest

from repro.dataflow import AnalysisOptions
from repro.engine import BatchEngine, BatchItem
from repro.engine.batch import BatchItemResult
from repro.engine.cache import CacheStats
from repro.engine.ledger import (
    LEDGER_VERSION,
    LedgerMismatch,
    LedgerWriter,
    items_digest,
    payload_digest,
    replay,
    run_identity,
    verify_identity,
)
from repro.resilience import faults

ITEMS = [
    BatchItem(name="a.f", source="      PROGRAM A\n      END\n"),
    BatchItem(name="b.f", source="      PROGRAM B\n      END\n", sizes={"N": 8}),
]


def identity(**kw):
    kw.setdefault("kind", "batch")
    kw.setdefault("items", ITEMS)
    kw.setdefault("options", AnalysisOptions())
    return run_identity(**kw)


def done_result(name: str = "a.f") -> BatchItemResult:
    return BatchItemResult(
        name=name,
        payload={"loops": [], "parallel_loops": 0, "name": name},
        cache_stats=CacheStats(hits=1),
        attempts=1,
        stored_fingerprints=["f" * 64],
    )


def failed_result(name: str = "b.f", quarantined: bool = False):
    return BatchItemResult(
        name=name,
        error="boom: injected\ntraceback line",
        error_kind="internal",
        attempts=3,
        quarantined=quarantined,
    )


class TestIdentity:
    def test_identity_is_stable(self):
        assert identity() == identity()

    def test_item_edit_changes_digest(self):
        edited = [ITEMS[0], BatchItem(name="b.f", source="      END\n")]
        assert items_digest(ITEMS) != items_digest(edited)

    def test_item_reorder_changes_digest(self):
        assert items_digest(ITEMS) != items_digest(list(reversed(ITEMS)))

    def test_sizes_change_digest(self):
        resized = [
            ITEMS[0],
            BatchItem(name="b.f", source=ITEMS[1].source, sizes={"N": 9}),
        ]
        assert items_digest(ITEMS) != items_digest(resized)

    def test_options_change_identity(self):
        assert identity() != identity(options=AnalysisOptions(use_fm=False))

    def test_campaign_provenance_in_identity(self):
        camp = identity(
            kind="campaign",
            campaign={"seed": 1, "generator_version": 1, "count": 2,
                      "shard": "1/2"},
        )
        assert camp != identity(kind="campaign")

    def test_verify_accepts_matching_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()):
            pass
        rep = replay(path)
        verify_identity(rep.header, identity())  # must not raise

    def test_verify_rejects_mismatch(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()):
            pass
        rep = replay(path)
        with pytest.raises(LedgerMismatch, match="options"):
            verify_identity(
                rep.header, identity(options=AnalysisOptions(use_fm=False))
            )

    def test_verify_rejects_wrong_version(self):
        with pytest.raises(LedgerMismatch, match="version"):
            verify_identity(
                {"ledger_version": LEDGER_VERSION + 1, "identity": {}},
                identity(),
            )

    def test_replay_requires_header(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"type":"item","state":"done","index":0}\n')
        with pytest.raises(LedgerMismatch, match="header"):
            replay(path)


class TestTransitions:
    def test_done_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()) as w:
            w.record_dispatched(0, "a.f", 1)
            w.record_done(0, done_result())
            w.record_end("complete")
        rep = replay(path)
        assert rep.completed == 1
        assert not rep.in_flight and not rep.failed
        assert rep.ended == "complete"
        record = rep.done[0]
        assert record["name"] == "a.f"
        assert record["payload"]["name"] == "a.f"
        assert record["stored_fingerprints"] == ["f" * 64]
        assert record["cache_stats"]["hits"] == 1

    def test_dispatched_without_done_is_in_flight(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()) as w:
            w.record_dispatched(0, "a.f", 1)
            w.record_dispatched(1, "b.f", 1)
            w.record_done(1, done_result("b.f"))
        rep = replay(path)
        assert rep.in_flight == {0}
        assert set(rep.done) == {1}
        assert rep.ended is None  # no end marker: the run crashed

    def test_failed_and_quarantined_states(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()) as w:
            w.record_failed(0, failed_result("a.f"))
            w.record_failed(1, failed_result("b.f", quarantined=True))
        rep = replay(path)
        assert rep.failed[0]["state"] == "failed"
        assert rep.failed[1]["state"] == "quarantined"
        assert rep.failed[0]["error"] == ["boom: injected"]

    def test_retry_after_failure_last_record_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()) as w:
            w.record_failed(0, failed_result("a.f"))
            w.record_dispatched(0, "a.f", 2)
            w.record_done(0, done_result())
        rep = replay(path)
        assert set(rep.done) == {0}
        assert not rep.failed and not rep.in_flight

    def test_resume_marker_resets_end(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()) as w:
            w.record_done(0, done_result())
            w.record_end("interrupted")
        with LedgerWriter(path, identity(), resume=True) as w:
            w.record_done(1, done_result("b.f"))
            w.record_end("complete")
        rep = replay(path)
        assert rep.resumes == 1
        assert rep.completed == 2
        assert rep.ended == "complete"


class TestCorruptionTolerance:
    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()) as w:
            w.record_done(0, done_result())
        text = path.read_text()
        full_line = text.splitlines()[-1]
        path.write_text(text + full_line[: len(full_line) // 2])  # no \n
        rep = replay(path)
        assert rep.torn_lines == 1
        assert rep.completed == 1  # the intact record survives

    def test_digest_mismatch_demotes_to_rerun(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()) as w:
            w.record_done(0, done_result())
        lines = path.read_text().splitlines()
        record = json.loads(lines[-1])
        record["payload"]["parallel_loops"] = 99  # bit-flip the verdict
        lines[-1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        rep = replay(path)
        assert rep.invalid_records == 1
        assert rep.completed == 0  # not trusted, will re-run

    def test_unknown_record_types_counted_not_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with LedgerWriter(path, identity()) as w:
            w.record_done(0, done_result())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type":"future-extension"}\n')
            fh.write('{"type":"item","state":"done","index":"x"}\n')
            fh.write("[1,2,3]\n")
        rep = replay(path)
        assert rep.completed == 1
        assert rep.invalid_records == 3

    def test_payload_digest_roundtrips_through_json(self):
        payload = {"loops": [{"speedup": 1.3333}], "x": [1, 2.5, None]}
        again = json.loads(json.dumps(payload))
        assert payload_digest(payload) == payload_digest(again)


class TestLedgerWriteFault:
    def test_injected_torn_write_wedges_writer(self, tmp_path, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "ledger.write:item@2")
        faults.reset()
        try:
            path = tmp_path / "run.jsonl"
            with LedgerWriter(path, identity()) as w:
                w.record_done(0, done_result())
                w.record_done(1, done_result("b.f"))  # torn mid-line
                w.record_done(2, done_result())  # dropped: writer wedged
                w.record_end("complete")
        finally:
            faults.reset()
        rep = replay(path)
        assert rep.torn_lines == 1
        assert set(rep.done) == {0}  # only the pre-fault record survives
        assert rep.ended is None


class TestEngineIntegration:
    def test_engine_writes_and_serves_ledger(self, tmp_path):
        path = tmp_path / "run.jsonl"
        items = [
            BatchItem(
                name="loop.f",
                source=(
                    "      SUBROUTINE s(a, n)\n"
                    "      REAL a(10)\n"
                    "      INTEGER n, i\n"
                    "      DO 10 i = 1, n\n"
                    "        a(i) = 1.0\n"
                    "   10 CONTINUE\n"
                    "      END\n"
                ),
            )
        ]
        ident = run_identity("batch", items, AnalysisOptions())
        with LedgerWriter(path, ident) as w:
            first = BatchEngine(AnalysisOptions(), jobs=1, ledger=w).run(items)
        assert first.ok and first.exit_code() == 0
        rep = replay(path)
        verify_identity(rep.header, ident)
        assert rep.completed == 1 and rep.ended == "complete"

        # resume: everything is served from the ledger, nothing re-runs
        with LedgerWriter(path, ident, resume=True) as w:
            second = BatchEngine(
                AnalysisOptions(), jobs=1, ledger=w, resume=rep
            ).run(items)
        assert second.ok
        res = second.result("loop.f")
        assert res.from_ledger
        assert res.payload == first.result("loop.f").payload
        assert second.telemetry.resilience["resumed_items"] == 1
        assert second.verdict_rows() == first.verdict_rows()
