"""Unit tests for the front-end lint (PAN2xx diagnostics)."""

from repro.audit import lint_program
from repro.dataflow import AnalysisOptions
from repro.driver.panorama import Panorama


def lint_source(source: str, name: str = "t.f"):
    result = Panorama(AnalysisOptions(), run_machine_model=False).compile(
        source
    )
    return lint_program(result, name, source)


def codes(diags):
    return sorted(d.code for d in diags)


PREMATURE_EXIT = """\
      subroutine s(a, b, n)
      integer n
      real a(100), b(100)
      do 10 i = 1, n
         if (b(i) .gt. 0.0) goto 99
         a(i) = 0.0
   10 continue
   99 continue
      end
"""

BACKWARD_GOTO = """\
      subroutine s(a, n)
      integer n, k
      real a(100)
      k = 1
   10 continue
      a(k) = 1.0
      k = k + 1
      if (k .le. n) goto 10
      end
"""

DUPLICATE_ACTUAL = """\
      subroutine caller(n)
      integer n
      real a(100)
      call work(a, a, n)
      end
      subroutine work(x, y, n)
      integer n
      real x(100), y(100)
      do 10 i = 1, n
         x(i) = y(i)
   10 continue
      end
"""

COMMON_ALIAS = """\
      subroutine caller(n)
      integer n
      common /blk/ a
      real a(100)
      call work(a, n)
      end
      subroutine work(x, n)
      integer n
      common /blk/ a
      real a(100), x(100)
      do 10 i = 1, n
         x(i) = a(i)
   10 continue
      end
"""

CLEAN = """\
      subroutine s(a, b)
      real a(100), b(100)
      do 10 i = 1, 100
         a(i) = b(i)
   10 continue
      end
"""


class TestLint:
    def test_clean_program_has_no_findings(self):
        assert lint_source(CLEAN) == []

    def test_premature_exit_is_pan201(self):
        diags = lint_source(PREMATURE_EXIT)
        assert "PAN201" in codes(diags)
        (diag,) = [d for d in diags if d.code == "PAN201"]
        assert "premature exit" in diag.message
        assert diag.span is not None
        assert "do 10 i = 1, n" in diag.span.snippet

    def test_condensed_cycle_is_pan202(self):
        diags = lint_source(BACKWARD_GOTO)
        assert "PAN202" in codes(diags)
        (diag,) = [d for d in diags if d.code == "PAN202"]
        assert "condensed" in diag.message

    def test_duplicate_actual_is_pan203(self):
        diags = lint_source(DUPLICATE_ACTUAL)
        matches = [d for d in diags if d.code == "PAN203"]
        assert matches
        assert "passed more than once" in matches[0].message
        assert matches[0].data["callee"] == "work"

    def test_common_alias_is_pan203(self):
        diags = lint_source(COMMON_ALIAS)
        matches = [d for d in diags if d.code == "PAN203"]
        assert matches
        assert "COMMON" in matches[0].message
