"""Unit tests for the array-content abstract domain (docs/frontier.md)."""

from fractions import Fraction

from repro.contents import (
    ContentFact,
    Monotone,
    infer_program,
    infer_unit,
    join_monotone,
)
from repro.contents.domain import (
    ValueAbstract,
    abstract_of_affine,
    join_value,
    monotone_of_affine,
)
from repro.dataflow import AnalysisOptions
from repro.fortran import analyze, parse_program
from repro.symbolic import sym

OPTIONS = AnalysisOptions(frontier=True)


def facts_of(source: str, unit: str):
    return infer_unit(analyze(parse_program(source)), unit, OPTIONS)


IDX_SETUP = """
      SUBROUTINE setup(IDX, A, n)
      INTEGER IDX(100)
      REAL A(200)
      INTEGER n, i
      DO i = 1, n
        IDX(i) = 2*i
      ENDDO
      DO i = 1, n
        A(IDX(i)) = 1.0
      ENDDO
      END
"""

FLAG_SETUP = """
      SUBROUTINE flags(F, B, m)
      INTEGER F(100)
      REAL B(100)
      INTEGER m, j
      DO j = 1, m
        IF (B(j) .GT. 0.0) THEN
          F(j) = 1
        ELSE
          F(j) = 2
        ENDIF
      ENDDO
      DO j = 1, m
        IF (F(j) .GE. 1) THEN
          B(j) = B(j) + 1.0
        ENDIF
      ENDDO
      END
"""

MONO_RECURRENCE = """
      SUBROUTINE mono(W, B, n)
      INTEGER W(100), B(100)
      INTEGER n, i
      DO i = 2, n
        W(i) = W(i-1) + 3
      ENDDO
      END
"""


class TestAffineFacts:
    def test_index_array_form_derived(self):
        (fact,) = facts_of(IDX_SETUP, "setup")
        assert fact.array == "idx" and fact.kind == "affine"
        assert fact.coeff == 2
        assert fact.mono is Monotone.STRICT_INC
        assert fact.injective
        assert fact.covered  # the A(IDX(i)) read stays inside [1, n]

    def test_form_is_exported_over_the_placeholder(self):
        from repro.dataflow.convert import subscript_placeholder

        (fact,) = facts_of(IDX_SETUP, "setup")
        assert fact.form() == subscript_placeholder(1).scaled(Fraction(2))


class TestBoundsFacts:
    def test_branch_writes_join_to_bounds(self):
        facts = [f for f in facts_of(FLAG_SETUP, "flags") if f.array == "f"]
        (fact,) = facts
        assert fact.kind == "bounds"
        assert (fact.value_lo, fact.value_hi) == (1, 2)

    def test_branch_join_does_not_claim_constant(self):
        # the writer choice is data-dependent per cell: claiming the
        # sequence constant (or monotone) would be unsound
        (fact,) = [f for f in facts_of(FLAG_SETUP, "flags") if f.array == "f"]
        assert fact.mono is Monotone.UNKNOWN
        assert not fact.injective


class TestMonotoneFacts:
    def test_recurrence_delta(self):
        (fact,) = facts_of(MONO_RECURRENCE, "mono")
        assert fact.kind == "monotone"
        assert fact.delta == 3
        assert fact.mono is Monotone.STRICT_INC
        assert not fact.covered  # monotone facts export nothing yet


class TestGates:
    def test_no_facts_with_frontier_off(self):
        analyzed = analyze(parse_program(IDX_SETUP))
        off = AnalysisOptions(frontier=False)
        assert infer_unit(analyzed, "setup", off) == []
        assert infer_program(analyzed, off).count() == 0

    def test_no_facts_without_symbolic(self):
        analyzed = analyze(parse_program(IDX_SETUP))
        t1_off = AnalysisOptions(frontier=True, symbolic=False)
        assert infer_unit(analyzed, "setup", t1_off) == []

    def test_two_defining_loops_poison(self):
        src = """
      SUBROUTINE twice(IDX, n)
      INTEGER IDX(100)
      INTEGER n, i
      DO i = 1, n
        IDX(i) = 2*i
      ENDDO
      DO i = 1, n
        IDX(i) = 3*i
      ENDDO
      END
"""
        assert facts_of(src, "twice") == []

    def test_real_arrays_skipped(self):
        src = """
      SUBROUTINE realw(X, n)
      REAL X(100)
      INTEGER n, i
      DO i = 1, n
        X(i) = 2*i
      ENDDO
      END
"""
        assert facts_of(src, "realw") == []


class TestLattice:
    def test_join_monotone_is_commutative_lub(self):
        elems = list(Monotone)
        for a in elems:
            for b in elems:
                j = join_monotone(a, b)
                assert j == join_monotone(b, a)
                assert join_monotone(a, j) == j  # upper bound of a
                assert join_monotone(b, j) == j  # upper bound of b
        assert (
            join_monotone(Monotone.STRICT_INC, Monotone.NONDECREASING)
            is Monotone.NONDECREASING
        )
        assert (
            join_monotone(Monotone.STRICT_INC, Monotone.STRICT_DEC)
            is Monotone.UNKNOWN
        )
        assert (
            join_monotone(Monotone.CONSTANT, Monotone.STRICT_INC)
            is Monotone.NONDECREASING
        )

    def test_join_value_same_affine_survives(self):
        a = abstract_of_affine(Fraction(2), sym("n"))
        b = abstract_of_affine(Fraction(2), sym("n"))
        j = join_value(a, b)
        assert j.affine == (Fraction(2), sym("n"))
        assert j.mono is Monotone.STRICT_INC

    def test_join_value_different_constants_lose_constant(self):
        one = abstract_of_affine(Fraction(0), sym("n") * 0 + 1)
        two = abstract_of_affine(Fraction(0), sym("n") * 0 + 2)
        j = join_value(one, two)
        assert j.affine is None
        assert j.bounds == (1, 2)
        assert j.mono is Monotone.UNKNOWN

    def test_join_value_equal_constants_stay_constant(self):
        one = abstract_of_affine(Fraction(0), sym("n") * 0 + 1)
        j = join_value(one, ValueAbstract(bounds=(Fraction(1), Fraction(1))))
        assert j.bounds == (1, 1)
        assert j.mono is Monotone.CONSTANT

    def test_monotone_of_affine(self):
        assert monotone_of_affine(Fraction(1)) is Monotone.STRICT_INC
        assert monotone_of_affine(Fraction(-2)) is Monotone.STRICT_DEC
        assert monotone_of_affine(Fraction(0)) is Monotone.CONSTANT


class TestPayloads:
    def test_roundtrip(self):
        (fact,) = facts_of(IDX_SETUP, "setup")
        payload = fact.to_payload()
        assert payload["kind"] == "content"
        assert fact.matches_payload(payload)

    def test_detail_ignored_but_claims_compared(self):
        (fact,) = facts_of(IDX_SETUP, "setup")
        payload = fact.to_payload()
        payload["detail"] = "tampered"
        assert fact.matches_payload(payload)
        payload["coeff"] = "7"
        assert not fact.matches_payload(payload)

    def test_fact_equality_independent_of_detail(self):
        fact = ContentFact(unit="u", array="a", kind="bounds")
        assert fact.matches_payload(
            ContentFact(unit="u", array="a", kind="bounds").to_payload()
        )
