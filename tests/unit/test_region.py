"""Unit tests for regular array regions (repro.regions.region)."""

import pytest

from repro.errors import RegionError
from repro.symbolic import Env, Predicate, sym
from repro.regions import OMEGA_DIM, Range, RegularRegion


class TestConstruction:
    def test_point(self):
        r = RegularRegion.point("a", [sym("i"), sym("j")])
        assert r.rank == 2
        assert r.is_fully_known()

    def test_omega(self):
        r = RegularRegion.omega("a", 3)
        assert r.is_omega()
        assert not r.is_fully_known()
        assert r.rank == 3

    def test_omega_min_rank_one(self):
        assert RegularRegion.omega("a", 0).rank == 1

    def test_empty_dims_rejected(self):
        with pytest.raises(RegionError):
            RegularRegion("a", [])

    def test_omega_dim_is_singleton(self):
        from repro.regions.region import _OmegaDim

        assert _OmegaDim() is OMEGA_DIM


class TestStructure:
    def test_nonempty_pred(self):
        r = RegularRegion("a", [Range("l", "u"), Range(1, 5)])
        p = r.nonempty_pred()
        assert p == Predicate.le("l", "u")

    def test_nonempty_pred_skips_omega(self):
        r = RegularRegion("a", [OMEGA_DIM, Range("l", "u")])
        assert r.nonempty_pred() == Predicate.le("l", "u")

    def test_free_vars(self):
        r = RegularRegion("a", [Range("l", sym("u") + sym("k"))])
        assert r.free_vars() == frozenset({"l", "u", "k"})

    def test_contains_var_and_dims_containing(self):
        r = RegularRegion("a", [Range(1, "n"), Range("i", "i")])
        assert r.contains_var("i")
        assert r.dims_containing("i") == [1]
        assert r.dims_containing("n") == [0]

    def test_known_dims(self):
        r = RegularRegion("a", [OMEGA_DIM, Range(1, 2)])
        assert r.known_dims() == [(1, Range(1, 2))]


class TestRewriting:
    def test_with_dim(self):
        r = RegularRegion("a", [Range(1, 5)])
        r2 = r.with_dim(0, OMEGA_DIM)
        assert not r2.is_fully_known()
        assert r.is_fully_known()  # original untouched

    def test_with_array(self):
        r = RegularRegion("a", [Range(1, 5)]).with_array("b")
        assert r.array == "b"

    def test_substitute(self):
        r = RegularRegion("a", [Range("i", sym("i") + 1)])
        out = r.substitute({"i": sym(3)})
        assert out == RegularRegion("a", [Range(3, 4)])

    def test_rename(self):
        r = RegularRegion("a", [Range("i", "n")]).rename({"i": "j"})
        assert r == RegularRegion("a", [Range("j", "n")])


class TestEnumerate:
    def test_multi_dim(self):
        r = RegularRegion("a", [Range(1, 2), Range(5, 6)])
        assert r.enumerate(Env()) == {(1, 5), (1, 6), (2, 5), (2, 6)}

    def test_empty_dim_empty_set(self):
        r = RegularRegion("a", [Range(2, 1), Range(5, 6)])
        assert r.enumerate(Env()) == set()

    def test_omega_rejected(self):
        r = RegularRegion.omega("a", 1)
        with pytest.raises(RegionError):
            r.enumerate(Env())

    def test_symbolic(self):
        r = RegularRegion("a", [Range("n", sym("n") + 1)])
        assert r.enumerate(Env(n=4)) == {(4,), (5,)}


class TestIdentity:
    def test_eq_hash(self):
        a = RegularRegion("a", [Range(1, 5)])
        b = RegularRegion("a", [Range(1, 5)])
        assert a == b and hash(a) == hash(b)

    def test_different_array_not_equal(self):
        assert RegularRegion("a", [Range(1, 5)]) != RegularRegion(
            "b", [Range(1, 5)]
        )

    def test_str(self):
        r = RegularRegion("a", [Range(1, "n"), OMEGA_DIM])
        assert str(r) == "a(1:n, *)"
