"""Unit tests for semantic analysis (symbol tables, reference resolution)."""

import pytest

from repro.errors import SemanticError
from repro.fortran import Apply, Assign, analyze, parse_program


def analyzed(source: str):
    return analyze(parse_program(source))


class TestArrayResolution:
    def test_declared_array_is_array(self):
        an = analyzed(
            "      SUBROUTINE s\n      REAL a(10)\n      x = a(1)\n      END\n"
        )
        stmt = an.unit("s").body[0]
        assert isinstance(stmt.value, Apply) and stmt.value.is_array

    def test_intrinsic_is_not_array(self):
        an = analyzed("      SUBROUTINE s\n      x = max(a, b)\n      END\n")
        stmt = an.unit("s").body[0]
        assert stmt.value.is_array is False

    def test_program_function_is_call(self):
        an = analyzed(
            "      SUBROUTINE s\n      x = g(1)\n      END\n"
            "      REAL FUNCTION g(k)\n      g = k\n      END\n"
        )
        stmt = an.unit("s").body[0]
        assert stmt.value.is_array is False

    def test_assignment_target_forces_array(self):
        an = analyzed("      SUBROUTINE s\n      w(3) = 1\n      END\n")
        assert an.table("s").is_array("w")

    def test_assignment_to_function_rejected(self):
        with pytest.raises(SemanticError):
            analyzed(
                "      SUBROUTINE s\n      g(3) = 1\n      END\n"
                "      REAL FUNCTION g(k)\n      g = k\n      END\n"
            )

    def test_use_before_implicit_declaration(self):
        # w used as value before the statement that makes it an array
        an = analyzed(
            "      SUBROUTINE s\n      x = w(1)\n      w(2) = 0\n      END\n"
        )
        stmt = an.unit("s").body[0]
        assert stmt.value.is_array is True


class TestSymbolTable:
    def test_array_bounds(self):
        an = analyzed(
            "      SUBROUTINE s\n      REAL a(0:10, n)\n      a(0,1) = 1\n      END\n"
        )
        info = an.table("s").arrays["a"]
        assert info.rank == 2

    def test_implicit_typing(self):
        an = analyzed("      SUBROUTINE s\n      x = i\n      END\n")
        t = an.table("s")
        assert t.type_of("i") == "integer"
        assert t.type_of("n") == "integer"
        assert t.type_of("x") == "real"

    def test_declared_type_overrides_implicit(self):
        an = analyzed(
            "      SUBROUTINE s\n      REAL i\n      LOGICAL x\n      i = 1\n      END\n"
        )
        t = an.table("s")
        assert t.type_of("i") == "real"
        assert t.is_logical("x")

    def test_parameter_constants(self):
        an = analyzed(
            "      SUBROUTINE s\n      PARAMETER (n = 5)\n      x = n\n      END\n"
        )
        assert "n" in an.table("s").parameters

    def test_common_membership(self):
        an = analyzed(
            "      SUBROUTINE s\n      COMMON /blk/ a, b\n      a = 1\n      END\n"
        )
        t = an.table("s")
        assert t.common_block_of("a") == "blk"
        assert t.common_block_of("zz") is None

    def test_common_array_declared(self):
        an = analyzed(
            "      SUBROUTINE s\n      COMMON /blk/ w(10)\n      w(1) = 1\n      END\n"
        )
        assert an.table("s").is_array("w")

    def test_dummy_params(self):
        an = analyzed("      SUBROUTINE s(a, b)\n      a = b\n      END\n")
        t = an.table("s")
        assert t.is_dummy("a") and not t.is_dummy("z")

    def test_conflicting_array_ranks_rejected(self):
        with pytest.raises(SemanticError):
            analyzed(
                "      SUBROUTINE s\n      REAL a(10)\n"
                "      DIMENSION a(5, 5)\n      a(1) = 0\n      END\n"
            )
