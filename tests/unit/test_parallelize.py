"""Unit tests for dependence classification, reductions, loop verdicts."""

from repro.parallelize import (
    LoopStatus,
    find_reductions,
    loop_dependences,
    variable_dependences,
)
from tests.conftest import compile_source, loop_record, loop_verdicts


def sub(body: str, decls: str = "REAL a(100)") -> str:
    decl_lines = "".join(f"      {d}\n" for d in decls.split(";") if d)
    return f"      SUBROUTINE s\n{decl_lines}{body}      END\n"


class TestDependenceReports:
    def test_independent_loop(self):
        src = sub("      DO i = 1, n\n        a(i) = 1.0\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        hsg, analyzer = compile_source(src)
        report = variable_dependences("a", rec, analyzer.comparer)
        assert not report.any

    def test_recurrence_flow(self):
        src = sub("      DO i = 2, n\n        a(i) = a(i-1)\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        hsg, analyzer = compile_source(src)
        report = variable_dependences("a", rec, analyzer.comparer)
        assert report.flow

    def test_work_array_output_only(self):
        src = sub(
            "      DO i = 1, n\n"
            "        t(1) = a(i)\n        a(i) = t(1)\n      ENDDO\n",
            "REAL a(100), t(100)",
        )
        rec = loop_record(src, "s", "i")
        hsg, analyzer = compile_source(src)
        report = variable_dependences("t", rec, analyzer.comparer)
        assert not report.flow
        assert report.output

    def test_anti_dependence(self):
        # reads a(i+1) then (other iterations) write it
        src = sub("      DO i = 1, n\n        a(i) = a(i+1)\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        hsg, analyzer = compile_source(src)
        report = variable_dependences("a", rec, analyzer.comparer)
        assert report.anti and not report.flow

    def test_loop_dependences_skip(self):
        src = sub("      DO i = 2, n\n        a(i) = a(i-1)\n      ENDDO\n")
        rec = loop_record(src, "s", "i")
        hsg, analyzer = compile_source(src)
        reports = loop_dependences(rec, analyzer.comparer, skip=frozenset({"a"}))
        assert "a" not in reports
        assert rec.var not in reports


class TestReductions:
    def _reductions(self, body, decls="REAL a(100);REAL s"):
        src = sub(body, decls)
        hsg, _ = compile_source(src)
        (unit, loop), *_ = hsg.all_loops()
        return {r.name: r for r in find_reductions(loop.body)}

    def test_sum(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = s + a(i)\n      ENDDO\n"
        )
        assert reds["s"].operator == "+"

    def test_chained_sum(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = s + a(i) + a(i+1)\n      ENDDO\n"
        )
        assert "s" in reds

    def test_subtraction_accumulator(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = s - a(i)\n      ENDDO\n"
        )
        assert "s" in reds

    def test_negated_accumulator_rejected(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = a(i) - s\n      ENDDO\n"
        )
        assert "s" not in reds

    def test_product(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = s * a(i)\n      ENDDO\n"
        )
        assert reds["s"].operator == "*"

    def test_min_max(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = max(s, a(i))\n      ENDDO\n"
        )
        assert reds["s"].operator == "max"

    def test_leak_into_other_expression_rejected(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = s + a(i)\n        a(i) = s\n"
            "      ENDDO\n"
        )
        assert "s" not in reds

    def test_leak_into_condition_rejected(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = s + a(i)\n"
            "        IF (s .GT. 0.0) a(i) = 0.0\n      ENDDO\n"
        )
        assert "s" not in reds

    def test_array_reduction_same_subscript(self):
        reds = self._reductions(
            "      DO i = 1, n\n        a(1) = a(1) + i\n      ENDDO\n"
        )
        assert "a" in reds and reds["a"].is_array

    def test_mixed_operators_rejected(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = s + a(i)\n        s = s * 2.0\n"
            "      ENDDO\n"
        )
        assert "s" not in reds

    def test_double_read_rejected(self):
        reds = self._reductions(
            "      DO i = 1, n\n        s = s + s\n      ENDDO\n"
        )
        assert "s" not in reds


class TestClassifier:
    def test_plain_parallel(self):
        verdicts = loop_verdicts(
            sub("      DO i = 1, n\n        a(i) = 1.0\n      ENDDO\n")
        )
        assert verdicts[("s", "i")].status is LoopStatus.PARALLEL

    def test_privatized(self):
        src = sub(
            "      DO i = 1, n\n        t(1) = a(i)\n        a(i) = t(1)\n"
            "      ENDDO\n",
            "REAL a(100), t(100)",
        )
        v = loop_verdicts(src)[("s", "i")]
        assert v.status is LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        assert "t" in v.privatized

    def test_reduction_status(self):
        src = sub(
            "      DO i = 1, n\n        s = s + a(i)\n      ENDDO\n",
            "REAL a(100);REAL s",
        )
        v = loop_verdicts(src)[("s", "i")]
        assert v.status is LoopStatus.PARALLEL_WITH_REDUCTION
        assert v.reductions == ["s"]

    def test_serial_recurrence(self):
        src = sub("      DO i = 2, n\n        a(i) = a(i-1)\n      ENDDO\n")
        v = loop_verdicts(src)[("s", "i")]
        assert v.status is LoopStatus.SERIAL
        assert "a" in v.blocking_variables()

    def test_premature_exit_serial(self):
        src = sub(
            "      DO i = 1, n\n        IF (p) GOTO 99\n        a(i) = 1.0\n"
            "      ENDDO\n 99   CONTINUE\n",
            "REAL a(100);LOGICAL p",
        )
        v = loop_verdicts(src)[("s", "i")]
        assert v.status is LoopStatus.SERIAL
        assert any("premature" in r for r in v.serial_reasons)

    def test_status_modulo(self):
        src = sub("      DO i = 2, n\n        a(i) = a(i-1)\n      ENDDO\n")
        v = loop_verdicts(src)[("s", "i")]
        assert v.status_modulo(frozenset({"a"})) is (
            LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        )
        assert v.status_modulo(frozenset({"zz"})) is LoopStatus.SERIAL
