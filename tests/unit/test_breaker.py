"""Unit tests for the circuit breaker and the shared backoff helper
(resilience/breaker.py, resilience/backoff.py)."""

from __future__ import annotations

import random

import pytest

from repro.resilience import CircuitBreaker, backoff_delay
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


def trip(breaker: CircuitBreaker) -> None:
    """Drive a closed breaker to open with consecutive failures."""
    for _ in range(breaker.failure_threshold):
        assert breaker.allow()
        breaker.record_failure()


class TestTransitions:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state == CLOSED
        assert b.allow()
        assert b.trips == b.recoveries == b.short_circuits == 0

    def test_consecutive_failures_trip(self):
        b = CircuitBreaker(failure_threshold=3)
        assert not b.record_failure()
        assert not b.record_failure()
        assert b.record_failure()  # third consecutive failure trips
        assert b.state == OPEN
        assert b.trips == 1

    def test_success_resets_the_streak(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        b.record_success()  # streak back to zero
        assert not b.record_failure()
        assert b.state == CLOSED

    def test_open_short_circuits_until_probe(self):
        b = CircuitBreaker(failure_threshold=1, probe_after=4, seed=0)
        trip(b)
        denied = 0
        while not b.allow():
            denied += 1
            assert denied < 100, "probe window never opened"
        # the allowed call is the half-open probe
        assert b.state == HALF_OPEN
        assert b.short_circuits == denied >= b.probe_after

    def test_probe_success_recovers(self):
        b = CircuitBreaker(failure_threshold=1, probe_after=2, seed=0)
        trip(b)
        while not b.allow():
            pass
        assert b.record_success()  # recovery signalled exactly once
        assert b.state == CLOSED
        assert b.recoveries == 1
        assert b.allow()

    def test_probe_failure_reopens(self):
        b = CircuitBreaker(failure_threshold=1, probe_after=2, seed=0)
        trip(b)
        while not b.allow():
            pass
        assert b.record_failure()  # half-open failure is a fresh trip
        assert b.state == OPEN
        assert b.trips == 2
        assert not b.allow()  # straight back to short-circuiting

    def test_pending_probe_blocks_other_calls(self):
        b = CircuitBreaker(failure_threshold=1, probe_after=1, seed=0)
        trip(b)
        while not b.allow():
            pass
        assert b.state == HALF_OPEN
        # outcome not yet reported: everyone else stays short-circuited
        assert not b.allow()
        assert not b.allow()

    def test_seeded_probe_schedule_is_reproducible(self):
        def schedule(seed: int) -> list[int]:
            b = CircuitBreaker(failure_threshold=1, probe_after=8, seed=seed)
            trip(b)
            out = []
            for _ in range(3):
                denied = 0
                while not b.allow():
                    denied += 1
                out.append(denied)
                b.record_failure()  # probe fails: reopen, fresh jitter
            return out

        assert schedule(7) == schedule(7)

    def test_as_dict_mirrors_counters(self):
        b = CircuitBreaker(failure_threshold=1)
        trip(b)
        d = b.as_dict()
        assert d == {
            "state": OPEN,
            "trips": 1,
            "recoveries": 0,
            "short_circuits": 0,
        }


class TestBackoffDelay:
    def test_matches_engine_formula(self):
        # the batch engine's historical inline formula, verbatim
        rng_a = random.Random(42)
        rng_b = random.Random(42)
        for attempt in (1, 2, 3, 4):
            expected = 0.1 * 2 ** (attempt - 1) + rng_a.uniform(0.0, 0.1)
            assert backoff_delay(attempt, 0.1, rng_b) == expected

    def test_floor_wins_when_larger(self):
        rng = random.Random(0)
        assert backoff_delay(1, 0.01, rng, floor=5.0) == 5.0

    def test_attempt_zero_treated_as_first(self):
        assert backoff_delay(0, 0.1, random.Random(1)) == backoff_delay(
            1, 0.1, random.Random(1)
        )

    def test_grows_exponentially(self):
        rng = random.Random(3)
        d1 = backoff_delay(1, 0.5, rng)
        d4 = backoff_delay(4, 0.5, rng)
        assert d4 > d1
        assert d4 >= 0.5 * 8  # base * 2**(4-1)
