"""Unit tests for the concrete Fortran interpreter."""

import pytest

from repro.fortran import analyze, parse_program
from repro.fortran.interp import (
    AccessEvent,
    Interpreter,
    InterpreterError,
    run_program,
)


def run(source: str):
    return run_program(source)


class TestBasics:
    def test_arithmetic_and_assignment(self):
        frame = run(
            "      PROGRAM p\n      INTEGER i\n      REAL x\n"
            "      i = 2 + 3 * 4\n      x = 10.0 / 4.0\n      END\n"
        )
        assert frame.cell("i").get() == 14
        assert frame.cell("x").get() == 2.5

    def test_integer_division_truncates(self):
        frame = run(
            "      PROGRAM p\n      INTEGER i, j\n"
            "      i = 7 / 2\n      j = (0 - 7) / 2\n      END\n"
        )
        assert frame.cell("i").get() == 3
        assert frame.cell("j").get() == -3

    def test_array_store_load(self):
        frame = run(
            "      PROGRAM p\n      REAL a(10)\n      INTEGER i\n"
            "      DO i = 1, 5\n        a(i) = 1.0 * i\n      ENDDO\n"
            "      x = a(3)\n      END\n"
        )
        assert frame.cell("x").get() == 3.0

    def test_do_loop_with_step(self):
        frame = run(
            "      PROGRAM p\n      INTEGER i, s\n      s = 0\n"
            "      DO i = 1, 9, 2\n        s = s + i\n      ENDDO\n      END\n"
        )
        assert frame.cell("s").get() == 25

    def test_do_loop_zero_trips(self):
        frame = run(
            "      PROGRAM p\n      INTEGER i, s\n      s = 7\n"
            "      DO i = 5, 1\n        s = 0\n      ENDDO\n      END\n"
        )
        assert frame.cell("s").get() == 7

    def test_negative_step(self):
        frame = run(
            "      PROGRAM p\n      INTEGER i, s\n      s = 0\n"
            "      DO i = 5, 1, -2\n        s = s + i\n      ENDDO\n      END\n"
        )
        assert frame.cell("s").get() == 9

    def test_if_block_branches(self):
        src = (
            "      PROGRAM p\n      INTEGER k, r\n      k = {}\n"
            "      IF (k .GT. 0) THEN\n        r = 1\n"
            "      ELSEIF (k .EQ. 0) THEN\n        r = 2\n"
            "      ELSE\n        r = 3\n      ENDIF\n      END\n"
        )
        assert run(src.format(5)).cell("r").get() == 1
        assert run(src.format(0)).cell("r").get() == 2
        assert run(src.format(-2)).cell("r").get() == 3

    def test_logical_if_and_goto(self):
        frame = run(
            "      PROGRAM p\n      INTEGER k\n      k = 1\n"
            "      IF (k .EQ. 1) GOTO 10\n      k = 99\n"
            " 10   k = k + 1\n      END\n"
        )
        assert frame.cell("k").get() == 2

    def test_intrinsics(self):
        frame = run(
            "      PROGRAM p\n      INTEGER a\n      REAL b\n"
            "      a = max(3, 7)\n      b = abs(0.0 - 2.5)\n      END\n"
        )
        assert frame.cell("a").get() == 7
        assert frame.cell("b").get() == 2.5

    def test_logical_ops(self):
        frame = run(
            "      PROGRAM p\n      LOGICAL a, b\n      INTEGER r\n"
            "      a = .TRUE.\n      b = .FALSE.\n      r = 0\n"
            "      IF (a .AND. .NOT. b) r = 1\n      END\n"
        )
        assert frame.cell("r").get() == 1


class TestCalls:
    def test_call_by_reference_array(self):
        frame = run(
            "      PROGRAM p\n      REAL a(10)\n      CALL fill(a, 4)\n"
            "      x = a(4)\n      END\n"
            "      SUBROUTINE fill(w, n)\n      REAL w(10)\n"
            "      INTEGER n, j\n      DO j = 1, n\n        w(j) = 2.0 * j\n"
            "      ENDDO\n      END\n"
        )
        assert frame.cell("x").get() == 8.0

    def test_call_by_reference_scalar(self):
        frame = run(
            "      PROGRAM p\n      INTEGER v\n      v = 1\n"
            "      CALL bump(v)\n      END\n"
            "      SUBROUTINE bump(k)\n      INTEGER k\n      k = k + 41\n"
            "      END\n"
        )
        assert frame.cell("v").get() == 42

    def test_expression_actual_does_not_write_back(self):
        frame = run(
            "      PROGRAM p\n      INTEGER v\n      v = 5\n"
            "      CALL bump(v + 0)\n      END\n"
            "      SUBROUTINE bump(k)\n      INTEGER k\n      k = 99\n"
            "      END\n"
        )
        assert frame.cell("v").get() == 5

    def test_early_return(self):
        frame = run(
            "      PROGRAM p\n      REAL a(10)\n      REAL x\n"
            "      x = 900.0\n      CALL fill(a, x)\n      y = a(1)\n      END\n"
            "      SUBROUTINE fill(w, x)\n      REAL w(10), x\n"
            "      IF (x .GT. 500.0) RETURN\n      w(1) = 1.0\n      END\n"
        )
        assert frame.cell("y").get() == 0.0

    def test_common_shared(self):
        frame = run(
            "      PROGRAM p\n      COMMON /blk/ w(5)\n      CALL setw\n"
            "      x = w(2)\n      END\n"
            "      SUBROUTINE setw\n      COMMON /blk/ w(5)\n"
            "      w(2) = 7.0\n      END\n"
        )
        assert frame.cell("x").get() == 7.0


class TestObservation:
    def test_events_reported(self):
        events = []
        run_program(
            "      PROGRAM p\n      REAL a(10)\n"
            "      a(3) = 1.0\n      x = a(3)\n      END\n",
            observer=events.append,
        )
        kinds = [(e.kind, e.name, e.index) for e in events if e.is_array]
        assert ("write", "a", (3,)) in kinds
        assert ("read", "a", (3,)) in kinds

    def test_storage_identity_across_calls(self):
        events = []
        frame = run_program(
            "      PROGRAM p\n      REAL a(10)\n      CALL f(a)\n      END\n"
            "      SUBROUTINE f(w)\n      REAL w(10)\n      w(1) = 1.0\n"
            "      END\n",
            observer=events.append,
        )
        writes = [e for e in events if e.kind == "write" and e.is_array]
        assert writes[0].storage is frame.array("a")

    def test_loop_hook(self):
        seen = []
        interp = Interpreter(
            analyze(
                parse_program(
                    "      PROGRAM p\n      INTEGER i, s\n      s = 0\n"
                    "      DO i = 1, 3\n        s = s + i\n      ENDDO\n"
                    "      END\n"
                )
            ),
            loop_hook=lambda r, l, i, phase: seen.append((l.var, i, phase)),
        )
        interp.run_main()
        assert ("i", 1, "iter") in seen
        assert ("i", 3, "iter") in seen
        assert ("i", 4, "exit") in seen


class TestRunRoutine:
    def test_args_passed(self):
        src = (
            "      SUBROUTINE scale(a, n, f)\n      REAL a(10), f\n"
            "      INTEGER n, j\n"
            "      DO j = 1, n\n        a(j) = a(j) * f\n      ENDDO\n"
            "      END\n"
        )
        interp = Interpreter(analyze(parse_program(src)))
        frame = interp.run_routine("scale", a=[1.0, 2.0, 3.0], n=3, f=2.0)
        assert frame.array("a").get((2,)) == 4.0


class TestUnsupported:
    def test_read_rejected(self):
        with pytest.raises(InterpreterError):
            run("      PROGRAM p\n      READ (5, *) x\n      END\n")

    def test_premature_exit_rejected(self):
        with pytest.raises(InterpreterError):
            run(
                "      PROGRAM p\n      INTEGER i\n      DO i = 1, 5\n"
                "        IF (i .GT. 2) GOTO 9\n      ENDDO\n"
                " 9    CONTINUE\n      END\n"
            )

    def test_goto_cycle_rejected(self):
        with pytest.raises(InterpreterError):
            run(
                "      PROGRAM p\n      INTEGER k\n      k = 0\n"
                " 10   k = k + 1\n      IF (k .LT. 3) GOTO 10\n      END\n"
            )

    def test_external_call_rejected(self):
        with pytest.raises(InterpreterError):
            run("      PROGRAM p\n      CALL nothere(1)\n      END\n")

    def test_step_budget(self):
        src = (
            "      PROGRAM p\n      INTEGER i, s\n      s = 0\n"
            "      DO i = 1, 10000\n        s = s + 1\n      ENDDO\n      END\n"
        )
        interp = Interpreter(analyze(parse_program(src)), max_steps=100)
        with pytest.raises(InterpreterError):
            interp.run_main()
