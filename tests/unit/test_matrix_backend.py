"""Backend selection, batching, and observability of the matrix core."""

from __future__ import annotations

import pytest

from repro.driver.report import format_perf
from repro.perf.profiler import COUNTERS
from repro.symbolic import (
    Predicate,
    Relation,
    SymExpr,
    definitely_unsat_many,
    predicate_unsat_many,
    sym,
)
from repro.symbolic import fourier_motzkin as fm
from repro.symbolic import matrix


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    matrix.set_backend(None)


def test_backend_selection_env(monkeypatch):
    monkeypatch.delenv("PANORAMA_CONSTRAINT_BACKEND", raising=False)
    assert matrix.backend_name() == (
        "numpy" if matrix.HAVE_NUMPY else "python"
    )
    monkeypatch.setenv("PANORAMA_CONSTRAINT_BACKEND", "python")
    assert matrix.backend_name() == "python"
    monkeypatch.setenv("PANORAMA_CONSTRAINT_BACKEND", "object")
    assert matrix.backend_name() == "object"
    assert not matrix.matrix_active()


def test_forced_backend_overrides_env(monkeypatch):
    monkeypatch.setenv("PANORAMA_CONSTRAINT_BACKEND", "object")
    matrix.set_backend("python")
    assert matrix.backend_name() == "python"
    assert matrix.matrix_active()
    matrix.set_backend(None)
    assert matrix.backend_name() == "object"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        matrix.set_backend("cuda")


def test_column_ids_are_stable():
    x = sym("x") * sym("y")
    (mono, _), = x.non_constant_part().terms
    first = matrix.column_id(mono)
    assert matrix.column_id(mono) == first


def test_batch_matches_singles_and_counts():
    x, y = sym("x"), sym("y")
    systems = [
        [Relation.le(x, 0), Relation.le(SymExpr.const(1), x)],
        [Relation.le(x, y)],
        [Relation.eq(x, 0), Relation.ne(x, 0)],
    ]
    fm._UNSAT_CACHE._data.clear()
    before = COUNTERS.fm_batched_queries
    batched = definitely_unsat_many(systems)
    assert COUNTERS.fm_batched_queries == before + len(systems)
    assert batched == [fm.definitely_unsat(s) for s in systems]


def test_predicate_unsat_many_matches_scalar():
    x = sym("x")
    preds = [
        Predicate.false(),
        Predicate.le(x, 0) & Predicate.ge(x, 1),
        Predicate.le(x, 0),
        Predicate.true(),
    ]
    from repro.symbolic import predicate_unsat

    assert predicate_unsat_many(preds) == [
        predicate_unsat(p) for p in preds
    ]
    assert predicate_unsat_many(preds, use_fm=False) == [
        predicate_unsat(p, use_fm=False) for p in preds
    ]


def test_format_perf_names_backend():
    assert format_perf({}).startswith("constraint backend: ")
    assert matrix.backend_name() in format_perf({})


def test_oracle_divergence_raises(monkeypatch):
    """A backend that disagrees with the oracle must crash, not differ."""
    monkeypatch.setenv("PANORAMA_FM_ORACLE", "1")
    x = sym("x")
    atoms = frozenset(
        [Relation.le(x, 0), Relation.le(SymExpr.const(1), x)]
    )
    monkeypatch.setattr(matrix, "unsat_conjunction", lambda *a: False)
    with pytest.raises(AssertionError, match="divergence"):
        fm._definitely_unsat(atoms)
