"""Integration tests: the Table 1 technique matrix (T1/T2/T3 ablations).

For every kernel, disabling a technique marked "Yes" in Table 1 must break
the loop's designated privatizations, and disabling a technique marked
"No" must leave them intact.
"""

import pytest

from repro import AnalysisOptions, Panorama
from repro.kernels import KERNELS

_CACHE: dict = {}


def arrays_privatized(kernel, options: AnalysisOptions) -> bool:
    key = (kernel.source, options)
    if key not in _CACHE:
        result = Panorama(options, run_machine_model=False).compile(
            kernel.source
        )
        _CACHE[key] = result
    result = _CACHE[key]
    report = result.loop(kernel.routine, kernel.loop_label)
    priv = report.verdict.privatization if report.verdict else None
    if priv is None:
        return False
    return all(
        any(v.name == name and v.privatizable for v in priv.verdicts)
        for name in kernel.privatizable
    )


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.full_id)
@pytest.mark.parametrize("technique", ["T1", "T2", "T3"])
def test_ablation_matrix(kernel, technique):
    ok = arrays_privatized(kernel, AnalysisOptions.ablation(technique))
    needed = technique in kernel.techniques
    if needed:
        assert not ok, (
            f"{kernel.full_id} still privatizes without {technique}, but "
            f"Table 1 marks it required"
        )
    else:
        assert ok, (
            f"{kernel.full_id} loses privatization without {technique}, but "
            f"Table 1 marks it unneeded"
        )


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.full_id)
def test_all_techniques_on_succeeds(kernel):
    assert arrays_privatized(kernel, AnalysisOptions.all_on())
