"""Integration test: the paper's Figure 5 worked derivation, step by step.

Figure 5 walks the HSG of Figure 1(b) and derives:

* ``mod_in(2) = [T, (jlow:jup)] ∪ [not P, (jmax)]``
* ``ue_in(2)  = [P ∧ (jmax < jlow ∨ jmax > jup), (jmax)]``
* ``mod_<i(1) = [i > 1, (jlow:jup)] ∪ [i > 1 ∧ not P, (jmax)]``
* ``ue_i ∩ mod_<i(1) = ∅``  →  A is privatizable

We verify each derived set extensionally against the paper's formulas on
concrete instantiations (the symbolic representations may differ in
shape, the denoted sets may not).
"""

from repro.kernels.figure1 import FIGURE_1B
from repro.regions.gar_ops import intersect_lists
from repro.symbolic import Comparer, Env
from tests.conftest import loop_record


def paper_mod_i(env) -> set:
    out = set()
    out |= {(j,) for j in range(env["jlow"], env["jup"] + 1)}
    if not env["p"]:
        out.add((env["jmax"],))
    return out


def paper_ue_i(env) -> set:
    # [P and (jmax < jlow or jmax > jup), (jmax)] — plus the window
    # non-emptiness condition jlow <= jup that the paper's presentation
    # "omits for simplicity" (section 3): the read loop must execute for
    # A(jmax) to be used at all.
    if env["jlow"] > env["jup"]:
        return set()
    if env["p"] and not (env["jlow"] <= env["jmax"] <= env["jup"]):
        return {(env["jmax"],)}
    return set()


def paper_mod_lt(env) -> set:
    if env["i"] <= 1:
        return set()
    return paper_mod_i(env)


ENVS = [
    Env(p=1, jlow=2, jup=9, jmax=40, i=3, n=5),
    Env(p=0, jlow=2, jup=9, jmax=40, i=3, n=5),
    Env(p=1, jlow=2, jup=9, jmax=5, i=3, n=5),
    Env(p=0, jlow=2, jup=9, jmax=5, i=1, n=5),
    Env(p=1, jlow=9, jup=2, jmax=5, i=2, n=5),  # empty window
]


class TestFigure5:
    def setup_method(self):
        self.record = loop_record(FIGURE_1B, "filerx", "i")

    def test_step_a_ue_i(self):
        ue = self.record.ue_i.for_array("a")
        for env in ENVS:
            assert ue.enumerate(env) == paper_ue_i(env), dict(env)

    def test_step_a_mod_i(self):
        mod = self.record.mod_i.for_array("a")
        for env in ENVS:
            assert mod.enumerate(env) == paper_mod_i(env), dict(env)

    def test_step_b_mod_lt(self):
        mod_lt = self.record.mod_lt.for_array("a")
        for env in ENVS:
            assert mod_lt.enumerate(env) == paper_mod_lt(env), dict(env)

    def test_step_b_intersection_empty(self):
        inter = intersect_lists(
            self.record.ue_i.for_array("a"),
            self.record.mod_lt.for_array("a"),
            Comparer(),
        )
        assert inter.provably_empty()

    def test_conclusion_privatizable(self):
        from repro.privatize import test_privatizable

        verdict = test_privatizable("a", self.record, Comparer())
        assert verdict.privatizable
