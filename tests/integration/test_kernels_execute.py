"""Integration: the Perfect kernel programs actually *run*.

Analysis-only testing could hide nonsense kernels; here every benchmark
program executes end-to-end in the concrete interpreter, and the flagship
loops are trace-validated against their symbolic summaries with small
problem sizes.
"""

import pytest

from repro.fortran import analyze, parse_program
from repro.fortran.interp import Interpreter
from repro.kernels import KERNELS
from repro.validate import validate_loop

_UNIQUE_SOURCES = list(dict.fromkeys(k.source for k in KERNELS))
_NAMES = {
    source: next(k.program for k in KERNELS if k.source == source)
    for source in _UNIQUE_SOURCES
}


@pytest.mark.parametrize(
    "source", _UNIQUE_SOURCES, ids=lambda s: _NAMES[s]
)
def test_kernel_program_executes(source):
    interp = Interpreter(
        analyze(parse_program(source)), max_steps=20_000_000
    )
    frame = interp.run_main()
    assert frame.storage  # it did something


class TestKernelTraceValidation:
    def test_arc2d_filerx(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("ARC2D", "filerx", 15)
        report = validate_loop(
            kernel.source,
            "filerx",
            "k",
            args={
                "q": [1.0] * 60,
                "res": [0.0] * 20,
                "jlow": 2,
                "jup": 9,
                "jmax": 30,
                "prd": False,
                "kfil": 3,
            },
        )
        assert report.ok, report.violations
        assert "work" in report.privatization_checked

    def test_mdg_interf(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("MDG", "interf", 1000)
        report = validate_loop(
            kernel.source,
            "interf",
            "i",
            args={
                "vm": [0.5] * 60,
                "enr": [0.0, 0.0],
                "nmol1": 4,
                "natmo": 9,
                "ig": 12,
                "cut2": 100.0,
                "sw": False,
            },
        )
        # RL's summary carries a Delta guard, so its containment check is
        # vacuous (skipped); everything checkable must hold, and no
        # privatization claim may contradict the trace
        assert report.ok, report.violations
        assert {"rs", "xl", "yl", "zl"} <= (
            report.checked | report.skipped
        )

    def test_trfd_olda(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("TRFD", "olda", 100)
        report = validate_loop(
            kernel.source,
            "olda",
            "mrs",
            args={
                "x": [1.0] * 40,
                "v": [2.0] * 40,
                "num": 5,
                "nrs": 6,
            },
        )
        assert report.ok, report.violations
        assert {"xrsiq", "xij"} <= report.privatization_checked

    def test_ocean_forward_pass(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("OCEAN", "ocean", 270)
        report = validate_loop(
            kernel.source,
            "ocean",
            "j",
            args={
                "field": [1.0] * 40,
                "out": [0.0] * 40,
                "nmlx": 4,
                "im": 6,
            },
            occurrence=0,  # loop 270 is the first j loop
        )
        assert report.ok, report.violations
        assert "cwork" in report.privatization_checked
