"""Integration tests on the synthetic kernels (feature-specific programs)."""

from repro import Panorama
from repro.kernels import synthetic
from repro.parallelize import LoopStatus
from tests.conftest import loop_verdicts


class TestSyntheticKernels:
    def test_simple_privatizable(self):
        v = loop_verdicts(synthetic.SIMPLE_PRIVATIZABLE)[("sweep", "i")]
        assert v.status is LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        assert "t" in v.privatized

    def test_recurrence_is_a_scan(self):
        # the carried +1.0 chain is a prefix scan: the frontier pass
        # upgrades it, with a recurrence evidence record and a two-pass
        # schedule hint
        result = Panorama(run_machine_model=False).compile(synthetic.RECURRENCE)
        (loop,) = result.loops
        assert loop.status is LoopStatus.PARALLEL_SCAN
        assert loop.schedule == "two-pass-scan"
        assert any(e["kind"] == "recurrence" for e in loop.evidence)

    def test_recurrence_serial_without_frontier(self):
        from repro import AnalysisOptions

        result = Panorama(
            AnalysisOptions(frontier=False), run_machine_model=False
        ).compile(synthetic.RECURRENCE)
        (loop,) = result.loops
        assert loop.status is LoopStatus.SERIAL
        assert loop.evidence == []

    def test_reduction(self):
        v = loop_verdicts(synthetic.REDUCTION)[("sumup", "i")]
        assert v.status is LoopStatus.PARALLEL_WITH_REDUCTION
        assert v.reductions == ["total"]

    def test_strided_writes_parallel(self):
        result = Panorama(run_machine_model=False).compile(synthetic.STRIDED)
        (loop,) = result.loops
        assert loop.parallel

    def test_goto_cycle_condensed_conservative(self):
        # the while-style GOTO loop is condensed; no DO loop to classify,
        # and the routine summary is conservative
        from tests.conftest import compile_source

        hsg, analyzer = compile_source(synthetic.GOTO_CYCLE)
        summary = analyzer.routine_summary("wloop")
        assert not summary.mod.for_array("a").is_exact()
        assert hsg.graph("wloop").is_dag()

    def test_premature_exit_serial(self):
        result = Panorama(run_machine_model=False).compile(
            synthetic.PREMATURE_EXIT
        )
        (loop,) = result.loops
        assert loop.status is LoopStatus.SERIAL

    def test_invariant_guard_privatizes(self):
        v = loop_verdicts(synthetic.INVARIANT_GUARD)[("guardw", "i")]
        assert v.status is LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        assert "a" in v.privatized


class TestGeneratedNests:
    def test_make_loop_nest_parses_and_analyzes(self):
        src = synthetic.make_loop_nest(depth=2, width=3, routines=2)
        result = Panorama(run_machine_model=False).compile(src)
        assert len(result.loops) >= 5  # init + 2 routines x 2 depth

    def test_deeper_nest(self):
        src = synthetic.make_loop_nest(depth=3, width=2)
        result = Panorama(run_machine_model=False).compile(src)
        assert all(r.status is not None for r in result.loops)

    def test_scaling_programs_grow(self):
        small = synthetic.make_loop_nest(1, 1, 1)
        large = synthetic.make_loop_nest(3, 5, 4)
        assert len(large) > len(small) * 2
