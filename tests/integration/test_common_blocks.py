"""Integration tests: COMMON-block storage through analysis, interpreter,
and trace validation."""

from repro import Panorama
from repro.parallelize import LoopStatus
from repro.validate import validate_loop

SRC = (
    "      SUBROUTINE drive(a, n, m)\n"
    "      REAL a(100)\n"
    "      INTEGER n, m, i\n"
    "      COMMON /wrk/ w(50)\n"
    "      REAL acc\n"
    "      DO i = 1, n\n"
    "        CALL fillw(m, i)\n"
    "        acc = 0.0\n"
    "        CALL sumw(acc, m)\n"
    "        a(i) = acc\n"
    "      ENDDO\n"
    "      END\n"
    "\n"
    "      SUBROUTINE fillw(c, base)\n"
    "      COMMON /wrk/ w(50)\n"
    "      INTEGER c, base, j\n"
    "      DO j = 1, c\n"
    "        w(j) = 1.0 * base + j\n"
    "      ENDDO\n"
    "      END\n"
    "\n"
    "      SUBROUTINE sumw(acc, c)\n"
    "      COMMON /wrk/ w(50)\n"
    "      REAL acc\n"
    "      INTEGER c, j\n"
    "      DO j = 1, c\n"
    "        acc = acc + w(j)\n"
    "      ENDDO\n"
    "      END\n"
)


class TestCommonWorkArray:
    def test_common_array_privatizes(self):
        result = Panorama(run_machine_model=False).compile(SRC)
        outer = [r for r in result.loops if r.routine == "drive"][0]
        assert outer.status is LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        assert "w" in outer.verdict.privatized

    def test_interpreter_shares_common_storage(self):
        from repro.fortran import analyze, parse_program
        from repro.fortran.interp import Interpreter

        interp = Interpreter(analyze(parse_program(SRC)))
        frame = interp.run_routine(
            "drive", a=[0.0] * 20, n=3, m=4
        )
        # iteration 3 leaves w(j) = 3 + j; a(3) = sum over j of (3+j)
        assert frame.array("a").get((3,)) == sum(3 + j for j in range(1, 5))

    def test_trace_validation(self):
        report = validate_loop(
            SRC, "drive", "i", args={"a": [0.0] * 20, "n": 4, "m": 3}
        )
        assert report.ok, report.violations
        assert "w" in report.privatization_checked

    def test_t3_off_blocks_common_privatization(self):
        from repro import AnalysisOptions

        result = Panorama(
            AnalysisOptions(interprocedural=False), run_machine_model=False
        ).compile(SRC)
        outer = [r for r in result.loops if r.routine == "drive"][0]
        priv = outer.verdict.privatization
        assert not any(
            v.name == "w" and v.privatizable for v in priv.verdicts
        )
