"""Integration tests: the batch engine over the five Perfect programs.

The load-bearing guarantee: a warm-cache run is *observationally
identical* to a cold run — every serialized loop verdict matches — while
actually hitting the cache.
"""

import pytest

from repro.dataflow import AnalysisOptions
from repro.engine import (
    BatchEngine,
    BatchItem,
    IncrementalEngine,
    SummaryCache,
    items_from_kernel_registry,
)


@pytest.fixture(scope="module")
def kernel_items():
    items = items_from_kernel_registry()
    assert sorted(i.name for i in items) == [
        "ARC2D", "MDG", "OCEAN", "TRACK", "TRFD",
    ]
    return items


class TestBatchWarmCold:
    def test_warm_rerun_identical_and_hits(self, kernel_items, tmp_path):
        cold_engine = BatchEngine(cache_dir=tmp_path, jobs=1)
        cold = cold_engine.run(kernel_items)
        assert cold.ok, [r.error for r in cold.results if not r.ok]
        assert cold.telemetry.cache.hits == 0
        assert cold.telemetry.cache.stores > 0

        warm_engine = BatchEngine(cache_dir=tmp_path, jobs=1)
        warm = warm_engine.run(kernel_items)
        assert warm.ok
        assert warm.telemetry.cache.hits > 0
        # bit-identical serialized verdicts, program by program
        assert warm.verdict_rows() == cold.verdict_rows()

    def test_results_in_input_order(self, kernel_items):
        report = BatchEngine(jobs=1).run(kernel_items)
        assert [r.name for r in report.results] == [
            i.name for i in kernel_items
        ]

    def test_parse_error_is_contained(self, tmp_path):
        items = [
            BatchItem(name="bad", source="      this is not fortran\n"),
            BatchItem(
                name="good",
                source=(
                    "      SUBROUTINE s(a, n)\n      REAL a(100)\n"
                    "      INTEGER n, i\n      DO i = 1, n\n"
                    "        a(i) = 1.0\n      ENDDO\n      END\n"
                ),
            ),
        ]
        report = BatchEngine(cache_dir=tmp_path, jobs=1).run(items)
        assert not report.ok
        assert report.result("bad").error is not None
        assert report.result("good").ok
        assert report.telemetry.errors == 1
        assert len(report.result("good").rows()) == 1

    def test_ablated_options_use_disjoint_cache_keys(self, tmp_path):
        items = items_from_kernel_registry()[:1]
        BatchEngine(cache_dir=tmp_path, jobs=1).run(items)
        ablated = BatchEngine(
            AnalysisOptions(symbolic=False), cache_dir=tmp_path, jobs=1
        ).run(items)
        # a run with different techniques must not be served T1 summaries
        assert ablated.telemetry.cache.hits == 0


class TestBatchPool:
    def test_pool_matches_sequential(self, kernel_items, tmp_path):
        seq = BatchEngine(jobs=1).run(kernel_items)
        pool = BatchEngine(cache_dir=tmp_path, jobs=2).run(kernel_items)
        assert pool.ok, [r.error for r in pool.results if not r.ok]
        assert pool.verdict_rows() == seq.verdict_rows()
        # the workers' cache delta landed in the parent's memory tier
        assert len(pool.results) == len(kernel_items)
        assert pool.telemetry.jobs == 2

    def test_worker_deltas_warm_the_parent(self, kernel_items, tmp_path):
        engine = BatchEngine(cache_dir=tmp_path, jobs=2)
        engine.run(kernel_items)
        assert len(engine.cache) > 0  # adopted from worker stores
        warm = BatchEngine(cache_dir=tmp_path, jobs=1).run(kernel_items)
        assert warm.telemetry.cache.hits > 0


TWO_ROUTINES = (
    "      SUBROUTINE top(a, n)\n"
    "      REAL a(100)\n"
    "      INTEGER n, i\n"
    "      REAL t(100)\n"
    "      DO i = 1, n\n"
    "        CALL fill(t, i)\n"
    "        a(i) = t(1)\n"
    "      ENDDO\n"
    "      END\n"
    "      SUBROUTINE fill(t, i)\n"
    "      REAL t(100)\n"
    "      INTEGER i\n"
    "      t(1) = {value} * i\n"
    "      END\n"
    "      SUBROUTINE bystander(b, m)\n"
    "      REAL b(100)\n"
    "      INTEGER m, k, j\n"
    "      REAL t(50)\n"
    "      DO k = 1, m\n"
    "        DO j = 1, 10\n"
    "          t(j) = b(j) + k\n"
    "        ENDDO\n"
    "        b(k) = t(1)\n"
    "      ENDDO\n"
    "      END\n"
)


class TestIncremental:
    def test_callee_edit_reanalyzes_only_the_chain(self):
        engine = IncrementalEngine(cache=SummaryCache())
        first = engine.analyze(TWO_ROUTINES.format(value="2.0"), name="prog")
        assert sorted(first.report.changed) == ["bystander", "fill", "top"]
        assert first.report.reused == []

        second = engine.analyze(TWO_ROUTINES.format(value="3.0"), name="prog")
        assert second.report.changed == ["fill"]
        assert second.report.invalidated == ["top"]
        assert "bystander" in second.report.reused

    def test_unchanged_rerun_reuses_everything(self):
        engine = IncrementalEngine(cache=SummaryCache())
        src = TWO_ROUTINES.format(value="2.0")
        engine.analyze(src, name="prog")
        again = engine.analyze(src, name="prog")
        assert again.report.changed == []
        assert again.report.invalidated == []
        assert len(again.report.reused) > 0

    def test_verdicts_survive_the_cache(self):
        cache = SummaryCache()
        engine = IncrementalEngine(cache=cache)
        src = TWO_ROUTINES.format(value="2.0")
        from repro.engine import result_to_dict

        cold = result_to_dict(engine.analyze(src, name="prog").result)
        warm = result_to_dict(engine.analyze(src, name="prog").result)
        # timings and work counters legitimately shrink when warm; the
        # verdicts themselves must not move at all
        assert cold["loops"] == warm["loops"]
        assert warm["parallel_loops"] == cold["parallel_loops"]
