"""Integration tests: the paper's three Figure 1 examples end to end."""

from repro import Panorama
from repro.kernels.figure1 import FIGURE_1A, FIGURE_1B, FIGURE_1C
from repro.parallelize import LoopStatus
from repro.symbolic import Env
from tests.conftest import loop_verdicts


class TestFigure1A:
    """MDG interf fragment: A (= RL) must NOT privatize; B must."""

    def test_loop_serial_on_a(self):
        v = loop_verdicts(FIGURE_1A)[("interf", "i")]
        assert v.status is LoopStatus.SERIAL
        assert v.blocking_variables() == ["a"]

    def test_b_privatizable(self):
        v = loop_verdicts(FIGURE_1A)[("interf", "i")]
        assert v.privatization.verdict_for("b").privatizable

    def test_a_not_privatizable(self):
        v = loop_verdicts(FIGURE_1A)[("interf", "i")]
        assert not v.privatization.verdict_for("a").privatizable

    def test_scalars_privatizable(self):
        v = loop_verdicts(FIGURE_1A)[("interf", "i")]
        for name in ("kc", "ttemp"):
            assert v.privatization.verdict_for(name).privatizable, name

    def test_mod_guard_is_delta(self):
        # the write of A sits under a condition on an array element: the
        # implementation cannot express it (section 5.2) -> Delta guard
        v = loop_verdicts(FIGURE_1A)[("interf", "i")]
        mod_a = v.record.mod_i.for_array("a")
        assert not mod_a.is_exact()

    def test_inner_k_loop_reduction(self):
        verdicts = loop_verdicts(FIGURE_1A)
        inner = [
            v for (r, key), v in verdicts.items() if key == "k"
        ]
        assert any(v.status is LoopStatus.PARALLEL_WITH_REDUCTION for v in inner)


class TestFigure1B:
    """ARC2D filerx fragment: loop-invariant IF condition."""

    def test_loop_parallel_after_privatization(self):
        v = loop_verdicts(FIGURE_1B)[("filerx", "i")]
        assert v.status is LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        assert "a" in v.privatized

    def test_ue_i_complementary_guard(self):
        # UE_i contains A(jmax) only under p; MOD_<i writes it under .NOT.p
        v = loop_verdicts(FIGURE_1B)[("filerx", "i")]
        ue = v.record.ue_i.for_array("a")
        # under p true with jmax outside the window, the use is exposed
        env = Env(p=1, jlow=2, jup=9, jmax=40, i=2, n=5)
        assert ue.enumerate(env) == {(40,)}
        # under p false nothing is exposed
        env0 = Env(p=0, jlow=2, jup=9, jmax=40, i=2, n=5)
        assert ue.enumerate(env0) == set()

    def test_figure5_privatizability_proof(self):
        # UE_i n MOD_<i = empty (the boxed derivation of Figure 5)
        from repro.regions.gar_ops import lists_intersect_empty
        from repro.symbolic import Comparer

        v = loop_verdicts(FIGURE_1B)[("filerx", "i")]
        assert lists_intersect_empty(
            v.record.ue_i.for_array("a"),
            v.record.mod_lt.for_array("a"),
            Comparer(),
        )

    def test_window_use_not_exposed(self):
        # A(jlow:jup) is written every iteration before the read
        v = loop_verdicts(FIGURE_1B)[("filerx", "i")]
        ue = v.record.ue_i.for_array("a")
        env = Env(p=1, jlow=2, jup=9, jmax=5, i=2, n=5)
        # jmax inside the window: even the jmax read is covered
        assert ue.enumerate(env) == set()


class TestFigure1C:
    """OCEAN fragment: interprocedural complementary guards."""

    def test_loop_parallel_after_privatization(self):
        v = loop_verdicts(FIGURE_1C)[("main", "i")]
        assert v.status is LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        assert "a" in v.privatized

    def test_ue_i_of_a_empty(self):
        v = loop_verdicts(FIGURE_1C)[("main", "i")]
        assert v.record.ue_i.for_array("a").is_empty()

    def test_routine_summaries_match_paper(self):
        # MOD(in) = [x <= SIZE and 1 <= mm, B(1:mm)]
        from tests.conftest import compile_source

        hsg, analyzer = compile_source(FIGURE_1C)
        s_in = analyzer.routine_summary("in")
        mod_b = s_in.mod.for_array("b")
        assert mod_b.enumerate(Env(x=2, mm=5)) == {(k,) for k in range(1, 6)}
        assert mod_b.enumerate(Env(x=900, mm=5)) == set()  # x > SIZE branch
        s_out = analyzer.routine_summary("out")
        ue_b = s_out.ue.for_array("b")
        assert ue_b.enumerate(Env(x=2, mm=5)) == {(k,) for k in range(1, 6)}
        assert ue_b.enumerate(Env(x=900, mm=5)) == set()

    def test_pipeline_end_to_end(self):
        result = Panorama().compile(FIGURE_1C)
        outer = [r for r in result.loops if r.routine == "main"][0]
        assert outer.parallel
