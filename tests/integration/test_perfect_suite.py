"""Integration tests: Table 2 expectations on every Perfect-loop kernel."""

import pytest

from repro import Panorama
from repro.kernels import KERNELS

_RESULT_CACHE: dict = {}


def compiled(kernel):
    if kernel.source not in _RESULT_CACHE:
        _RESULT_CACHE[kernel.source] = Panorama(
            sizes=kernel.sizes
        ).compile(kernel.source)
    return _RESULT_CACHE[kernel.source]


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.full_id)
class TestTable2:
    def test_designated_arrays_privatizable(self, kernel):
        report = compiled(kernel).loop(kernel.routine, kernel.loop_label)
        priv = report.verdict.privatization
        for name in kernel.privatizable:
            verdict = priv.verdict_for(name)
            assert verdict.privatizable, f"{name}: {verdict.reason}"

    def test_non_privatizable_arrays_rejected(self, kernel):
        report = compiled(kernel).loop(kernel.routine, kernel.loop_label)
        priv = report.verdict.privatization
        for name in kernel.not_privatizable:
            assert not priv.verdict_for(name).privatizable, name

    def test_loop_parallel_modulo_hand_cases(self, kernel):
        from repro.parallelize import LoopStatus

        report = compiled(kernel).loop(kernel.routine, kernel.loop_label)
        status = report.verdict.status_modulo(frozenset(kernel.not_privatizable))
        assert status is not LoopStatus.SERIAL

    def test_dataflow_analysis_was_needed(self, kernel):
        # the paper applies array dataflow exactly where conventional
        # tests fail: every Table 1 loop is such a loop
        report = compiled(kernel).loop(kernel.routine, kernel.loop_label)
        assert report.used_dataflow

    def test_machine_estimates_populated(self, kernel):
        report = compiled(kernel).loop(kernel.routine, kernel.loop_label)
        assert report.pct_sequential > 0
        if report.parallel:
            assert report.speedup > 1.0


class TestShapes:
    def test_interf_rl_is_the_only_failure(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("MDG", "interf", 1000)
        report = compiled(kernel).loop("interf", 1000)
        # enr fails the privatization test too, but it is a recognized
        # reduction and therefore never blocks the loop; rl is the only
        # variable that actually serializes it (Table 2's "no")
        assert report.verdict.blocking_variables() == ["rl"]
        assert "enr" in report.verdict.reductions

    def test_trfd_speedups_exceed_processors(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("TRFD", "olda", 100)
        report = compiled(kernel).loop("olda", 100)
        assert report.speedup > 8.0  # vector units (paper: 16.4)

    def test_mdg_interf_dominates_program(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("MDG", "interf", 1000)
        report = compiled(kernel).loop("interf", 1000)
        assert report.pct_sequential > 70  # paper: 90%

    def test_ocean_loops_are_small_slices(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("OCEAN", "ocean", 270)
        report = compiled(kernel).loop("ocean", 270)
        assert report.pct_sequential < 10  # paper: 3%


class TestKernelCodegen:
    def test_all_kernels_annotate_and_reparse(self):
        from repro.codegen import annotate
        from repro.fortran import parse_program

        seen = set()
        for kernel in KERNELS:
            if kernel.source in seen:
                continue
            seen.add(kernel.source)
            result = compiled(kernel)
            for style in ("omp", "sgi"):
                text = annotate(result, style=style)
                parse_program(text)  # directives are comments: must reparse
                if style == "omp":
                    assert "C$OMP PARALLEL DO" in text

    def test_table1_loops_get_directives(self):
        from repro.codegen import annotate

        for kernel in KERNELS:
            result = compiled(kernel)
            report = result.loop(kernel.routine, kernel.loop_label)
            if not report.parallel:
                continue  # MDG interf/1000 stays serial (RL)
            text = annotate(result, style="sgi")
            assert "C$DOACROSS" in text
