"""Integration tests for the resident analysis daemon.

One :class:`~repro.server.app.ServerThread` per module drives the whole
HTTP request path — admission, routing, the single-analysis-thread
executor, NDJSON streaming — against the real pipeline, asserting the
daemon's verdicts are bit-identical to in-process compiles and that
saturation/malformed input degrade to 429/422 without taking the
process down or poisoning the resident caches.
"""

from __future__ import annotations

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.driver.panorama import Panorama
from repro.engine.telemetry import loop_report_row
from repro.kernels import KERNELS
from repro.kernels.figure1 import FIGURE_1A, FIGURE_1C
from repro.perf import profiler
from repro.server import (
    AnalysisService,
    PanoramaClient,
    ServerConfig,
    ServerThread,
    ServiceError,
)

BAD_SOURCE = "THIS IS NOT FORTRAN ]["

#: one entry per distinct program text in the registry (kernels of the
#: same program share their source; re-analyzing them adds nothing)
PROGRAMS = list({k.source: k for k in KERNELS}.values())


def expected_rows(source: str, sizes=None) -> list[dict]:
    """The sequential in-process ground truth for one program."""
    result = Panorama(sizes=sizes).compile(source)
    return [loop_report_row(r) for r in result.loops]


@pytest.fixture(scope="module")
def server():
    service = AnalysisService(ServerConfig(max_inflight=32))
    with ServerThread(service) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(server):
    return PanoramaClient(port=server.port)


class TestAnalyzeIdentity:
    def test_registry_verdicts_match_sequential_runs(self, client):
        for kernel in PROGRAMS:
            sizes = dict(kernel.sizes)
            payload = client.analyze(
                kernel.source, name=kernel.full_id, sizes=sizes
            )
            assert payload["loops"] == expected_rows(kernel.source, sizes), (
                f"daemon verdicts diverged for {kernel.full_id}"
            )
            assert payload["name"] == kernel.full_id

    def test_repeat_requests_are_stable_and_warmer(self, client):
        profiler.clear_caches()  # cold contents; probes are delta-scoped
        kernel = PROGRAMS[0]
        first = client.analyze(kernel.source, sizes=dict(kernel.sizes))
        second = client.analyze(kernel.source, sizes=dict(kernel.sizes))
        assert second["loops"] == first["loops"]
        # the resident-cache payoff, observed over the wire: the second
        # request's symbolic hit rate is strictly higher
        assert second["request"]["hit_rate"] > first["request"]["hit_rate"]
        # steady state: every summarized routine replays from the cache
        # and nothing new is written
        assert second["request"]["summary_cache"]["hits"] > 0
        assert second["request"]["summary_cache"]["stores"] == 0
        assert (
            second["request"]["summary_cache"]["misses"]
            <= first["request"]["summary_cache"]["misses"]
        )
        assert second["request"]["elapsed_ms"] < first["request"]["elapsed_ms"]


class TestConcurrency:
    def test_overlapping_mixed_requests(self, client, server):
        """N overlapping requests, valid and invalid interleaved: every
        valid answer is bit-identical to its sequential ground truth,
        every invalid one is a clean 422 — no cross-talk, no crash."""
        valid = PROGRAMS[: min(3, len(PROGRAMS))]
        ground_truth = {
            k.full_id: expected_rows(k.source, dict(k.sizes)) for k in valid
        }
        jobs = []
        for i in range(8):
            if i % 2 == 0:
                jobs.append(valid[(i // 2) % len(valid)])
            else:
                jobs.append(None)  # an invalid submission

        def run(job):
            # one client per worker: http.client connections are not
            # thread-safe, client objects are just host/port holders
            c = PanoramaClient(port=client.port)
            if job is None:
                with pytest.raises(ServiceError) as err:
                    c.analyze(BAD_SOURCE, name="bad.f")
                return ("error", err.value.status, err.value.kind)
            payload = c.analyze(
                job.source, name=job.full_id, sizes=dict(job.sizes)
            )
            return ("ok", job.full_id, payload["loops"])

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(run, jobs))

        oks = [r for r in results if r[0] == "ok"]
        errors = [r for r in results if r[0] == "error"]
        assert len(oks) == 4 and len(errors) == 4
        for _, full_id, rows in oks:
            assert rows == ground_truth[full_id], full_id
        for _, status, kind in errors:
            assert status == 422
            assert kind in ("source", "analysis")
        # the daemon is still healthy afterwards
        assert client.health()["status"] == "ok"

    def test_saturation_answers_429_with_retry_after(self, server):
        """Fill the only analysis slot with a blocked request, then watch
        the next one bounce off admission control — deterministically."""
        service = AnalysisService(ServerConfig(max_inflight=1))
        release = threading.Event()
        started = threading.Event()
        real_analyze = service.analyze

        def blocking_analyze(body, on_event=None):
            started.set()
            assert release.wait(timeout=30)
            return real_analyze(body, on_event)

        service.analyze = blocking_analyze
        with ServerThread(service) as thread:
            # retries=0: this test asserts on the raw 429 rejection
            c = PanoramaClient(port=thread.port, retries=0)
            holder: dict = {}

            def occupy():
                holder["payload"] = c.analyze(FIGURE_1A, name="slow.f")

            t = threading.Thread(target=occupy)
            t.start()
            try:
                assert started.wait(timeout=30)
                with pytest.raises(ServiceError) as err:
                    c.analyze(FIGURE_1A, name="bounced.f")
                assert err.value.status == 429
                assert err.value.kind == "saturated"
                assert err.value.retry_after is not None
                # health/stats stay answerable while the slot is held:
                # the event loop never blocks on analysis
                stats = c.stats()
                assert stats["admission"]["in_flight"] == 1
                assert stats["admission"]["rejected"] >= 1
            finally:
                release.set()
                t.join(timeout=60)
            # the occupying request finished normally after release
            assert holder["payload"]["loops"] == expected_rows(FIGURE_1A)


class TestFailureContainment:
    def test_malformed_source_is_422_and_caches_stay_clean(self, client):
        baseline = client.analyze(FIGURE_1A, name="clean.f")
        with pytest.raises(ServiceError) as err:
            client.analyze(BAD_SOURCE, name="bad.f")
        assert err.value.status == 422
        assert err.value.kind in ("source", "analysis")
        again = client.analyze(FIGURE_1A, name="clean.f")
        assert again["loops"] == baseline["loops"]

    def test_malformed_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST", "/v1/analyze", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            payload = json.loads(resp.read())
        finally:
            conn.close()
        assert resp.status == 400
        assert payload["error"]["kind"] == "protocol"

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.request("GET", "/v1/nope")
        assert err.value.status == 404

    def test_wrong_method_is_405_with_allow(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request("DELETE", "/v1/analyze")
            resp = conn.getresponse()
            resp.read()
            allow = resp.headers.get("Allow")
        finally:
            conn.close()
        assert resp.status == 405
        assert allow == "POST"

    def test_oversized_body_is_413(self):
        # a dedicated server with a tiny body cap: the rejected payload
        # still fits in the socket buffer, so the client reliably gets
        # the 413 instead of racing a mid-upload connection reset
        service = AnalysisService(ServerConfig(max_body_bytes=1000))
        with ServerThread(service) as thread:
            conn = http.client.HTTPConnection(
                "127.0.0.1", thread.port, timeout=30
            )
            try:
                conn.request(
                    "POST", "/v1/analyze",
                    body=json.dumps({"source": "C" * 2000}).encode(),
                    headers={"Content-Type": "application/json"},
                )
                resp = conn.getresponse()
                resp.read()
            finally:
                conn.close()
        assert resp.status == 413


class TestStreaming:
    def test_stream_matches_blocking_verdicts(self, client):
        kernel = PROGRAMS[0]
        blocking = client.analyze(kernel.source, sizes=dict(kernel.sizes))
        events = list(
            client.analyze_stream(kernel.source, sizes=dict(kernel.sizes))
        )
        kinds = [e["event"] for e in events]
        assert kinds[0] == "routine_started"
        assert kinds[-1] == "done"
        verdicts = [e for e in events if e["event"] == "loop_verdict"]
        assert len(verdicts) == len(blocking["loops"])
        # streamed rows are the blocking rows minus the machine-model
        # columns (those are only known after the compile finishes)
        for streamed, final in zip(verdicts, blocking["loops"]):
            for key, value in streamed.items():
                if key == "event":
                    continue
                assert final[key] == value
        done = events[-1]
        assert done["loops"] == len(blocking["loops"])
        assert done["parallel_loops"] == blocking["parallel_loops"]

    def test_stream_error_event_for_bad_source(self, client):
        events = list(client.analyze_stream(BAD_SOURCE, name="bad.f"))
        assert len(events) == 1
        assert events[0]["event"] == "error"
        assert events[0]["status"] == 422


class TestWatchOverHttp:
    def test_watch_lifecycle(self, client):
        sid = client.watch_open(name="watched.f")
        rev1 = client.watch_submit(sid, FIGURE_1C)
        assert rev1["revision"] == 1
        assert rev1["report"]["changed"] and not rev1["report"]["invalidated"]

        edited = FIGURE_1C.replace("B(J) = x", "B(J) = x * 1.0")
        rev2 = client.watch_submit(sid, edited)
        assert rev2["revision"] == 2
        report = rev2["report"]
        assert len(report["changed"]) == 1
        assert report["invalidated"] and report["reused"]
        affected = set(report["changed"]) | set(report["invalidated"])
        assert {row["routine"] for row in rev2["loops"]} <= affected
        assert len(rev2["loops"]) < rev2["total_loops"]

        closed = client.watch_close(sid)
        assert closed["closed"] is True
        with pytest.raises(ServiceError) as err:
            client.watch_submit(sid, FIGURE_1C)
        assert err.value.status == 404


class TestIntrospection:
    def test_stats_reflects_the_session(self, client):
        stats = client.stats()
        assert stats["server"]["uptime_s"] >= 0
        assert stats["requests"]["analyze"] >= 1
        assert stats["responses"].get("200", 0) >= 1
        assert stats["responses"].get("422", 0) >= 1
        assert stats["telemetry"]["files"] >= 1
        assert stats["summary_cache"]["stores"] > 0


class TestGracefulDrain:
    def test_drain_completes_in_flight_and_rejects_new(self):
        """With max_inflight > 1 and both slots occupied, a drain must
        deliver every in-flight verdict (zero dropped) while answering
        new requests 503 + Retry-After, then report a clean drain."""
        service = AnalysisService(
            ServerConfig(max_inflight=2, drain_timeout_s=30.0)
        )
        release = threading.Event()
        started = threading.Event()
        real_analyze = service.analyze

        def blocking_analyze(body, on_event=None):
            # only the first request blocks: the analysis executor is
            # single-threaded, the second stays queued (but in-flight)
            started.set()
            assert release.wait(timeout=30)
            return real_analyze(body, on_event)

        service.analyze = blocking_analyze
        with ServerThread(service) as thread:
            port = thread.port
            holder: dict = {}

            def occupy(slot: str):
                c = PanoramaClient(port=port, retries=0)
                holder[slot] = c.analyze(FIGURE_1A, name=f"{slot}.f")

            workers = [
                threading.Thread(target=occupy, args=(s,)) for s in ("a", "b")
            ]
            for t in workers:
                t.start()
            assert started.wait(timeout=30)
            import time as _time

            t0 = _time.monotonic()
            while service.admission["in_flight"] < 2:  # both admitted
                assert _time.monotonic() - t0 < 30.0
                _time.sleep(0.01)

            drained: dict = {}

            def drain():
                drained["clean"] = thread.drain()

            drainer = threading.Thread(target=drain)
            drainer.start()
            # draining is visible before the in-flight work finishes
            probe = PanoramaClient(port=port, retries=0)
            t0 = _time.monotonic()
            while not service.draining:
                assert _time.monotonic() - t0 < 30.0
                _time.sleep(0.01)
            assert probe.health()["status"] == "draining"
            with pytest.raises(ServiceError) as err:
                probe.analyze(FIGURE_1A, name="late.f")
            assert err.value.status == 503
            assert err.value.kind == "draining"
            assert err.value.retry_after is not None

            release.set()
            for t in workers:
                t.join(timeout=60)
            drainer.join(timeout=60)
            assert drained["clean"] is True
            # zero dropped verdicts: both occupied slots answered fully
            expected = expected_rows(FIGURE_1A)
            assert holder["a"]["loops"] == expected
            assert holder["b"]["loops"] == expected
            assert service.admission["drained_rejects"] >= 1
            assert service.admission["in_flight"] == 0


class TestClientRetries:
    def test_client_rides_out_saturation(self):
        """A retrying client sees one 429, sleeps per Retry-After, and
        succeeds once the slot frees — no ServiceError surfaces."""
        service = AnalysisService(
            ServerConfig(max_inflight=1, retry_after_s=0.1)
        )
        release = threading.Event()
        started = threading.Event()
        real_analyze = service.analyze

        def blocking_analyze(body, on_event=None):
            if not started.is_set():
                started.set()
                assert release.wait(timeout=30)
            return real_analyze(body, on_event)

        service.analyze = blocking_analyze
        with ServerThread(service) as thread:
            port = thread.port
            holder: dict = {}

            def occupy():
                c = PanoramaClient(port=port, retries=0)
                holder["first"] = c.analyze(FIGURE_1A, name="slow.f")

            t = threading.Thread(target=occupy)
            t.start()
            assert started.wait(timeout=30)

            releaser = threading.Timer(0.3, release.set)
            releaser.start()
            try:
                retrying = PanoramaClient(
                    port=port, retries=8, backoff_base=0.05
                )
                payload = retrying.analyze(FIGURE_1A, name="patient.f")
            finally:
                release.set()
                releaser.cancel()
                t.join(timeout=60)
            assert payload["loops"] == expected_rows(FIGURE_1A)
            # admission really did bounce the patient client at least once
            assert service.admission["rejected"] >= 1

    def test_zero_retries_raises_immediately(self):
        service = AnalysisService(ServerConfig(max_inflight=0))
        with ServerThread(service) as thread:
            c = PanoramaClient(port=thread.port, retries=0)
            with pytest.raises(ServiceError) as err:
                c.analyze(FIGURE_1A)
            assert err.value.status == 429
