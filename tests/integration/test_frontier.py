"""Integration: the frontier pass end to end (docs/frontier.md).

Every frontier kernel upgrades from serial to parallel with replayable
evidence; with the pass disabled the verdicts fall back bit-identically;
the auditor replays (and rejects tampered) evidence; the toggle reaches
the cache key, the CLIs, and the server.
"""

import copy

import pytest

from repro import Panorama
from repro.audit import audit_compilation
from repro.dataflow import AnalysisOptions
from repro.driver import cli as driver_cli
from repro.engine.telemetry import analysis_stats_dict, loop_report_row
from repro.kernels import FRONTIER_KERNELS, get_frontier_kernel
from repro.parallelize import LoopStatus

ON = AnalysisOptions(frontier=True)
OFF = AnalysisOptions(frontier=False)


def compile_kernel(kernel, options):
    return Panorama(options, run_machine_model=False).compile(kernel.source)


@pytest.fixture(scope="module")
def compiled():
    return {
        k.name: (compile_kernel(k, ON), compile_kernel(k, OFF))
        for k in FRONTIER_KERNELS
    }


class TestKernelUpgrades:
    def test_every_kernel_upgrades_with_evidence(self, compiled):
        for kernel in FRONTIER_KERNELS:
            on, _ = compiled[kernel.name]
            report = kernel.target_report(on)
            assert report.status.value == kernel.expect_on, kernel.name
            assert report.parallel, kernel.name
            assert len(report.evidence) >= 1, kernel.name

    def test_every_kernel_falls_back_without_frontier(self, compiled):
        for kernel in FRONTIER_KERNELS:
            _, off = compiled[kernel.name]
            report = kernel.target_report(off)
            assert report.status.value == kernel.expect_off, kernel.name
            assert report.evidence == [], kernel.name

    def test_at_least_four_distinct_upgrade_patterns(self):
        # the acceptance floor: >= 4 registry loops move off serial
        upgraded = [
            k for k in FRONTIER_KERNELS if k.expect_on != k.expect_off
        ]
        assert len(upgraded) >= 4

    def test_scan_kernels_carry_the_two_pass_schedule(self, compiled):
        for name in ("prefix_sum", "segmented_scan", "running_sum"):
            on, _ = compiled[name]
            report = get_frontier_kernel(name).target_report(on)
            assert report.status is LoopStatus.PARALLEL_SCAN
            assert report.schedule == "two-pass-scan"
            assert any(e["kind"] == "recurrence" for e in report.evidence)

    def test_off_mode_is_deterministic(self):
        # two frontier-off runs serialize identically: nothing about the
        # pass (counters, evidence, schedules) leaks into off-mode rows
        kernel = get_frontier_kernel("prefix_sum")
        rows_a = [
            loop_report_row(r)
            for r in compile_kernel(kernel, OFF).loops
        ]
        rows_b = [
            loop_report_row(r)
            for r in compile_kernel(kernel, OFF).loops
        ]
        assert rows_a == rows_b
        for row in rows_a:
            assert row["evidence"] == [] and row["schedule"] is None


class TestCounters:
    def test_stats_count_upgrades(self, compiled):
        for kernel in FRONTIER_KERNELS:
            on, off = compiled[kernel.name]
            assert on.analyzer.stats.frontier_upgrades >= 1, kernel.name
            assert off.analyzer.stats.frontier_upgrades == 0, kernel.name
            assert off.analyzer.stats.content_facts == 0, kernel.name
            assert off.analyzer.stats.recurrence_matches == 0, kernel.name

    def test_content_facts_counted(self, compiled):
        on, _ = compiled["idx_gather"]
        assert on.analyzer.stats.content_facts >= 1

    def test_recurrence_matches_counted(self, compiled):
        on, _ = compiled["prefix_sum"]
        assert on.analyzer.stats.recurrence_matches == 1

    def test_stats_dict_exports_the_counters(self, compiled):
        on, _ = compiled["prefix_sum"]
        stats = analysis_stats_dict(on.analyzer.stats)
        assert stats["recurrence_matches"] == 1
        assert stats["frontier_upgrades"] == 1
        assert "content_facts" in stats


class TestAuditReplay:
    def test_all_kernels_audit_clean(self, compiled):
        for kernel in FRONTIER_KERNELS:
            on, _ = compiled[kernel.name]
            report = audit_compilation(on, kernel.name, source=kernel.source)
            assert report.errors() == [], kernel.name
            counts = report.counts()
            assert counts["evidence_replay"] == 0, kernel.name
            assert counts["evidence_unsupported"] == 0, kernel.name

    def test_tampered_evidence_is_pan105(self):
        kernel = get_frontier_kernel("prefix_sum")
        result = compile_kernel(kernel, ON)
        report = kernel.target_report(result)
        tampered = copy.deepcopy(report.evidence[0])
        tampered["operator"] = "*"  # claim a product chain
        report.evidence[0] = tampered
        audit = audit_compilation(result, "t.f", source=kernel.source)
        codes = [d.code for d in audit.diagnostics()]
        assert "PAN101" not in codes  # the verdict itself is fine
        assert "PAN105" in codes
        assert audit.errors() != []

    def test_tampered_content_evidence_is_pan105(self):
        kernel = get_frontier_kernel("idx_gather")
        result = compile_kernel(kernel, ON)
        report = kernel.target_report(result)
        (content,) = [
            e for e in report.evidence if e["kind"] == "content"
        ]
        content["coeff"] = "7"
        audit = audit_compilation(result, "t.f", source=kernel.source)
        assert "PAN105" in [d.code for d in audit.diagnostics()]

    def test_unknown_evidence_kind_is_pan305(self):
        kernel = get_frontier_kernel("prefix_sum")
        result = compile_kernel(kernel, ON)
        kernel.target_report(result).evidence.append({"kind": "vibes"})
        audit = audit_compilation(result, "t.f", source=kernel.source)
        assert "PAN305" in [d.code for d in audit.diagnostics()]

    def test_scan_verdict_without_evidence_is_pan105(self):
        kernel = get_frontier_kernel("prefix_sum")
        result = compile_kernel(kernel, ON)
        kernel.target_report(result).evidence.clear()
        audit = audit_compilation(result, "t.f", source=kernel.source)
        assert "PAN105" in [d.code for d in audit.diagnostics()]


class TestCliAndCache:
    def test_strict_audit_exits_clean_on_every_kernel(self, tmp_path, capsys):
        for kernel in FRONTIER_KERNELS:
            src = tmp_path / f"{kernel.name}.f"
            src.write_text(kernel.source)
            code = driver_cli.main(
                [str(src), "--strict-audit", "--no-machine"]
            )
            capsys.readouterr()
            assert code == 0, kernel.name

    def test_no_frontier_flag_restores_the_old_verdict(self, tmp_path, capsys):
        kernel = get_frontier_kernel("prefix_sum")
        src = tmp_path / "k.f"
        src.write_text(kernel.source)
        assert driver_cli.main([str(src), "--no-machine"]) == 0
        on_out = capsys.readouterr().out
        assert "parallel (scan)" in on_out
        assert (
            driver_cli.main([str(src), "--no-machine", "--no-frontier"]) == 0
        )
        off_out = capsys.readouterr().out
        assert "parallel (scan)" not in off_out and "serial" in off_out

    def test_env_toggle_matches_the_flag(self, monkeypatch):
        monkeypatch.setenv("PANORAMA_NO_FRONTIER", "1")
        assert AnalysisOptions().frontier is False
        monkeypatch.delenv("PANORAMA_NO_FRONTIER")
        assert AnalysisOptions().frontier is True

    def test_toggle_reaches_the_cache_key(self):
        from repro.engine.cache import CACHE_FORMAT_VERSION, options_key

        assert CACHE_FORMAT_VERSION >= 4
        assert options_key(ON) != options_key(OFF)
        assert "FR=True" in options_key(ON)

    def test_server_accepts_no_frontier(self):
        from repro.server.service import AnalysisService, ServerConfig

        service = AnalysisService(ServerConfig())
        opts = service.build_options({"options": {"no_frontier": True}})
        assert opts.frontier is False
        assert service.build_options({}).frontier is True


class TestCodegen:
    def test_scan_directive_emitted_not_a_parallel_do(self):
        from repro.codegen import annotate

        kernel = get_frontier_kernel("prefix_sum")
        result = Panorama(ON).compile(kernel.source)
        text = annotate(result, style="omp")
        assert "C$PAR SCAN(A: prefix-scan over + distance 1)" in text
        assert "SCHEDULE(TWO-PASS)" in text
        # a plain parallel DO would race the carried chain
        assert "C$OMP PARALLEL DO" not in text

    def test_annotated_scan_output_still_parses(self):
        from repro.codegen import annotate
        from repro.fortran import parse_program

        kernel = get_frontier_kernel("segmented_scan")
        result = Panorama(ON).compile(kernel.source)
        parse_program(annotate(result, style="omp"))

    def test_scan_speedup_is_finite_and_sane(self):
        kernel = get_frontier_kernel("prefix_sum")
        result = Panorama(ON).compile(kernel.source)
        report = kernel.target_report(result)
        assert report.status is LoopStatus.PARALLEL_SCAN
        assert report.speedup >= 1.0
