"""Integration: the audit is clean over the whole kernel registry, and a
planted misreport is caught end to end through the batch CLI."""

import json

import pytest

from repro.audit import audit_compilation
from repro.dataflow import AnalysisOptions
from repro.diagnostics import sarif_log
from repro.driver.panorama import Panorama
from repro.engine import BatchEngine, items_from_kernel_registry
from repro.engine import cli as batch_cli
from repro.resilience import faults


@pytest.fixture(autouse=True)
def clean_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def registry_reports():
    panorama = Panorama(AnalysisOptions(), run_machine_model=False)
    out = []
    for item in items_from_kernel_registry():
        result = panorama.compile(item.source)
        out.append(audit_compilation(result, item.name, source=item.source))
    return out


class TestRegistryIsClean:
    def test_no_confirmed_findings(self, registry_reports):
        for report in registry_reports:
            assert report.confirmed() == [], report.name
            assert report.clean(), report.name

    def test_no_internal_violations(self, registry_reports):
        for report in registry_reports:
            bad = [
                d
                for d in report.diagnostics()
                if d.code in ("PAN301", "PAN302")
            ]
            assert bad == [], report.name

    def test_every_parallel_loop_was_audited(self, registry_reports):
        total = sum(r.loops_audited for r in registry_reports)
        assert total >= 40  # the registry reports ~52 parallel loops
        assert sum(r.pairs_checked for r in registry_reports) >= total

    def test_registry_sarif_is_well_formed(self, registry_reports):
        diags = [d for r in registry_reports for d in r.diagnostics()]
        log = sarif_log(diags)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert len(run["results"]) == len(diags)
        for res in run["results"]:
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]
            assert res["level"] in ("error", "warning", "note")


class TestBatchEngineAudit:
    def test_audit_payload_rides_the_engine(self):
        engine = BatchEngine(
            AnalysisOptions(), run_machine_model=False, audit=True
        )
        report = engine.run(items_from_kernel_registry())
        assert report.telemetry.audit["audited_files"] == 5
        assert report.telemetry.audit["confirmed"] == 0
        assert report.telemetry.audit["loops_audited"] > 0
        assert report.audit_errors() == []
        # rehydrated diagnostics keep their codes and spans
        diags = report.audit_diagnostics()
        assert all(d.code.startswith("PAN") for d in diags)

    def test_audit_off_by_default(self):
        engine = BatchEngine(AnalysisOptions(), run_machine_model=False)
        report = engine.run(items_from_kernel_registry()[:1])
        assert report.telemetry.audit["audited_files"] == 0
        assert report.audit_diagnostics() == []


SEEDED_RACE = """\
      subroutine sweep(a, b)
      real a(200), b(200)
      do 10 i = 2, 100
         a(i) = a(i-1) + b(i)
   10 continue
      end
"""


class TestEndToEndMisreport:
    """Acceptance: a known cross-iteration flow dependence is detected
    when the classifier is forced to misreport via fault injection.

    Runs with ``--no-frontier``: the seeded source is a genuine prefix
    scan, and the frontier pass would (correctly) report it parallel,
    leaving no serial verdict for the misreport seam to flip."""

    def test_strict_audit_exits_4_and_writes_sarif(self, tmp_path, capsys):
        src = tmp_path / "seeded.f"
        src.write_text(SEEDED_RACE)
        sarif_path = tmp_path / "audit.sarif"
        code = batch_cli.main(
            [
                str(src),
                "--audit",
                "--strict-audit",
                "--sarif",
                str(sarif_path),
                "--no-machine",
                "--no-frontier",
                "--inject-faults",
                "classifier.misreport:sweep/10",
            ]
        )
        assert code == 4
        err = capsys.readouterr().err
        assert "strict audit failed" in err
        log = json.loads(sarif_path.read_text())
        assert "PAN101" in [r["ruleId"] for r in log["runs"][0]["results"]]

    def test_without_injection_the_same_source_is_clean(self, tmp_path):
        src = tmp_path / "seeded.f"
        src.write_text(SEEDED_RACE)
        code = batch_cli.main(
            [str(src), "--audit", "--strict-audit", "--no-machine",
             "--no-frontier"]
        )
        assert code == 0
