"""Integration: sharded campaigns over one shared cache tier.

Two shards of a seeded campaign run as separate CLI invocations against
one shared SQLite tier; the union of their verdicts must equal an
unsharded run of the same corpus verdict for verdict, and the merged
rollup must carry the campaign provenance (seed, generator version).
"""

from __future__ import annotations

import json

from repro.dataflow import AnalysisOptions
from repro.engine import BatchEngine
from repro.engine.campaign import (
    GENERATOR_VERSION,
    generate_campaign,
    main as campaign_main,
    shard_items,
)

SEED, COUNT = 11, 14


def _verdicts(report):
    out = {}
    for res in report.results:
        out[res.name] = (
            [tuple((k, tuple(v) if isinstance(v, list) else v)
                   for k, v in sorted(r.items()))
             for r in res.rows()]
            if res.ok else ("ERROR", res.error_kind)
        )
    return out


def _run(items, cache_dir=None, backend=None, schedule="auto"):
    engine = BatchEngine(
        AnalysisOptions(), cache_dir=cache_dir, jobs=1,
        run_machine_model=False, cache_backend=backend, schedule=schedule,
    )
    report = engine.run(items)
    engine.cache.close()
    return report


class TestShardedEqualsUnsharded:
    def test_union_of_shards_matches(self, tmp_path):
        corpus = generate_campaign(COUNT, seed=SEED)
        unsharded = _verdicts(_run(list(corpus)))

        tier = tmp_path / "tier"
        merged: dict = {}
        for spec in ((1, 2), (2, 2)):
            shard = shard_items(corpus, *spec)
            report = _run(shard, cache_dir=str(tier), backend="shared",
                          schedule="topo")
            merged.update(_verdicts(report))
        assert merged == unsharded

    def test_second_shard_reuses_first_shards_summaries(self, tmp_path):
        corpus = generate_campaign(40, seed=3)
        tier = tmp_path / "tier"
        first = _run(shard_items(corpus, 1, 2), cache_dir=str(tier),
                     backend="shared", schedule="topo")
        second = _run(shard_items(corpus, 2, 2), cache_dir=str(tier),
                      backend="shared", schedule="topo")
        assert first.telemetry.cache.stores > 0
        assert second.telemetry.cache.shared_hits > 0


class TestCampaignCLI:
    def test_two_shard_cli_flow(self, tmp_path, capsys):
        tier, s1, s2 = (tmp_path / "tier", tmp_path / "s1.json",
                        tmp_path / "s2.json")
        base = ["--count", str(COUNT), "--seed", str(SEED),
                "--cache-dir", str(tier), "--cache-backend", "shared",
                "--schedule", "topo", "--no-machine"]
        assert campaign_main(base + ["--shard", "1/2",
                                     "--stats-json", str(s1)]) == 0
        assert campaign_main(base + ["--shard", "2/2",
                                     "--stats-json", str(s2)]) == 0

        for path, spec in ((s1, "1/2"), (s2, "2/2")):
            payload = json.loads(path.read_text())
            camp = payload["campaign"]
            assert camp["seed"] == SEED
            assert camp["generator_version"] == GENERATOR_VERSION
            assert camp["count"] == COUNT
            assert camp["shard"] == spec
            assert payload["cache_backend"] == "shared"

        out = tmp_path / "rollup.json"
        assert campaign_main(["--rollup", str(out),
                              str(s1), str(s2)]) == 0
        rollup = json.loads(out.read_text())
        assert rollup["shards"] == 2
        assert rollup["files"] == COUNT
        assert rollup["campaign"]["shards"] == ["1/2", "2/2"]
        board = capsys.readouterr().out
        assert f"seed={SEED}" in board

    def test_rollup_refuses_mixed_seeds(self, tmp_path, capsys):
        tier = tmp_path / "tier"
        s1, s2 = tmp_path / "a.json", tmp_path / "b.json"
        for seed, path in ((1, s1), (2, s2)):
            assert campaign_main(
                ["--count", "4", "--seed", str(seed), "--no-machine",
                 "--cache-dir", str(tier), "--stats-json", str(path)]
            ) == 0
        assert campaign_main(["--rollup", "-", str(s1), str(s2)]) == 2
        assert "different campaigns" in capsys.readouterr().err

    def test_list_mode_is_pure(self, capsys):
        assert campaign_main(["--count", "6", "--seed", "5", "--shard",
                              "1/2", "--list"]) == 0
        first = capsys.readouterr().out
        assert campaign_main(["--count", "6", "--seed", "5", "--shard",
                              "1/2", "--list"]) == 0
        assert capsys.readouterr().out == first
        assert len(first.splitlines()) == 3
