"""Empirical soundness validation: symbolic claims vs concrete traces.

Each test runs a kernel in the concrete interpreter and checks, per
iteration of the target loop, that the actual writes/exposed reads fall
inside the symbolic ``MOD_i``/``UE_i`` sets and that every variable the
analysis declares privatizable really carries no cross-iteration flow
(see :mod:`repro.validate`).
"""

from repro.kernels.figure1 import FIGURE_1B
from repro.validate import validate_loop


class TestWorkArrayKernels:
    SRC = (
        "      SUBROUTINE sweep(a, b, n, m)\n"
        "      REAL a(100), b(100)\n"
        "      INTEGER n, m, i, j\n"
        "      REAL t(50)\n"
        "      REAL s\n"
        "      DO i = 1, n\n"
        "        DO j = 1, m\n"
        "          t(j) = b(j) + 1.0 * i\n"
        "        ENDDO\n"
        "        s = 0.0\n"
        "        DO j = 1, m\n"
        "          s = s + t(j)\n"
        "        ENDDO\n"
        "        a(i) = s\n"
        "      ENDDO\n"
        "      END\n"
    )

    def test_outer_loop_validated(self):
        report = validate_loop(
            self.SRC,
            "sweep",
            "i",
            args={"a": [0.0] * 20, "b": [1.0] * 20, "n": 6, "m": 5},
        )
        assert report.ok, report.violations
        assert {"a", "t", "s"} <= report.checked
        assert "t" in report.privatization_checked
        assert len(report.iterations) == 6

    def test_inner_loop_validated(self):
        report = validate_loop(
            self.SRC,
            "sweep",
            "j",
            args={"a": [0.0] * 20, "b": [1.0] * 20, "n": 2, "m": 4},
        )
        assert report.ok, report.violations


class TestFigure1B:
    def test_trace_matches_analysis(self):
        for p in (True, False):
            report = validate_loop(
                FIGURE_1B,
                "filerx",
                "i",
                args={
                    "a": [0.0] * 60,
                    "jlow": 2,
                    "jup": 9,
                    "jmax": 40,
                    "p": p,
                    "n": 4,
                },
            )
            assert report.ok, (p, report.violations)
            assert "a" in report.checked
            assert "a" in report.privatization_checked

    def test_jmax_inside_window(self):
        report = validate_loop(
            FIGURE_1B,
            "filerx",
            "i",
            args={
                "a": [0.0] * 60,
                "jlow": 2,
                "jup": 9,
                "jmax": 5,
                "p": True,
                "n": 3,
            },
        )
        assert report.ok, report.violations


class TestRecurrences:
    def test_recurrence_trace_has_flow_and_analysis_agrees(self):
        src = (
            "      SUBROUTINE recur(a, n)\n"
            "      REAL a(100)\n"
            "      INTEGER n, i\n"
            "      DO i = 2, n\n"
            "        a(i) = a(i-1) + 1.0\n"
            "      ENDDO\n"
            "      END\n"
        )
        report = validate_loop(
            src, "recur", "i", args={"a": [1.0] * 20, "n": 8}
        )
        # the analysis must NOT have declared a privatizable, so no
        # violation is possible — and the sets must still contain reality
        assert report.ok, report.violations
        assert "a" in report.checked
        assert "a" not in report.privatization_checked

    def test_strided_disjoint(self):
        src = (
            "      SUBROUTINE stride(a, n)\n"
            "      REAL a(200)\n"
            "      INTEGER n, i\n"
            "      DO i = 1, n\n"
            "        a(2*i) = 1.0\n"
            "        a(2*i+1) = a(2*i) + 1.0\n"
            "      ENDDO\n"
            "      END\n"
        )
        report = validate_loop(src, "stride", "i", args={"a": [0.0] * 50, "n": 10})
        assert report.ok, report.violations
        assert "a" in report.checked


class TestConditionalKernels:
    def test_guarded_write_validated(self):
        src = (
            "      SUBROUTINE cond(a, b, n, k)\n"
            "      REAL a(100), b(100)\n"
            "      INTEGER n, k, i\n"
            "      DO i = 1, n\n"
            "        IF (i .GT. k) THEN\n"
            "          a(i) = b(i)\n"
            "        ELSE\n"
            "          a(i) = 0.0\n"
            "        ENDIF\n"
            "      ENDDO\n"
            "      END\n"
        )
        report = validate_loop(
            src, "cond", "i",
            args={"a": [0.0] * 20, "b": [5.0] * 20, "n": 9, "k": 4},
        )
        assert report.ok, report.violations
        assert "a" in report.checked

    def test_scalar_flag_kernel(self):
        src = (
            "      SUBROUTINE flags(a, n, sw)\n"
            "      REAL a(100)\n"
            "      LOGICAL sw\n"
            "      INTEGER n, i\n"
            "      REAL t\n"
            "      DO i = 1, n\n"
            "        t = 1.0 * i\n"
            "        IF (sw) t = t * 2.0\n"
            "        a(i) = t\n"
            "      ENDDO\n"
            "      END\n"
        )
        for sw in (True, False):
            report = validate_loop(
                src, "flags", "i", args={"a": [0.0] * 20, "n": 5, "sw": sw}
            )
            assert report.ok, report.violations
            assert "t" in report.privatization_checked

    def test_inner_instance_boundary_is_not_carried_flow(self):
        # the inner j loop writes a(i+1) and reads a(i): the value read at
        # outer iteration i was produced by instance i-1 — flow *into* the
        # j loop (copy-in territory), not flow carried *by* it.  A trace
        # collector that kept last-writer state across dynamic instances
        # used to misreport this as a privatization violation.
        src = (
            "      SUBROUTINE rnd(a, b, n, m)\n"
            "      REAL a(100), b(100)\n"
            "      INTEGER n, m, i, j\n"
            "      REAL y\n"
            "      DO i = 1, n\n"
            "        DO j = 1, m\n"
            "          a(i+1) = b(i) + 1.0\n"
            "          y = a(i) * 0.5\n"
            "        ENDDO\n"
            "      ENDDO\n"
            "      END\n"
        )
        report = validate_loop(
            src,
            "rnd",
            "j",
            args={"a": [0.5] * 40, "b": [1.5] * 40, "n": 2, "m": 4},
            occurrence=0,
        )
        assert report.ok, report.violations
        assert len(report.iterations) == 8  # both instances traced

    def test_same_instance_flow_is_still_detected(self):
        # control: a genuine j-carried recurrence inside one inner-loop
        # instance — the instance-boundary reset must not erase
        # same-instance producers, so a is (correctly) never declared
        # privatizable and the trace agrees
        src = (
            "      SUBROUTINE rec(a, n, m)\n"
            "      REAL a(100)\n"
            "      INTEGER n, m, i, j\n"
            "      DO i = 1, n\n"
            "        DO j = 2, m\n"
            "          a(j) = a(j-1) + 1.0\n"
            "        ENDDO\n"
            "      ENDDO\n"
            "      END\n"
        )
        report = validate_loop(
            src,
            "rec",
            "j",
            args={"a": [0.5] * 40, "n": 2, "m": 5},
            occurrence=0,
        )
        assert report.ok, report.violations
        assert "a" not in report.privatization_checked
