"""Integration tests: multi-dimensional arrays through the whole pipeline."""

from repro import Panorama
from repro.parallelize import LoopStatus
from repro.symbolic import Env
from repro.validate import validate_loop
from tests.conftest import loop_record, loop_verdicts

PLANE_SWEEP = (
    "      SUBROUTINE sweep2(grid, out, n, m)\n"
    "      REAL grid(50, 50), out(50, 50)\n"
    "      INTEGER n, m, i, j\n"
    "      REAL row(50)\n"
    "      DO i = 2, n\n"
    "        DO j = 1, m\n"
    "          row(j) = grid(i, j) + grid(i - 1, j)\n"
    "        ENDDO\n"
    "        DO j = 1, m\n"
    "          out(i, j) = row(j) * 0.5\n"
    "        ENDDO\n"
    "      ENDDO\n"
    "      END\n"
)


class TestTwoDimensionalRegions:
    def test_mod_i_is_a_row(self):
        rec = loop_record(PLANE_SWEEP, "sweep2", "i")
        got = rec.mod_i.for_array("out").enumerate(Env(i=3, m=4, n=9))
        assert got == {(3, j) for j in range(1, 5)}

    def test_whole_loop_mod_is_a_plane(self):
        rec = loop_record(PLANE_SWEEP, "sweep2", "i")
        got = rec.mod.for_array("out").enumerate(Env(n=4, m=3))
        assert got == {(i, j) for i in range(2, 5) for j in range(1, 4)}

    def test_ue_includes_previous_row(self):
        rec = loop_record(PLANE_SWEEP, "sweep2", "i")
        ue = rec.ue_i.for_array("grid").enumerate(Env(i=3, m=2, n=9))
        assert ue == {(3, 1), (3, 2), (2, 1), (2, 2)}

    def test_row_buffer_privatizes_and_loop_parallel(self):
        v = loop_verdicts(PLANE_SWEEP)[("sweep2", "i")]
        assert v.status is LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        assert "row" in v.privatized

    def test_trace_validation(self):
        grid = {(i, j): float(i * 10 + j) for i in range(1, 12) for j in range(1, 8)}
        report = validate_loop(
            PLANE_SWEEP,
            "sweep2",
            "i",
            args={"grid": grid, "out": {}, "n": 6, "m": 4},
        )
        assert report.ok, report.violations
        assert {"grid", "out", "row"} <= report.checked


class TestColumnRecurrence:
    SRC = (
        "      SUBROUTINE relax2(grid, n, m)\n"
        "      REAL grid(50, 50)\n"
        "      INTEGER n, m, i, j\n"
        "      DO i = 2, n\n"
        "        DO j = 1, m\n"
        "          grid(i, j) = grid(i - 1, j) * 0.5\n"
        "        ENDDO\n"
        "      ENDDO\n"
        "      END\n"
    )

    def test_outer_serial_inner_parallel(self):
        verdicts = loop_verdicts(self.SRC)
        assert verdicts[("relax2", "i")].status is LoopStatus.SERIAL
        assert verdicts[("relax2", "j")].parallel

    def test_trace_agrees(self):
        grid = {(i, j): 1.0 for i in range(1, 12) for j in range(1, 8)}
        report = validate_loop(
            self.SRC, "relax2", "i", args={"grid": grid, "n": 6, "m": 4}
        )
        assert report.ok, report.violations
        assert "grid" not in report.privatization_checked


class TestTransposedAccess:
    def test_independent_columns(self):
        # each iteration owns column i: fully parallel without dataflow
        src = (
            "      SUBROUTINE cols(grid, n, m)\n"
            "      REAL grid(50, 50)\n"
            "      INTEGER n, m, i, j\n"
            "      DO i = 1, n\n"
            "        DO j = 2, m\n"
            "          grid(j, i) = grid(j - 1, i) + 1.0\n"
            "        ENDDO\n"
            "      ENDDO\n"
            "      END\n"
        )
        result = Panorama(run_machine_model=False).compile(src)
        outer = [r for r in result.loops if r.var == "i"][0]
        assert outer.parallel
        inner = [r for r in result.loops if r.var == "j"][0]
        assert inner.status is LoopStatus.SERIAL
