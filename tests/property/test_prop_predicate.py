"""Property tests: relations, CNF predicates, and the pairwise simplifier
agree with brute-force boolean semantics."""

from hypothesis import given, settings

from repro.symbolic import Predicate, definitely_unsat, implied_by

from .strategies import atoms, envs, predicates, relations


@given(atoms(), envs())
def test_negation_complements(atom, env):
    assert atom.negate().evaluate(env) == (not atom.evaluate(env))


@given(relations(), envs())
def test_double_negation_semantics(rel, env):
    assert rel.negate().negate().evaluate(env) == rel.evaluate(env)


@given(atoms(), atoms(), envs())
def test_implies_sound(a, b, env):
    """If the pairwise test claims a => b, no env may witness a and not b."""
    verdict = a.implies(b)
    if verdict is True and a.evaluate(env):
        assert b.evaluate(env)
    if verdict is False and a.evaluate(env):
        assert not b.evaluate(env)


@given(atoms(), atoms(), envs())
def test_conflicts_sound(a, b, env):
    if a.conflicts(b):
        assert not (a.evaluate(env) and b.evaluate(env))


@given(relations(), envs())
def test_truth_constant_folding_sound(rel, env):
    t = rel.truth()
    if t is not None:
        assert rel.evaluate(env) == t


@given(predicates(), predicates(), envs())
def test_conjunction_semantics(p, q, env):
    if p.is_unknown() or q.is_unknown():
        return
    combined = p & q
    if combined.is_unknown():
        return  # complexity cap: allowed to give up
    assert combined.evaluate(env) == (p.evaluate(env) and q.evaluate(env))


@given(predicates(), predicates(), envs())
def test_disjunction_semantics(p, q, env):
    if p.is_unknown() or q.is_unknown():
        return
    combined = p | q
    if combined.is_unknown():
        return
    assert combined.evaluate(env) == (p.evaluate(env) or q.evaluate(env))


@given(predicates(), envs())
def test_negation_semantics(p, env):
    if p.is_unknown():
        return
    negated = p.negate()
    if negated.is_unknown():
        return
    assert negated.evaluate(env) == (not p.evaluate(env))


@given(predicates(), envs())
def test_simplifier_never_changes_value(p, env):
    """Rebuilding a CNF through of_clauses preserves semantics."""
    if not p.is_cnf():
        return
    rebuilt = Predicate.of_clauses(p.clauses)
    if rebuilt.is_unknown():
        return
    assert rebuilt.evaluate(env) == p.evaluate(env)


@given(predicates(), predicates(), envs())
def test_predicate_implies_sound(p, q, env):
    if p.implies(q) is True and not p.is_unknown() and not q.is_unknown():
        if p.evaluate(env):
            assert q.evaluate(env)


@settings(max_examples=200)
@given(predicates(), envs())
def test_false_predicates_have_no_models(p, env):
    if p.is_false():
        return  # nothing to check: constructor already folded it
    # a CNF that evaluates True under some env must not be is_false()
    if p.is_cnf():
        assert not p.is_false()


# --- Fourier-Motzkin soundness ------------------------------------------------


@given(atoms(linear=True), atoms(linear=True), atoms(linear=True), envs())
def test_fm_unsat_sound(a, b, c, env):
    """If FM claims unsatisfiable, no environment satisfies all atoms."""
    if definitely_unsat([a, b, c]):
        assert not (a.evaluate(env) and b.evaluate(env) and c.evaluate(env))


@given(atoms(linear=True), atoms(linear=True), atoms(linear=True), envs())
def test_fm_implication_sound(a, b, c, env):
    if implied_by([a, b], c):
        if a.evaluate(env) and b.evaluate(env):
            assert c.evaluate(env)


@given(atoms(), atoms(), envs())
def test_fm_nonlinear_still_sound(a, b, env):
    """Linearized (nonlinear) atoms keep the one-sided guarantee."""
    if definitely_unsat([a, b]):
        assert not (a.evaluate(env) and b.evaluate(env))
