"""Property test: schedule order never changes verdicts.

The topology-aware scheduler is a pure performance lever — it reorders
item dispatch so callee-providing items warm the cache before their
callers run.  Whatever corpus the generator draws and whatever budget
pressure is applied, the verdict rows of a topo-scheduled batch must be
bit-identical to an arbitrary-scheduled batch of the same items.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import AnalysisOptions
from repro.engine import BatchEngine, BatchItem
from repro.engine.campaign import generate_campaign


def _verdict_rows(report):
    rows = []
    for res in sorted(report.results, key=lambda r: r.name):
        if res.ok:
            rows.append((res.name, tuple(map(tuple, (r.items() for r in
                                                     res.rows())))))
        else:
            rows.append((res.name, ("ERROR", res.error_kind)))
    return rows


def _run(items, options, schedule, cache_dir=None):
    engine = BatchEngine(options, cache_dir=cache_dir, jobs=1,
                         run_machine_model=False, schedule=schedule)
    report = engine.run(items)
    engine.cache.close()
    return report


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=2, max_value=10))
def test_topo_and_arbitrary_verdicts_bit_identical(tmp_path_factory, seed,
                                                   count):
    items = [BatchItem(c.name, c.source)
             for c in generate_campaign(count, seed=seed)]
    options = AnalysisOptions()
    cold = _run(list(items), options, "arbitrary")
    warm_dir = tmp_path_factory.mktemp("sched")
    warm = _run(list(items), options, "topo", cache_dir=str(warm_dir))
    assert _verdict_rows(warm) == _verdict_rows(cold)
    assert warm.telemetry.sched["mode"] == "topo"


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_order_invariance_survives_budget_degradation(tmp_path_factory, seed):
    """Under a step budget some loops degrade to 'unknown (budget)';
    the degraded rows must still not depend on dispatch order."""
    items = [BatchItem(c.name, c.source)
             for c in generate_campaign(4, seed=seed)]
    options = AnalysisOptions(budget_steps=40)
    cold = _run(list(items), options, "arbitrary")
    warm_dir = tmp_path_factory.mktemp("budget")
    warm = _run(list(items), options, "topo", cache_dir=str(warm_dir))
    assert _verdict_rows(warm) == _verdict_rows(cold)
