"""Property tests: range/region/GAR set algebra vs the concrete-set oracle."""

from hypothesis import given, settings

from repro.regions import (
    GARList,
    range_covers,
    range_difference,
    range_intersect,
    range_union,
    region_covers,
    region_difference,
    region_intersect,
    region_union,
)
from repro.regions.gar_ops import (
    gar_subtract,
    intersect_lists,
    lists_intersect_empty,
    subtract_lists,
    union_lists,
)
from repro.regions.gar_simplify import simplify_gar_list
from repro.symbolic import Comparer, Env

from .strategies import concrete_ranges, concrete_regions, envs, gar_lists, guarded_gars

CMP = Comparer()


def can_enumerate(gars) -> bool:
    return all(g.region.is_fully_known() for g in gars)


def range_set(r, env=Env()):
    return set(r.enumerate(env))


def pieces_set(pieces, env=Env()):
    out = set()
    for pred, rng in pieces:
        if pred.evaluate(env):
            out |= set(rng.enumerate(env))
    return out


# --- ranges -------------------------------------------------------------------


@given(concrete_ranges(), concrete_ranges())
def test_range_intersect_oracle(r1, r2):
    pieces = range_intersect(r1, r2, CMP)
    expect = range_set(r1) & range_set(r2)
    if pieces is None:
        return  # unknown is allowed, never wrong
    assert pieces_set(pieces) == expect


@given(concrete_ranges(), concrete_ranges())
def test_range_union_oracle(r1, r2):
    merged = range_union(r1, r2, CMP)
    if merged is None:
        return
    assert range_set(merged) == range_set(r1) | range_set(r2)


@given(concrete_ranges(), concrete_ranges())
def test_range_difference_oracle(r1, r2):
    pieces = range_difference(r1, r2, CMP)
    if pieces is None:
        return
    expect = range_set(r1) - range_set(r2)
    got = pieces_set(pieces)
    if range_set(r2) or not range_set(r1):
        assert got == expect
    else:
        # empty subtrahend handled at the GAR layer via guards; the raw
        # range formula may only over-approximate there
        assert got >= expect


@given(concrete_ranges(), concrete_ranges())
def test_range_covers_sound(r1, r2):
    if range_covers(r1, r2, CMP):
        assert range_set(r2) <= range_set(r1)


# --- regions -----------------------------------------------------------------


@given(concrete_regions(rank=2), concrete_regions(rank=2))
@settings(max_examples=60)
def test_region_intersect_oracle(r1, r2):
    gars = region_intersect(r1, r2, CMP)
    if not can_enumerate(gars):
        return  # an unknown dimension: nothing checkable extensionally
    expect = r1.enumerate(Env()) & r2.enumerate(Env())
    if gars.is_exact():
        assert gars.enumerate(Env()) == expect
    else:
        assert gars.enumerate(Env()) >= expect


@given(concrete_regions(rank=2), concrete_regions(rank=2))
@settings(max_examples=60)
def test_region_union_oracle(r1, r2):
    merged = region_union(r1, r2, CMP)
    if merged is None:
        return
    assert merged.enumerate(Env()) == r1.enumerate(Env()) | r2.enumerate(Env())


@given(concrete_regions(rank=2), concrete_regions(rank=2))
@settings(max_examples=60)
def test_region_difference_oracle(r1, r2):
    gars = region_difference(r1, r2, CMP)
    if gars is None:
        return
    expect = r1.enumerate(Env()) - r2.enumerate(Env())
    got = gars.enumerate(Env())
    if r2.enumerate(Env()):
        assert got == expect
    else:
        assert got >= expect


@given(concrete_regions(rank=2), concrete_regions(rank=2))
@settings(max_examples=60)
def test_region_covers_sound(r1, r2):
    if region_covers(r1, r2, CMP):
        assert r2.enumerate(Env()) <= r1.enumerate(Env())


# --- GAR lists ------------------------------------------------------------------


@given(gar_lists(), gar_lists(), envs())
@settings(max_examples=60)
def test_union_lists_oracle(a, b, env):
    got = union_lists(a, b, CMP)
    assert got.enumerate(env) == a.enumerate(env) | b.enumerate(env)


@given(gar_lists(), gar_lists(), envs())
@settings(max_examples=60)
def test_intersect_lists_oracle(a, b, env):
    got = intersect_lists(a, b, CMP)
    if not can_enumerate(got):
        return
    expect = a.enumerate(env) & b.enumerate(env)
    if got.is_exact():
        assert got.enumerate(env) == expect
    else:
        assert got.enumerate(env) >= expect


@given(gar_lists(), gar_lists(), envs())
@settings(max_examples=60)
def test_subtract_lists_over_approximates(a, b, env):
    """The subtraction contract: the result always contains the true
    difference (kills are only performed when provably safe)."""
    got = subtract_lists(a, b, CMP)
    expect = a.enumerate(env) - b.enumerate(env)
    assert got.enumerate(env) >= expect
    # and never exceeds the minuend
    assert got.enumerate(env) <= a.enumerate(env)


@given(gar_lists(), gar_lists(), envs())
@settings(max_examples=60)
def test_exact_subtraction_is_exact(a, b, env):
    got = subtract_lists(a, b, CMP)
    if got.is_exact() and a.is_exact() and b.is_exact():
        assert got.enumerate(env) == a.enumerate(env) - b.enumerate(env)


@given(guarded_gars(), gar_lists(), envs())
@settings(max_examples=60)
def test_inexact_subtrahend_never_kills(g, b, env):
    inexact = GARList.of(*(x.inexact() for x in b))
    got = subtract_lists(GARList.of(g), inexact, CMP)
    assert got.enumerate(env) == g.enumerate(env)


@given(gar_lists(), gar_lists(), envs())
@settings(max_examples=60)
def test_lists_intersect_empty_sound(a, b, env):
    if lists_intersect_empty(a, b, CMP):
        assert not (a.enumerate(env) & b.enumerate(env))


@given(gar_lists(), envs())
@settings(max_examples=60)
def test_simplifier_preserves_sets(lst, env):
    got = simplify_gar_list(lst, CMP)
    assert got.enumerate(env) == lst.enumerate(env)


# --- shaped regions (section 5.3) ----------------------------------------------


from hypothesis import strategies as _st

from repro.regions.shapes import (
    dim_symbol,
    enumerate_shaped,
    shaped,
    shaped_intersect_empty,
    shaped_provably_empty,
)
from repro.regions import Range as _Range, RegularRegion as _Region
from repro.symbolic import Predicate as _Pred


@given(
    _st.integers(1, 5),
    _st.integers(-3, 3),
    _st.integers(1, 5),
    _st.integers(-3, 3),
)
@settings(max_examples=60)
def test_shaped_disjointness_sound(n1, off1, n2, off2):
    """If two off-diagonal bands are declared disjoint, their concrete
    element sets must not intersect."""
    a = shaped(
        _Pred.eq(dim_symbol(2), dim_symbol(1) + off1),
        _Region("a", [_Range(1, n1), _Range(1, n1)]),
    )
    b = shaped(
        _Pred.eq(dim_symbol(2), dim_symbol(1) + off2),
        _Region("a", [_Range(1, n2), _Range(1, n2)]),
    )
    if shaped_intersect_empty(a, b):
        assert not (enumerate_shaped(a, Env()) & enumerate_shaped(b, Env()))


@given(_st.integers(1, 5), _st.integers(-6, 6), _st.integers(-6, 6))
@settings(max_examples=60)
def test_shaped_emptiness_sound(n, lo_bound, hi_bound):
    g = shaped(
        _Pred.ge(dim_symbol(1), lo_bound) & _Pred.le(dim_symbol(1), hi_bound),
        _Region("a", [_Range(1, n), _Range(1, n)]),
    )
    if shaped_provably_empty(g):
        assert not enumerate_shaped(g, Env())
