"""Property test: end-to-end analysis soundness on random kernels.

Hypothesis generates small random Fortran loop nests (conditional writes,
work arrays, scalar temporaries, shifted subscripts); each is executed in
the concrete interpreter and the full analysis stack is validated against
the trace (MOD_i / UE_i containment and privatization claims) — see
:mod:`repro.validate`.  Any violation is a genuine soundness bug.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.validate import validate_loop

SUBSCRIPTS = ["i", "i+1", "i-1", "j", "j+1", "2*j", "k", "3"]
SCALAR_RHS = ["b({0})", "t({0})", "1.0 * i", "x + 1.0", "2.0"]
CONDITIONS = ["i .GT. k", "sw", ".NOT. sw", "i .LE. 3", "k .EQ. 2"]


@st.composite
def kernel_sources(draw):
    lines: list[str] = []

    def stmt(depth: int, in_j: bool) -> list[str]:
        pad = "  " * depth
        sub = lambda: draw(st.sampled_from(
            SUBSCRIPTS if in_j else [s for s in SUBSCRIPTS if "j" not in s]
        ))
        kind = draw(st.integers(0, 5))
        if kind == 0:
            return [f"      {pad}a({sub()}) = b({sub()}) + 1.0"]
        if kind == 1:
            return [f"      {pad}t({sub()}) = {draw(st.sampled_from(SCALAR_RHS)).format(sub())}"]
        if kind == 2:
            return [f"      {pad}x = {draw(st.sampled_from(SCALAR_RHS)).format(sub())}"]
        if kind == 3:
            cond = draw(st.sampled_from(CONDITIONS))
            inner = stmt(depth + 1, in_j)
            return [f"      {pad}IF ({cond}) THEN"] + inner + [
                f"      {pad}ENDIF"
            ]
        if kind == 4 and not in_j:
            body = [
                line
                for _ in range(draw(st.integers(1, 2)))
                for line in stmt(depth + 1, True)
            ]
            return [f"      {pad}DO j = 1, m"] + body + [f"      {pad}ENDDO"]
        if kind == 5 and not in_j and depth == 1:
            # induction-variable update + use (section 5.2 closed forms)
            return [
                f"      {pad}kv = kv + {draw(st.integers(1, 3))}",
                f"      {pad}t(kv) = b({sub()})",
            ]
        return [f"      {pad}y = a({sub()}) * 0.5"]

    body = [line for _ in range(draw(st.integers(1, 3)))
            for line in stmt(1, False)]
    lines = (
        [
            "      SUBROUTINE rnd(a, b, t, n, m, k, sw)",
            "      REAL a(100), b(100), t(100)",
            "      INTEGER n, m, k, i, j, kv",
            "      LOGICAL sw",
            "      REAL x, y",
            "      kv = 0",
            "      DO i = 1, n",
        ]
        + body
        + ["      ENDDO", "      END"]
    )
    return "\n".join(lines) + "\n"


@given(
    kernel_sources(),
    st.integers(1, 6),
    st.integers(1, 5),
    st.integers(0, 4),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_random_kernels_validate(source, n, m, k, sw):
    report = validate_loop(
        source,
        "rnd",
        "i",
        args={
            "a": [0.5] * 40,
            "b": [1.5] * 40,
            "t": [0.0] * 40,
            "n": n,
            "m": m,
            "k": k,
            "sw": sw,
        },
    )
    assert report.ok, (source, report.violations)


@given(kernel_sources())
@settings(max_examples=30, deadline=None)
def test_random_kernels_inner_loop_validates(source):
    if "DO j" not in source:
        return
    report = validate_loop(
        source,
        "rnd",
        "j",
        args={
            "a": [0.5] * 40,
            "b": [1.5] * 40,
            "t": [0.0] * 40,
            "n": 2,
            "m": 4,
            "k": 1,
            "sw": True,
        },
        occurrence=0,
    )
    assert report.ok, (source, report.violations)
