"""Hypothesis strategies shared by the property tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.regions import GAR, GARList, Range, RegularRegion
from repro.symbolic import (
    BoolAtom,
    Disjunction,
    Env,
    Predicate,
    Relation,
    RelOp,
    SymExpr,
    sym,
)

VAR_NAMES = ["x", "y", "z"]
BOOL_NAMES = ["p", "q"]

small_ints = st.integers(min_value=-8, max_value=8)
var_names = st.sampled_from(VAR_NAMES)


@st.composite
def sym_exprs(draw, max_terms: int = 3, allow_products: bool = True):
    """A small random symbolic expression."""
    expr = SymExpr.const(draw(small_ints))
    for _ in range(draw(st.integers(0, max_terms))):
        coeff = draw(small_ints)
        name = draw(var_names)
        term = sym(name) * coeff
        if allow_products and draw(st.booleans()):
            term = term * sym(draw(var_names))
        expr = expr + term
    return expr


@st.composite
def linear_exprs(draw, max_terms: int = 3):
    return draw(sym_exprs(max_terms=max_terms, allow_products=False))


@st.composite
def relations(draw, linear: bool = False):
    expr = draw(linear_exprs() if linear else sym_exprs())
    op = draw(st.sampled_from([RelOp.LE, RelOp.EQ, RelOp.NE]))
    return Relation(expr, op)


@st.composite
def atoms(draw, linear: bool = False):
    if draw(st.booleans()):
        return draw(relations(linear=linear))
    return BoolAtom(draw(st.sampled_from(BOOL_NAMES)), draw(st.booleans()))


@st.composite
def disjunctions(draw, max_atoms: int = 3):
    return Disjunction(
        [draw(atoms()) for _ in range(draw(st.integers(1, max_atoms)))]
    )


@st.composite
def predicates(draw, max_clauses: int = 3):
    kind = draw(st.integers(0, 9))
    if kind == 0:
        return Predicate.true()
    if kind == 1:
        return Predicate.false()
    return Predicate.of_clauses(
        [draw(disjunctions()) for _ in range(draw(st.integers(1, max_clauses)))]
    )


@st.composite
def envs(draw, lo: int = -6, hi: int = 6):
    values = {name: draw(st.integers(lo, hi)) for name in VAR_NAMES}
    values.update({name: draw(st.integers(0, 1)) for name in BOOL_NAMES})
    return Env(values)


@st.composite
def concrete_ranges(draw, span: int = 12):
    lo = draw(st.integers(-span, span))
    hi = draw(st.integers(lo - 3, lo + span))
    step = draw(st.sampled_from([1, 1, 1, 2, 3, 4, 6]))
    return Range(lo, hi, step)


@st.composite
def concrete_regions(draw, rank: int = 1, array: str = "a"):
    dims = [draw(concrete_ranges(span=6)) for _ in range(rank)]
    return RegularRegion(array, dims)


@st.composite
def guarded_gars(draw, rank: int = 1):
    guard = Predicate.boolvar(
        draw(st.sampled_from(BOOL_NAMES))
    ) if draw(st.booleans()) else Predicate.true()
    return GAR(guard, draw(concrete_regions(rank=rank)))


@st.composite
def gar_lists(draw, rank: int = 1, max_len: int = 3):
    return GARList(
        [draw(guarded_gars(rank=rank)) for _ in range(draw(st.integers(0, max_len)))]
    )
