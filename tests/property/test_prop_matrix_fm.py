"""Property tests: the matrix constraint backends are verdict-identical
to the object-layer Fourier–Motzkin oracle.

Each case builds a randomized atom system (including NE case-splits,
strict real atoms, nonlinear monomials, and overflow-sized coefficients)
and checks that ``definitely_unsat`` / ``implied_by`` agree bit-for-bit
between the numpy backend, the pure-Python fallback, and the object
reference path.  Soundness is cross-checked against brute-force
evaluation on small integer environments: a provably-unsat system must
have no model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import profiler
from repro.symbolic import Relation, RelOp, SymExpr, sym
from repro.symbolic import fourier_motzkin as fm
from repro.symbolic import matrix

from .strategies import VAR_NAMES, envs, linear_exprs, relations, sym_exprs

BACKENDS = (["numpy"] if matrix.HAVE_NUMPY else []) + ["python"]

#: coefficients far beyond the int64-safe bound, forcing the promotion path
huge_ints = st.integers(min_value=2**63, max_value=2**70)


@st.composite
def strict_relations(draw):
    """Real-typed atoms, including strict ``<`` (never normalized away)."""
    expr = draw(linear_exprs())
    op = draw(st.sampled_from([RelOp.LE, RelOp.LT, RelOp.NE]))
    return Relation(expr, op, integer=False)


@st.composite
def atom_systems(draw, max_atoms: int = 5):
    """A random conjunction mixing integer, strict, and nonlinear atoms."""
    kinds = st.one_of(relations(), strict_relations())
    return [draw(kinds) for _ in range(draw(st.integers(1, max_atoms)))]


@st.composite
def huge_systems(draw, max_atoms: int = 4):
    """Systems whose coefficients exceed the int64-safe bound."""
    out = []
    for _ in range(draw(st.integers(1, max_atoms))):
        expr = SymExpr.const(draw(huge_ints) * draw(st.sampled_from([-1, 1])))
        for name in VAR_NAMES:
            if draw(st.booleans()):
                expr = expr + sym(name) * draw(huge_ints)
        out.append(Relation(expr, draw(st.sampled_from([RelOp.LE, RelOp.EQ]))))
    return out


def _unsat_on(backend: str, atoms) -> bool:
    matrix.set_backend(backend)
    try:
        fm._UNSAT_CACHE._data.clear()
        return fm.definitely_unsat(atoms)
    finally:
        matrix.set_backend(None)


def _implied_on(backend: str, ctx, conclusion) -> bool:
    matrix.set_backend(backend)
    try:
        fm._UNSAT_CACHE._data.clear()
        fm._IMPLIED_CACHE._data.clear()
        return fm.implied_by(ctx, conclusion)
    finally:
        matrix.set_backend(None)


@given(atom_systems())
@settings(max_examples=150, deadline=None)
def test_unsat_matches_oracle(atoms):
    reference = _unsat_on("object", atoms)
    for backend in BACKENDS:
        assert _unsat_on(backend, atoms) == reference, backend


@given(atom_systems(), relations())
@settings(max_examples=100, deadline=None)
def test_implied_by_matches_oracle(atoms, conclusion):
    reference = _implied_on("object", atoms, conclusion)
    for backend in BACKENDS:
        assert _implied_on(backend, atoms, conclusion) == reference, backend


@given(huge_systems())
@settings(max_examples=50, deadline=None)
def test_overflow_systems_match_oracle(atoms):
    """Coefficients beyond int64 must promote, never silently wrap."""
    reference = _unsat_on("object", atoms)
    for backend in BACKENDS:
        assert _unsat_on(backend, atoms) == reference, backend


def test_overflow_promotion_is_counted():
    """A non-reducible huge system takes the exact path and says so.

    Real-typed atoms: integer tightening would legally shrink these
    coefficients during normalization, which is exactly what must NOT
    rescue the matrix backend here.
    """
    x = sym("x")
    big = 2**63
    atoms = [
        Relation(x * big + 1, RelOp.LE, integer=False),  # x <= -1/big
        Relation(1 - x * big, RelOp.LE, integer=False),  # x >= +1/big
    ]
    before = profiler.COUNTERS.fm_matrix_overflow_promotions
    for backend in BACKENDS:
        assert _unsat_on(backend, atoms) is True
    assert _unsat_on("object", atoms) is True
    assert profiler.COUNTERS.fm_matrix_overflow_promotions > before


@given(atom_systems(max_atoms=4), envs())
@settings(max_examples=150, deadline=None)
def test_unsat_is_sound(atoms, env):
    """A provably-unsat system has no model (spot-checked per env)."""
    for backend in BACKENDS:
        if _unsat_on(backend, atoms):
            assert not all(a.evaluate(env) for a in atoms)


@given(st.lists(atom_systems(max_atoms=3), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_batch_entry_matches_single(systems):
    """definitely_unsat_many == [definitely_unsat(s) for s in systems]."""
    fm._UNSAT_CACHE._data.clear()
    batched = fm.definitely_unsat_many(systems)
    singles = [fm.definitely_unsat(s) for s in systems]
    assert batched == singles


@pytest.mark.parametrize("backend", BACKENDS)
def test_ne_case_split_parity(backend):
    """NE splits (and the drop beyond the cap) behave identically."""
    x, y, z, w = sym("x"), sym("y"), sym("z"), sym("w")
    atoms = [
        Relation.eq(x, y),
        Relation.ne(x, y),  # split: contradiction found in both branches
    ]
    assert _unsat_on(backend, atoms) is _unsat_on("object", atoms) is True
    # more NE atoms than MAX_NE_SPLITS: extras dropped on every backend
    many_ne = [
        Relation.ne(x, 0),
        Relation.ne(y, 0),
        Relation.ne(z, 0),
        Relation.ne(w, 0),
        Relation.ne(x + y, 0),
    ]
    assert _unsat_on(backend, many_ne) is _unsat_on("object", many_ne)


@pytest.mark.parametrize("backend", BACKENDS)
def test_strict_real_atoms_parity(backend):
    """Real strict bounds: x < y and y < x is unsat, x < y alone is not."""
    x, y = sym("x"), sym("y")
    lt_xy = Relation(x - y, RelOp.LT, integer=False)
    lt_yx = Relation(y - x, RelOp.LT, integer=False)
    assert _unsat_on(backend, [lt_xy, lt_yx]) is True
    assert _unsat_on(backend, [lt_xy]) is False
    # the real strict chain x < y < x+1 is satisfiable over the rationals
    chain = [lt_xy, Relation(y - x - 1, RelOp.LT, integer=False)]
    assert _unsat_on(backend, chain) is _unsat_on("object", chain) is False


def test_oracle_crosscheck_mode(monkeypatch):
    """PANORAMA_FM_ORACLE=1 runs both paths and counts the comparison."""
    monkeypatch.setenv("PANORAMA_FM_ORACLE", "1")
    x = sym("x")
    atoms = [Relation.le(x, 0), Relation.le(SymExpr.const(1), x)]
    fm._UNSAT_CACHE._data.clear()
    before = profiler.COUNTERS.fm_oracle_crosschecks
    assert fm.definitely_unsat(atoms) is True
    assert profiler.COUNTERS.fm_oracle_crosschecks == before + 1
