"""Property tests for the hash-consing / memoization fast path.

Three invariant families:

* interned arithmetic agrees with a non-interned reference computation
  built directly from dict-of-monomial coefficient algebra;
* bounded LRU eviction (tiny caches, or clearing mid-stream) never
  changes any result — the caches are invisible to values;
* the ``Comparer`` proof memo never goes stale across ``refine()``:
  child and parent verdicts always match a freshly built comparer over
  the same context, in any interleaving.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import profiler
from repro.symbolic import Comparer, Monomial, SymExpr

from .strategies import predicates, relations, sym_exprs


def _reference_terms(expr: SymExpr) -> dict:
    """The expression as a plain factor-tuple → coefficient dict."""
    return {mono.factors: coeff for mono, coeff in expr.terms}


def _reference_add(a: SymExpr, b: SymExpr) -> dict:
    out = dict(_reference_terms(a))
    for key, coeff in _reference_terms(b).items():
        merged = out.get(key, Fraction(0)) + coeff
        if merged:
            out[key] = merged
        else:
            out.pop(key, None)
    return out


def _reference_mul(a: SymExpr, b: SymExpr) -> dict:
    out: dict = {}
    for fa, ca in _reference_terms(a).items():
        for fb, cb in _reference_terms(b).items():
            merged: dict[str, int] = {}
            for name, power in list(fa) + list(fb):
                merged[name] = merged.get(name, 0) + power
            key = tuple(sorted(merged.items()))
            coeff = out.get(key, Fraction(0)) + ca * cb
            if coeff:
                out[key] = coeff
            else:
                out.pop(key, None)
    return out


@given(sym_exprs(), sym_exprs())
def test_interned_add_matches_reference(a, b):
    assert _reference_terms(a + b) == _reference_add(a, b)


@given(sym_exprs(), sym_exprs())
def test_interned_mul_matches_reference(a, b):
    assert _reference_terms(a * b) == _reference_mul(a, b)


@given(sym_exprs(), sym_exprs())
def test_interning_dedups_and_equality_survives_clear(a, b):
    s1 = a + b
    s2 = a + b
    assert s1 is s2  # memoized op: literally the same object
    profiler.clear_caches()
    s3 = a + b  # recomputed from scratch after eviction
    assert s1 == s3 and hash(s1) == hash(s3)
    assert _reference_terms(s1) == _reference_terms(s3)


@given(sym_exprs(), sym_exprs(), st.integers(1, 4))
@settings(max_examples=50)
def test_tiny_lru_never_changes_results(a, b, cap):
    """Shrink every cache to a handful of slots mid-computation: heavy
    eviction must still produce structurally identical results."""
    big_add = a + b
    big_mul = a * b
    big_neg = -a
    try:
        profiler.resize_caches(cap)
        small_add = a + b
        small_mul = a * b
        small_neg = -a
    finally:
        profiler.resize_caches(16384)
    assert small_add == big_add
    assert small_mul == big_mul
    assert small_neg == big_neg


@given(sym_exprs())
def test_monomial_interning_roundtrip(a):
    for mono, _ in a.terms:
        rebuilt = Monomial(mono.factors)
        assert rebuilt == mono and hash(rebuilt) == hash(mono)


@given(predicates(), relations())
@settings(max_examples=60)
def test_prove_memo_matches_fresh_comparer(context, rel):
    """A warm memo must answer exactly like a cold comparer."""
    warm = Comparer(context)
    first = warm.prove(rel)
    second = warm.prove(rel)  # memo hit
    assert first == second
    profiler.clear_caches()
    cold = Comparer(context).prove(rel)
    assert first == cold


@given(predicates(), predicates(), relations())
@settings(max_examples=60)
def test_refine_memo_never_stale(context, extra, rel):
    """Verdicts through refine() match a comparer built directly over the
    conjoined context, and the parent's verdicts are unaffected."""
    parent = Comparer(context)
    before = parent.prove(rel)
    child = parent.refine(extra)
    child_verdict = child.prove(rel)
    # the parent must be untouched by the refinement
    assert parent.prove(rel) == before
    # a from-scratch comparer over the same conjunction, with every memo
    # cleared, must agree with the (possibly incremental) child
    profiler.clear_caches()
    fresh = Comparer(context & extra)
    assert child.prove(rel) == child_verdict  # recompute, no stale memo
    fresh_verdict = fresh.prove(rel)
    if frozenset(child._context_atoms) == frozenset(fresh._context_atoms):
        assert child_verdict == fresh_verdict
    else:
        # incremental refine may keep a superset of the rebuilt unit-atom
        # list (atoms subsumed by kept ones); verdicts must stay sound —
        # never flip between True and False
        assert None in (child_verdict, fresh_verdict) or (
            child_verdict == fresh_verdict
        )


@given(predicates(), relations())
@settings(max_examples=40)
def test_relation_negate_involution_after_clear(context, rel):
    n1 = rel.negate()
    profiler.clear_caches()
    n2 = rel.negate()
    assert n1 == n2
    assert n1.negate() == rel
