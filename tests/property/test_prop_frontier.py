"""Property tests: frontier claims vs concrete execution.

Two oracle pairings: the blocked (two-pass) scan executors must agree
with the sequential fold they decompose — the associativity argument
every PARALLEL_SCAN verdict rests on — and every content fact the
domain infers must hold as an invariant of an actual interpreter run.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import AnalysisOptions
from repro.fortran import analyze, parse_program
from repro.fortran.interp import Interpreter
from repro.kernels import get_frontier_kernel
from repro.validate import (
    blocked_affine_scan,
    blocked_scan,
    validate_content_facts,
)

OPTIONS = AnalysisOptions(frontier=True)

fractions = st.integers(-30, 30).map(Fraction)
ops = st.sampled_from(["+", "*", "min", "max"])

_FOLDS = {
    "+": lambda a, b: a + b,
    "*": lambda a, b: a * b,
    "min": min,
    "max": max,
}


def sequential_scan(op, seed, increments):
    out, acc = [], seed
    for inc in increments:
        acc = _FOLDS[op](acc, inc)
        out.append(acc)
    return out


@settings(max_examples=120)
@given(
    op=ops,
    seed=fractions,
    increments=st.lists(fractions, max_size=25),
    chunks=st.integers(1, 8),
)
def test_blocked_scan_equals_sequential(op, seed, increments, chunks):
    assert blocked_scan(op, seed, increments, chunks) == sequential_scan(
        op, seed, increments
    )


@settings(max_examples=120)
@given(
    seed=fractions,
    pairs=st.lists(st.tuples(fractions, fractions), max_size=20),
    chunks=st.integers(1, 8),
)
def test_blocked_affine_scan_equals_sequential(seed, pairs, chunks):
    out, x = [], seed
    for a, b in pairs:
        x = a * x + b
        out.append(x)
    assert blocked_affine_scan(pairs, seed, chunks) == out


# small integers as floats: prefix sums stay exact in binary FP, so the
# interpreter's float arithmetic is a sound oracle for the decomposition
small_ints = st.lists(
    st.integers(-9, 9).map(float), min_size=2, max_size=30
)


@settings(max_examples=40, deadline=None)
@given(data=small_ints, chunks=st.integers(1, 6))
def test_prefix_sum_kernel_decomposes(data, chunks):
    kernel = get_frontier_kernel("prefix_sum")
    n = len(data)
    args = kernel.make_args()
    args = dict(args, b=data + [0.0] * (1000 - n), n=n)
    interp = Interpreter(analyze(parse_program(kernel.source)))
    frame = interp.run_routine(kernel.routine, **args)
    seed = Fraction(args["a"][0])
    increments = [Fraction(v) for v in data[1:]]
    expected = blocked_scan("+", seed, increments, chunks)
    for k, value in zip(range(2, n + 1), expected):
        assert Fraction(frame.array("a").get((k,))) == value


AFFINE_KERNEL = """
      SUBROUTINE aff(A, B, n)
      REAL A(1000), B(1000)
      INTEGER n, i
      DO i = 2, n
        A(i) = 3*A(i-1) + B(i)
      ENDDO
      END
"""


@settings(max_examples=40, deadline=None)
@given(data=small_ints, chunks=st.integers(1, 6))
def test_affine_scan_kernel_decomposes(data, chunks):
    n = len(data)
    args = {
        "a": [1.0] + [0.0] * 999,
        "b": data + [0.0] * (1000 - n),
        "n": n,
    }
    interp = Interpreter(analyze(parse_program(AFFINE_KERNEL)))
    frame = interp.run_routine("aff", **args)
    pairs = [(Fraction(3), Fraction(v)) for v in data[1:]]
    expected = blocked_affine_scan(pairs, Fraction(1), chunks)
    for k, value in zip(range(2, n + 1), expected):
        assert Fraction(frame.array("a").get((k,))) == value


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 40),
    values=st.lists(
        st.integers(-50, 50).map(float), min_size=40, max_size=40
    ),
)
def test_content_facts_are_interpreter_invariants(n, values):
    for name in ("idx_gather", "flag_first_write"):
        kernel = get_frontier_kernel(name)
        args = dict(kernel.make_args())
        if "b" in args:
            args["b"] = values + [0.0] * (len(args["b"]) - 40)
        if "n" in args:
            args["n"] = min(n, 40)
        if "m" in args:
            args["m"] = min(n, 40)
        violations = validate_content_facts(
            kernel.source, kernel.routine, args, options=OPTIONS
        )
        assert violations == [], (name, violations)
