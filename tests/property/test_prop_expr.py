"""Property tests: symbolic expressions form a commutative ring and
evaluation is a homomorphism."""

from hypothesis import given, settings

from repro.symbolic import SymExpr, sym

from .strategies import envs, small_ints, sym_exprs, var_names


@given(sym_exprs(), sym_exprs(), envs())
def test_addition_homomorphism(a, b, env):
    assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)


@given(sym_exprs(), sym_exprs(), envs())
def test_multiplication_homomorphism(a, b, env):
    assert (a * b).evaluate(env) == a.evaluate(env) * b.evaluate(env)


@given(sym_exprs(), envs())
def test_negation_homomorphism(a, env):
    assert (-a).evaluate(env) == -a.evaluate(env)


@given(sym_exprs(), sym_exprs())
def test_addition_commutative(a, b):
    assert a + b == b + a


@given(sym_exprs(), sym_exprs())
def test_multiplication_commutative(a, b):
    assert a * b == b * a


@given(sym_exprs(), sym_exprs(), sym_exprs())
def test_addition_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(sym_exprs(), sym_exprs(), sym_exprs())
@settings(max_examples=50)
def test_multiplication_associative(a, b, c):
    assert (a * b) * c == a * (b * c)


@given(sym_exprs(), sym_exprs(), sym_exprs())
def test_distributivity(a, b, c):
    assert a * (b + c) == a * b + a * c


@given(sym_exprs())
def test_additive_identity_and_inverse(a):
    assert a + SymExpr() == a
    assert (a - a).is_zero()


@given(sym_exprs())
def test_multiplicative_identity(a):
    assert a * SymExpr.const(1) == a
    assert (a * SymExpr()).is_zero()


@given(sym_exprs(), small_ints, envs())
def test_scaling_consistent(a, k, env):
    assert (a * k).evaluate(env) == k * a.evaluate(env)


@given(sym_exprs(), var_names, sym_exprs(), envs())
def test_substitution_semantics(a, name, replacement, env):
    """Substituting then evaluating == evaluating with the bound value."""
    substituted = a.substitute({name: replacement})
    extended = dict(env)
    extended[name] = replacement.evaluate(env)
    assert substituted.evaluate(env) == a.evaluate(extended)


@given(sym_exprs())
def test_substitution_identity(a):
    renames = {n: sym(n) for n in a.free_vars()}
    assert a.substitute(renames) == a


@given(sym_exprs(), envs())
def test_constant_detection_consistent(a, env):
    value = a.constant_value()
    if value is not None:
        assert a.evaluate(env) == value


@given(sym_exprs())
def test_hash_equal_for_equal(a):
    b = SymExpr(dict(a.terms))
    assert a == b and hash(a) == hash(b)


@given(sym_exprs(), envs())
def test_non_constant_plus_constant_partition(a, env):
    assert a.non_constant_part().evaluate(env) + a.constant_term() == a.evaluate(
        env
    )
