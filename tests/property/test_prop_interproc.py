"""Property test: interprocedural soundness on random call-heavy kernels.

Random loop bodies call helper subroutines (conditional early returns,
work-array fills, partial consumes) — the exact Figure 1(c) shape — and
the trace validator checks MOD_i/UE_i/DE_i containment and privatization
claims against the concrete execution.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.validate import validate_loop

HELPERS = """
      SUBROUTINE hfill(w, q, c)
      REAL w(100), q(100)
      INTEGER c, j
      DO j = 1, c
        w(j) = q(j) + 1.0
      ENDDO
      END

      SUBROUTINE hguard(w, x, c)
      REAL w(100), x
      INTEGER c, j
      IF (x .GT. 100.0) RETURN
      DO j = 1, c
        w(j) = x * j
      ENDDO
      END

      SUBROUTINE hread(w, r, c, pos)
      REAL w(100), r(100)
      INTEGER c, pos, j
      REAL s
      s = 0.0
      DO j = 1, c
        s = s + w(j)
      ENDDO
      r(pos) = s
      END

      SUBROUTINE hbump(v)
      INTEGER v
      v = v + 3
      END
"""

CALLS = [
    "CALL hfill(t, b, m)",
    "CALL hfill(t, b, k)",
    "CALL hguard(t, x, m)",
    "CALL hread(t, a, m, i)",
    "CALL hread(b, a, k, i)",
    "CALL hbump(kv)",
]
LOCAL_STMTS = [
    "x = b(i) * 0.5",
    "t(i) = 1.0",
    "a(i) = t(1) + 0.5",
    "y = t(k)",
]
CONDITIONS = ["i .GT. k", "sw", "i .LE. 2"]


@st.composite
def call_kernels(draw):
    body: list[str] = []
    for _ in range(draw(st.integers(2, 5))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            body.append(f"        {draw(st.sampled_from(CALLS))}")
        elif kind == 1:
            body.append(f"        {draw(st.sampled_from(LOCAL_STMTS))}")
        elif kind == 2:
            cond = draw(st.sampled_from(CONDITIONS))
            inner = draw(st.sampled_from(CALLS + LOCAL_STMTS))
            body.append(f"        IF ({cond}) THEN")
            body.append(f"          {inner}")
            body.append("        ENDIF")
        else:
            body.append(f"        x = {draw(st.floats(0.5, 200.0))!r:.12}")
    lines = (
        [
            "      SUBROUTINE rndc(a, b, t, n, m, k, sw)",
            "      REAL a(100), b(100), t(100)",
            "      INTEGER n, m, k, i, kv",
            "      LOGICAL sw",
            "      REAL x, y",
            "      kv = 0",
            "      DO i = 1, n",
        ]
        + body
        + ["      ENDDO", "      END", HELPERS]
    )
    return "\n".join(lines) + "\n"


@given(
    call_kernels(),
    st.integers(1, 5),
    st.integers(1, 6),
    st.integers(0, 4),
    st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_interprocedural_kernels_validate(source, n, m, k, sw):
    report = validate_loop(
        source,
        "rndc",
        "i",
        args={
            "a": [0.25] * 40,
            "b": [1.25] * 40,
            "t": [0.0] * 40,
            "n": n,
            "m": m,
            "k": k,
            "sw": sw,
        },
    )
    assert report.ok, (source, report.violations)
