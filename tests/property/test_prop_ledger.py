"""Property test: kill-then-resume is bit-identical, wherever the kill.

A reference run writes a complete ledger.  The property truncates that
ledger at an *arbitrary byte offset* — simulating a crash at any point,
including mid-line — and asserts two invariants:

* :func:`repro.engine.ledger.replay` never raises past the missing
  header case, and every ``done`` record it trusts carries the exact
  payload of the reference run (digest checking filters torn tails);
* an engine resumed from the truncated ledger reproduces the reference
  run's verdict rows bit-for-bit (ledger-served + recomputed items are
  indistinguishable in the report).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import AnalysisOptions
from repro.engine import BatchEngine, BatchItem
from repro.engine.campaign import generate_campaign
from repro.engine.ledger import (
    LedgerMismatch,
    LedgerWriter,
    replay,
    run_identity,
    verify_identity,
)

_STATE: dict = {}


def reference() -> dict:
    """One full ledgered run, built once per test session."""
    if _STATE:
        return _STATE
    items = [
        BatchItem(c.name, c.source) for c in generate_campaign(6, seed=11)
    ]
    options = AnalysisOptions()
    root = Path(tempfile.mkdtemp(prefix="prop-ledger-"))
    path = root / "run.jsonl"
    ident = run_identity("batch", items, options)
    with LedgerWriter(path, ident) as w:
        engine = BatchEngine(
            options, jobs=1, run_machine_model=False, ledger=w
        )
        report = engine.run(items)
    assert report.complete and report.ok
    _STATE.update(
        items=items,
        options=options,
        ident=ident,
        root=root,
        raw=path.read_bytes(),
        rows=report.verdict_rows(),
        payloads={r.name: r.payload for r in report.results},
    )
    return _STATE


def truncated_ledger(ref: dict, cut: int) -> Path:
    raw = ref["raw"]
    path = ref["root"] / f"cut-{cut}.jsonl"
    path.write_bytes(raw[: min(cut, len(raw))])
    return path


@settings(max_examples=25, deadline=None)
@given(cut=st.integers(min_value=0, max_value=200_000))
def test_replay_tolerates_any_truncation(cut):
    ref = reference()
    path = truncated_ledger(ref, cut % (len(ref["raw"]) + 1))
    try:
        rep = replay(path)
    except LedgerMismatch:
        return  # cut fell inside the header line: refusing is correct
    verify_identity(rep.header, ref["ident"])
    assert rep.torn_lines <= 1  # a single cut tears at most one line
    for record in rep.done.values():
        assert record["payload"] == ref["payloads"][record["name"]]


@settings(max_examples=6, deadline=None)
@given(cut=st.integers(min_value=0, max_value=200_000))
def test_resume_from_any_truncation_is_bit_identical(cut):
    ref = reference()
    path = truncated_ledger(ref, cut % (len(ref["raw"]) + 1))
    try:
        rep = replay(path)
    except LedgerMismatch:
        return
    with LedgerWriter(path, ref["ident"], resume=True) as w:
        engine = BatchEngine(
            ref["options"], jobs=1, run_machine_model=False,
            ledger=w, resume=rep,
        )
        report = engine.run(list(ref["items"]))
    assert report.complete and report.ok
    assert report.verdict_rows() == ref["rows"]
    assert report.telemetry.resilience["resumed_items"] == len(rep.done)
    # and the appended ledger now replays as a complete run
    final = replay(path)
    assert final.ended == "complete"
    assert final.completed == len(ref["items"])
