"""Property tests: the GAR algebra never trips its own sampling
sanitizer, and the sanitizer actually catches planted violations."""

import pytest
from hypothesis import given, settings

from repro.regions import GARList, sanitize
from repro.regions.gar_ops import intersect_lists, subtract_lists, union_lists
from repro.symbolic import Comparer

from .strategies import gar_lists

CMP = Comparer()


@pytest.fixture(autouse=True)
def sanitizer_on():
    """Force the sanitizer on for each example; never leak state."""
    sanitize.reset()
    sanitize.enable()
    yield
    sanitize.reset()


@settings(deadline=None, max_examples=60)
@given(gar_lists(), gar_lists())
def test_union_never_violates(a, b):
    sanitize.drain()  # hypothesis reuses the fixture across examples
    union_lists(a, b, CMP)
    assert sanitize.drain() == []


@settings(deadline=None, max_examples=60)
@given(gar_lists(), gar_lists())
def test_intersect_never_violates(a, b):
    sanitize.drain()
    intersect_lists(a, b, CMP)
    assert sanitize.drain() == []


@settings(deadline=None, max_examples=60)
@given(gar_lists(), gar_lists())
def test_subtract_never_violates(a, b):
    sanitize.drain()
    subtract_lists(a, b, CMP)
    assert sanitize.drain() == []


@settings(deadline=None, max_examples=40)
@given(gar_lists(rank=2), gar_lists(rank=2))
def test_rank2_ops_never_violate(a, b):
    sanitize.drain()
    union_lists(a, b, CMP)
    intersect_lists(a, b, CMP)
    subtract_lists(a, b, CMP)
    assert sanitize.drain() == []


class TestSanitizerCatchesViolations:
    """The gate itself must be live: a wrong result must produce PAN301."""

    def test_dropped_union_elements_are_reported(self, cmp):
        from repro.regions import GAR, Range, RegularRegion
        from repro.symbolic import Predicate

        sanitize.drain()
        full = GARList(
            [GAR(Predicate.true(), RegularRegion("a", [Range(1, 4, 1)]))]
        )
        sanitize.check("union", full, full, GARList.empty())
        findings = sanitize.drain()
        assert findings and findings[0].code == "PAN301"
        assert "misses" in findings[0].message
        assert findings[0].data["op"] == "union"

    def test_invented_subtract_elements_are_reported(self, cmp):
        from repro.regions import GAR, Range, RegularRegion
        from repro.symbolic import Predicate

        small = GARList(
            [GAR(Predicate.true(), RegularRegion("a", [Range(1, 2, 1)]))]
        )
        big = GARList(
            [GAR(Predicate.true(), RegularRegion("a", [Range(1, 9, 1)]))]
        )
        sanitize.drain()
        sanitize.check("subtract", small, GARList.empty(), big)
        findings = sanitize.drain()
        assert findings and findings[0].code == "PAN301"
        assert "invented" in findings[0].message

    def test_disabled_sanitizer_is_silent(self, cmp):
        from repro.regions import GAR, Range, RegularRegion
        from repro.symbolic import Predicate

        sanitize.disable()
        full = GARList(
            [GAR(Predicate.true(), RegularRegion("a", [Range(1, 4, 1)]))]
        )
        union_lists(full, full, cmp)
        assert not sanitize.enabled()
        assert sanitize.drain() == []
