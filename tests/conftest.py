"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.dataflow import AnalysisOptions, SummaryAnalyzer
from repro.fortran import analyze, parse_program
from repro.hsg import build_hsg
from repro.parallelize import classify_all_loops
from repro.symbolic import Comparer


def compile_source(source: str, options: AnalysisOptions | None = None):
    """source -> (hsg, analyzer)."""
    hsg = build_hsg(analyze(parse_program(source)))
    return hsg, SummaryAnalyzer(hsg, options)


def loop_verdicts(source: str, options: AnalysisOptions | None = None):
    """source -> {(routine, source_label or None): LoopVerdict}, plus
    (routine, var) keys for label-less loops."""
    hsg, analyzer = compile_source(source, options)
    out = {}
    for verdict in classify_all_loops(analyzer):
        out[(verdict.routine, verdict.source_label)] = verdict
        out.setdefault((verdict.routine, verdict.var), verdict)
    return out


def loop_record(source: str, routine: str, var: str, options=None):
    """Summary record of the first loop with the given index variable."""
    hsg, analyzer = compile_source(source, options)
    for unit, loop in hsg.all_loops():
        if unit == routine and loop.var == var:
            return analyzer.loop_record(unit, loop)
    raise AssertionError(f"no loop {routine}/{var}")


@pytest.fixture
def cmp() -> Comparer:
    return Comparer()


@pytest.fixture
def cmp_nofm() -> Comparer:
    return Comparer(use_fm=False)
