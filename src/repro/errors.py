"""Exception hierarchy for the Panorama reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError`` etc.).  The frontend, symbolic engine, and analysis
layers each have their own subclass so test suites can assert on the layer
that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SourceError(ReproError):
    """Problem with raw Fortran source text (bad continuation, etc.)."""


class LexError(SourceError):
    """Tokenizer failure, carries the line/column of the offending text."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{message} (line {line}, col {col})")
        self.line = line
        self.col = col


class ParseError(SourceError):
    """Parser failure, carries the line of the offending statement."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"{message} (line {line})")
        self.line = line


class SemanticError(ReproError):
    """Symbol table / declaration inconsistency."""


class CallGraphError(SemanticError):
    """Recursive or unresolved call structure (the analysis requires an
    acyclic call graph, paper section 4)."""


class SymbolicError(ReproError):
    """Unsupported symbolic manipulation (e.g. division with remainder)."""


class RegionError(ReproError):
    """Ill-formed array region or region operation between different arrays."""


class HSGError(ReproError):
    """Hierarchical supergraph construction failure."""


class AnalysisError(ReproError):
    """Dataflow summary computation failure."""
