"""Exception hierarchy for the Panorama reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError`` etc.).  The frontend, symbolic engine, and analysis
layers each have their own subclass so test suites can assert on the layer
that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SourceError(ReproError):
    """Problem with raw Fortran source text (bad continuation, etc.)."""


class LexError(SourceError):
    """Tokenizer failure, carries the line/column of the offending text."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{message} (line {line}, col {col})")
        self.line = line
        self.col = col


class ParseError(SourceError):
    """Parser failure, carries the line of the offending statement."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"{message} (line {line})")
        self.line = line


class SemanticError(ReproError):
    """Symbol table / declaration inconsistency."""


class CallGraphError(SemanticError):
    """Recursive or unresolved call structure (the analysis requires an
    acyclic call graph, paper section 4)."""


class SymbolicError(ReproError):
    """Unsupported symbolic manipulation (e.g. division with remainder)."""


class RegionError(ReproError):
    """Ill-formed array region or region operation between different arrays."""


class HSGError(ReproError):
    """Hierarchical supergraph construction failure."""


class AnalysisError(ReproError):
    """Dataflow summary computation failure."""


class ResilienceError(ReproError):
    """Base class for the resilience layer's typed failures."""


class BudgetExceeded(ResilienceError):
    """An analysis budget (deadline or step count) ran out.

    Raised from the symbolic hot paths; the SUM_* algorithms catch it and
    degrade to the paper's conservative whole-array summary instead of
    dying — the loop verdict becomes "unknown (budget)", never a crash.
    """

    def __init__(self, message: str = "analysis budget exceeded",
                 reason: str = "budget") -> None:
        super().__init__(message)
        #: "deadline" | "steps" | "budget" — which limit was hit
        self.reason = reason


class WorkerCrash(ResilienceError):
    """A batch pool worker died (killed, OOM, segfault) mid-item."""


class ItemTimeout(ResilienceError):
    """A batch item exceeded its per-item wall-clock timeout."""


#: classification buckets for the batch engine's typed error field:
#: *hard* kinds indicate the item itself is bad (retrying cannot help),
#: *fault* kinds indicate infrastructure trouble (retry under supervision)
HARD_ERROR_KINDS = frozenset({"source", "analysis", "internal"})
FAULT_ERROR_KINDS = frozenset({"worker-crash", "timeout", "oom", "budget"})

#: process exit codes shared by every CLI (docs/robustness.md): clean,
#: hard failure (bad input / analysis bug / lost items), usage error,
#: degraded-but-complete, strict-audit finding, and interrupted-but-
#: consistent (a drain or Ctrl-C stopped the run; everything finalized
#: so far is flushed and a ledger resume continues where it left off)
EXIT_OK = 0
EXIT_HARD_FAILURE = 1
EXIT_USAGE = 2
EXIT_DEGRADED = 3
EXIT_AUDIT_FAILED = 4
EXIT_INTERRUPTED = 5


def classify_exception(exc: BaseException) -> str:
    """Map an exception to the batch engine's typed error taxonomy.

    Returns one of: ``source`` (bad input text), ``analysis`` (the
    library refused the program), ``budget``, ``oom``, ``worker-crash``,
    ``timeout``, or ``internal`` (a programming error — a traceback worth
    reading).  ``KeyboardInterrupt``/``SystemExit`` are never classified;
    callers must re-raise them.
    """
    if isinstance(exc, BudgetExceeded):
        return "budget"
    if isinstance(exc, ItemTimeout):
        return "timeout"
    if isinstance(exc, WorkerCrash):
        return "worker-crash"
    if isinstance(exc, SourceError):
        return "source"
    if isinstance(exc, ReproError):
        return "analysis"
    if isinstance(exc, MemoryError):
        return "oom"
    return "internal"
