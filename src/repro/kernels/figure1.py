"""The paper's Figure 1 examples as standalone programs.

These are the pedagogical versions: (a) the MDG ``interf`` fragment whose
array ``A`` (really ``RL``) needs inference between IF conditions and is
*not* privatized by the implementation; (b) the ARC2D ``filerx`` fragment
with a loop-invariant IF condition; (c) the OCEAN fragment needing
interprocedural MOD/UE with complementary conditions.
"""

FIGURE_1A = """
      SUBROUTINE interf(A, B, nmol1, cut2)
      REAL A(20), B(20), cut2
      REAL ttemp
      INTEGER nmol1, kc, K, I
      DO I = 1, nmol1
        kc = 0
        DO K = 1, 9
          B(K) = 1.5 * K
          IF (B(K) .GT. cut2) kc = kc + 1
        ENDDO
        DO K = 2, 5
          IF (B(K+4) .GT. cut2) GOTO 1
          A(K+4) = B(K)
 1      ENDDO
        IF (kc .NE. 0) GOTO 2
        DO K = 11, 14
          ttemp = 2.0 * A(K-5)
        ENDDO
 2      CONTINUE
      ENDDO
      END
"""

FIGURE_1B = """
      SUBROUTINE filerx(A, jlow, jup, jmax, p, n)
      REAL A(1000)
      LOGICAL p
      REAL x
      INTEGER jlow, jup, jmax, I, J, n
      DO I = 1, n
        DO J = jlow, jup
          A(J) = 1.0
        ENDDO
        IF (.NOT. p) THEN
          A(jmax) = 2.0
        ENDIF
        DO J = jlow, jup
          x = A(J) + A(jmax)
        ENDDO
      ENDDO
      END
"""

FIGURE_1C = """
      PROGRAM main
      REAL A(1000)
      INTEGER n, m, i
      REAL x
      n = 10
      m = 100
      DO i = 1, n
        x = 2.0
        call in(A, x, m)
        call out(A, x, m)
      ENDDO
      END

      SUBROUTINE in(B, x, mm)
      REAL B(1000), x
      INTEGER mm, J
      IF (x .GT. 500.0) RETURN
      DO J = 1, mm
        B(J) = x
      ENDDO
      END

      SUBROUTINE out(B, x, mm)
      REAL B(1000), x
      INTEGER mm, J
      REAL y
      IF (x .GT. 500.0) RETURN
      DO J = 1, mm
        y = B(J)
      ENDDO
      END
"""
