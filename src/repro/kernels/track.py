"""TRACK — routine ``nlfilt``, loop 300 (Table 1/2).

The paper reports seven privatizable work arrays (P1, P2, P, PP1, PP2,
PP, XSD) in ``nlfilt``'s loop 300, requiring only interprocedural
analysis (T3): the per-track state vectors are filled by callees with
*constant* bounds (4x4 Kalman-filter style state), so no symbolic
reasoning or IF-condition analysis is needed — but without looking inside
the calls, every array is an unknown read/write and nothing privatizes.
"""

from .registry import Kernel, register

SOURCE = """
      PROGRAM track
      REAL TRKS(600), OBS(2000)
      INTEGER ntrks, nobs, i, m
      REAL acc
      ntrks = 56
      nobs = 900
C  --- observation preprocessing and smoothing (serial phases) ---
      DO i = 1, nobs
        OBS(i) = 0.5 * i + 2.0
        OBS(i) = OBS(i) * OBS(i) + 1.0
        OBS(i) = OBS(i) / 2.0
      ENDDO
      DO i = 2, nobs
        DO m = 1, 4
          OBS(i) = OBS(i) * 0.75 + OBS(i-1) * 0.25 + 0.125 * m
        ENDDO
      ENDDO
      DO i = 1, ntrks
        TRKS(i) = 1.0 * i
      ENDDO
      call nlfilt(TRKS, ntrks, OBS)
C  --- track report generation (serial phase) ---
      acc = 0.0
      DO i = 1, ntrks
        acc = acc + TRKS(i)
      ENDDO
      TRKS(1) = acc
      END

      SUBROUTINE nlfilt(TRKS, ntrks, OBS)
      REAL TRKS(600), OBS(2000)
      INTEGER ntrks, i
      REAL P1(16), P2(16), P(16), PP1(16), PP2(16), PP(16), XSD(4)
      DO 300 i = 1, ntrks
        call predct(P1, P2, P, TRKS, i)
        call updtrk(PP1, PP2, PP, P1, P2, P, OBS, i)
        call resid(XSD, PP1, PP2, PP, OBS, i)
        TRKS(i) = XSD(1) + XSD(2) + XSD(3) + XSD(4)
 300  CONTINUE
      END

      SUBROUTINE predct(A1, A2, A, TRKS, it)
      REAL A1(16), A2(16), A(16), TRKS(600)
      INTEGER it, k
      DO k = 1, 16
        A1(k) = TRKS(it) + 0.1 * k
        A2(k) = TRKS(it) - 0.1 * k
        A(k) = A1(k) * A2(k)
      ENDDO
      END

      SUBROUTINE updtrk(B1, B2, B, A1, A2, A, OBS, it)
      REAL B1(16), B2(16), B(16), A1(16), A2(16), A(16), OBS(2000)
      INTEGER it, k
      DO k = 1, 16
        B1(k) = A1(k) + OBS(it)
        B2(k) = A2(k) * OBS(it)
        B(k) = A(k) + B1(k) - B2(k)
      ENDDO
      END

      SUBROUTINE resid(XS, B1, B2, B, OBS, it)
      REAL XS(4), B1(16), B2(16), B(16), OBS(2000)
      INTEGER it, k, m
      DO k = 1, 4
        XS(k) = 0.0
        DO m = 1, 4
          XS(k) = XS(k) + B(4*(k-1)+m) + B1(m) - B2(m)
        ENDDO
      ENDDO
      END
"""

NLFILT_300 = register(
    Kernel(
        program="TRACK",
        routine="nlfilt",
        loop_label=300,
        source=SOURCE,
        privatizable=("p1", "p2", "p", "pp1", "pp2", "pp", "xsd"),
        techniques=("T3",),
        paper_speedup=5.2,
        paper_pct_seq=40.0,
        sizes={"ntrks": 56, "nobs": 900},
    )
)
