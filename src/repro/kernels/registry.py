"""Kernel registry: one record per Table 1/2 loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class Kernel:
    """One benchmark loop and everything the experiments need to know."""

    program: str  # Perfect program name, e.g. "TRACK"
    routine: str  # routine containing the loop, e.g. "nlfilt"
    loop_label: int  # the paper's loop label, e.g. 300
    source: str  # full Fortran program text
    #: arrays Table 2 reports privatizable (lower case)
    privatizable: tuple[str, ...]
    #: arrays Table 2 reports *not* automatically privatizable
    not_privatizable: tuple[str, ...] = ()
    #: Table 1 technique columns marked "Yes"
    techniques: tuple[str, ...] = ()
    paper_speedup: float = 0.0
    paper_pct_seq: float = 0.0
    #: problem-size bindings for the cost model
    sizes: Mapping[str, int] = field(default_factory=dict)
    #: paper marks ARC2D speedups as estimates
    speedup_estimated: bool = False

    @property
    def loop_id(self) -> str:
        return f"{self.routine}/{self.loop_label}"

    @property
    def full_id(self) -> str:
        return f"{self.program}:{self.loop_id}"


KERNELS: list[Kernel] = []


def register(kernel: Kernel) -> Kernel:
    """Add a kernel to the global registry (returns it)."""
    KERNELS.append(kernel)
    return kernel


def get_kernel(program: str, routine: str, label: int) -> Kernel:
    """Look up one kernel by program/routine/label."""
    for k in KERNELS:
        if (
            k.program.lower() == program.lower()
            and k.routine == routine
            and k.loop_label == label
        ):
            return k
    raise KeyError(f"{program}:{routine}/{label}")


def kernels_for_program(program: str) -> list[Kernel]:
    """All kernels belonging to one Perfect program."""
    return [k for k in KERNELS if k.program.lower() == program.lower()]
