"""Synthetic kernels: scaling studies and feature-specific test programs.

``make_loop_nest`` builds programs of configurable depth/width for the
analysis-cost scaling bench; the named sources exercise individual
analysis features (steps, reductions, goto cycles, premature exits) for
tests.  ``FRONTIER_KERNELS`` collects the loops the frontier pass
(docs/frontier.md) exists to crack: each records the verdict with the
pass on and off, so tests can assert both the upgrade and the
conservative fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

#: simplest privatizable work-array loop
SIMPLE_PRIVATIZABLE = """
      SUBROUTINE sweep(A, B, n, m)
      REAL A(1000), B(1000)
      INTEGER n, m, i, j
      REAL T(100)
      REAL s
      DO i = 1, n
        DO j = 1, m
          T(j) = B(j) + i
        ENDDO
        s = 0.0
        DO j = 1, m
          s = s + T(j)
        ENDDO
        A(i) = s
      ENDDO
      END
"""

#: loop with a genuine carried flow dependence (recurrence)
RECURRENCE = """
      SUBROUTINE recur(A, n)
      REAL A(1000)
      INTEGER n, i
      DO i = 2, n
        A(i) = A(i-1) + 1.0
      ENDDO
      END
"""

#: sum reduction
REDUCTION = """
      SUBROUTINE sumup(A, n, total)
      REAL A(1000), total
      INTEGER n, i
      DO i = 1, n
        total = total + A(i)
      ENDDO
      END
"""

#: strided writes that tile without overlap
STRIDED = """
      SUBROUTINE stride(A, n)
      REAL A(2000)
      INTEGER n, i
      DO i = 1, n
        A(2*i) = 1.0
        A(2*i+1) = 2.0
      ENDDO
      END
"""

#: backward GOTO forming a cycle (condensed conservatively)
GOTO_CYCLE = """
      SUBROUTINE wloop(A, n)
      REAL A(1000)
      INTEGER n, k
      k = 1
 10   CONTINUE
      A(k) = 1.0
      k = k + 1
      IF (k .LE. n) GOTO 10
      END
"""

#: premature exit from a DO loop
PREMATURE_EXIT = """
      SUBROUTINE search(A, n, found)
      REAL A(1000)
      INTEGER n, found, i
      DO i = 1, n
        IF (A(i) .GT. 100.0) GOTO 99
        A(i) = A(i) + 1.0
      ENDDO
 99   CONTINUE
      found = i
      END
"""

#: Figure-5 style: guarded single-cell write before a windowed read
INVARIANT_GUARD = """
      SUBROUTINE guardw(A, n, jlow, jup, jmax, p)
      REAL A(1000)
      LOGICAL p
      INTEGER n, jlow, jup, jmax, i, j
      REAL x
      DO i = 1, n
        DO j = jlow, jup
          A(j) = 1.0
        ENDDO
        IF (.NOT. p) THEN
          A(jmax) = 2.0
        ENDIF
        DO j = jlow, jup
          x = A(j) + A(jmax)
        ENDDO
      ENDDO
      END
"""


#: analysis patterns make_routine can instantiate (each mirrors one of
#: the named sources above, parametrized so a pool of distinct-but-
#: repeating routines can be drawn for campaign corpora)
ROUTINE_PATTERNS = ("private", "reduction", "recurrence", "stride")


def make_routine(name: str, pattern: str, span: int = 1000) -> str:
    """One synthetic subroutine exercising a single analysis pattern.

    All patterns share the formal signature ``(A, B, N, M)`` so any
    driver can call any mix of them.  The generated text is a pure
    function of ``(name, pattern, span)`` — two items embedding the
    same routine therefore embed byte-identical sources, which is what
    gives them identical summary fingerprints and makes cross-item
    cache reuse possible.
    """
    header = [
        f"      SUBROUTINE {name}(A, B, N, M)",
        f"      REAL A({span}), B({span})",
        "      INTEGER N, M, I, J",
    ]
    if pattern == "private":
        body = [
            f"      REAL T({span}), S",
            "      DO I = 1, N",
            "        DO J = 1, M",
            "          T(J) = B(J) + I",
            "        ENDDO",
            "        S = 0.0",
            "        DO J = 1, M",
            "          S = S + T(J)",
            "        ENDDO",
            "        A(I) = S",
            "      ENDDO",
        ]
    elif pattern == "reduction":
        body = [
            "      REAL S",
            "      S = 0.0",
            "      DO I = 1, N",
            "        S = S + A(I)",
            "      ENDDO",
            "      B(1) = S",
        ]
    elif pattern == "recurrence":
        body = [
            "      DO I = 2, N",
            "        A(I) = A(I-1) + B(I)",
            "      ENDDO",
        ]
    elif pattern == "stride":
        body = [
            "      DO I = 1, N",
            "        A(2*I) = B(I)",
            "        A(2*I+1) = B(I) + 1.0",
            "      ENDDO",
        ]
    else:
        raise ValueError(
            f"unknown routine pattern {pattern!r} "
            f"(expected one of {ROUTINE_PATTERNS})"
        )
    return "\n".join(header + body + ["      END"]) + "\n"


def make_heavy_routine(name: str, blocks: int = 8, span: int = 1000) -> str:
    """A deliberately expensive-to-analyze subroutine: *blocks* sequential
    privatizable loop nests over distinct temporaries.

    Shares :func:`make_routine`'s ``(A, B, N, M)`` signature so drivers
    can mix heavy and light callees.  Analysis cost grows with *blocks*
    (each adds a nest of three loops and a fresh private array), which
    makes these routines the worst case for schedulers that let callers
    run before their providers: every caller that misses the summary
    cache pays the whole bill again.
    """
    if blocks < 1:
        raise ValueError("blocks must be >= 1")
    header = [
        f"      SUBROUTINE {name}(A, B, N, M)",
        f"      REAL A({span}), B({span})",
        "      INTEGER N, M, I, J, K",
        "      REAL "
        + ", ".join(f"T{b}({span})" for b in range(blocks))
        + ", S",
    ]
    body: list[str] = []
    for b in range(blocks):
        body += [
            "      DO I = 1, N",
            "        DO J = 1, M",
            f"          T{b}(J) = B(J) + A(I) * {b + 1}.0",
            "        ENDDO",
            "        S = 0.0",
            "        DO K = 1, M",
            f"          S = S + T{b}(K)",
            "        ENDDO",
            f"        A(I) = S + {b}.0",
            "      ENDDO",
        ]
    return "\n".join(header + body + ["      END"]) + "\n"


def make_call_chain(prefix: str, depth: int, span: int = 500) -> str:
    """A *depth*-deep call chain: ``PREFIX0`` calls ``PREFIX1`` inside
    its loop, which calls ``PREFIX2``, and so on.

    Each routine's own loops are trivial, but summarizing the chain head
    walks every link (interprocedural region translation at each call
    site) — the inverse cost profile of :func:`make_heavy_routine`.
    Analysis served a cached summary of ``PREFIX0`` skips the whole
    walk, which makes chains the workload where warm summary tiers show
    the largest per-item savings.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    units: list[str] = []
    for k in range(depth):
        lines = [
            f"      SUBROUTINE {prefix}{k}(A, B, N, M)",
            f"      REAL A({span}), B({span})",
            "      INTEGER N, M, I, J",
            f"      REAL T({span})",
            "      DO I = 1, N",
            "        DO J = 1, M",
            "          T(J) = B(J) + A(I)",
            "        ENDDO",
        ]
        if k < depth - 1:
            lines.append(f"        CALL {prefix}{k + 1}(T, B, N, M)")
        lines += [
            "        A(I) = T(1)",
            "      ENDDO",
            "      END",
        ]
        units.append("\n".join(lines) + "\n")
    return "".join(units)


def make_driver(
    name: str, callees: list[str], span: int = 1000, trips: int = 50
) -> str:
    """A PROGRAM unit that initializes work arrays and calls *callees*.

    Pair with :func:`make_routine` (every callee must use its shared
    ``(A, B, N, M)`` signature); concatenating the driver with the
    callee sources yields a complete analyzable item.
    """
    lines = [
        f"      PROGRAM {name}",
        f"      REAL A({span}), B({span})",
        "      INTEGER N, M, I",
        f"      N = {trips}",
        f"      M = {max(1, trips // 2)}",
        f"      DO I = 1, {span}",
        "        A(I) = 1.0",
        "        B(I) = 2.0",
        "      ENDDO",
    ]
    lines += [f"      CALL {c}(A, B, N, M)" for c in callees]
    lines.append("      END")
    return "\n".join(lines) + "\n"


def make_loop_nest(depth: int, width: int, routines: int = 1) -> str:
    """A program with *routines* subroutines, each holding a *depth*-deep
    loop nest over work arrays, called from a driver.

    Used by the scaling bench: analysis cost should grow roughly linearly
    with program size (the paper's Figure 4 practicality claim).
    """
    units: list[str] = []
    calls = []
    for r in range(routines):
        name = f"work{r}"
        calls.append(f"      call {name}(A, n)")
        body: list[str] = []
        indent = "      "
        for d in range(depth):
            body.append(f"{indent}DO i{d} = 1, n")
            indent += "  "
        for w in range(width):
            body.append(f"{indent}T(i{depth - 1} + {w}) = A(i0) * {w + 1}.0")
        body.append(f"{indent}A(i0) = T(i{depth - 1})")
        for d in range(depth):
            indent = indent[:-2]
            body.append(f"{indent}ENDDO")
        decl_idx = ", ".join(f"i{d}" for d in range(depth))
        units.append(
            "\n".join(
                [
                    f"      SUBROUTINE {name}(A, n)",
                    "      REAL A(10000)",
                    f"      INTEGER n, {decl_idx}",
                    "      REAL T(10000)",
                ]
                + body
                + ["      END"]
            )
        )
    main = "\n".join(
        [
            "      PROGRAM scale",
            "      REAL A(10000)",
            "      INTEGER n, i",
            "      n = 50",
            "      DO i = 1, 10000",
            "        A(i) = 1.0",
            "      ENDDO",
        ]
        + calls
        + ["      END"]
    )
    return main + "\n" + "\n".join(units) + "\n"


# ---------------------------------------------------------------------------
# Frontier kernels (docs/frontier.md)
# ---------------------------------------------------------------------------

#: index-array gather: the content domain derives IDX(k) = 2k from the
#: defining loop, separating the gather reads A(IDX(i)) = A(2i) from the
#: odd-cell writes A(2i-1)
IDX_GATHER = """
      SUBROUTINE gath(A, B, IDX, n)
      REAL A(2000), B(1000)
      INTEGER IDX(1000)
      INTEGER n, i
      DO i = 1, n
        IDX(i) = 2*i
      ENDDO
      DO i = 1, n
        B(i) = A(IDX(i))
        A(2*i-1) = B(i)
      ENDDO
      END
"""

#: first-write through an identity index array: with IDX(k) = k the
#: write A(IDX(i)) covers the read A(IDX(i)) in the same iteration and
#: distinct iterations touch distinct cells
FIRST_WRITE = """
      SUBROUTINE fwrite(A, B, C, IDX, n)
      REAL A(2000), B(1000), C(1000)
      INTEGER IDX(1000)
      INTEGER n, i
      DO i = 1, n
        IDX(i) = i
      ENDDO
      DO i = 1, n
        A(IDX(i)) = B(i)
        C(i) = A(IDX(i)) + 1.0
      ENDDO
      END
"""

#: CSR-style segment walk: PTR(k) = 2k-1 makes the per-iteration windows
#: [PTR(i), PTR(i)+1] provably disjoint
CSR_SEGMENT = """
      SUBROUTINE csr(A, B, PTR, n)
      REAL A(2000), B(2000)
      INTEGER PTR(1001)
      INTEGER n, i, j
      DO i = 1, n
        PTR(i) = 2*i - 1
      ENDDO
      DO i = 1, n
        DO j = PTR(i), PTR(i) + 1
          B(j) = A(j)
          A(j) = B(j) * 2.0
        ENDDO
      ENDDO
      END
"""

#: textbook prefix sum: A(i) = A(i-1) + B(i)
PREFIX_SUM = """
      SUBROUTINE pref(A, B, n)
      REAL A(1000), B(1000)
      INTEGER n, i
      DO i = 2, n
        A(i) = A(i-1) + B(i)
      ENDDO
      END
"""

#: segmented scan: flagged iterations restart the chain, the rest extend it
SEGMENTED_SCAN = """
      SUBROUTINE segsc(A, B, F, n)
      REAL A(1000), B(1000)
      INTEGER F(1000)
      INTEGER n, i
      DO i = 2, n
        IF (F(i) .GT. 0) THEN
          A(i) = B(i)
        ELSE
          A(i) = A(i-1) + B(i)
        ENDIF
      ENDDO
      END
"""

#: running scalar sum whose intermediate values escape into C — not a
#: reduction (the chain is observed), but still a scan
RUNNING_SUM = """
      SUBROUTINE runsum(B, C, n, s)
      REAL B(1000), C(1000), s
      INTEGER n, i
      s = 0.0
      DO i = 1, n
        s = s + B(i)
        C(i) = s
      ENDDO
      END
"""

#: guarded first-write privatization: the flag loop pins F(j) to {1, 2},
#: so the guard F(j) .GE. 1 is provably always true and T's guarded
#: write is really an unconditional defining write
FLAG_FIRST_WRITE = """
      SUBROUTINE flagfw(A, B, F, n, m)
      REAL A(1000), B(1000)
      INTEGER F(1000)
      INTEGER n, m, i, j
      REAL T(1000)
      DO j = 1, m
        IF (B(j) .GT. 0.0) THEN
          F(j) = 1
        ELSE
          F(j) = 2
        ENDIF
      ENDDO
      DO i = 1, n
        DO j = 1, m
          IF (F(j) .GE. 1) THEN
            T(j) = B(j) + A(i)
          ENDIF
        ENDDO
        DO j = 1, m
          A(i) = A(i) + T(j)
        ENDDO
      ENDDO
      END
"""


@dataclass(frozen=True)
class FrontierKernel:
    """One frontier loop plus its expected verdicts and run inputs."""

    name: str
    source: str
    routine: str  # unit holding the target loop
    var: str  # target loop's index variable
    ordinal: int  # index among the routine's reports on that variable
    expect_on: str  # LoopStatus.value with the frontier pass enabled
    expect_off: str  # LoopStatus.value with the pass disabled
    description: str
    #: fresh interpreter arguments for ``run_routine`` (ground truth runs)
    make_args: Callable[[], Mapping[str, Any]] = field(default=dict)

    def target_report(self, result) -> Any:
        """The target loop's report in a ``CompilationResult``."""
        matches = [
            rep
            for rep in result.loops
            if rep.routine == self.routine and rep.var == self.var
        ]
        return matches[self.ordinal]


def _gather_args() -> dict:
    return {
        "a": [float(k) for k in range(1, 2001)],
        "b": [0.0] * 1000,
        "idx": [0] * 1000,
        "n": 16,
    }


def _first_write_args() -> dict:
    return {
        "a": [0.0] * 2000,
        "b": [float(k) for k in range(1, 1001)],
        "c": [0.0] * 1000,
        "idx": [0] * 1000,
        "n": 16,
    }


def _csr_args() -> dict:
    return {
        "a": [float(k) for k in range(1, 2001)],
        "b": [0.0] * 2000,
        "ptr": [0] * 1001,
        "n": 16,
    }


def _prefix_args() -> dict:
    return {
        "a": [1.0] + [0.0] * 999,
        "b": [float(k % 7) for k in range(1, 1001)],
        "n": 16,
    }


def _segscan_args() -> dict:
    return {
        "a": [1.0] + [0.0] * 999,
        "b": [float(k % 5) for k in range(1, 1001)],
        "f": [1 if k % 4 == 0 else 0 for k in range(1, 1001)],
        "n": 16,
    }


def _runsum_args() -> dict:
    return {
        "b": [float(k % 9) for k in range(1, 1001)],
        "c": [0.0] * 1000,
        "n": 16,
        "s": 0.0,
    }


def _flagfw_args() -> dict:
    return {
        "a": [1.0] * 1000,
        "b": [float(k) if k % 3 else -float(k) for k in range(1, 1001)],
        "f": [0] * 1000,
        "n": 6,
        "m": 8,
    }


#: every loop here is UNKNOWN/serial without the frontier pass and
#: parallel (possibly scan-scheduled) with it — the pass's scoreboard
FRONTIER_KERNELS: tuple[FrontierKernel, ...] = (
    FrontierKernel(
        name="idx_gather",
        source=IDX_GATHER,
        routine="gath",
        var="i",
        ordinal=1,
        expect_on="parallel",
        expect_off="serial",
        description="gather through a derived index-array form",
        make_args=_gather_args,
    ),
    FrontierKernel(
        name="first_write",
        source=FIRST_WRITE,
        routine="fwrite",
        var="i",
        ordinal=1,
        expect_on="parallel",
        expect_off="serial",
        description="first-write through an identity index array",
        make_args=_first_write_args,
    ),
    FrontierKernel(
        name="csr_segment",
        source=CSR_SEGMENT,
        routine="csr",
        var="i",
        ordinal=1,
        expect_on="parallel (privatized)",
        expect_off="serial",
        description="disjoint segment windows via a pointer-array form",
        make_args=_csr_args,
    ),
    FrontierKernel(
        name="prefix_sum",
        source=PREFIX_SUM,
        routine="pref",
        var="i",
        ordinal=0,
        expect_on="parallel (scan)",
        expect_off="serial",
        description="prefix sum over +",
        make_args=_prefix_args,
    ),
    FrontierKernel(
        name="segmented_scan",
        source=SEGMENTED_SCAN,
        routine="segsc",
        var="i",
        ordinal=0,
        expect_on="parallel (scan)",
        expect_off="serial",
        description="flag-restarted segmented scan",
        make_args=_segscan_args,
    ),
    FrontierKernel(
        name="running_sum",
        source=RUNNING_SUM,
        routine="runsum",
        var="i",
        ordinal=0,
        expect_on="parallel (scan)",
        expect_off="serial",
        description="running scalar sum observed mid-chain",
        make_args=_runsum_args,
    ),
    FrontierKernel(
        name="flag_first_write",
        source=FLAG_FIRST_WRITE,
        routine="flagfw",
        var="i",
        ordinal=0,
        expect_on="parallel (privatized)",
        expect_off="serial",
        description="guard discharged by element bounds on the flag array",
        make_args=_flagfw_args,
    ),
)


def get_frontier_kernel(name: str) -> FrontierKernel:
    """Look up one frontier kernel by name."""
    for kernel in FRONTIER_KERNELS:
        if kernel.name == name:
            return kernel
    raise KeyError(name)
