"""Synthetic kernels: scaling studies and feature-specific test programs.

``make_loop_nest`` builds programs of configurable depth/width for the
analysis-cost scaling bench; the named sources exercise individual
analysis features (steps, reductions, goto cycles, premature exits) for
tests.
"""

from __future__ import annotations

#: simplest privatizable work-array loop
SIMPLE_PRIVATIZABLE = """
      SUBROUTINE sweep(A, B, n, m)
      REAL A(1000), B(1000)
      INTEGER n, m, i, j
      REAL T(100)
      REAL s
      DO i = 1, n
        DO j = 1, m
          T(j) = B(j) + i
        ENDDO
        s = 0.0
        DO j = 1, m
          s = s + T(j)
        ENDDO
        A(i) = s
      ENDDO
      END
"""

#: loop with a genuine carried flow dependence (recurrence)
RECURRENCE = """
      SUBROUTINE recur(A, n)
      REAL A(1000)
      INTEGER n, i
      DO i = 2, n
        A(i) = A(i-1) + 1.0
      ENDDO
      END
"""

#: sum reduction
REDUCTION = """
      SUBROUTINE sumup(A, n, total)
      REAL A(1000), total
      INTEGER n, i
      DO i = 1, n
        total = total + A(i)
      ENDDO
      END
"""

#: strided writes that tile without overlap
STRIDED = """
      SUBROUTINE stride(A, n)
      REAL A(2000)
      INTEGER n, i
      DO i = 1, n
        A(2*i) = 1.0
        A(2*i+1) = 2.0
      ENDDO
      END
"""

#: backward GOTO forming a cycle (condensed conservatively)
GOTO_CYCLE = """
      SUBROUTINE wloop(A, n)
      REAL A(1000)
      INTEGER n, k
      k = 1
 10   CONTINUE
      A(k) = 1.0
      k = k + 1
      IF (k .LE. n) GOTO 10
      END
"""

#: premature exit from a DO loop
PREMATURE_EXIT = """
      SUBROUTINE search(A, n, found)
      REAL A(1000)
      INTEGER n, found, i
      DO i = 1, n
        IF (A(i) .GT. 100.0) GOTO 99
        A(i) = A(i) + 1.0
      ENDDO
 99   CONTINUE
      found = i
      END
"""

#: Figure-5 style: guarded single-cell write before a windowed read
INVARIANT_GUARD = """
      SUBROUTINE guardw(A, n, jlow, jup, jmax, p)
      REAL A(1000)
      LOGICAL p
      INTEGER n, jlow, jup, jmax, i, j
      REAL x
      DO i = 1, n
        DO j = jlow, jup
          A(j) = 1.0
        ENDDO
        IF (.NOT. p) THEN
          A(jmax) = 2.0
        ENDIF
        DO j = jlow, jup
          x = A(j) + A(jmax)
        ENDDO
      ENDDO
      END
"""


def make_loop_nest(depth: int, width: int, routines: int = 1) -> str:
    """A program with *routines* subroutines, each holding a *depth*-deep
    loop nest over work arrays, called from a driver.

    Used by the scaling bench: analysis cost should grow roughly linearly
    with program size (the paper's Figure 4 practicality claim).
    """
    units: list[str] = []
    calls = []
    for r in range(routines):
        name = f"work{r}"
        calls.append(f"      call {name}(A, n)")
        body: list[str] = []
        indent = "      "
        for d in range(depth):
            body.append(f"{indent}DO i{d} = 1, n")
            indent += "  "
        for w in range(width):
            body.append(f"{indent}T(i{depth - 1} + {w}) = A(i0) * {w + 1}.0")
        body.append(f"{indent}A(i0) = T(i{depth - 1})")
        for d in range(depth):
            indent = indent[:-2]
            body.append(f"{indent}ENDDO")
        decl_idx = ", ".join(f"i{d}" for d in range(depth))
        units.append(
            "\n".join(
                [
                    f"      SUBROUTINE {name}(A, n)",
                    "      REAL A(10000)",
                    f"      INTEGER n, {decl_idx}",
                    "      REAL T(10000)",
                ]
                + body
                + ["      END"]
            )
        )
    main = "\n".join(
        [
            "      PROGRAM scale",
            "      REAL A(10000)",
            "      INTEGER n, i",
            "      n = 50",
            "      DO i = 1, 10000",
            "        A(i) = 1.0",
            "      ENDDO",
        ]
        + calls
        + ["      END"]
    )
    return main + "\n" + "\n".join(units) + "\n"
