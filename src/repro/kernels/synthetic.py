"""Synthetic kernels: scaling studies and feature-specific test programs.

``make_loop_nest`` builds programs of configurable depth/width for the
analysis-cost scaling bench; the named sources exercise individual
analysis features (steps, reductions, goto cycles, premature exits) for
tests.
"""

from __future__ import annotations

#: simplest privatizable work-array loop
SIMPLE_PRIVATIZABLE = """
      SUBROUTINE sweep(A, B, n, m)
      REAL A(1000), B(1000)
      INTEGER n, m, i, j
      REAL T(100)
      REAL s
      DO i = 1, n
        DO j = 1, m
          T(j) = B(j) + i
        ENDDO
        s = 0.0
        DO j = 1, m
          s = s + T(j)
        ENDDO
        A(i) = s
      ENDDO
      END
"""

#: loop with a genuine carried flow dependence (recurrence)
RECURRENCE = """
      SUBROUTINE recur(A, n)
      REAL A(1000)
      INTEGER n, i
      DO i = 2, n
        A(i) = A(i-1) + 1.0
      ENDDO
      END
"""

#: sum reduction
REDUCTION = """
      SUBROUTINE sumup(A, n, total)
      REAL A(1000), total
      INTEGER n, i
      DO i = 1, n
        total = total + A(i)
      ENDDO
      END
"""

#: strided writes that tile without overlap
STRIDED = """
      SUBROUTINE stride(A, n)
      REAL A(2000)
      INTEGER n, i
      DO i = 1, n
        A(2*i) = 1.0
        A(2*i+1) = 2.0
      ENDDO
      END
"""

#: backward GOTO forming a cycle (condensed conservatively)
GOTO_CYCLE = """
      SUBROUTINE wloop(A, n)
      REAL A(1000)
      INTEGER n, k
      k = 1
 10   CONTINUE
      A(k) = 1.0
      k = k + 1
      IF (k .LE. n) GOTO 10
      END
"""

#: premature exit from a DO loop
PREMATURE_EXIT = """
      SUBROUTINE search(A, n, found)
      REAL A(1000)
      INTEGER n, found, i
      DO i = 1, n
        IF (A(i) .GT. 100.0) GOTO 99
        A(i) = A(i) + 1.0
      ENDDO
 99   CONTINUE
      found = i
      END
"""

#: Figure-5 style: guarded single-cell write before a windowed read
INVARIANT_GUARD = """
      SUBROUTINE guardw(A, n, jlow, jup, jmax, p)
      REAL A(1000)
      LOGICAL p
      INTEGER n, jlow, jup, jmax, i, j
      REAL x
      DO i = 1, n
        DO j = jlow, jup
          A(j) = 1.0
        ENDDO
        IF (.NOT. p) THEN
          A(jmax) = 2.0
        ENDIF
        DO j = jlow, jup
          x = A(j) + A(jmax)
        ENDDO
      ENDDO
      END
"""


#: analysis patterns make_routine can instantiate (each mirrors one of
#: the named sources above, parametrized so a pool of distinct-but-
#: repeating routines can be drawn for campaign corpora)
ROUTINE_PATTERNS = ("private", "reduction", "recurrence", "stride")


def make_routine(name: str, pattern: str, span: int = 1000) -> str:
    """One synthetic subroutine exercising a single analysis pattern.

    All patterns share the formal signature ``(A, B, N, M)`` so any
    driver can call any mix of them.  The generated text is a pure
    function of ``(name, pattern, span)`` — two items embedding the
    same routine therefore embed byte-identical sources, which is what
    gives them identical summary fingerprints and makes cross-item
    cache reuse possible.
    """
    header = [
        f"      SUBROUTINE {name}(A, B, N, M)",
        f"      REAL A({span}), B({span})",
        "      INTEGER N, M, I, J",
    ]
    if pattern == "private":
        body = [
            f"      REAL T({span}), S",
            "      DO I = 1, N",
            "        DO J = 1, M",
            "          T(J) = B(J) + I",
            "        ENDDO",
            "        S = 0.0",
            "        DO J = 1, M",
            "          S = S + T(J)",
            "        ENDDO",
            "        A(I) = S",
            "      ENDDO",
        ]
    elif pattern == "reduction":
        body = [
            "      REAL S",
            "      S = 0.0",
            "      DO I = 1, N",
            "        S = S + A(I)",
            "      ENDDO",
            "      B(1) = S",
        ]
    elif pattern == "recurrence":
        body = [
            "      DO I = 2, N",
            "        A(I) = A(I-1) + B(I)",
            "      ENDDO",
        ]
    elif pattern == "stride":
        body = [
            "      DO I = 1, N",
            "        A(2*I) = B(I)",
            "        A(2*I+1) = B(I) + 1.0",
            "      ENDDO",
        ]
    else:
        raise ValueError(
            f"unknown routine pattern {pattern!r} "
            f"(expected one of {ROUTINE_PATTERNS})"
        )
    return "\n".join(header + body + ["      END"]) + "\n"


def make_heavy_routine(name: str, blocks: int = 8, span: int = 1000) -> str:
    """A deliberately expensive-to-analyze subroutine: *blocks* sequential
    privatizable loop nests over distinct temporaries.

    Shares :func:`make_routine`'s ``(A, B, N, M)`` signature so drivers
    can mix heavy and light callees.  Analysis cost grows with *blocks*
    (each adds a nest of three loops and a fresh private array), which
    makes these routines the worst case for schedulers that let callers
    run before their providers: every caller that misses the summary
    cache pays the whole bill again.
    """
    if blocks < 1:
        raise ValueError("blocks must be >= 1")
    header = [
        f"      SUBROUTINE {name}(A, B, N, M)",
        f"      REAL A({span}), B({span})",
        "      INTEGER N, M, I, J, K",
        "      REAL "
        + ", ".join(f"T{b}({span})" for b in range(blocks))
        + ", S",
    ]
    body: list[str] = []
    for b in range(blocks):
        body += [
            "      DO I = 1, N",
            "        DO J = 1, M",
            f"          T{b}(J) = B(J) + A(I) * {b + 1}.0",
            "        ENDDO",
            "        S = 0.0",
            "        DO K = 1, M",
            f"          S = S + T{b}(K)",
            "        ENDDO",
            f"        A(I) = S + {b}.0",
            "      ENDDO",
        ]
    return "\n".join(header + body + ["      END"]) + "\n"


def make_call_chain(prefix: str, depth: int, span: int = 500) -> str:
    """A *depth*-deep call chain: ``PREFIX0`` calls ``PREFIX1`` inside
    its loop, which calls ``PREFIX2``, and so on.

    Each routine's own loops are trivial, but summarizing the chain head
    walks every link (interprocedural region translation at each call
    site) — the inverse cost profile of :func:`make_heavy_routine`.
    Analysis served a cached summary of ``PREFIX0`` skips the whole
    walk, which makes chains the workload where warm summary tiers show
    the largest per-item savings.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    units: list[str] = []
    for k in range(depth):
        lines = [
            f"      SUBROUTINE {prefix}{k}(A, B, N, M)",
            f"      REAL A({span}), B({span})",
            "      INTEGER N, M, I, J",
            f"      REAL T({span})",
            "      DO I = 1, N",
            "        DO J = 1, M",
            "          T(J) = B(J) + A(I)",
            "        ENDDO",
        ]
        if k < depth - 1:
            lines.append(f"        CALL {prefix}{k + 1}(T, B, N, M)")
        lines += [
            "        A(I) = T(1)",
            "      ENDDO",
            "      END",
        ]
        units.append("\n".join(lines) + "\n")
    return "".join(units)


def make_driver(
    name: str, callees: list[str], span: int = 1000, trips: int = 50
) -> str:
    """A PROGRAM unit that initializes work arrays and calls *callees*.

    Pair with :func:`make_routine` (every callee must use its shared
    ``(A, B, N, M)`` signature); concatenating the driver with the
    callee sources yields a complete analyzable item.
    """
    lines = [
        f"      PROGRAM {name}",
        f"      REAL A({span}), B({span})",
        "      INTEGER N, M, I",
        f"      N = {trips}",
        f"      M = {max(1, trips // 2)}",
        f"      DO I = 1, {span}",
        "        A(I) = 1.0",
        "        B(I) = 2.0",
        "      ENDDO",
    ]
    lines += [f"      CALL {c}(A, B, N, M)" for c in callees]
    lines.append("      END")
    return "\n".join(lines) + "\n"


def make_loop_nest(depth: int, width: int, routines: int = 1) -> str:
    """A program with *routines* subroutines, each holding a *depth*-deep
    loop nest over work arrays, called from a driver.

    Used by the scaling bench: analysis cost should grow roughly linearly
    with program size (the paper's Figure 4 practicality claim).
    """
    units: list[str] = []
    calls = []
    for r in range(routines):
        name = f"work{r}"
        calls.append(f"      call {name}(A, n)")
        body: list[str] = []
        indent = "      "
        for d in range(depth):
            body.append(f"{indent}DO i{d} = 1, n")
            indent += "  "
        for w in range(width):
            body.append(f"{indent}T(i{depth - 1} + {w}) = A(i0) * {w + 1}.0")
        body.append(f"{indent}A(i0) = T(i{depth - 1})")
        for d in range(depth):
            indent = indent[:-2]
            body.append(f"{indent}ENDDO")
        decl_idx = ", ".join(f"i{d}" for d in range(depth))
        units.append(
            "\n".join(
                [
                    f"      SUBROUTINE {name}(A, n)",
                    "      REAL A(10000)",
                    f"      INTEGER n, {decl_idx}",
                    "      REAL T(10000)",
                ]
                + body
                + ["      END"]
            )
        )
    main = "\n".join(
        [
            "      PROGRAM scale",
            "      REAL A(10000)",
            "      INTEGER n, i",
            "      n = 50",
            "      DO i = 1, 10000",
            "        A(i) = 1.0",
            "      ENDDO",
        ]
        + calls
        + ["      END"]
    )
    return main + "\n" + "\n".join(units) + "\n"
