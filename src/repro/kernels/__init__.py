"""Benchmark kernels: the paper's Figure 1 examples and faithful
re-creations of the Perfect-club loops of Tables 1 and 2.

Each kernel is a complete Fortran program built from the loop structure
the paper describes (routine and loop labels preserved), scaled by the
``sizes`` environment for the cost model.  ``techniques`` lists which of
the paper's T1 (symbolic) / T2 (IF conditions) / T3 (interprocedural)
columns are marked "Yes" in Table 1 — i.e. which ablations must break the
loop's privatization.
"""

from .registry import KERNELS, Kernel, get_kernel, kernels_for_program
from .synthetic import FRONTIER_KERNELS, FrontierKernel, get_frontier_kernel
from . import arc2d, figure1, mdg, ocean, synthetic, track, trfd

__all__ = [
    "FRONTIER_KERNELS",
    "FrontierKernel",
    "KERNELS",
    "Kernel",
    "get_frontier_kernel",
    "arc2d",
    "figure1",
    "get_kernel",
    "kernels_for_program",
    "mdg",
    "ocean",
    "synthetic",
    "track",
    "trfd",
]
