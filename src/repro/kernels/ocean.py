"""OCEAN — routine ``ocean``, loops 270, 480, 500.

All three reproduce the Figure 1(c) shape: each iteration conditionally
fills a complex work buffer (``CWORK``, plus ``CWORK2`` in loop 480)
inside one callee and conditionally consumes it inside another, with
*complementary* guards on a real scalar — privatization needs symbolic
analysis (the real comparison), IF-condition analysis (the guards), and
interprocedural propagation: T1+T2+T3, matching Table 1.
"""

from .registry import Kernel, register

SOURCE = """
      PROGRAM oceanp
      REAL FIELD(8000), OUT(8000)
      INTEGER nmlx, im, j, m
      nmlx = 16
      im = 64
      DO j = 1, 8000
        FIELD(j) = 0.125 * j
      ENDDO
      call ocean(FIELD, OUT, nmlx, im)
C  --- barotropic solver (dominant serial phase) ---
      DO j = 1, 8000
        DO m = 1, 5
          FIELD(j) = FIELD(j) * 0.9 + OUT(j) * 0.1 + 0.01 * m
        ENDDO
      ENDDO
      END

      SUBROUTINE ocean(FIELD, OUT, nmlx, im)
      REAL FIELD(8000), OUT(8000)
      INTEGER nmlx, im
      REAL CWORK(4096), CWORK2(4096)
      REAL xm
      INTEGER j
C  --- forward transform pass ---
      DO 270 j = 1, nmlx
        xm = FIELD(j)
        call ftrvmt(CWORK, xm, im)
        call scopy(CWORK, OUT, xm, im, j)
 270  CONTINUE
C  --- cross-spectral pass (two work buffers) ---
      DO 480 j = 1, nmlx
        xm = FIELD(j) * 0.5
        call ftrvmt(CWORK, xm, im)
        call ftrvmt(CWORK2, xm, im)
        call sblend(CWORK, CWORK2, OUT, xm, im, j)
 480  CONTINUE
C  --- inverse transform pass ---
      DO 500 j = 1, nmlx
        xm = OUT(j)
        call ftrvmt(CWORK, xm, im)
        call scopy(CWORK, FIELD, xm, im, j)
 500  CONTINUE
      END

      SUBROUTINE ftrvmt(W, x, im)
      REAL W(4096), x
      INTEGER im, k
      IF (x .GT. 1000000.0) RETURN
      DO k = 1, im
        W(k) = x + 0.25 * k
      ENDDO
      END

      SUBROUTINE scopy(W, DST, x, im, jcol)
      REAL W(4096), DST(8000), x
      INTEGER im, jcol, k
      REAL s
      IF (x .GT. 1000000.0) RETURN
      s = 0.0
      DO k = 1, im
        s = s + W(k)
      ENDDO
      DST(jcol) = s
      END

      SUBROUTINE sblend(W, W2, DST, x, im, jcol)
      REAL W(4096), W2(4096), DST(8000), x
      INTEGER im, jcol, k
      REAL s
      IF (x .GT. 1000000.0) RETURN
      s = 0.0
      DO k = 1, im
        s = s + W(k) * W2(k)
      ENDDO
      DST(jcol) = s
      END
"""

OCEAN_270 = register(
    Kernel(
        program="OCEAN",
        routine="ocean",
        loop_label=270,
        source=SOURCE,
        privatizable=("cwork",),
        techniques=("T1", "T2", "T3"),
        paper_speedup=8.0,
        paper_pct_seq=3.0,
        sizes={"nmlx": 16, "im": 64},
    )
)

OCEAN_480 = register(
    Kernel(
        program="OCEAN",
        routine="ocean",
        loop_label=480,
        source=SOURCE,
        privatizable=("cwork", "cwork2"),
        techniques=("T1", "T2", "T3"),
        paper_speedup=6.1,
        paper_pct_seq=4.0,
        sizes={"nmlx": 16, "im": 64},
    )
)

OCEAN_500 = register(
    Kernel(
        program="OCEAN",
        routine="ocean",
        loop_label=500,
        source=SOURCE,
        privatizable=("cwork",),
        techniques=("T1", "T2", "T3"),
        paper_speedup=6.5,
        paper_pct_seq=3.0,
        sizes={"nmlx": 16, "im": 64},
    )
)
