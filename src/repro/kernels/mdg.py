"""MDG — routines ``interf`` (loop 1000) and ``poteng`` (loop 2000).

``interf/1000`` is the paper's hardest case: six work arrays privatize
(RS, FF, GG, XL, YL, ZL — needing symbolic bounds, IF-condition guards,
and interprocedural summaries), while ``RL`` reproduces Figure 1(a): its
write is guarded by a condition on an *array element* (outside the
implementation's predicate language, section 5.2), so it is not
automatically privatized — exactly Table 2's single "no" entry.

``poteng/2000`` privatizes five work arrays with constant bounds through
calls: interprocedural analysis only (T3).
"""

from .registry import Kernel, register

SOURCE = """
      PROGRAM mdg
      REAL VM(4000), ENR(2)
      INTEGER nmol1, natmo, i
      REAL cut2, epot
      LOGICAL sw
      nmol1 = 170
      natmo = 9
      cut2 = 100.0
      sw = .FALSE.
C  --- setup phase ---
      DO i = 1, 1000
        VM(i) = 0.25 * i
      ENDDO
      call interf(VM, ENR, nmol1, natmo, 60, cut2, sw)
      call poteng(VM, ENR, 12)
      END

      SUBROUTINE interf(VM, ENR, nmol1, natmo, ig, cut2, sw)
      REAL VM(4000), ENR(2), cut2
      INTEGER nmol1, natmo, ig
      LOGICAL sw
      REAL RS(64), FF(64), GG(64), XL(64), YL(64), ZL(64), RL(64)
      REAL ttemp, fsum
      INTEGER i, k, kc
      DO 1000 i = 1, nmol1
        call getdis(XL, YL, ZL, VM, natmo, i)
C  --- Figure 1(a) body: RS drives conditional writes of RL ---
        kc = 0
        DO k = 1, 9
          RS(k) = XL(k) + YL(k) + ZL(k)
          IF (RS(k) .GT. cut2) kc = kc + 1
        ENDDO
        DO k = 2, 5
          IF (RS(k+4) .GT. cut2) GOTO 7
          RL(k+4) = RS(k)
 7      ENDDO
        IF (kc .NE. 0) GOTO 8
        DO k = 11, 14
          ttemp = 2.0 * RL(k-5)
          ENR(1) = ENR(1) + ttemp
        ENDDO
 8      CONTINUE
C  --- symbolic-bound work arrays ---
        DO k = 1, natmo
          FF(k) = XL(k) * YL(k) - ZL(k)
        ENDDO
C  --- Figure 1(b) pattern on GG (loop-invariant switch sw) ---
        DO k = 1, natmo
          GG(k) = FF(k) + 1.0
        ENDDO
        IF (.NOT. sw) THEN
          GG(ig) = cut2
        ENDIF
        fsum = 0.0
        DO k = 1, natmo
          fsum = fsum + FF(k) + GG(k) + GG(ig)
        ENDDO
        ENR(2) = ENR(2) + fsum
 1000 CONTINUE
      END

      SUBROUTINE getdis(X, Y, Z, VM, natmo, im)
      REAL X(64), Y(64), Z(64), VM(4000)
      INTEGER natmo, im, k
      DO k = 1, natmo
        X(k) = VM(im) + 0.5 * k
        Y(k) = VM(im) - 0.5 * k
        Z(k) = X(k) * Y(k)
      ENDDO
      END

      SUBROUTINE poteng(VM, ENR, nmol)
      REAL VM(4000), ENR(2)
      INTEGER nmol
      REAL RS(14), RL(14), XL(14), YL(14), ZL(14)
      REAL epot
      INTEGER i, k
      epot = 0.0
      DO 2000 i = 1, nmol
        call vects(XL, YL, ZL, VM, i)
        call dists(RS, RL, XL, YL, ZL)
        DO k = 1, 14
          epot = epot + RS(k) + RL(k)
        ENDDO
 2000 CONTINUE
      ENR(2) = ENR(2) + epot
      END

      SUBROUTINE vects(X, Y, Z, VM, im)
      REAL X(14), Y(14), Z(14), VM(4000)
      INTEGER im, k
      DO k = 1, 14
        X(k) = VM(im) + k
        Y(k) = VM(im) - k
        Z(k) = X(k) + Y(k)
      ENDDO
      END

      SUBROUTINE dists(RS, RL, X, Y, Z)
      REAL RS(14), RL(14), X(14), Y(14), Z(14)
      INTEGER k
      DO k = 1, 14
        RS(k) = X(k) * X(k) + Y(k) * Y(k)
        RL(k) = RS(k) + Z(k) * Z(k)
      ENDDO
      END
"""

INTERF_1000 = register(
    Kernel(
        program="MDG",
        routine="interf",
        loop_label=1000,
        source=SOURCE,
        privatizable=("rs", "ff", "gg", "xl", "yl", "zl"),
        not_privatizable=("rl",),
        techniques=("T1", "T2", "T3"),
        paper_speedup=6.0,
        paper_pct_seq=90.0,
        sizes={"nmol1": 170, "natmo": 9, "nmol": 12},
    )
)

POTENG_2000 = register(
    Kernel(
        program="MDG",
        routine="poteng",
        loop_label=2000,
        source=SOURCE,
        privatizable=("rs", "rl", "xl", "yl", "zl"),
        techniques=("T3",),
        paper_speedup=5.2,
        paper_pct_seq=8.0,
        sizes={"nmol1": 170, "natmo": 9, "nmol": 12},
    )
)
