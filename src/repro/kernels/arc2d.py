"""ARC2D — routines ``filerx`` (loop 15), ``filery`` (loop 39),
``stepfx`` (loop 300), ``stepfy`` (loop 420).

* ``filerx/15`` is Figure 1(b) verbatim: the WORK array's extra write is
  guarded by a loop-invariant condition — T1 (symbolic window bounds) and
  T2 (the invariant guard), no calls.
* ``filery/39`` is the same filter without the conditional write: T1 only.
* ``stepfx/300`` / ``stepfy/420`` fill WORK inside one callee and consume
  it inside another with symbolic extents: T1 and T3, no IF conditions —
  exactly Table 1's unusual "T2 = No" interprocedural rows.

The paper's speedups for ARC2D are estimates from the maximal number of
parallel iterations (its note 1); ours come from the same machine model
as the rest.
"""

from .registry import Kernel, register

SOURCE = """
      PROGRAM arc2d
      REAL Q(20000), RES(2000)
      INTEGER jdim, kdim, jlow, jup, jmax, j
      LOGICAL prd
      jdim = 100
      kdim = 80
      jlow = 2
      jup = 440
      jmax = 500
      prd = .FALSE.
      DO j = 1, 5600
        Q(j) = 0.01 * j
        Q(j) = Q(j) * Q(j) + 0.5
      ENDDO
      call filerx(Q, RES, jlow, jup, jmax, prd, 4)
      call filery(Q, RES, jlow, jup, 4)
      call stepfx(Q, RES, 1050, 3)
      call stepfy(Q, RES, 620, 3)
      END

      SUBROUTINE filerx(Q, RES, jlow, jup, jmax, prd, kfil)
      REAL Q(20000), RES(2000)
      INTEGER jlow, jup, jmax, kfil
      LOGICAL prd
      REAL WORK(2000)
      REAL acc
      INTEGER k, j
      DO 15 k = 1, kfil
        DO j = jlow, jup
          WORK(j) = Q(j) * 0.5 + Q(j+1) * 0.25
        ENDDO
        IF (.NOT. prd) THEN
          WORK(jmax) = Q(jmax)
        ENDIF
        acc = 0.0
        DO j = jlow, jup
          acc = acc + WORK(j) + WORK(jmax)
        ENDDO
        RES(k) = acc
 15   CONTINUE
      END

      SUBROUTINE filery(Q, RES, jlow, jup, kfil)
      REAL Q(20000), RES(2000)
      INTEGER jlow, jup, kfil
      REAL WORK(2000)
      REAL acc
      INTEGER k, j
      DO 39 k = 1, kfil
        DO j = jlow, jup
          WORK(j) = Q(j) - Q(j+1)
        ENDDO
        acc = 0.0
        DO j = jlow, jup
          acc = acc + WORK(j) * WORK(j)
        ENDDO
        RES(k) = acc + RES(k)
 39   CONTINUE
      END

      SUBROUTINE stepfx(Q, RES, jdim, kstp)
      REAL Q(20000), RES(2000)
      INTEGER jdim, kstp
      REAL WORK(2000)
      INTEGER k
      DO 300 k = 1, kstp
        call xfilt(WORK, Q, jdim, k)
        call xsum(WORK, RES, jdim, k)
 300  CONTINUE
      END

      SUBROUTINE stepfy(Q, RES, jdm2, kstp)
      REAL Q(20000), RES(2000)
      INTEGER jdm2, kstp
      REAL WORK(2000)
      INTEGER k
      DO 420 k = 1, kstp
        call yfilt(WORK, Q, jdm2, k)
        call ysum(WORK, RES, jdm2, k)
 420  CONTINUE
      END

      SUBROUTINE xfilt(W, Q, jdim, krow)
      REAL W(2000), Q(20000)
      INTEGER jdim, krow, j
      DO j = 1, jdim
        W(j) = Q(j) + 0.125 * krow
      ENDDO
      END

      SUBROUTINE yfilt(W, Q, jdm2, krow)
      REAL W(2000), Q(20000)
      INTEGER jdm2, krow, j
      DO j = 1, jdm2
        W(j) = Q(j) - 0.125 * krow
      ENDDO
      END

      SUBROUTINE xsum(W, RES, jdim, krow)
      REAL W(2000), RES(2000)
      INTEGER jdim, krow, j
      REAL s
      s = 0.0
      DO j = 1, jdim
        s = s + W(j)
      ENDDO
      RES(krow) = s
      END

      SUBROUTINE ysum(W, RES, jdm2, krow)
      REAL W(2000), RES(2000)
      INTEGER jdm2, krow, j
      REAL s
      s = 0.0
      DO j = 1, jdm2
        s = s + W(j) * W(j)
      ENDDO
      RES(krow) = RES(krow) + s
      END
"""

FILERX_15 = register(
    Kernel(
        program="ARC2D",
        routine="filerx",
        loop_label=15,
        source=SOURCE,
        privatizable=("work",),
        techniques=("T1", "T2"),
        paper_speedup=4.0,
        paper_pct_seq=7.0,
        sizes={"jdim": 1050, "jdm2": 620, "kfil": 4, "kstp": 3, "jlow": 2, "jup": 170, "jmax": 500},
        speedup_estimated=True,
    )
)

FILERY_39 = register(
    Kernel(
        program="ARC2D",
        routine="filery",
        loop_label=39,
        source=SOURCE,
        privatizable=("work",),
        techniques=("T1",),
        paper_speedup=4.0,
        paper_pct_seq=7.0,
        sizes={"jdim": 1050, "jdm2": 620, "kfil": 4, "kstp": 3, "jlow": 2, "jup": 170, "jmax": 500},
        speedup_estimated=True,
    )
)

STEPFX_300 = register(
    Kernel(
        program="ARC2D",
        routine="stepfx",
        loop_label=300,
        source=SOURCE,
        privatizable=("work",),
        techniques=("T1", "T3"),
        paper_speedup=3.0,
        paper_pct_seq=21.0,
        sizes={"jdim": 1050, "jdm2": 620, "kfil": 4, "kstp": 3, "jlow": 2, "jup": 170, "jmax": 500},
        speedup_estimated=True,
    )
)

STEPFY_420 = register(
    Kernel(
        program="ARC2D",
        routine="stepfy",
        loop_label=420,
        source=SOURCE,
        privatizable=("work",),
        techniques=("T1", "T3"),
        paper_speedup=3.0,
        paper_pct_seq=16.0,
        sizes={"jdim": 1050, "jdm2": 620, "kfil": 4, "kstp": 3, "jlow": 2, "jup": 170, "jmax": 500},
        speedup_estimated=True,
    )
)
