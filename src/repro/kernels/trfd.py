"""TRFD — routine ``olda``, loops 100 and 300.

Both loops privatize work arrays whose written regions have *symbolic*
bounds (``num``, derived from the molecular basis size): purely
intraprocedural, no IF conditions — symbolic analysis (T1) alone decides
them, matching Table 1 (T1 Yes, T2/T3 No).  These are the paper's biggest
wins (speedups 16.4 and 12.3: large trip counts, vectorizable bodies).
"""

from .registry import Kernel, register

SOURCE = """
      PROGRAM trfd
      REAL X(40000), V(40000)
      INTEGER num, nrs, i
      num = 40
      nrs = 820
      DO i = 1, 40000
        X(i) = 0.001 * i
        V(i) = 0.002 * i
      ENDDO
      call olda(X, V, num, nrs)
      END

      SUBROUTINE olda(X, V, num, nrs)
      REAL X(40000), V(40000)
      INTEGER num, nrs
      REAL XRSIQ(2000), XIJ(2000), XIJKS(2000), XKL(2000)
      INTEGER mrs, mq, mi, mk, ml
      REAL xval
C  --- first integral transformation pass ---
      DO 100 mrs = 1, nrs
        xval = X(mrs)
        DO mq = 1, num
          XRSIQ(mq) = xval * mq + V(mrs)
        ENDDO
        DO mi = 1, num
          XIJ(mi) = XRSIQ(mi) * 2.0 + XRSIQ(num)
        ENDDO
        DO mi = 1, num
          XIJ(mi) = XIJ(mi) * XIJ(mi) + XRSIQ(mi) * 0.5
        ENDDO
        DO mi = 1, num
          XRSIQ(mi) = XIJ(mi) - XRSIQ(mi) * 0.25
        ENDDO
        DO mi = 1, num
          X(mrs) = X(mrs) + XIJ(mi) * XIJ(mi) + XRSIQ(mi)
        ENDDO
 100  CONTINUE
C  --- second integral transformation pass ---
      DO 300 mk = 1, nrs
        DO ml = 1, num
          XIJKS(ml) = V(mk) * ml
        ENDDO
        DO ml = 1, num
          XKL(ml) = XIJKS(ml) + XIJKS(1)
        ENDDO
        DO ml = 1, num
          V(mk) = V(mk) + XKL(ml)
        ENDDO
 300  CONTINUE
      END
"""

OLDA_100 = register(
    Kernel(
        program="TRFD",
        routine="olda",
        loop_label=100,
        source=SOURCE,
        privatizable=("xrsiq", "xij"),
        techniques=("T1",),
        paper_speedup=16.4,
        paper_pct_seq=69.0,
        sizes={"num": 40, "nrs": 820},
    )
)

OLDA_300 = register(
    Kernel(
        program="TRFD",
        routine="olda",
        loop_label=300,
        source=SOURCE,
        privatizable=("xijks", "xkl"),
        techniques=("T1",),
        paper_speedup=12.3,
        paper_pct_seq=29.0,
        sizes={"num": 40, "nrs": 820},
    )
)
