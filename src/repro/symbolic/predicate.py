"""Guard predicates in ordered conjunctive normal form (paper section 5.2).

A :class:`Predicate` is either ``TRUE``, ``FALSE``, ``UNKNOWN`` (the paper's
unknown guard, written Δ), or a conjunction of :class:`Disjunction` clauses,
each a set of atoms (:class:`~repro.symbolic.relation.Relation` or
:class:`~repro.symbolic.relation.BoolAtom`).

The pairwise simplifications of the paper's "limited simplifier" — the
truth value of the conjunction/disjunction of two relational expressions,
subsumption between two disjunctions — happen eagerly at construction time.
Operations whose CNF result would exceed the complexity caps degrade to
``UNKNOWN`` exactly as the paper marks over-complex predicates unknown.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterable, Mapping, Optional

from ..perf.profiler import MISS, BoundedCache
from .expr import SymExpr
from .relation import Atom, BoolAtom, Relation

#: complexity caps beyond which predicate operations degrade to UNKNOWN
MAX_CLAUSES = 80
MAX_ATOMS_PER_CLAUSE = 24

#: memo tables for the CNF-normalizing logical connectives — conj/disj
#: redo pairwise simplification from scratch on every call, and guard
#: algebra in the region layers conjoins the same few predicates over
#: and over; keys are the (hashable) operand predicates themselves
_CONJ_CACHE = BoundedCache("predicate.conj", maxsize=8192)
_DISJ_CACHE = BoundedCache("predicate.disj", maxsize=8192)
_NEG_CACHE = BoundedCache("predicate.negate", maxsize=8192)


class _Kind(enum.Enum):
    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"
    CNF = "cnf"


class Disjunction:
    """One CNF clause: a disjunction of atoms, simplified pairwise."""

    __slots__ = ("atoms", "always_true", "_hash")

    def __init__(self, atoms: Iterable[Atom]) -> None:
        kept: list[Atom] = []
        always_true = False
        for atom in atoms:
            t = atom.truth()
            if t is True:
                always_true = True
                break
            if t is False:
                continue
            kept.append(atom)
        if not always_true:
            kept = self._prune(kept)
            always_true = self._is_tautology(kept)
        self.always_true = always_true
        self.atoms: frozenset[Atom] = frozenset() if always_true else frozenset(kept)
        self._hash = hash((self.always_true, self.atoms))

    @staticmethod
    def _prune(atoms: list[Atom]) -> list[Atom]:
        """Drop atoms absorbed by weaker ones: if a => b then a OR b == b."""
        unique = list(dict.fromkeys(atoms))
        dropped: set[int] = set()
        for i, a in enumerate(unique):
            if i in dropped:
                continue
            for j, b in enumerate(unique):
                if i == j or j in dropped:
                    continue
                if a.implies(b) is True:
                    dropped.add(i)
                    break
        return [a for i, a in enumerate(unique) if i not in dropped]

    @staticmethod
    def _is_tautology(atoms: list[Atom]) -> bool:
        """Pairwise tautology: (not a) => b means a OR b covers everything."""
        for a, b in itertools.combinations(atoms, 2):
            if a.negate().implies(b) is True or b.negate().implies(a) is True:
                return True
        return False

    def is_false(self) -> bool:
        """True for the unsatisfiable empty clause."""
        return not self.always_true and not self.atoms

    def is_unit(self) -> bool:
        """True when the clause holds exactly one atom."""
        return len(self.atoms) == 1

    def unit_atom(self) -> Atom:
        """The single atom of a unit clause."""
        (atom,) = self.atoms
        return atom

    def subsumes(self, other: "Disjunction") -> bool:
        """``self => other`` clause-wise: every atom of self implies some
        atom of other (so any model of self is a model of other)."""
        if other.always_true:
            return True
        if self.always_true:
            return False
        return all(
            any(a.implies(b) is True for b in other.atoms) for a in self.atoms
        )

    def without_atoms(self, gone: set[Atom]) -> "Disjunction":
        """The clause with the given atoms removed."""
        return Disjunction(a for a in self.atoms if a not in gone)

    def substitute(self, bindings: Mapping[str, SymExpr]) -> Optional["Disjunction"]:
        """``None`` signals an unrepresentable result (a logical variable
        bound to a non-variable value) — the predicate degrades to Δ."""
        if self.always_true:
            return self
        out = []
        for a in self.atoms:
            replaced = a.substitute(bindings)
            if replaced is None:
                return None
            out.append(replaced)
        return Disjunction(out)

    def rename(self, mapping: Mapping[str, str]) -> "Disjunction":
        """Variable renaming over all atoms."""
        if self.always_true:
            return self
        return Disjunction(a.rename(mapping) for a in self.atoms)

    def free_vars(self) -> frozenset[str]:
        """Variables occurring in any atom."""
        out: set[str] = set()
        for a in self.atoms:
            out |= a.free_vars()
        return frozenset(out)

    def evaluate(self, env: Mapping[str, int]) -> bool:
        """Concrete truth value under an environment."""
        return self.always_true or any(a.evaluate(env) for a in self.atoms)

    def sorted_atoms(self) -> list[Atom]:
        """The atoms in canonical display order."""
        return sorted(self.atoms, key=lambda a: a.sort_key())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Disjunction)
            and self.always_true == other.always_true
            and self.atoms == other.atoms
        )

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.atoms)

    def __repr__(self) -> str:
        return f"Disjunction<{self}>"

    def __str__(self) -> str:
        if self.always_true:
            return "True"
        if not self.atoms:
            return "False"
        return " .OR. ".join(str(a) for a in self.sorted_atoms())

    def sort_key(self) -> tuple:
        """Canonical ordering key."""
        return tuple(a.sort_key() for a in self.sorted_atoms())


class Predicate:
    """A guard predicate: TRUE / FALSE / UNKNOWN (Δ) / a CNF clause set."""

    __slots__ = ("_kind", "clauses", "_hash")

    def __init__(self, kind: _Kind, clauses: frozenset[Disjunction] = frozenset()):
        self._kind = kind
        self.clauses = clauses
        self._hash = hash((kind, clauses))

    # -- constructors ----------------------------------------------------------

    @classmethod
    def true(cls) -> "Predicate":
        return _TRUE

    @classmethod
    def false(cls) -> "Predicate":
        return _FALSE

    @classmethod
    def unknown(cls) -> "Predicate":
        return _UNKNOWN

    @classmethod
    def of_atom(cls, atom: Atom) -> "Predicate":
        t = atom.truth()
        if t is True:
            return _TRUE
        if t is False:
            return _FALSE
        return cls.of_clauses([Disjunction([atom])])

    @classmethod
    def of_clauses(cls, clauses: Iterable[Disjunction]) -> "Predicate":
        kept = _simplify_cnf(list(clauses))
        if kept is None:
            return _FALSE
        if not kept:
            return _TRUE
        if len(kept) > MAX_CLAUSES or any(
            len(c) > MAX_ATOMS_PER_CLAUSE for c in kept
        ):
            return _UNKNOWN
        return cls(_Kind.CNF, frozenset(kept))

    # -- convenience relational constructors -------------------------------------

    @classmethod
    def le(cls, a, b, integer: bool = True) -> "Predicate":
        return cls.of_atom(Relation.le(a, b, integer))

    @classmethod
    def lt(cls, a, b, integer: bool = True) -> "Predicate":
        return cls.of_atom(Relation.lt(a, b, integer))

    @classmethod
    def ge(cls, a, b, integer: bool = True) -> "Predicate":
        return cls.of_atom(Relation.ge(a, b, integer))

    @classmethod
    def gt(cls, a, b, integer: bool = True) -> "Predicate":
        return cls.of_atom(Relation.gt(a, b, integer))

    @classmethod
    def eq(cls, a, b, integer: bool = True) -> "Predicate":
        return cls.of_atom(Relation.eq(a, b, integer))

    @classmethod
    def ne(cls, a, b, integer: bool = True) -> "Predicate":
        return cls.of_atom(Relation.ne(a, b, integer))

    @classmethod
    def boolvar(cls, name: str, value: bool = True) -> "Predicate":
        return cls.of_atom(BoolAtom(name, value))

    # -- tests ----------------------------------------------------------------------

    def is_true(self) -> bool:
        """Is this the TRUE predicate?"""
        return self._kind is _Kind.TRUE

    def is_false(self) -> bool:
        """True for the unsatisfiable empty clause."""
        return self._kind is _Kind.FALSE

    def is_unknown(self) -> bool:
        """Is this the unknown predicate Δ?"""
        return self._kind is _Kind.UNKNOWN

    def is_cnf(self) -> bool:
        """Is this a genuine clause set (not a constant)?"""
        return self._kind is _Kind.CNF

    # -- logical operations --------------------------------------------------------

    def conj(self, other: "Predicate") -> "Predicate":
        """AND.  ``FALSE`` dominates; Δ AND P is Δ unless P is FALSE."""
        if self.is_false() or other.is_false():
            return _FALSE
        if self.is_true():
            return other
        if other.is_true():
            return self
        if self.is_unknown() or other.is_unknown():
            return _UNKNOWN
        key = (self, other)
        cached = _CONJ_CACHE.get(key)
        if cached is not MISS:
            return cached
        out = Predicate.of_clauses(list(self.clauses) + list(other.clauses))
        return _CONJ_CACHE.put(key, out)

    def disj(self, other: "Predicate") -> "Predicate":
        """OR.  ``TRUE`` dominates; Δ OR P is Δ unless P is TRUE."""
        if self.is_true() or other.is_true():
            return _TRUE
        if self.is_false():
            return other
        if other.is_false():
            return self
        if self.is_unknown() or other.is_unknown():
            return _UNKNOWN
        if len(self.clauses) * len(other.clauses) > MAX_CLAUSES:
            return _UNKNOWN
        key = (self, other)
        cached = _DISJ_CACHE.get(key)
        if cached is not MISS:
            return cached
        merged = [
            Disjunction(list(c1.atoms) + list(c2.atoms))
            for c1 in self.clauses
            for c2 in other.clauses
        ]
        return _DISJ_CACHE.put(key, Predicate.of_clauses(merged))

    def negate(self) -> "Predicate":
        """De Morgan negation, redistributed to CNF (Δ on blow-up)."""
        if self.is_true():
            return _FALSE
        if self.is_false():
            return _TRUE
        if self.is_unknown():
            return _UNKNOWN
        cached = _NEG_CACHE.get(self)
        if cached is not MISS:
            return cached
        # not(AND of clauses) = OR over clauses of (AND of negated atoms):
        # distribute to CNF by taking one atom from each clause.
        sizes = 1
        for c in self.clauses:
            sizes *= max(len(c), 1)
            if sizes > MAX_CLAUSES:
                return _UNKNOWN
        picks = [c.sorted_atoms() for c in self.clauses]
        new_clauses = [
            Disjunction(a.negate() for a in combo)
            for combo in itertools.product(*picks)
        ]
        return _NEG_CACHE.put(self, Predicate.of_clauses(new_clauses))

    def __and__(self, other: "Predicate") -> "Predicate":
        return self.conj(other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return self.disj(other)

    def __invert__(self) -> "Predicate":
        return self.negate()

    def implies(self, other: "Predicate") -> Optional[bool]:
        """Syntactic implication test; ``None`` when it cannot tell."""
        if self.is_false() or other.is_true():
            return True
        if self.is_unknown() or other.is_unknown():
            return None
        if self.is_true():
            # TRUE => other only if other is TRUE (handled) — cannot tell
            # otherwise unless other simplifies; report None/False by kind.
            return None if other.is_cnf() else other.is_true()
        if other.is_false():
            return None  # would require proving self unsatisfiable
        return (
            all(
                any(cp.subsumes(cq) for cp in self.clauses)
                for cq in other.clauses
            )
            or None
        )

    # -- data plumbing ------------------------------------------------------------------

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "Predicate":
        """Value substitution over every clause (Δ if unrepresentable)."""
        if not self.is_cnf():
            return self
        new_clauses = []
        for clause in self.clauses:
            replaced = clause.substitute(bindings)
            if replaced is None:
                return _UNKNOWN
            new_clauses.append(replaced)
        return Predicate.of_clauses(new_clauses)

    def rename(self, mapping: Mapping[str, str]) -> "Predicate":
        """Variable renaming over all atoms."""
        if not self.is_cnf():
            return self
        return Predicate.of_clauses(c.rename(mapping) for c in self.clauses)

    def free_vars(self) -> frozenset[str]:
        """Variables occurring in any atom."""
        out: set[str] = set()
        for c in self.clauses:
            out |= c.free_vars()
        return frozenset(out)

    def contains(self, name: str) -> bool:
        """Does *name* occur free in the predicate?"""
        return name in self.free_vars()

    def evaluate(self, env: Mapping[str, int]) -> bool:
        """Concrete truth under *env*.  Raises on UNKNOWN: Δ has no value."""
        if self.is_true():
            return True
        if self.is_false():
            return False
        if self.is_unknown():
            raise ValueError("cannot evaluate an unknown predicate (Delta)")
        return all(c.evaluate(env) for c in self.clauses)

    def unit_atoms(self) -> list[Atom]:
        """Atoms of all unit clauses — the conjunction context they define."""
        if not self.is_cnf():
            return []
        return [c.unit_atom() for c in self.clauses if c.is_unit()]

    def atom_count(self) -> int:
        """Total number of atoms across the clauses."""
        return sum(len(c) for c in self.clauses)

    # -- identity ---------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Predicate)
            and self._kind is other._kind
            and self.clauses == other.clauses
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Predicate<{self}>"

    def __str__(self) -> str:
        if self.is_true():
            return "True"
        if self.is_false():
            return "False"
        if self.is_unknown():
            return "Delta"
        parts = sorted((str(c) for c in self.clauses))
        if len(parts) == 1:
            return parts[0]
        return " .AND. ".join(f"({p})" if " .OR. " in p else p for p in parts)


def _simplify_cnf(clauses: list[Disjunction]) -> Optional[list[Disjunction]]:
    """Simplify a clause list; ``None`` means provably FALSE, ``[]`` TRUE.

    Implements the paper's pairwise strategy: unit-vs-atom propagation,
    unit-vs-unit contradiction, and clause subsumption, iterated to a
    (bounded) fixpoint.
    """
    work = [c for c in clauses if not c.always_true]
    if any(c.is_false() for c in work):
        return None
    for _ in range(8):  # bounded fixpoint
        changed = False
        units = [c.unit_atom() for c in work if c.is_unit()]
        # unit-vs-unit contradiction
        for a, b in itertools.combinations(units, 2):
            if a.conflicts(b):
                return None
        # unit propagation into other clauses
        new_work: list[Disjunction] = []
        for clause in work:
            if clause.is_unit():
                new_work.append(clause)
                continue
            atoms = list(clause.atoms)
            satisfied = False
            pruned: list[Atom] = []
            for atom in atoms:
                if any(u.implies(atom) is True for u in units):
                    satisfied = True  # clause guaranteed by a unit
                    break
                if any(u.conflicts(atom) for u in units):
                    changed = True
                    continue  # atom can never hold; drop it
                pruned.append(atom)
            if satisfied:
                changed = True
                continue
            if len(pruned) != len(atoms):
                clause = Disjunction(pruned)
                if clause.always_true:
                    changed = True
                    continue
            if clause.is_false():
                return None
            new_work.append(clause)
        work = new_work
        # subsumption: drop clause q when some other clause p subsumes it
        kept: list[Disjunction] = []
        removed: set[int] = set()
        for i, q in enumerate(work):
            drop = False
            for j, p in enumerate(work):
                if i == j or j in removed:
                    continue
                if p.subsumes(q) and not (q.subsumes(p) and j > i):
                    drop = True
                    break
            if drop:
                removed.add(i)
                changed = True
            else:
                kept.append(q)
        work = kept
        if not changed:
            break
    return work


_TRUE = Predicate(_Kind.TRUE)
_FALSE = Predicate(_Kind.FALSE)
_UNKNOWN = Predicate(_Kind.UNKNOWN)

TRUE = _TRUE
FALSE = _FALSE
UNKNOWN = _UNKNOWN
