"""Concrete evaluation environments.

Used by the test oracles (enumerate a region concretely and compare with
the symbolic set algebra) and by the machine model (plug benchmark problem
sizes into symbolic trip counts).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Mapping

from ..errors import SymbolicError
from .expr import SymExpr
from .predicate import Predicate


class Env(Mapping[str, int]):
    """An immutable variable -> integer binding map.

    Logical variables are bound to 0 (false) / 1 (true).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, int] | None = None, **kw: int):
        merged = dict(values or {})
        merged.update(kw)
        self._values = {k: int(v) for k, v in merged.items()}

    def __getitem__(self, key: str) -> int:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def extend(self, **kw: int) -> "Env":
        """A new environment with extra/overridden bindings."""
        merged = dict(self._values)
        merged.update({k: int(v) for k, v in kw.items()})
        return Env(merged)

    def eval_expr(self, expr: SymExpr) -> int:
        """Evaluate an expression to an integer (raises if fractional)."""
        value = expr.evaluate(self)
        if isinstance(value, Fraction) and value.denominator != 1:
            raise SymbolicError(f"{expr} is not integer under {self._values}")
        return int(value)

    def eval_pred(self, pred: Predicate) -> bool:
        """Evaluate a predicate to a boolean."""
        return pred.evaluate(self)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Env({inner})"


def all_envs(names: Iterable[str], lo: int, hi: int) -> Iterator[Env]:
    """Every environment binding *names* to values in ``[lo, hi]``.

    Exponential — intended for small exhaustive test oracles only.
    """
    names = list(names)
    if not names:
        yield Env()
        return
    head, *tail = names
    for value in range(lo, hi + 1):
        for rest in all_envs(tail, lo, hi):
            yield rest.extend(**{head: value})
