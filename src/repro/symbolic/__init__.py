"""Symbolic math substrate: expressions, relations, CNF predicates.

This package is the paper's "general expression operation library" and
"predicate operation library" (Figure 2): integer symbolic expressions
normalized to an ordered sum of products, relational atoms ``(e op 0)``,
guard predicates in conjunctive normal form with a pairwise simplifier,
and a Fourier-Motzkin refutation engine used as the stronger fallback.
"""

from .compare import (
    Comparer,
    predicate_implies,
    predicate_unsat,
    predicate_unsat_many,
)
from .environment import Env, all_envs
from .expr import ONE, ZERO, ExprLike, SymExpr, sym
from .fourier_motzkin import definitely_unsat, definitely_unsat_many, implied_by
from .predicate import FALSE, TRUE, UNKNOWN, Disjunction, Predicate
from .relation import Atom, BoolAtom, Relation, RelOp
from .terms import Monomial

__all__ = [
    "Atom",
    "BoolAtom",
    "Comparer",
    "Disjunction",
    "Env",
    "ExprLike",
    "FALSE",
    "Monomial",
    "ONE",
    "Predicate",
    "Relation",
    "RelOp",
    "SymExpr",
    "TRUE",
    "UNKNOWN",
    "ZERO",
    "all_envs",
    "definitely_unsat",
    "definitely_unsat_many",
    "implied_by",
    "predicate_implies",
    "predicate_unsat",
    "predicate_unsat_many",
    "sym",
]
