"""Fourier–Motzkin elimination over linear atom conjunctions.

The paper cites Fourier–Motzkin pairwise elimination as the general (most
precise, most expensive) machinery behind constraint-based array analyses
and suggests it as the stronger fallback for its limited pairwise predicate
simplifier.  This module provides exactly that fallback: a decision
procedure for *unsatisfiability* of a conjunction of relational atoms.

Nonlinear monomials are linearized by treating each distinct monomial as an
independent fresh variable.  Linearization only ever adds models, therefore:

* ``definitely_unsat(atoms) is True``  — sound: the conjunction has no
  solution (in fact no rational solution of the linearization).
* a ``False`` result means "could not prove unsatisfiable", not
  "satisfiable".

Strict inequalities (real-typed ``<``) are tracked with a strictness bit;
a derived constant constraint ``c <= 0`` is infeasible when ``c > 0``, or
``c >= 0`` if any contributing constraint was strict.

Disequalities (``e != 0``) are handled by case-splitting (into
``e <= -1`` / ``e >= 1`` for integer atoms, ``e < 0`` / ``e > 0`` for real
ones) up to a small bound, after which they are dropped — dropping only
weakens the system, so a True result remains trustworthy.

Backends.  The hot path runs on the vectorized matrix core
(:mod:`repro.symbolic.matrix`): int64 ndarrays under numpy, exact
arbitrary-precision row lists otherwise.  This module keeps the original
object-layer eliminator as the *reference oracle*: select it outright
with ``PANORAMA_CONSTRAINT_BACKEND=object``, or set ``PANORAMA_FM_ORACLE=1``
to run both on every query and raise on any disagreement.  Both paths use
the same pivot rule (min ``pos*neg``, ties to the smallest monomial sort
key) and hit the same effort caps at the same points, so verdicts —
including ``None`` bail-outs — are bit-identical.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Sequence

from ..perf.profiler import COUNTERS, MISS, BoundedCache
from ..resilience.budget import charge as _budget_charge
from . import matrix as _matrix
from .expr import SymExpr
from .relation import Atom, BoolAtom, Relation, RelOp

#: elimination effort caps
MAX_VARIABLES = 24
MAX_CONSTRAINTS = 600
MAX_NE_SPLITS = 3

#: frozen atom set → unsat verdict.  LRU-bounded: the old clear-when-full
#: dict dropped the entire working set at the worst moment (mid-analysis
#: of a large routine); eviction now sheds only the coldest entries.
_UNSAT_CACHE = BoundedCache("fm.unsat", maxsize=65536)
#: (frozen context atoms, conclusion) → implication verdict; avoids even
#: building the combined atom list on repeats
_IMPLIED_CACHE = BoundedCache("fm.implied_by", maxsize=65536)


class _Constraint:
    """``coeffs . vars + const <= 0`` (or ``< 0`` when strict)."""

    __slots__ = ("coeffs", "const", "strict")

    def __init__(
        self, coeffs: dict[object, Fraction], const: Fraction, strict: bool = False
    ) -> None:
        self.coeffs = {k: v for k, v in coeffs.items() if v}
        self.const = const
        self.strict = strict

    def is_constant(self) -> bool:
        return not self.coeffs

    def infeasible(self) -> bool:
        if not self.is_constant():
            return False
        return self.const > 0 or (self.strict and self.const >= 0)


def _to_constraint(expr: SymExpr, strict: bool = False) -> _Constraint:
    coeffs: dict[object, Fraction] = {}
    const = Fraction(0)
    for mono, coeff in expr.terms:
        if mono.is_unit():
            const += coeff
        else:
            # the monomial object itself is the linearized variable key
            coeffs[mono] = coeffs.get(mono, Fraction(0)) + coeff
    return _Constraint(coeffs, const, strict)


def _eliminate(constraints: list[_Constraint]) -> Optional[bool]:
    """Run FM elimination; True = infeasible, False = feasible (rationally),
    None = gave up (too large)."""
    work = list(constraints)
    while True:
        for c in work:
            if c.infeasible():
                return True
        work = [c for c in work if not c.is_constant()]
        if not work:
            return False
        # one pass tallies the positive/negative occurrences per variable;
        # the old per-candidate rescan was O(V*C) every round
        pos: dict[object, int] = {}
        neg: dict[object, int] = {}
        for c in work:
            for v, coeff in c.coeffs.items():
                if coeff > 0:
                    pos[v] = pos.get(v, 0) + 1
                    neg.setdefault(v, 0)
                else:
                    neg[v] = neg.get(v, 0) + 1
                    pos.setdefault(v, 0)
        if len(pos) > MAX_VARIABLES:
            COUNTERS.fm_var_limit_bailouts += 1
            return None
        if len(work) > MAX_CONSTRAINTS:
            COUNTERS.fm_constraint_limit_bailouts += 1
            return None

        # pivot: fewest pos*neg products, ties broken by the canonical
        # monomial order so every backend picks the same variable
        var = min(pos, key=lambda v: (pos[v] * neg[v], v.sort_key()))
        uppers = []  # coeff > 0: var bounded above
        lowers = []  # coeff < 0: var bounded below
        others = []
        for c in work:
            coeff = c.coeffs.get(var, Fraction(0))
            if coeff > 0:
                uppers.append(c)
            elif coeff < 0:
                lowers.append(c)
            else:
                others.append(c)
        # one eliminated pair = one budget step, so --budget-steps
        # degrades proportionally on dense systems
        _budget_charge(len(uppers) * len(lowers))
        new = others
        for up in uppers:
            for lo in lowers:
                a = up.coeffs[var]
                b = -lo.coeffs[var]
                # combine: b*up + a*lo eliminates var
                coeffs: dict[object, Fraction] = {}
                for k, v in up.coeffs.items():
                    coeffs[k] = coeffs.get(k, Fraction(0)) + b * v
                for k, v in lo.coeffs.items():
                    coeffs[k] = coeffs.get(k, Fraction(0)) + a * v
                const = b * up.const + a * lo.const
                c = _Constraint(coeffs, const, up.strict or lo.strict)
                if c.infeasible():
                    return True
                if not c.is_constant():
                    new.append(c)
        if len(new) > MAX_CONSTRAINTS:
            COUNTERS.fm_constraint_limit_bailouts += 1
            return None
        work = new


def _atoms_to_systems(
    atoms: Sequence[Relation], splits_left: int
) -> Iterable[list[_Constraint]]:
    """Expand EQ into two LE's and case-split NE's into alternative systems."""
    base: list[_Constraint] = []
    nes: list[Relation] = []
    for atom in atoms:
        if atom.op is RelOp.LE:
            base.append(_to_constraint(atom.expr))
        elif atom.op is RelOp.LT:
            base.append(_to_constraint(atom.expr, strict=True))
        elif atom.op is RelOp.EQ:
            base.append(_to_constraint(atom.expr))
            base.append(_to_constraint(-atom.expr))
        else:  # NE
            nes.append(atom)
    if len(nes) > splits_left:
        COUNTERS.fm_ne_splits_dropped += len(nes) - splits_left
    nes = nes[:splits_left]  # drop extras (weakens the system: still sound)
    systems = [base]
    for rel in nes:
        if rel.integer:
            lo = _to_constraint(rel.expr + 1)  # e <= -1
            hi = _to_constraint(-rel.expr + 1)  # e >= 1
        else:
            lo = _to_constraint(rel.expr, strict=True)  # e < 0
            hi = _to_constraint(-rel.expr, strict=True)  # e > 0
        systems = [s + [lo] for s in systems] + [s + [hi] for s in systems]
    return systems


def definitely_unsat(atoms: Iterable[Atom]) -> bool:
    """True only when the conjunction of *atoms* is provably unsatisfiable.

    Results are memoized on the atom set — the region operations issue the
    same queries many times during propagation.
    """
    key = frozenset(atoms)
    cached = _UNSAT_CACHE.get(key)
    if cached is not MISS:
        return cached
    return _UNSAT_CACHE.put(key, _definitely_unsat(key))


def definitely_unsat_many(atom_sets: Sequence[Iterable[Atom]]) -> List[bool]:
    """Batch form of :func:`definitely_unsat`.

    The dependence tests and region operations accumulate many atom
    systems per propagation step; submitting them together consults the
    memo once per distinct system and decides only the residue.
    """
    keys = [frozenset(atoms) for atoms in atom_sets]
    COUNTERS.fm_batched_queries += len(keys)
    out: list = [None] * len(keys)
    pending: dict[frozenset, list[int]] = {}
    for i, key in enumerate(keys):
        cached = _UNSAT_CACHE.get(key)
        if cached is not MISS:
            out[i] = cached
        else:
            pending.setdefault(key, []).append(i)
    for key, slots in pending.items():
        verdict = _UNSAT_CACHE.put(key, _definitely_unsat(key))
        for i in slots:
            out[i] = verdict
    return out


def _unsat_object(relations: list[Relation]) -> bool:
    """The reference object-layer decision: every case-split system must
    eliminate to infeasible."""
    for system in _atoms_to_systems(relations, MAX_NE_SPLITS):
        COUNTERS.fm_eliminations += 1
        if _eliminate(system) is not True:
            return False
    return True


def _definitely_unsat(atoms: frozenset) -> bool:
    relations: list[Relation] = []
    bools: dict[str, bool] = {}
    for atom in atoms:
        if isinstance(atom, BoolAtom):
            if atom.name in bools and bools[atom.name] != atom.value:
                return True
            bools[atom.name] = atom.value
        else:
            t = atom.truth()
            if t is False:
                return True
            if t is None:
                relations.append(atom)
    if not relations:
        return False
    if not _matrix.matrix_active():
        return _unsat_object(relations)
    verdict = _matrix.unsat_conjunction(
        relations, MAX_NE_SPLITS, MAX_VARIABLES, MAX_CONSTRAINTS
    )
    if _matrix.oracle_enabled():
        COUNTERS.fm_oracle_crosschecks += 1
        reference = _unsat_object(relations)
        if reference != verdict:
            raise AssertionError(
                f"constraint backend divergence: matrix[{_matrix.backend_name()}]"
                f"={verdict} object={reference} for {sorted(map(str, relations))}"
            )
    return verdict


def implied_by(context: Iterable[Atom], conclusion: Atom) -> bool:
    """True only when ``AND(context) => conclusion`` is provable.

    Checked as unsatisfiability of ``context AND NOT conclusion``.
    """
    ctx = context if isinstance(context, frozenset) else frozenset(context)
    key = (ctx, conclusion)
    cached = _IMPLIED_CACHE.get(key)
    if cached is not MISS:
        return cached
    return _IMPLIED_CACHE.put(
        key, definitely_unsat(list(ctx) + [conclusion.negate()])
    )
