"""Fourier–Motzkin elimination over linear atom conjunctions.

The paper cites Fourier–Motzkin pairwise elimination as the general (most
precise, most expensive) machinery behind constraint-based array analyses
and suggests it as the stronger fallback for its limited pairwise predicate
simplifier.  This module provides exactly that fallback: a decision
procedure for *unsatisfiability* of a conjunction of relational atoms.

Nonlinear monomials are linearized by treating each distinct monomial as an
independent fresh variable.  Linearization only ever adds models, therefore:

* ``definitely_unsat(atoms) is True``  — sound: the conjunction has no
  solution (in fact no rational solution of the linearization).
* a ``False`` result means "could not prove unsatisfiable", not
  "satisfiable".

Strict inequalities (real-typed ``<``) are tracked with a strictness bit;
a derived constant constraint ``c <= 0`` is infeasible when ``c > 0``, or
``c >= 0`` if any contributing constraint was strict.

Disequalities (``e != 0``) are handled by case-splitting (into
``e <= -1`` / ``e >= 1`` for integer atoms, ``e < 0`` / ``e > 0`` for real
ones) up to a small bound, after which they are dropped — dropping only
weakens the system, so a True result remains trustworthy.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..perf.profiler import COUNTERS, MISS, BoundedCache
from ..resilience.budget import charge as _budget_charge
from .expr import SymExpr
from .relation import Atom, BoolAtom, Relation, RelOp

#: elimination effort caps
MAX_VARIABLES = 24
MAX_CONSTRAINTS = 600
MAX_NE_SPLITS = 3

#: frozen atom set → unsat verdict.  LRU-bounded: the old clear-when-full
#: dict dropped the entire working set at the worst moment (mid-analysis
#: of a large routine); eviction now sheds only the coldest entries.
_UNSAT_CACHE = BoundedCache("fm.unsat", maxsize=65536)
#: (frozen context atoms, conclusion) → implication verdict; avoids even
#: building the combined atom list on repeats
_IMPLIED_CACHE = BoundedCache("fm.implied_by", maxsize=65536)


class _Constraint:
    """``coeffs . vars + const <= 0`` (or ``< 0`` when strict)."""

    __slots__ = ("coeffs", "const", "strict")

    def __init__(
        self, coeffs: dict[object, Fraction], const: Fraction, strict: bool = False
    ) -> None:
        self.coeffs = {k: v for k, v in coeffs.items() if v}
        self.const = const
        self.strict = strict

    def is_constant(self) -> bool:
        return not self.coeffs

    def infeasible(self) -> bool:
        if not self.is_constant():
            return False
        return self.const > 0 or (self.strict and self.const >= 0)


def _to_constraint(expr: SymExpr, strict: bool = False) -> _Constraint:
    coeffs: dict[object, Fraction] = {}
    const = Fraction(0)
    for mono, coeff in expr.terms:
        if mono.is_unit():
            const += coeff
        else:
            # the monomial object itself is the linearized variable key
            coeffs[mono] = coeffs.get(mono, Fraction(0)) + coeff
    return _Constraint(coeffs, const, strict)


def _eliminate(constraints: list[_Constraint]) -> Optional[bool]:
    """Run FM elimination; True = infeasible, False = feasible (rationally),
    None = gave up (too large)."""
    work = list(constraints)
    while True:
        for c in work:
            if c.infeasible():
                return True
        work = [c for c in work if not c.is_constant()]
        if not work:
            return False
        variables = {v for c in work for v in c.coeffs}
        if len(variables) > MAX_VARIABLES:
            COUNTERS.fm_var_limit_bailouts += 1
            return None
        if len(work) > MAX_CONSTRAINTS:
            COUNTERS.fm_constraint_limit_bailouts += 1
            return None
        # one elimination round is the FM unit of budgeted work
        _budget_charge(1)

        # choose the variable with the fewest pos*neg products
        def cost(v: object) -> int:
            pos = sum(1 for c in work if c.coeffs.get(v, 0) > 0)
            neg = sum(1 for c in work if c.coeffs.get(v, 0) < 0)
            return pos * neg

        var = min(variables, key=cost)
        uppers = []  # coeff > 0: var bounded above
        lowers = []  # coeff < 0: var bounded below
        others = []
        for c in work:
            coeff = c.coeffs.get(var, Fraction(0))
            if coeff > 0:
                uppers.append(c)
            elif coeff < 0:
                lowers.append(c)
            else:
                others.append(c)
        new = others
        for up in uppers:
            for lo in lowers:
                a = up.coeffs[var]
                b = -lo.coeffs[var]
                # combine: b*up + a*lo eliminates var
                coeffs: dict[object, Fraction] = {}
                for k, v in up.coeffs.items():
                    coeffs[k] = coeffs.get(k, Fraction(0)) + b * v
                for k, v in lo.coeffs.items():
                    coeffs[k] = coeffs.get(k, Fraction(0)) + a * v
                const = b * up.const + a * lo.const
                c = _Constraint(coeffs, const, up.strict or lo.strict)
                if c.infeasible():
                    return True
                if not c.is_constant():
                    new.append(c)
        if len(new) > MAX_CONSTRAINTS:
            COUNTERS.fm_constraint_limit_bailouts += 1
            return None
        work = new


def _atoms_to_systems(
    atoms: Sequence[Relation], splits_left: int
) -> Iterable[list[_Constraint]]:
    """Expand EQ into two LE's and case-split NE's into alternative systems."""
    base: list[_Constraint] = []
    nes: list[Relation] = []
    for atom in atoms:
        if atom.op is RelOp.LE:
            base.append(_to_constraint(atom.expr))
        elif atom.op is RelOp.LT:
            base.append(_to_constraint(atom.expr, strict=True))
        elif atom.op is RelOp.EQ:
            base.append(_to_constraint(atom.expr))
            base.append(_to_constraint(-atom.expr))
        else:  # NE
            nes.append(atom)
    if len(nes) > splits_left:
        COUNTERS.fm_ne_splits_dropped += len(nes) - splits_left
    nes = nes[:splits_left]  # drop extras (weakens the system: still sound)
    systems = [base]
    for rel in nes:
        if rel.integer:
            lo = _to_constraint(rel.expr + 1)  # e <= -1
            hi = _to_constraint(-rel.expr + 1)  # e >= 1
        else:
            lo = _to_constraint(rel.expr, strict=True)  # e < 0
            hi = _to_constraint(-rel.expr, strict=True)  # e > 0
        systems = [s + [lo] for s in systems] + [s + [hi] for s in systems]
    return systems


def definitely_unsat(atoms: Iterable[Atom]) -> bool:
    """True only when the conjunction of *atoms* is provably unsatisfiable.

    Results are memoized on the atom set — the region operations issue the
    same queries many times during propagation.
    """
    key = frozenset(atoms)
    cached = _UNSAT_CACHE.get(key)
    if cached is not MISS:
        return cached
    return _UNSAT_CACHE.put(key, _definitely_unsat(key))


def _definitely_unsat(atoms: frozenset) -> bool:
    relations: list[Relation] = []
    bools: dict[str, bool] = {}
    for atom in atoms:
        if isinstance(atom, BoolAtom):
            if atom.name in bools and bools[atom.name] != atom.value:
                return True
            bools[atom.name] = atom.value
        else:
            t = atom.truth()
            if t is False:
                return True
            if t is None:
                relations.append(atom)
    if not relations:
        return False
    for system in _atoms_to_systems(relations, MAX_NE_SPLITS):
        COUNTERS.fm_eliminations += 1
        if _eliminate(system) is not True:
            return False
    return True


def implied_by(context: Iterable[Atom], conclusion: Atom) -> bool:
    """True only when ``AND(context) => conclusion`` is provable.

    Checked as unsatisfiability of ``context AND NOT conclusion``.
    """
    ctx = context if isinstance(context, frozenset) else frozenset(context)
    key = (ctx, conclusion)
    cached = _IMPLIED_CACHE.get(key)
    if cached is not MISS:
        return cached
    return _IMPLIED_CACHE.put(
        key, definitely_unsat(list(ctx) + [conclusion.negate()])
    )
