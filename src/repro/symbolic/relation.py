"""Atomic predicates: relational expressions and logical variables.

The paper (section 5.2) represents each relational expression as
``(e op 0)`` with ``op`` one of ``<``, ``=``, ``!=`` — every other Fortran
relational operator is rewritten into these.  We keep four canonical kinds:

* ``LE``: ``e <= 0``
* ``LT``: ``e < 0``   (needed for *real*-typed conditions, where the
  integer rewriting ``e < 0  <=>  e + 1 <= 0`` is unsound)
* ``EQ``: ``e == 0``
* ``NE``: ``e != 0``

Each relation carries an ``integer`` flag: when True the free variables
range over integers and the usual integer tightenings apply (strict
inequalities are absorbed into ``LE``, gcd bounds are ceiling-tightened);
when False (some operand is REAL) only field-valid reasoning is used.
The paper's remark that "integer conditions are handled more thoroughly
than floating point ones" corresponds exactly to this flag.

Logical scalar variables appearing in IF conditions (like ``p`` in the
paper's Figure 1(b)) become :class:`BoolAtom` instances.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from functools import reduce
from math import gcd
from typing import Mapping, Optional, Union

from ..perf.profiler import MISS, BoundedCache
from .expr import ExprLike, SymExpr

#: canonical (expr, op, integer) triple → the interned instance
_INTERN = BoundedCache("relation.intern", maxsize=16384)
#: (self, other) → three-valued implication verdict.  The pairwise
#: simplifier passes in the predicate and GAR layers re-ask the same
#: atom pairs thousands of times per sweep; implication over interned
#: relations is pure, so the memo is invisible to results.
_IMPLIES_CACHE = BoundedCache("relation.implies", maxsize=32768)


class RelOp(enum.Enum):
    """The canonical relational operators against zero."""

    LE = "<="
    LT = "<"
    EQ = "=="
    NE = "!="


def _normalize(expr: SymExpr, op: RelOp, integer: bool) -> tuple[SymExpr, RelOp]:
    """Scale to integer coefficients; divide out gcd; canonical sign for EQ/NE.

    Integer-domain rewritings (only when ``integer``):

    * ``e < 0`` becomes ``e + 1 <= 0``;
    * ``g*x + c <= 0`` becomes ``x + ceil(c/g) <= 0``;
    * an equation whose non-constant gcd does not divide its constant term
      becomes the canonical false equation ``1 == 0``.
    """
    if integer and op is RelOp.LT:
        expr = expr + 1
        op = RelOp.LE
    denoms = [c.denominator for _, c in expr.terms]
    if denoms:
        lcm = reduce(lambda a, b: a * b // gcd(a, b), denoms, 1)
        if lcm != 1:
            expr = expr.scaled(lcm)
    const = expr.constant_term()
    rest = expr - const
    g_rest = reduce(gcd, (abs(c.numerator) for _, c in rest.terms), 0)
    if g_rest > 1:
        if op in (RelOp.LE, RelOp.LT):
            if integer and op is RelOp.LE:
                ceil_cg = -((-const.numerator) // g_rest)
                expr = rest.div_const(g_rest) + Fraction(ceil_cg)
            else:
                expr = rest.div_const(g_rest) + const / g_rest
        elif (not integer) or const.numerator % g_rest == 0:
            expr = rest.div_const(g_rest) + const / g_rest
        else:
            # no integer solution to g*x + c == 0: canonical False / True
            expr = SymExpr.const(1)
    if op in (RelOp.EQ, RelOp.NE) and expr.terms:
        # canonical sign: first (smallest) monomial coefficient positive
        if expr.terms[0][1] < 0:
            expr = -expr
    return expr, op


class Relation:
    """A canonical relational atom ``expr op 0``.

    Relations are hash-consed like expressions: construction normalizes,
    then interns on the canonical ``(expr, op, integer)`` triple, so the
    predicate layer's pairwise passes mostly compare identical objects
    and :meth:`negate` is computed once per distinct relation.
    """

    __slots__ = ("expr", "op", "integer", "_hash", "_negated")

    def __new__(cls, expr: ExprLike, op: RelOp, integer: bool = True) -> "Relation":
        e = SymExpr.coerce(expr)
        # two-level intern: the raw (pre-normalization) triple is keyed
        # too, so repeated construction from the same source expression
        # skips _normalize entirely (gcd/lcm reductions are not cheap)
        raw = (e, op, integer)
        cached = _INTERN.get(raw)
        if cached is not MISS:
            return cached
        e, op = _normalize(e, op, integer)
        key = (e, op, integer)
        if key != raw:
            cached = _INTERN.get(key)
            if cached is not MISS:
                _INTERN.put(raw, cached)
                return cached
        self = object.__new__(cls)
        self.expr = e
        self.op = op
        self.integer = integer
        self._hash = hash(key)
        self._negated = None
        _INTERN.put(key, self)
        if key != raw:
            _INTERN.put(raw, self)
        return self

    def __reduce__(self):
        # _normalize is idempotent, so round-tripping the canonical triple
        # through the interning constructor reproduces the same relation
        # (and never mutates a shared interned instance, which the default
        # slot-state protocol would).
        return (Relation, (self.expr, self.op, self.integer))

    # -- constructors (a op b forms) -------------------------------------------

    @classmethod
    def le(cls, a: ExprLike, b: ExprLike, integer: bool = True) -> "Relation":
        return cls(SymExpr.coerce(a) - SymExpr.coerce(b), RelOp.LE, integer)

    @classmethod
    def lt(cls, a: ExprLike, b: ExprLike, integer: bool = True) -> "Relation":
        return cls(SymExpr.coerce(a) - SymExpr.coerce(b), RelOp.LT, integer)

    @classmethod
    def ge(cls, a: ExprLike, b: ExprLike, integer: bool = True) -> "Relation":
        return cls.le(b, a, integer)

    @classmethod
    def gt(cls, a: ExprLike, b: ExprLike, integer: bool = True) -> "Relation":
        return cls.lt(b, a, integer)

    @classmethod
    def eq(cls, a: ExprLike, b: ExprLike, integer: bool = True) -> "Relation":
        return cls(SymExpr.coerce(a) - SymExpr.coerce(b), RelOp.EQ, integer)

    @classmethod
    def ne(cls, a: ExprLike, b: ExprLike, integer: bool = True) -> "Relation":
        return cls(SymExpr.coerce(a) - SymExpr.coerce(b), RelOp.NE, integer)

    # -- logic -------------------------------------------------------------------

    def truth(self) -> Optional[bool]:
        """Constant truth value, or ``None`` when genuinely symbolic."""
        value = self.expr.constant_value()
        if value is None:
            return None
        if self.op is RelOp.LE:
            return value <= 0
        if self.op is RelOp.LT:
            return value < 0
        if self.op is RelOp.EQ:
            return value == 0
        return value != 0

    def negate(self) -> "Relation":
        """The exact complement relation (cached)."""
        cached = self._negated
        if cached is not None:
            return cached
        if self.op is RelOp.LE:
            # not(e <= 0)  <=>  e > 0  <=>  -e < 0
            out = Relation(-self.expr, RelOp.LT, self.integer)
        elif self.op is RelOp.LT:
            out = Relation(-self.expr, RelOp.LE, self.integer)
        elif self.op is RelOp.EQ:
            out = Relation(self.expr, RelOp.NE, self.integer)
        else:
            out = Relation(self.expr, RelOp.EQ, self.integer)
        self._negated = out
        return out

    def implies(self, other: "Atom") -> Optional[bool]:
        """Syntactic single-pair implication test (paper's limited simplifier).

        Returns ``True`` when provably ``self => other``, ``False`` when
        provably ``self => not other``, ``None`` when this cheap check
        cannot tell.  Verdicts are memoized pairwise (relations are
        interned, implication is pure).
        """
        if not isinstance(other, Relation):
            return None
        if self == other:
            return True
        key = (self, other)
        cached = _IMPLIES_CACHE.get(key)
        if cached is not MISS:
            return cached
        return _IMPLIES_CACHE.put(key, self._implies_uncached(other))

    def _implies_uncached(self, other: "Relation") -> Optional[bool]:
        t = other.truth()
        if t is not None:
            return t
        a, b = self.expr, other.expr
        ineq = (RelOp.LE, RelOp.LT)
        if self.op in ineq and other.op in ineq:
            # (nc + c1 <OP1> 0) => (nc + c2 <OP2> 0) for identical nc parts:
            # value bound: nc <= -c1 (or < -c1); needs nc <= -c2 (or < -c2).
            if a.non_constant_part() != b.non_constant_part():
                return None
            c1, c2 = a.constant_term(), b.constant_term()
            if self.op is RelOp.LE and other.op is RelOp.LE:
                return c2 <= c1 or None
            if self.op is RelOp.LT and other.op is RelOp.LT:
                return c2 <= c1 or None
            if self.op is RelOp.LT and other.op is RelOp.LE:
                return c2 <= c1 or None
            # LE => LT: nc <= -c1 guarantees nc < -c2 iff -c1 < -c2
            return c2 < c1 or None
        if self.op is RelOp.EQ and other.op in ineq:
            # nc == -c1 (after orientation): check -c1 satisfies other
            for sign in (1, -1):
                if a.non_constant_part() == b.non_constant_part().scaled(sign):
                    value = b.constant_term() - a.constant_term() * sign
                    if other.op is RelOp.LE and value <= 0:
                        return True
                    if other.op is RelOp.LT and value < 0:
                        return True
                    if other.op is RelOp.LE and value > 0:
                        return False
                    if other.op is RelOp.LT and value >= 0:
                        return False
            return None
        if self.op is RelOp.EQ and other.op is RelOp.NE:
            if a == b:
                return False
            if a.non_constant_part() == b.non_constant_part():
                return a.constant_term() != b.constant_term() or None
            return None
        if self.op is RelOp.EQ and other.op is RelOp.EQ:
            if a == b:
                return True
            if a.non_constant_part() == b.non_constant_part():
                return None if a.constant_term() == b.constant_term() else False
            return None
        if self.op in ineq and other.op is RelOp.NE:
            # (nc + c1 <= 0) means nc <= -c1; then nc + c2 != 0 is guaranteed
            # iff -c2 is outside that range: -c2 > -c1, i.e. c2 < c1
            # (for strict <: iff c2 <= c1).
            strict = self.op is RelOp.LT
            if a.non_constant_part() == b.non_constant_part():
                c1, c2 = a.constant_term(), b.constant_term()
                ok = c2 <= c1 if strict else c2 < c1
                return ok or None
            neg = -b
            if a.non_constant_part() == neg.non_constant_part():
                c1, c2 = a.constant_term(), neg.constant_term()
                ok = c2 <= c1 if strict else c2 < c1
                return ok or None
            return None
        if self.op in ineq and other.op is RelOp.EQ:
            # an inequality can refute an equation: nc <= -c1 and -c2 > -c1
            # means nc != -c2
            r = self.implies(Relation(other.expr, RelOp.NE, other.integer))
            return False if r is True else None
        return None

    def conflicts(self, other: "Atom") -> bool:
        """Provably ``self AND other`` is unsatisfiable (cheap pair check)."""
        if not isinstance(other, Relation):
            return False
        return self.implies(other.negate()) is True

    # -- substitution / evaluation --------------------------------------------------

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "Relation":
        """Value substitution into the expression."""
        return Relation(self.expr.substitute(bindings), self.op, self.integer)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Variable renaming in the expression."""
        return Relation(self.expr.rename(mapping), self.op, self.integer)

    def free_vars(self) -> frozenset[str]:
        """Variables occurring in the expression."""
        return self.expr.free_vars()

    def evaluate(self, env: Mapping[str, int]) -> bool:
        """Concrete truth value under an environment."""
        value = self.expr.evaluate(env)
        if self.op is RelOp.LE:
            return value <= 0
        if self.op is RelOp.LT:
            return value < 0
        if self.op is RelOp.EQ:
            return value == 0
        return value != 0

    # -- identity ----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Relation)
            and self.op is other.op
            and self.expr == other.expr
            and self.integer == other.integer
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Relation<{self}>"

    def __str__(self) -> str:
        return f"{self.expr} {self.op.value} 0"

    def sort_key(self) -> tuple:
        """Canonical ordering key."""
        return (0, self.op.value, str(self.expr))


class BoolAtom:
    """A logical scalar variable atom ``(lvar = True/False)`` (paper 5.2)."""

    __slots__ = ("name", "value", "_hash")

    def __init__(self, name: str, value: bool = True) -> None:
        self.name = name
        self.value = bool(value)
        self._hash = hash((name, self.value))

    def truth(self) -> Optional[bool]:
        """Logical variables never fold to a constant."""
        return None

    def negate(self) -> "BoolAtom":
        """The exact complement relation (cached)."""
        return BoolAtom(self.name, not self.value)

    def implies(self, other: "Atom") -> Optional[bool]:
        """Implication against another atom of the same variable."""
        if isinstance(other, BoolAtom) and other.name == self.name:
            return self.value == other.value
        return None

    def conflicts(self, other: "Atom") -> bool:
        """Contradiction against the complementary atom."""
        return (
            isinstance(other, BoolAtom)
            and other.name == self.name
            and other.value != self.value
        )

    def substitute(self, bindings: Mapping[str, SymExpr]) -> Optional["Atom"]:
        """Value substitution for a logical variable.

        A binding to a plain variable renames the atom (the new variable
        holds the truth value); any other binding is unrepresentable and
        returns ``None`` — the containing predicate degrades to Δ.
        """
        repl = bindings.get(self.name)
        if repl is None:
            return self
        terms = repl.terms
        if len(terms) == 1 and terms[0][0].is_linear_var() and terms[0][1] == 1:
            (target,) = terms[0][0].variables()
            return BoolAtom(target, self.value)
        return None

    def rename(self, mapping: Mapping[str, str]) -> "BoolAtom":
        """Variable renaming in the expression."""
        return BoolAtom(mapping.get(self.name, self.name), self.value)

    def free_vars(self) -> frozenset[str]:
        """Variables occurring in the expression."""
        return frozenset((self.name,))

    def evaluate(self, env: Mapping[str, int]) -> bool:
        """Concrete truth value under an environment."""
        return bool(env[self.name]) == self.value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BoolAtom)
            and self.name == other.name
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BoolAtom<{self}>"

    def __str__(self) -> str:
        return self.name if self.value else f".NOT.{self.name}"

    def sort_key(self) -> tuple:
        """Canonical ordering key."""
        return (1, self.name, self.value)


Atom = Union[Relation, BoolAtom]
