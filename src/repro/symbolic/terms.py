"""Monomials: the product part of an ordered sum-of-products.

The paper (section 3.1) normalizes integer symbolic expressions to an
*ordered sum of products*.  A :class:`Monomial` is one product of symbolic
variables raised to positive integer powers; the empty monomial is the
constant term.  Monomials are immutable, hashable, and totally ordered so
that expressions have a canonical printed form and deterministic iteration
order.

Monomials are **hash-consed**: construction interns instances in a
bounded LRU table keyed by the canonical factor tuple, so repeated
construction of the same monomial is a dict hit returning the existing
object and equality can short-circuit on identity.  Eviction only drops
the canonical-representative status — a re-created monomial is a new but
structurally equal object, and every consumer falls back to structural
equality, so bounded interning is invisible to results.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Mapping, Tuple

from ..perf.profiler import MISS, BoundedCache

_Factor = Tuple[str, int]

#: canonical factor tuple → the interned instance
_INTERN = BoundedCache("monomial.intern", maxsize=16384)
#: (m1, m2) → m1 * m2 (skips the merge-and-sort on repeats)
_MUL_CACHE = BoundedCache("monomial.mul", maxsize=16384)


@total_ordering
class Monomial:
    """An immutable product of variables, e.g. ``x**2 * y``.

    Internally a sorted tuple of ``(name, power)`` pairs with all powers
    positive.  ``Monomial(())`` is the unit monomial (constant term).
    """

    __slots__ = ("_factors", "_hash")

    def __new__(cls, factors: Iterable[_Factor] = ()) -> "Monomial":
        merged: dict[str, int] = {}
        for name, power in factors:
            if power < 0:
                raise ValueError(f"negative power for {name!r}")
            if power:
                merged[name] = merged.get(name, 0) + power
        key: Tuple[_Factor, ...] = tuple(sorted(merged.items()))
        cached = _INTERN.get(key)
        if cached is not MISS:
            return cached
        self = object.__new__(cls)
        self._factors = key
        self._hash = hash(key)
        _INTERN.put(key, self)
        return self

    def __reduce__(self):
        # Route unpickling through __new__ so deserialized monomials are
        # interned too (default slot-state pickling would mutate whatever
        # instance __new__ returned — never acceptable on shared objects).
        return (Monomial, (self._factors,))

    @classmethod
    def unit(cls) -> "Monomial":
        """The empty monomial (multiplicative identity / constant term)."""
        return _UNIT

    @classmethod
    def var(cls, name: str, power: int = 1) -> "Monomial":
        """Monomial consisting of a single variable."""
        return cls(((name, power),))

    # -- structure --------------------------------------------------------

    @property
    def factors(self) -> Tuple[_Factor, ...]:
        return self._factors

    def is_unit(self) -> bool:
        """True for the empty (constant) monomial."""
        return not self._factors

    def degree(self) -> int:
        """Total degree (sum of powers); 0 for the unit monomial."""
        return sum(p for _, p in self._factors)

    def variables(self) -> frozenset[str]:
        """The set of variable names in the monomial."""
        return frozenset(name for name, _ in self._factors)

    def power_of(self, name: str) -> int:
        """The power of *name* (0 if absent)."""
        for n, p in self._factors:
            if n == name:
                return p
        return 0

    def contains(self, name: str) -> bool:
        """Does *name* occur in the monomial?"""
        return any(n == name for n, _ in self._factors)

    def is_linear_var(self) -> bool:
        """True when the monomial is exactly one variable to the power 1."""
        return len(self._factors) == 1 and self._factors[0][1] == 1

    # -- algebra -----------------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        if not self._factors:
            return other
        if not other._factors:
            return self
        key = (self, other)
        cached = _MUL_CACHE.get(key)
        if cached is not MISS:
            return cached
        return _MUL_CACHE.put(key, Monomial(self._factors + other._factors))

    def divide_by_var(self, name: str) -> "Monomial":
        """Divide out one power of *name*; raises if absent."""
        out = []
        found = False
        for n, p in self._factors:
            if n == name:
                found = True
                if p > 1:
                    out.append((n, p - 1))
            else:
                out.append((n, p))
        if not found:
            raise KeyError(name)
        return Monomial(out)

    # -- ordering / hashing -------------------------------------------------

    def sort_key(self) -> tuple:
        """Canonical ordering: by total degree, then lexicographic factors.

        The unit monomial sorts *last* so the constant term prints at the
        end of an expression (``i + 3`` rather than ``3 + i``), matching
        the paper's presentation of symbolic bounds.
        """
        if self.is_unit():
            return (float("inf"),)
        return (self.degree(), self._factors)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Monomial) and self._factors == other._factors

    def __lt__(self, other: "Monomial") -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[_Factor]:
        return iter(self._factors)

    def __repr__(self) -> str:
        return f"Monomial({self._factors!r})"

    def __str__(self) -> str:
        if self.is_unit():
            return "1"
        parts = []
        for name, power in self._factors:
            parts.append(name if power == 1 else f"{name}**{power}")
        return "*".join(parts)

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a concrete integer environment."""
        value = 1
        for name, power in self._factors:
            value *= env[name] ** power
        return value

    def substitute_key(self) -> Tuple[_Factor, ...]:
        """The raw factor tuple (for substitution tables)."""
        return self._factors


_UNIT = Monomial(())
