"""Symbolic comparison of expressions under a predicate context.

Region operations constantly need to answer questions like "is ``l1 <= l2``
given the guard so far?" (see the intersection case split of section 3.1).
:class:`Comparer` layers three strategies, cheapest first:

1. constant folding of the difference,
2. the pairwise implication tests of the limited simplifier,
3. Fourier–Motzkin refutation using the unit atoms of the context.

Every answer is three-valued: ``True`` / ``False`` are proofs, ``None``
means "cannot tell" and the caller must keep the symbolic case split.
"""

from __future__ import annotations

from typing import Optional

from .expr import ExprLike, SymExpr
from .fourier_motzkin import definitely_unsat, implied_by
from .predicate import Predicate
from .relation import Atom, Relation


class Comparer:
    """Answers ordered comparisons between symbolic expressions under a
    guard context.  Instances are cheap; they hold only the context atoms."""

    def __init__(
        self,
        context: Predicate | None = None,
        use_fm: bool = True,
        symbolic: bool = True,
    ):
        self.context = context if context is not None else Predicate.true()
        self.use_fm = use_fm
        #: with symbolic reasoning off (the T1 ablation of the paper's
        #: Table 1) only constant folding is available
        self.symbolic = symbolic
        self._context_atoms: list[Atom] = (
            self.context.unit_atoms() if self.context.is_cnf() else []
        )

    # -- core three-valued proof ------------------------------------------------

    def prove(self, relation: Relation) -> Optional[bool]:
        """Prove or refute a relation under the context; None if unknown."""
        t = relation.truth()
        if t is not None:
            return t
        if not self.symbolic:
            return None
        for atom in self._context_atoms:
            r = atom.implies(relation)
            if r is True:
                return True
            if atom.implies(relation.negate()) is True:
                return False
        if self.use_fm:
            if implied_by(self._context_atoms, relation):
                return True
            if implied_by(self._context_atoms, relation.negate()):
                return False
        return None

    # -- relational sugar ----------------------------------------------------------

    def le(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a <= b``; three-valued."""
        return self.prove(Relation.le(a, b))

    def lt(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a < b``; three-valued."""
        return self.prove(Relation.lt(a, b))

    def ge(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a >= b``; three-valued."""
        return self.prove(Relation.ge(a, b))

    def gt(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a > b``; three-valued."""
        return self.prove(Relation.gt(a, b))

    def eq(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a == b``; three-valued."""
        a = SymExpr.coerce(a)
        b = SymExpr.coerce(b)
        if a == b:
            return True
        return self.prove(Relation.eq(a, b))

    def ne(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a != b``; three-valued."""
        r = self.eq(a, b)
        return None if r is None else not r

    # -- context satisfiability -------------------------------------------------------

    def context_unsat(self) -> bool:
        """True when the context's unit atoms are jointly unsatisfiable."""
        if self.context.is_false():
            return True
        if not self.use_fm:
            return False
        return definitely_unsat(self._context_atoms)

    def refine(self, extra: Predicate) -> "Comparer":
        """A comparer whose context additionally assumes *extra*."""
        if extra.is_true() or not self.symbolic:
            return self
        return Comparer(
            self.context & extra, use_fm=self.use_fm, symbolic=self.symbolic
        )


def predicate_unsat(pred: Predicate, use_fm: bool = True) -> bool:
    """Provably unsatisfiable predicate (beyond its own normalization).

    Only the unit-clause conjunction is consulted — dropping non-unit
    clauses weakens the predicate, so a True result remains sound.
    """
    if pred.is_false():
        return True
    if not pred.is_cnf() or not use_fm:
        return False
    return definitely_unsat(pred.unit_atoms())


def predicate_implies(p: Predicate, q: Predicate, use_fm: bool = True) -> bool:
    """Provable ``p => q``; False means "not proven" (not a refutation)."""
    direct = p.implies(q)
    if direct is not None:
        return direct
    if not use_fm or not p.is_cnf() or not q.is_cnf():
        return False
    context = p.unit_atoms()
    # q holds if every clause of q is implied; for unit clauses use FM,
    # for wider clauses require some atom individually implied.
    for clause in q.clauses:
        if not any(implied_by(context, atom) for atom in clause.atoms):
            return False
    return True
