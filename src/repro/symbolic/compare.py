"""Symbolic comparison of expressions under a predicate context.

Region operations constantly need to answer questions like "is ``l1 <= l2``
given the guard so far?" (see the intersection case split of section 3.1).
:class:`Comparer` layers three strategies, cheapest first:

1. constant folding of the difference,
2. the pairwise implication tests of the limited simplifier,
3. Fourier–Motzkin refutation using the unit atoms of the context.

Every answer is three-valued: ``True`` / ``False`` are proofs, ``None``
means "cannot tell" and the caller must keep the symbolic case split.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..perf.profiler import COUNTERS, MISS, BoundedCache
from ..resilience.budget import charge as _budget_charge
from .expr import ExprLike, SymExpr
from .fourier_motzkin import definitely_unsat, definitely_unsat_many, implied_by
from .predicate import Predicate
from .relation import Atom, Relation

#: (context fingerprint, use_fm, relation) → three-valued verdict.  The
#: fingerprint is the frozen set of context unit atoms, so every Comparer
#: over the same effective context — including refined children that
#: round-trip back to a previously seen context — shares one memo line.
_PROVE_CACHE = BoundedCache("comparer.prove", maxsize=32768)
#: predicate-level entailment/unsat memos (the GAR/region pairwise passes
#: re-ask these for the same guard pairs across every simplification pass)
_IMPLIES_CACHE = BoundedCache("predicate.implies", maxsize=16384)
_PRED_UNSAT_CACHE = BoundedCache("predicate.unsat", maxsize=16384)


def _all_unit_cnf(pred: Predicate) -> bool:
    """Is *pred* a CNF whose clauses are all unit clauses?"""
    return pred.is_cnf() and all(c.is_unit() for c in pred.clauses)


class Comparer:
    """Answers ordered comparisons between symbolic expressions under a
    guard context.  Instances are cheap; they hold only the context atoms."""

    def __init__(
        self,
        context: Predicate | None = None,
        use_fm: bool = True,
        symbolic: bool = True,
    ):
        self.context = context if context is not None else Predicate.true()
        self.use_fm = use_fm
        #: with symbolic reasoning off (the T1 ablation of the paper's
        #: Table 1) only constant folding is available
        self.symbolic = symbolic
        self._set_atoms(
            self.context.unit_atoms() if self.context.is_cnf() else []
        )

    def _set_atoms(self, atoms: list[Atom]) -> None:
        self._context_atoms = atoms
        self._ctx_key = (frozenset(atoms), self.use_fm)

    # -- core three-valued proof ------------------------------------------------

    def prove(self, relation: Relation) -> Optional[bool]:
        """Prove or refute a relation under the context; None if unknown."""
        t = relation.truth()
        if t is not None:
            return t
        if not self.symbolic:
            return None
        COUNTERS.prove_calls += 1
        # one proof attempt = one budget step (cached or not: repeats are
        # cheap but a budgeted run must still terminate deterministically)
        _budget_charge(1)
        key = (self._ctx_key, relation)
        cached = _PROVE_CACHE.get(key)
        if cached is not MISS:
            return cached
        return _PROVE_CACHE.put(key, self._prove_uncached(relation))

    def _prove_uncached(self, relation: Relation) -> Optional[bool]:
        for atom in self._context_atoms:
            r = atom.implies(relation)
            if r is True:
                return True
            if atom.implies(relation.negate()) is True:
                return False
        if self.use_fm:
            COUNTERS.prove_fm_queries += 1
            # both refutation systems in one batch submission:
            # ctx => r  is unsat(ctx + not r);  ctx => not r  is unsat(ctx + r)
            proved, refuted = definitely_unsat_many(
                [
                    self._context_atoms + [relation.negate()],
                    self._context_atoms + [relation],
                ]
            )
            if proved:
                return True
            if refuted:
                return False
        return None

    # -- relational sugar ----------------------------------------------------------

    def le(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a <= b``; three-valued."""
        return self.prove(Relation.le(a, b))

    def lt(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a < b``; three-valued."""
        return self.prove(Relation.lt(a, b))

    def ge(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a >= b``; three-valued."""
        return self.prove(Relation.ge(a, b))

    def gt(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a > b``; three-valued."""
        return self.prove(Relation.gt(a, b))

    def eq(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a == b``; three-valued."""
        a = SymExpr.coerce(a)
        b = SymExpr.coerce(b)
        if a == b:
            return True
        return self.prove(Relation.eq(a, b))

    def ne(self, a: ExprLike, b: ExprLike) -> Optional[bool]:
        """Prove ``a != b``; three-valued."""
        r = self.eq(a, b)
        return None if r is None else not r

    # -- context satisfiability -------------------------------------------------------

    def context_unsat(self) -> bool:
        """True when the context's unit atoms are jointly unsatisfiable."""
        if self.context.is_false():
            return True
        if not self.use_fm:
            return False
        return definitely_unsat(self._context_atoms)

    def refine(self, extra: Predicate) -> "Comparer":
        """A comparer whose context additionally assumes *extra*.

        The conjoined context predicate is still built (it is the child's
        ``context``, and FALSE detection must see the full conjunction),
        but the expensive part — re-extracting the unit-atom list from the
        conjoined CNF — is done incrementally when both sides are plain
        atom conjunctions: the child's atoms are the parent's atoms plus
        the extra predicate's unit atoms.  Simplification of the
        conjunction can only drop atoms subsumed by kept ones in that
        case, so the extended list is a verdict-equivalent superset.
        """
        if extra.is_true() or not self.symbolic:
            return self
        combined = self.context & extra
        child = Comparer.__new__(Comparer)
        child.context = combined
        child.use_fm = self.use_fm
        child.symbolic = self.symbolic
        if not combined.is_cnf():
            child._set_atoms([])
        elif (
            _all_unit_cnf(extra)
            and (self.context.is_true() or _all_unit_cnf(self.context))
        ):
            atoms = list(self._context_atoms)
            seen = set(atoms)
            for atom in extra.unit_atoms():
                if atom not in seen:
                    seen.add(atom)
                    atoms.append(atom)
            child._set_atoms(atoms)
        else:
            # non-unit clauses present: unit propagation may surface new
            # unit atoms, so fall back to the full extraction
            child._set_atoms(combined.unit_atoms())
        return child


def predicate_unsat(pred: Predicate, use_fm: bool = True) -> bool:
    """Provably unsatisfiable predicate (beyond its own normalization).

    Only the unit-clause conjunction is consulted — dropping non-unit
    clauses weakens the predicate, so a True result remains sound.
    """
    if pred.is_false():
        return True
    if not pred.is_cnf() or not use_fm:
        return False
    cached = _PRED_UNSAT_CACHE.get(pred)
    if cached is not MISS:
        return cached
    return _PRED_UNSAT_CACHE.put(pred, definitely_unsat(pred.unit_atoms()))


def predicate_unsat_many(
    preds: Sequence[Predicate], use_fm: bool = True
) -> List[bool]:
    """Batch form of :func:`predicate_unsat`.

    The region layer produces whole lists of guards per propagation step
    (GAR-list emptiness, simplification pre-screening); this submits every
    unresolved guard's atom system to the constraint core in one call.
    """
    out: list = [None] * len(preds)
    pending: list[int] = []
    for i, pred in enumerate(preds):
        if pred.is_false():
            out[i] = True
        elif not pred.is_cnf() or not use_fm:
            out[i] = False
        else:
            cached = _PRED_UNSAT_CACHE.get(pred)
            if cached is not MISS:
                out[i] = cached
            else:
                pending.append(i)
    if pending:
        verdicts = definitely_unsat_many(
            [preds[i].unit_atoms() for i in pending]
        )
        for i, verdict in zip(pending, verdicts):
            out[i] = _PRED_UNSAT_CACHE.put(preds[i], verdict)
    return out


def predicate_implies(p: Predicate, q: Predicate, use_fm: bool = True) -> bool:
    """Provable ``p => q``; False means "not proven" (not a refutation)."""
    direct = p.implies(q)
    if direct is not None:
        return direct
    if not use_fm or not p.is_cnf() or not q.is_cnf():
        return False
    key = (p, q)
    cached = _IMPLIES_CACHE.get(key)
    if cached is not MISS:
        return cached
    context = p.unit_atoms()
    # q holds if every clause of q is implied; for unit clauses use FM,
    # for wider clauses require some atom individually implied.
    result = True
    for clause in q.clauses:
        if not any(implied_by(context, atom) for atom in clause.atoms):
            result = False
            break
    return _IMPLIES_CACHE.put(key, result)
