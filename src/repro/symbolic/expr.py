"""Integer symbolic expressions as an ordered sum of products.

This is the "general expression operation library" of the paper's Figure 2:
addition, subtraction, multiplication, and division by an integer constant,
over expressions normalized to an ordered sum of products.  Coefficients are
exact rationals (:class:`fractions.Fraction`) so constant division never
loses information; expressions that appear in array subscripts are integer
valued in well-formed programs.

Expressions are immutable and hashable, so they can be used as dictionary
keys throughout the region and predicate layers.

Expressions are **hash-consed** like monomials: construction interns the
canonical term tuple in a bounded LRU table, and the four arithmetic
operations carry memoized binary-op caches keyed by the (interned)
operands — the dominant kernel cost of re-sorting and re-hashing terms
on every op collapses to a dict hit on repeats.  Bounded eviction only
loses sharing, never changes a value.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Optional, Tuple, Union

from ..errors import SymbolicError
from ..perf.profiler import MISS, BoundedCache
from .terms import Monomial

Number = Union[int, Fraction]
ExprLike = Union["SymExpr", int, Fraction, str]

#: canonical term tuple → the interned instance
_INTERN = BoundedCache("symexpr.intern", maxsize=16384)
#: binary/unary op memo tables, keyed by interned operands
_ADD_CACHE = BoundedCache("symexpr.add", maxsize=16384)
_MUL_CACHE = BoundedCache("symexpr.mul", maxsize=16384)
_NEG_CACHE = BoundedCache("symexpr.neg", maxsize=16384)
_SCALE_CACHE = BoundedCache("symexpr.scale", maxsize=16384)
#: tiny constructor memos (constants and variables recur constantly)
_ATOM_CACHE = BoundedCache("symexpr.atom", maxsize=4096)


class SymExpr:
    """An immutable symbolic integer expression.

    Stored as a mapping from :class:`Monomial` to a nonzero rational
    coefficient.  The zero expression has an empty mapping.
    """

    __slots__ = ("_terms", "_hash", "_ncp")

    def __new__(cls, terms: Mapping[Monomial, Number] | None = None) -> "SymExpr":
        clean: dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                c = coeff if type(coeff) is Fraction else Fraction(coeff)
                if c:
                    if mono in clean:
                        c = clean[mono] + c
                        if c:
                            clean[mono] = c
                        else:
                            del clean[mono]
                    else:
                        clean[mono] = c
        key: Tuple[Tuple[Monomial, Fraction], ...] = tuple(
            sorted(clean.items(), key=lambda kv: kv[0].sort_key())
        )
        cached = _INTERN.get(key)
        if cached is not MISS:
            return cached
        self = object.__new__(cls)
        self._terms = key
        self._hash = hash(key)
        self._ncp = None
        _INTERN.put(key, self)
        return self

    def __reduce__(self):
        # Unpickle through the interning constructor (see Monomial).
        return (SymExpr, (dict(self._terms),))

    # -- constructors -------------------------------------------------------

    @classmethod
    def const(cls, value: Number) -> "SymExpr":
        key = ("const", value)
        cached = _ATOM_CACHE.get(key)
        if cached is not MISS:
            return cached
        return _ATOM_CACHE.put(key, cls({Monomial.unit(): Fraction(value)}))

    @classmethod
    def var(cls, name: str) -> "SymExpr":
        key = ("var", name)
        cached = _ATOM_CACHE.get(key)
        if cached is not MISS:
            return cached
        return _ATOM_CACHE.put(key, cls({Monomial.var(name): Fraction(1)}))

    @classmethod
    def coerce(cls, value: ExprLike) -> "SymExpr":
        """Accept an expression, a number, or a variable name."""
        if isinstance(value, SymExpr):
            return value
        if isinstance(value, (int, Fraction)):
            return cls.const(value)
        if isinstance(value, str):
            return cls.var(value)
        raise TypeError(f"cannot coerce {value!r} to SymExpr")

    # -- structure -----------------------------------------------------------

    @property
    def terms(self) -> Tuple[Tuple[Monomial, Fraction], ...]:
        return self._terms

    def is_zero(self) -> bool:
        """True for the zero expression."""
        return not self._terms

    def is_constant(self) -> bool:
        """True when no symbolic variables occur."""
        return all(m.is_unit() for m, _ in self._terms)

    def constant_value(self) -> Optional[Fraction]:
        """The value if constant, else ``None``."""
        if not self._terms:
            return Fraction(0)
        if len(self._terms) == 1 and self._terms[0][0].is_unit():
            return self._terms[0][1]
        return None

    def constant_term(self) -> Fraction:
        """Coefficient of the unit monomial (0 if absent)."""
        for mono, coeff in self._terms:
            if mono.is_unit():
                return coeff
        return Fraction(0)

    def non_constant_part(self) -> "SymExpr":
        """The expression minus its constant term (computed once per
        interned expression — ``Relation.implies`` asks constantly)."""
        cached = self._ncp
        if cached is None:
            cached = SymExpr({m: c for m, c in self._terms if not m.is_unit()})
            self._ncp = cached
        return cached

    def free_vars(self) -> frozenset[str]:
        """All symbolic variable names occurring in the expression."""
        out: set[str] = set()
        for mono, _ in self._terms:
            out |= mono.variables()
        return frozenset(out)

    def contains(self, name: str) -> bool:
        """Does the variable *name* occur anywhere?"""
        return any(mono.contains(name) for mono, _ in self._terms)

    def degree(self) -> int:
        """Maximum total degree over the monomials."""
        return max((m.degree() for m, _ in self._terms), default=0)

    def is_linear(self) -> bool:
        """Degree at most 1: affine in the symbolic variables."""
        return self.degree() <= 1

    def is_linear_in(self, name: str) -> bool:
        """Every monomial containing *name* is exactly that variable."""
        for mono, _ in self._terms:
            if mono.contains(name) and not (
                mono.is_linear_var() and mono.power_of(name) == 1
            ):
                return False
        return True

    def coeff_of_var(self, name: str) -> Fraction:
        """Coefficient of the plain variable *name* (degree-1 monomial)."""
        target = Monomial.var(name)
        for mono, coeff in self._terms:
            if mono == target:
                return coeff
        return Fraction(0)

    def coeff_of(self, mono: Monomial) -> Fraction:
        """Coefficient of an arbitrary monomial (0 if absent)."""
        for m, c in self._terms:
            if m == mono:
                return c
        return Fraction(0)

    def monomials(self) -> Tuple[Monomial, ...]:
        """The monomials in canonical order."""
        return tuple(m for m, _ in self._terms)

    def has_integer_coeffs(self) -> bool:
        """Are all coefficients integers?"""
        return all(c.denominator == 1 for _, c in self._terms)

    # -- algebra --------------------------------------------------------------

    def __add__(self, other: ExprLike) -> "SymExpr":
        other = SymExpr.coerce(other)
        key = (self, other)
        cached = _ADD_CACHE.get(key)
        if cached is not MISS:
            return cached
        merged = dict(self._terms)
        for mono, coeff in other._terms:
            merged[mono] = merged.get(mono, Fraction(0)) + coeff
        return _ADD_CACHE.put(key, SymExpr(merged))

    __radd__ = __add__

    def __neg__(self) -> "SymExpr":
        cached = _NEG_CACHE.get(self)
        if cached is not MISS:
            return cached
        return _NEG_CACHE.put(self, SymExpr({m: -c for m, c in self._terms}))

    def __sub__(self, other: ExprLike) -> "SymExpr":
        return self + (-SymExpr.coerce(other))

    def __rsub__(self, other: ExprLike) -> "SymExpr":
        return SymExpr.coerce(other) - self

    def __mul__(self, other: ExprLike) -> "SymExpr":
        other = SymExpr.coerce(other)
        key = (self, other)
        cached = _MUL_CACHE.get(key)
        if cached is not MISS:
            return cached
        out: dict[Monomial, Fraction] = {}
        for m1, c1 in self._terms:
            for m2, c2 in other._terms:
                mono = m1 * m2
                out[mono] = out.get(mono, Fraction(0)) + c1 * c2
        return _MUL_CACHE.put(key, SymExpr(out))

    __rmul__ = __mul__

    def div_const(self, divisor: Number) -> "SymExpr":
        """Division by a nonzero integer (or rational) constant.

        This is the only division the paper's expression library supports.
        """
        d = Fraction(divisor)
        if not d:
            raise SymbolicError("division of symbolic expression by zero")
        key = (self, "/", d)
        cached = _SCALE_CACHE.get(key)
        if cached is not MISS:
            return cached
        return _SCALE_CACHE.put(key, SymExpr({m: c / d for m, c in self._terms}))

    def scaled(self, factor: Number) -> "SymExpr":
        """The expression multiplied by a rational constant."""
        f = Fraction(factor)
        key = (self, "*", f)
        cached = _SCALE_CACHE.get(key)
        if cached is not MISS:
            return cached
        return _SCALE_CACHE.put(key, SymExpr({m: c * f for m, c in self._terms}))

    # -- substitution / evaluation ---------------------------------------------

    def substitute(self, bindings: Mapping[str, "SymExpr"]) -> "SymExpr":
        """Simultaneous substitution of variables by expressions."""
        if not bindings or not (self.free_vars() & set(bindings)):
            return self
        result = SymExpr()
        for mono, coeff in self._terms:
            piece = SymExpr.const(coeff)
            for name, power in mono:
                repl = bindings.get(name)
                base = repl if repl is not None else SymExpr.var(name)
                for _ in range(power):
                    piece = piece * base
            result = result + piece
        return result

    def rename(self, mapping: Mapping[str, str]) -> "SymExpr":
        """Variable-for-variable renaming."""
        return self.substitute({old: SymExpr.var(new) for old, new in mapping.items()})

    def evaluate(self, env: Mapping[str, int]) -> Fraction:
        """Evaluate under a concrete integer environment.

        Raises ``KeyError`` when a free variable is unbound.
        """
        total = Fraction(0)
        for mono, coeff in self._terms:
            total += coeff * mono.evaluate(env)
        return total

    def evaluate_int(self, env: Mapping[str, int]) -> int:
        """Evaluate and require an integer result."""
        value = self.evaluate(env)
        if value.denominator != 1:
            raise SymbolicError(f"{self} evaluates to non-integer {value}")
        return value.numerator

    # -- misc -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = SymExpr.const(other)
        return isinstance(other, SymExpr) and self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"SymExpr<{self}>"

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts: list[str] = []
        for mono, coeff in self._terms:
            if mono.is_unit():
                text = str(coeff)
            elif coeff == 1:
                text = str(mono)
            elif coeff == -1:
                text = f"-{mono}"
            else:
                text = f"{coeff}*{mono}"
            if parts and not text.startswith("-"):
                parts.append("+" + text)
            else:
                parts.append(text)
        return "".join(parts)


ZERO = SymExpr()
ONE = SymExpr.const(1)


def sym(value: ExprLike) -> SymExpr:
    """Convenience coercion used pervasively in tests and examples."""
    return SymExpr.coerce(value)


def sym_min_max_free(exprs: Iterable[SymExpr]) -> bool:
    """All expressions are plain sums of products (no min/max markers).

    The library never embeds min/max operators inside expressions (the
    paper replaces them with explicit inequalities in guards); this helper
    documents and checks that invariant at API boundaries.
    """
    return all(isinstance(e, SymExpr) for e in exprs)
