"""Matrix-form Fourier–Motzkin: the vectorized constraint core.

The object-layer eliminator in :mod:`repro.symbolic.fourier_motzkin`
represents every constraint as a ``{Monomial: Fraction}`` dict and
combines rows by dict merges.  The systems it decides are dense
small-integer linear algebra, so this module re-implements the same
elimination on a coefficient matrix:

* columns are linearized monomials, ordered by their canonical
  :meth:`~repro.symbolic.terms.Monomial.sort_key` and registered in a
  process-stable id table (:func:`column_id`) so repeated systems map to
  identical column layouts;
* rows are integer vectors (every atom is scaled by the lcm of its
  coefficient denominators — a positive factor, so feasibility, signs,
  pivot costs, and constraint counts are unchanged);
* one pass per round tallies positive/negative entries per column for
  the pivot choice, and the upper×lower combination step is a whole-array
  operation instead of a dict merge per pair.

Two interchangeable matrix backends implement the arithmetic:

* **numpy** (int64 ndarrays) when numpy is importable — with an a-priori
  overflow bound per combination round; a round that could exceed int64
  promotes the *remaining* elimination to the exact path and counts
  ``fm_matrix_overflow_promotions``;
* **python** (row lists of arbitrary-precision ints) otherwise — exact
  by construction, used as the promotion target and as the no-numpy
  fallback so the project keeps zero hard dependencies.

Verdict identity.  Both backends follow the object eliminator's exact
trajectory: same constraint expansion (EQ → two rows, bounded NE case
splits), same pivot rule (min ``pos*neg``, ties to the smallest monomial
sort key), same effort caps at the same points, and the same budget
charges (one per eliminated pair).  FM without bail-outs is a complete
decision procedure, and with this discipline the bail-outs trigger
identically too, so ``definitely_unsat`` verdicts are bit-identical
across numpy / python / object paths — asserted by the
``PANORAMA_FM_ORACLE=1`` cross-check mode, the property suite
(``tests/property/test_prop_matrix_fm.py``), and
``benchmarks/bench_constraints.py``.

Backend selection: ``PANORAMA_CONSTRAINT_BACKEND`` = ``auto`` (default:
numpy when importable, else python), ``numpy``, ``python``, or
``object`` (bypass the matrix core entirely).
"""

from __future__ import annotations

import os
from fractions import Fraction
from math import gcd
from typing import Iterable, List, Optional, Sequence, Tuple

from ..perf.profiler import COUNTERS
from ..resilience.budget import charge as _budget_charge
from .relation import Relation, RelOp
from .terms import Monomial

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

#: coefficients beyond this bound never enter an int64 matrix
_INT64_SAFE = 1 << 62

#: process-stable interned-monomial id table (first-seen order); systems
#: order their columns by monomial sort key, the ids exist so external
#: consumers (and debugging dumps) can name columns stably
_COLUMN_IDS: dict[Monomial, int] = {}

#: explicit override installed by set_backend(); None → consult the env
_FORCED: Optional[str] = None


def column_id(mono: Monomial) -> int:
    """The stable id of a linearized monomial column (assigned on first
    sight, constant for the process lifetime)."""
    got = _COLUMN_IDS.get(mono)
    if got is None:
        got = _COLUMN_IDS[mono] = len(_COLUMN_IDS)
    return got


def set_backend(name: Optional[str]) -> None:
    """Force a backend (``numpy`` / ``python`` / ``object`` / ``auto``);
    ``None`` restores environment-driven selection."""
    global _FORCED
    if name is not None and name not in ("auto", "numpy", "python", "object"):
        raise ValueError(f"unknown constraint backend {name!r}")
    _FORCED = name


def backend_name() -> str:
    """The constraint backend currently in effect."""
    choice = _FORCED or os.environ.get("PANORAMA_CONSTRAINT_BACKEND", "auto")
    if choice == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    if choice == "numpy" and not HAVE_NUMPY:
        return "python"
    return choice


def matrix_active() -> bool:
    """Is the matrix core handling eliminations (vs the object oracle)?"""
    return backend_name() != "object"


def oracle_enabled() -> bool:
    """Cross-check mode: run matrix and object paths, assert agreement."""
    return os.environ.get("PANORAMA_FM_ORACLE", "") not in ("", "0")


# --------------------------------------------------------------------------- #
# system construction
# --------------------------------------------------------------------------- #


class System:
    """One conjunction ``rows · vars + consts <= 0`` in integer form.

    ``monos`` names the columns (canonical sort-key order).  ``rows`` is
    a list of integer coefficient lists aligned with ``monos``; ``consts``
    and ``stricts`` are parallel per-row vectors.
    """

    __slots__ = ("monos", "rows", "consts", "stricts", "huge")

    def __init__(self, monos, rows, consts, stricts, huge):
        self.monos: Tuple[Monomial, ...] = monos
        self.rows: List[List[int]] = rows
        self.consts: List[int] = consts
        self.stricts: List[bool] = stricts
        #: some |coefficient| exceeds the int64-safe bound already
        self.huge: bool = huge


def _scaled_row(expr, strict: bool) -> tuple[dict, int, bool]:
    """One atom expression as ``(mono → int coeff, int const, strict)``.

    Scaling by the lcm of the denominators is a positive factor, so the
    constraint — and every sign/count the eliminator looks at — is
    unchanged.
    """
    coeffs: dict[Monomial, Fraction] = {}
    const = Fraction(0)
    for mono, coeff in expr.terms:
        if mono.is_unit():
            const += coeff
        else:
            coeffs[mono] = coeffs.get(mono, Fraction(0)) + coeff
    lcm = const.denominator
    for c in coeffs.values():
        d = c.denominator
        if d != 1:
            lcm = lcm * d // gcd(lcm, d)
    out = {m: int(c * lcm) for m, c in coeffs.items() if c}
    return out, int(const * lcm), strict


def build_systems(
    relations: Sequence[Relation], max_ne_splits: int
) -> List[System]:
    """Expand relations into integer systems, mirroring the object layer:
    EQ becomes two rows, NE case-splits into alternative systems up to
    *max_ne_splits* (extras dropped — weakening, still sound)."""
    base: list[tuple[dict, int, bool]] = []
    nes: list[Relation] = []
    for rel in relations:
        if rel.op is RelOp.LE:
            base.append(_scaled_row(rel.expr, False))
        elif rel.op is RelOp.LT:
            base.append(_scaled_row(rel.expr, True))
        elif rel.op is RelOp.EQ:
            base.append(_scaled_row(rel.expr, False))
            base.append(_scaled_row(-rel.expr, False))
        else:  # NE
            nes.append(rel)
    if len(nes) > max_ne_splits:
        COUNTERS.fm_ne_splits_dropped += len(nes) - max_ne_splits
    nes = nes[:max_ne_splits]
    branches = [base]
    for rel in nes:
        if rel.integer:
            lo = _scaled_row(rel.expr + 1, False)  # e <= -1
            hi = _scaled_row(-rel.expr + 1, False)  # e >= 1
        else:
            lo = _scaled_row(rel.expr, True)  # e < 0
            hi = _scaled_row(-rel.expr, True)  # e > 0
        branches = [s + [lo] for s in branches] + [s + [hi] for s in branches]

    out: list[System] = []
    for branch in branches:
        monos = sorted(
            {m for coeffs, _, _ in branch for m in coeffs},
            key=Monomial.sort_key,
        )
        for m in monos:
            column_id(m)  # keep the stable id table warm
        index = {m: k for k, m in enumerate(monos)}
        width = len(monos)
        rows: list[list[int]] = []
        consts: list[int] = []
        stricts: list[bool] = []
        huge = False
        for coeffs, const, strict in branch:
            row = [0] * width
            for m, v in coeffs.items():
                row[index[m]] = v
                if abs(v) > _INT64_SAFE:
                    huge = True
            if abs(const) > _INT64_SAFE:
                huge = True
            rows.append(row)
            consts.append(const)
            stricts.append(strict)
        out.append(System(tuple(monos), rows, consts, stricts, huge))
    return out


# --------------------------------------------------------------------------- #
# pure-python elimination (exact; promotion target and no-numpy fallback)
# --------------------------------------------------------------------------- #


def _eliminate_py(
    rows: List[List[int]],
    consts: List[int],
    stricts: List[bool],
    max_variables: int,
    max_constraints: int,
) -> Optional[bool]:
    """FM elimination on integer row lists; True = infeasible, False =
    feasible (rationally), None = effort cap hit."""
    while True:
        keep_rows: list[list[int]] = []
        keep_consts: list[int] = []
        keep_stricts: list[bool] = []
        for row, const, strict in zip(rows, consts, stricts):
            if any(row):
                keep_rows.append(row)
                keep_consts.append(const)
                keep_stricts.append(strict)
            elif const > 0 or (strict and const >= 0):
                return True
        rows, consts, stricts = keep_rows, keep_consts, keep_stricts
        if not rows:
            return False
        width = len(rows[0])
        pos = [0] * width
        neg = [0] * width
        for row in rows:
            for k in range(width):
                v = row[k]
                if v > 0:
                    pos[k] += 1
                elif v < 0:
                    neg[k] += 1
        active = [k for k in range(width) if pos[k] or neg[k]]
        if len(active) > max_variables:
            COUNTERS.fm_var_limit_bailouts += 1
            return None
        if len(rows) > max_constraints:
            COUNTERS.fm_constraint_limit_bailouts += 1
            return None
        # pivot: fewest pos*neg products, ties to the lowest column
        # (columns are in monomial sort-key order — same rule as the
        # object eliminator)
        p = min(active, key=lambda k: (pos[k] * neg[k], k))
        uppers: list[int] = []
        lowers: list[int] = []
        others: list[int] = []
        for i, row in enumerate(rows):
            v = row[p]
            if v > 0:
                uppers.append(i)
            elif v < 0:
                lowers.append(i)
            else:
                others.append(i)
        # one eliminated pair = one budget step (satellite: proportional
        # degradation on dense systems)
        _budget_charge(len(uppers) * len(lowers))
        new_rows = [rows[i] for i in others]
        new_consts = [consts[i] for i in others]
        new_stricts = [stricts[i] for i in others]
        for ui in uppers:
            urow, uconst, ustrict = rows[ui], consts[ui], stricts[ui]
            a = urow[p]
            for li in lowers:
                lrow, lconst, lstrict = rows[li], consts[li], stricts[li]
                b = -lrow[p]
                crow = [b * u + a * l for u, l in zip(urow, lrow)]
                cconst = b * uconst + a * lconst
                cstrict = ustrict or lstrict
                if not any(crow):
                    if cconst > 0 or (cstrict and cconst >= 0):
                        return True
                    continue
                new_rows.append(crow)
                new_consts.append(cconst)
                new_stricts.append(cstrict)
        if len(new_rows) > max_constraints:
            COUNTERS.fm_constraint_limit_bailouts += 1
            return None
        rows, consts, stricts = new_rows, new_consts, new_stricts


# --------------------------------------------------------------------------- #
# numpy elimination (int64, overflow-checked, promotes to exact on risk)
# --------------------------------------------------------------------------- #


def _eliminate_np(system: System, max_variables, max_constraints):
    np = _np
    rows = np.array(system.rows, dtype=np.int64).reshape(
        len(system.rows), len(system.monos)
    )
    consts = np.array(system.consts, dtype=np.int64)
    stricts = np.array(system.stricts, dtype=bool)
    while True:
        nonconst = rows.any(axis=1)
        const_rows = ~nonconst
        if const_rows.any():
            cc = consts[const_rows]
            cs = stricts[const_rows]
            if bool((cc > 0).any()) or bool((cs & (cc >= 0)).any()):
                return True
            rows = rows[nonconst]
            consts = consts[nonconst]
            stricts = stricts[nonconst]
        if rows.shape[0] == 0:
            return False
        pos = (rows > 0).sum(axis=0)
        neg = (rows < 0).sum(axis=0)
        active = np.flatnonzero(pos | neg)
        if active.size > max_variables:
            COUNTERS.fm_var_limit_bailouts += 1
            return None
        if rows.shape[0] > max_constraints:
            COUNTERS.fm_constraint_limit_bailouts += 1
            return None
        cost = pos[active] * neg[active]
        # argmin takes the first minimum: active is ascending, columns
        # are in monomial sort-key order — the object eliminator's tie
        # break exactly
        p = int(active[int(np.argmin(cost))])
        col = rows[:, p]
        up_mask = col > 0
        lo_mask = col < 0
        uppers = rows[up_mask]
        lowers = rows[lo_mask]
        n_up, n_lo = uppers.shape[0], lowers.shape[0]
        if n_up and n_lo:
            # overflow bound before multiplying: the largest combined
            # entry is at most b_max*|up|_max + a_max*|lo|_max
            a = col[up_mask]
            b = -col[lo_mask]
            u_mag = max(
                int(np.abs(uppers).max()), int(np.abs(consts[up_mask]).max())
            )
            l_mag = max(
                int(np.abs(lowers).max()), int(np.abs(consts[lo_mask]).max())
            )
            bound = int(b.max()) * u_mag + int(a.max()) * l_mag
            if bound > _INT64_SAFE:
                COUNTERS.fm_matrix_overflow_promotions += 1
                return _eliminate_py(
                    [list(map(int, r)) for r in rows],
                    [int(c) for c in consts],
                    [bool(s) for s in stricts],
                    max_variables,
                    max_constraints,
                )
        _budget_charge(n_up * n_lo)
        others = ~(up_mask | lo_mask)
        new_rows = rows[others]
        new_consts = consts[others]
        new_stricts = stricts[others]
        if n_up and n_lo:
            a = col[up_mask]  # > 0, shape (U,)
            b = -col[lo_mask]  # > 0, shape (L,)
            combo = (
                b[None, :, None] * uppers[:, None, :]
                + a[:, None, None] * lowers[None, :, :]
            ).reshape(n_up * n_lo, rows.shape[1])
            combo_c = (
                b[None, :] * consts[up_mask][:, None]
                + a[:, None] * consts[lo_mask][None, :]
            ).reshape(n_up * n_lo)
            combo_s = (
                stricts[up_mask][:, None] | stricts[lo_mask][None, :]
            ).reshape(n_up * n_lo)
            is_const = ~combo.any(axis=1)
            if is_const.any():
                cc = combo_c[is_const]
                cs = combo_s[is_const]
                if bool((cc > 0).any()) or bool((cs & (cc >= 0)).any()):
                    return True
            keep = ~is_const
            new_rows = np.concatenate([new_rows, combo[keep]])
            new_consts = np.concatenate([new_consts, combo_c[keep]])
            new_stricts = np.concatenate([new_stricts, combo_s[keep]])
        if new_rows.shape[0] > max_constraints:
            COUNTERS.fm_constraint_limit_bailouts += 1
            return None
        rows, consts, stricts = new_rows, new_consts, new_stricts


# --------------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------------- #


def eliminate(
    system: System, max_variables: int, max_constraints: int
) -> Optional[bool]:
    """Run matrix FM on one system with the active backend."""
    COUNTERS.fm_matrix_systems += 1
    if system.huge or backend_name() != "numpy":
        if system.huge:
            COUNTERS.fm_matrix_overflow_promotions += 1
        return _eliminate_py(
            system.rows,
            system.consts,
            system.stricts,
            max_variables,
            max_constraints,
        )
    return _eliminate_np(system, max_variables, max_constraints)


def unsat_conjunction(
    relations: Sequence[Relation],
    max_ne_splits: int,
    max_variables: int,
    max_constraints: int,
) -> bool:
    """True only when every case-split system is provably infeasible."""
    for system in build_systems(relations, max_ne_splits):
        COUNTERS.fm_eliminations += 1
        if eliminate(system, max_variables, max_constraints) is not True:
            return False
    return True
