"""AST → Hierarchical Supergraph construction (paper section 4).

Each program unit gets a flow subgraph whose nodes are basic blocks,
IF-condition nodes (one condition per node), loop nodes (with the loop
body as an attached subgraph, back edge removed), and call nodes.

GOTO handling:

* forward GOTOs within the same subgraph become plain edges;
* a GOTO whose target lies outside the current loop body is a *premature
  exit*: the edge is routed to the body's exit node and the loop is
  flagged, which makes the dataflow layer approximate its loop-variant
  summaries conservatively (paper section 5.4);
* backward GOTOs create cycles that are condensed afterwards
  (:mod:`repro.hsg.condense`).

``RETURN``/``STOP`` route to the unit's exit; inside a loop body they are
treated as premature exits of every enclosing loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import HSGError
from ..fortran.ast_nodes import (
    Assign,
    CallStmt,
    Continue,
    Declaration,
    DimensionStmt,
    DoLoop,
    Goto,
    IfBlock,
    IoStmt,
    LogicalIf,
    MiscDecl,
    ParameterStmt,
    CommonStmt,
    Return,
    Stmt,
    Stop,
)
from ..fortran.callgraph import CallGraph, build_call_graph
from ..fortran.semantics import AnalyzedProgram
from .cfg import EdgeLabel, FlowGraph
from .condense import condense_cycles
from .nodes import (
    BasicBlockNode,
    CallNode,
    HSGNode,
    IfConditionNode,
    LoopNode,
)

_SIMPLE = (Assign, IoStmt, Continue, MiscDecl, Declaration, DimensionStmt,
           ParameterStmt, CommonStmt)

Frontier = list[tuple[HSGNode, EdgeLabel]]


@dataclass
class HSG:
    """The hierarchical supergraph: one flow subgraph per routine, plus the
    call graph that links call nodes to callee subgraphs."""

    analyzed: AnalyzedProgram
    graphs: dict[str, FlowGraph]
    call_graph: CallGraph
    #: loops by routine, in source order (outermost first)
    loops: dict[str, list[LoopNode]] = field(default_factory=dict)

    def graph(self, unit_name: str) -> FlowGraph:
        """The flow subgraph of one routine."""
        return self.graphs[unit_name]

    def all_loops(self) -> list[tuple[str, LoopNode]]:
        """Every (routine, LoopNode) pair, outermost first."""
        out = []
        for unit in self.analyzed.program.units:
            for loop in self.loops.get(unit.name, ()):
                out.append((unit.name, loop))
        return out


def build_hsg(analyzed: AnalyzedProgram) -> HSG:
    """Build flow subgraphs for every unit and link the hierarchy."""
    call_graph = build_call_graph(analyzed)
    graphs: dict[str, FlowGraph] = {}
    loops: dict[str, list[LoopNode]] = {}
    for unit in analyzed.program.units:
        builder = _Builder()
        graph = builder.build_unit(unit.body)
        condense_cycles(graph)
        graphs[unit.name] = graph
        loops[unit.name] = _collect_loops(graph)
    return HSG(analyzed, graphs, call_graph, loops)


def _collect_loops(graph: FlowGraph) -> list[LoopNode]:
    out: list[LoopNode] = []

    def rec(g: FlowGraph) -> None:
        for node in g.topological():
            if isinstance(node, LoopNode):
                out.append(node)
                rec(node.body)

    rec(graph)
    return out


class _Builder:
    """Builds one flow subgraph from a statement list."""

    def __init__(self) -> None:
        self.graph = FlowGraph()
        self.labels: dict[int, HSGNode] = {}
        self.pending_gotos: list[tuple[HSGNode, EdgeLabel, int]] = []
        self.pending_returns: Frontier = []
        self.had_return = False
        self._current_bb: Optional[BasicBlockNode] = None
        self._frontier: Frontier = [(self.graph.entry, None)]

    # -- public entry points -----------------------------------------------------

    def build_unit(self, stmts: list[Stmt]) -> FlowGraph:
        self._emit_block(stmts)
        self._close(to_exit=True)
        self._resolve_gotos(escape_to_exit=False)
        self.graph.prune_unreachable()
        return self.graph

    def build_loop_body(self, stmts: list[Stmt]) -> tuple[FlowGraph, bool]:
        """Build a loop-body subgraph; returns (graph, premature_exit)."""
        self._emit_block(stmts)
        self._close(to_exit=True)
        premature = self._resolve_gotos(escape_to_exit=True)
        premature = premature or self.had_return
        # returns inside the body escape through the body exit
        for node, label in self.pending_returns:
            self.graph.add_edge(node, self.graph.exit, label)
        self.pending_returns.clear()
        self.graph.prune_unreachable()
        return self.graph, premature

    # -- plumbing ------------------------------------------------------------------

    def _attach(self, node: HSGNode) -> None:
        """Connect all dangling edges to *node* and make it the frontier."""
        self.graph.add_node(node)
        for src, label in self._frontier:
            self.graph.add_edge(src, node, label)
        self._frontier = [(node, None)]

    def _flush(self) -> None:
        self._current_bb = None

    def _bb(self) -> BasicBlockNode:
        if self._current_bb is None:
            bb = BasicBlockNode([])
            self._attach(bb)
            self._current_bb = bb
        return self._current_bb

    def _record_label(self, label: Optional[int], node: HSGNode) -> None:
        if label is None:
            return
        if label in self.labels:
            raise HSGError(f"duplicate statement label {label}")
        self.labels[label] = node

    def _close(self, to_exit: bool) -> None:
        if to_exit:
            for src, label in self._frontier:
                self.graph.add_edge(src, self.graph.exit, label)
        self._frontier = []
        self._current_bb = None
        for node, label in self.pending_returns:
            self.graph.add_edge(node, self.graph.exit, label)
        self.pending_returns.clear()

    def _resolve_gotos(self, escape_to_exit: bool) -> bool:
        """Wire pending GOTO edges; returns True if any escaped the graph."""
        escaped = False
        for src, label, target in self.pending_gotos:
            dest = self.labels.get(target)
            if dest is None:
                if not escape_to_exit:
                    raise HSGError(f"unresolved GOTO target {target}")
                escaped = True
                self.graph.add_edge(src, self.graph.exit, label)
            else:
                self.graph.add_edge(src, dest, label)
        self.pending_gotos.clear()
        return escaped

    # -- statement dispatch ----------------------------------------------------------

    def _emit_block(self, stmts: list[Stmt]) -> None:
        for stmt in stmts:
            self._emit(stmt)

    def _emit(self, stmt: Stmt) -> None:
        if isinstance(stmt, _SIMPLE):
            if stmt.label is not None:
                self._flush()
            bb = self._bb()
            bb.stmts.append(stmt)
            self._record_label(stmt.label, bb)
            if stmt.label is not None:
                # the *next* simple statement must start a new block only if
                # it is itself a label target; sharing the block is fine
                pass
            return
        if isinstance(stmt, Goto):
            anchor: HSGNode
            if stmt.label is not None:
                # a labeled GOTO must be its own jump target block
                self._flush()
            if self._current_bb is not None:
                anchor = self._current_bb
            else:
                anchor = BasicBlockNode([])
                self._attach(anchor)
            self._record_label(stmt.label, anchor)
            self.pending_gotos.append((anchor, None, stmt.target))
            self._frontier = []
            self._flush()
            return
        if isinstance(stmt, (Return, Stop)):
            anchor = self._bb()
            self._record_label(stmt.label, anchor)
            self.pending_returns.extend(self._frontier)
            self.had_return = True
            self._frontier = []
            self._flush()
            return
        if isinstance(stmt, LogicalIf):
            self._flush()
            cond = IfConditionNode(stmt.cond, lineno=stmt.lineno)
            self._attach(cond)
            self._record_label(stmt.label, cond)
            inner = stmt.stmt
            if isinstance(inner, Goto):
                self.pending_gotos.append((cond, True, inner.target))
                self._frontier = [(cond, False)]
            elif isinstance(inner, (Return, Stop)):
                self.pending_returns.append((cond, True))
                self.had_return = True
                self._frontier = [(cond, False)]
            else:
                self._frontier = [(cond, True)]
                self._flush()
                self._emit(inner)
                taken = self._frontier
                self._frontier = taken + [(cond, False)]
            self._flush()
            return
        if isinstance(stmt, IfBlock):
            self._flush()
            joined: Frontier = []
            false_edge: Frontier = self._frontier
            for arm_cond, arm_body in stmt.arms:
                cond = IfConditionNode(arm_cond, lineno=stmt.lineno)
                self.graph.add_node(cond)
                for src, label in false_edge:
                    self.graph.add_edge(src, cond, label)
                if stmt.arms[0][0] is arm_cond:
                    self._record_label(stmt.label, cond)
                self._frontier = [(cond, True)]
                self._flush()
                self._emit_block(arm_body)
                joined.extend(self._frontier)
                false_edge = [(cond, False)]
            if stmt.orelse:
                self._frontier = false_edge
                self._flush()
                self._emit_block(stmt.orelse)
                joined.extend(self._frontier)
            else:
                joined.extend(false_edge)
            self._frontier = joined
            self._flush()
            return
        if isinstance(stmt, DoLoop):
            self._flush()
            body_builder = _Builder()
            body_graph, premature = body_builder.build_loop_body(stmt.body)
            self.had_return = self.had_return or body_builder.had_return
            loop = LoopNode(
                var=stmt.var,
                start=stmt.start,
                stop=stmt.stop,
                step=stmt.step,
                body=body_graph,
                lineno=stmt.lineno,
                source_label=stmt.label if stmt.label is not None else stmt.end_label,
                has_premature_exit=premature or body_builder.had_return,
            )
            self._attach(loop)
            self._record_label(stmt.label, loop)
            self._flush()
            return
        if isinstance(stmt, CallStmt):
            self._flush()
            node = CallNode(stmt)
            self._attach(node)
            self._record_label(stmt.label, node)
            self._flush()
            return
        raise HSGError(f"cannot build flow graph for {type(stmt).__name__}")
