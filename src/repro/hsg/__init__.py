"""Hierarchical Supergraph (HSG): interprocedural hierarchical flow graphs.

An enhancement of Myers' supergraph (paper section 4): per-routine flow
subgraphs with basic blocks, IF-condition nodes, compound loop nodes
(bodies as attached subgraphs, back edges removed), and call nodes linked
to callee subgraphs.  Backward-GOTO cycles are condensed so every subgraph
is a DAG.
"""

from .builder import HSG, build_hsg
from .cfg import EdgeLabel, FlowGraph
from .condense import condense_cycles
from .nodes import (
    BasicBlockNode,
    CallNode,
    CondensedNode,
    EntryNode,
    ExitNode,
    HSGNode,
    IfConditionNode,
    LoopNode,
)

__all__ = [
    "BasicBlockNode",
    "CallNode",
    "CondensedNode",
    "EdgeLabel",
    "EntryNode",
    "ExitNode",
    "FlowGraph",
    "HSG",
    "HSGNode",
    "IfConditionNode",
    "LoopNode",
    "build_hsg",
    "condense_cycles",
]
