"""Cycle condensation for backward GOTOs (paper section 5.4).

DO-loop back edges never appear in the HSG (loop bodies are separate
subgraphs), so the only cycles in a flow subgraph come from backward
GOTOs.  Each strongly connected component with more than one node (or a
self-loop) is collapsed into a single :class:`~repro.hsg.nodes.CondensedNode`
whose dataflow summary is conservatively approximated (every array
referenced inside is treated as wholly read and written).
"""

from __future__ import annotations

from .cfg import FlowGraph
from .nodes import CondensedNode, HSGNode


def _tarjan_sccs(graph: FlowGraph) -> list[list[HSGNode]]:
    """Tarjan's algorithm, iterative to survive deep graphs."""
    index: dict[HSGNode, int] = {}
    lowlink: dict[HSGNode, int] = {}
    on_stack: set[HSGNode] = set()
    stack: list[HSGNode] = []
    sccs: list[list[HSGNode]] = []
    counter = [0]

    for root in list(graph.nodes):
        if root in index:
            continue
        work: list[tuple[HSGNode, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            succs = [d for d, _ in graph.succs(node)]
            for i in range(child_idx, len(succs)):
                succ = succs[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                scc: list[HSGNode] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member is node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def condense_cycles(graph: FlowGraph) -> int:
    """Collapse every non-trivial SCC into a CondensedNode.

    Returns the number of condensations performed.  After this the graph
    is guaranteed to be a DAG.
    """
    count = 0
    while True:
        sccs = _tarjan_sccs(graph)
        nontrivial = [
            scc
            for scc in sccs
            if len(scc) > 1
            or any(d is scc[0] for d, _ in graph.succs(scc[0]))
        ]
        if not nontrivial:
            break
        for scc in nontrivial:
            members = set(scc)
            condensed = CondensedNode(list(scc))
            graph.add_node(condensed)
            incoming: list[tuple[HSGNode, object]] = []
            outgoing: list[tuple[HSGNode, object]] = []
            for member in scc:
                for src, label in graph.preds(member):
                    if src not in members:
                        incoming.append((src, label))
                for dst, label in graph.succs(member):
                    if dst not in members:
                        outgoing.append((dst, label))
            for member in scc:
                graph.remove_node(member)
            for src, label in incoming:
                graph.add_edge(src, condensed, label)  # type: ignore[arg-type]
            for dst, _label in outgoing:
                graph.add_edge(condensed, dst, None)
            count += 1
    return count
