"""Flow subgraphs: directed graphs of HSG nodes with labeled edges.

Edges carry an optional branch label: ``True``/``False`` for the two
successors of an :class:`~repro.hsg.nodes.IfConditionNode`, ``None``
otherwise.  After construction and condensation every flow subgraph is a
DAG with a unique entry and a unique exit, which is what the backward
summary propagation of section 4.1 requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import HSGError
from .nodes import EntryNode, ExitNode, HSGNode

EdgeLabel = Optional[bool]


@dataclass
class FlowGraph:
    """A flow subgraph with unique entry/exit."""

    entry: HSGNode = field(default_factory=EntryNode)
    exit: HSGNode = field(default_factory=ExitNode)
    _succs: dict[HSGNode, list[tuple[HSGNode, EdgeLabel]]] = field(
        default_factory=dict
    )
    _preds: dict[HSGNode, list[tuple[HSGNode, EdgeLabel]]] = field(
        default_factory=dict
    )
    nodes: list[HSGNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        for node in (self.entry, self.exit):
            if node not in self._succs:
                self._register(node)

    def _register(self, node: HSGNode) -> None:
        if node not in self._succs:
            self._succs[node] = []
            self._preds[node] = []
            self.nodes.append(node)

    def add_node(self, node: HSGNode) -> HSGNode:
        """Register a node (idempotent); returns it."""
        self._register(node)
        return node

    def add_edge(self, src: HSGNode, dst: HSGNode, label: EdgeLabel = None) -> None:
        """Add a labeled edge, registering endpoints as needed."""
        self._register(src)
        self._register(dst)
        if (dst, label) not in self._succs[src]:
            self._succs[src].append((dst, label))
            self._preds[dst].append((src, label))

    def succs(self, node: HSGNode) -> list[tuple[HSGNode, EdgeLabel]]:
        """The (successor, label) pairs of a node."""
        return list(self._succs.get(node, ()))

    def preds(self, node: HSGNode) -> list[tuple[HSGNode, EdgeLabel]]:
        """The (predecessor, label) pairs of a node."""
        return list(self._preds.get(node, ()))

    def remove_edges_of(self, node: HSGNode) -> None:
        """Disconnect a node from all neighbours."""
        for dst, label in self._succs.get(node, ()):
            self._preds[dst] = [
                (s, l) for s, l in self._preds[dst] if s is not node
            ]
        self._succs[node] = []
        for src, label in list(self._preds.get(node, ())):
            self._succs[src] = [
                (d, l) for d, l in self._succs[src] if d is not node
            ]
        self._preds[node] = []

    def remove_node(self, node: HSGNode) -> None:
        """Remove a node and its edges."""
        self.remove_edges_of(node)
        self.nodes = [n for n in self.nodes if n is not node]
        self._succs.pop(node, None)
        self._preds.pop(node, None)

    # -- orders -----------------------------------------------------------------

    def topological(self) -> list[HSGNode]:
        """Entry-to-exit topological order; raises on cycles."""
        indeg = {n: len(self._preds[n]) for n in self.nodes}
        ready = [n for n in self.nodes if indeg[n] == 0]
        order: list[HSGNode] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ, _ in self._succs[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            raise HSGError("flow subgraph contains a cycle")
        return order

    def reverse_topological(self) -> list[HSGNode]:
        """Exit-to-entry order (for backward passes)."""
        return list(reversed(self.topological()))

    def is_dag(self) -> bool:
        """Is the graph acyclic?"""
        try:
            self.topological()
            return True
        except HSGError:
            return False

    def reachable(self) -> set[HSGNode]:
        """Nodes reachable from the entry."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            node = stack.pop()
            for succ, _ in self._succs.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def prune_unreachable(self) -> None:
        """Drop nodes unreachable from the entry (keep exit)."""
        reachable = self.reachable()
        reachable.add(self.exit)
        for node in [n for n in self.nodes if n not in reachable]:
            self.remove_node(node)

    def iter_nodes(self) -> Iterator[HSGNode]:
        """Iterate over all nodes."""
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def dump(self, indent: str = "") -> str:
        """Human-readable listing (diagnostics and doc examples)."""
        from .nodes import LoopNode

        lines = []
        for node in self.topological():
            succs = ", ".join(
                f"{d.node_id}" + (f"[{l}]" if l is not None else "")
                for d, l in self._succs[node]
            )
            lines.append(f"{indent}{node.describe()} -> {succs or '-'}")
            if isinstance(node, LoopNode):
                lines.append(node.body.dump(indent + "    "))
        return "\n".join(lines)
