"""HSG node kinds (paper section 4).

The HSG contains basic blocks, loop nodes, and call nodes; an IF condition
forms a basic block of its own (:class:`IfConditionNode`).  Cycles caused
by backward GOTOs are condensed into :class:`CondensedNode`\\ s so every
flow subgraph is a DAG.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..fortran.ast_nodes import CallStmt, Expr, Stmt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cfg import FlowGraph

_ids = itertools.count(1)


@dataclass(eq=False)
class HSGNode:
    """Base class; nodes are identity-hashed graph vertices."""

    node_id: int = field(default_factory=lambda: next(_ids), init=False)

    @property
    def kind(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        """Short human-readable label for dumps."""
        return f"{self.kind}#{self.node_id}"

    def __repr__(self) -> str:
        return self.describe()


@dataclass(eq=False)
class EntryNode(HSGNode):
    """Unique entry of a flow subgraph."""


@dataclass(eq=False)
class ExitNode(HSGNode):
    """Unique exit of a flow subgraph."""


@dataclass(eq=False)
class BasicBlockNode(HSGNode):
    """A maximal straight-line sequence of simple statements."""

    stmts: list[Stmt] = field(default_factory=list)

    def describe(self) -> str:
        """Short human-readable label for dumps."""
        inner = "; ".join(str(s) for s in self.stmts[:3])
        if len(self.stmts) > 3:
            inner += "; ..."
        return f"BB#{self.node_id}[{inner}]"


@dataclass(eq=False)
class IfConditionNode(HSGNode):
    """An IF condition — its own basic block, with True/False out-edges."""

    cond: Expr = None  # type: ignore[assignment]
    lineno: int = 0

    def describe(self) -> str:
        """Short human-readable label for dumps."""
        return f"IF#{self.node_id}({self.cond})"


@dataclass(eq=False)
class LoopNode(HSGNode):
    """A DO loop: a compound node with an attached body subgraph.

    The back edge is deliberately absent from ``body`` (paper section 4).
    """

    var: str = ""
    start: Expr = None  # type: ignore[assignment]
    stop: Expr = None  # type: ignore[assignment]
    step: Optional[Expr] = None
    body: "FlowGraph" = None  # type: ignore[assignment]
    lineno: int = 0
    #: source identification for reports, e.g. "interf/1000"
    source_label: Optional[int] = None
    #: GOTO jumps out of the loop exist (conservative handling, 5.4)
    has_premature_exit: bool = False

    def describe(self) -> str:
        """Short human-readable label for dumps."""
        return f"DO#{self.node_id} {self.var}={self.start},{self.stop}"


@dataclass(eq=False)
class CallNode(HSGNode):
    """A CALL statement, linked to the callee's flow subgraph."""

    call: CallStmt = None  # type: ignore[assignment]

    @property
    def callee(self) -> str:
        return self.call.name

    def describe(self) -> str:
        """Short human-readable label for dumps."""
        return f"CALL#{self.node_id} {self.call.name}"


@dataclass(eq=False)
class CondensedNode(HSGNode):
    """A condensed backward-GOTO cycle (paper section 5.4).

    Its summary is conservatively approximated: every array referenced in
    the condensed statements is treated as wholly read and written (Ω).
    """

    members: list[HSGNode] = field(default_factory=list)

    def describe(self) -> str:
        """Short human-readable label for dumps."""
        return f"CYCLE#{self.node_id}({len(self.members)} nodes)"
