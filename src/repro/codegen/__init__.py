"""Parallel code generation: directive-annotated Fortran output."""

from .directives import DirectiveClauses, annotate, clauses_for, directive_lines

__all__ = ["DirectiveClauses", "annotate", "clauses_for", "directive_lines"]
