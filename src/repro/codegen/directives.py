"""Parallel code generation: directive-annotated Fortran output.

The paper notes (section 6) that Panorama "does not generate parallel
FORTRAN source code for any specific machine, although work is underway
for Silicon Graphics Power Challenges" — the loops were marked parallel
internally.  This module completes that step: it regenerates the program
from the AST with parallelization directives attached to every loop the
analysis proves parallel, in either of two styles:

* ``sgi`` — Power-Challenge-era ``C$DOACROSS`` with ``LOCAL``/``SHARE``/
  ``REDUCTION`` clauses (what the paper targeted);
* ``omp`` — modern ``C$OMP PARALLEL DO`` with ``PRIVATE``/``REDUCTION``
  and ``LASTPRIVATE`` (driven by the copy-out analysis).

Only the outermost parallel loop of each nest is annotated (no nested
parallelism, matching the paper's loop-level model).  Directives are
Fortran comments, so the generated text still parses with this package's
own frontend — round-trip tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..driver.panorama import CompilationResult, LoopReport
from ..fortran.ast_nodes import DoLoop, ProgramUnit, Stmt
from ..fortran.printers import unparse_stmt
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import BasicBlockNode, IfConditionNode, LoopNode
from ..parallelize import LoopStatus


@dataclass(frozen=True)
class DirectiveClauses:
    """The clause sets of one parallelized loop."""

    index_vars: tuple[str, ...]  # the loop's own + inner indices
    private: tuple[str, ...]  # privatized arrays and scalars
    lastprivate: tuple[str, ...]  # privatized arrays needing copy-out
    reductions: tuple[tuple[str, str], ...]  # (operator, variable)
    #: induction variables: private after rewriting to their closed forms
    inductions: tuple[str, ...]
    shared: tuple[str, ...]


def _inner_indices(loop: LoopNode) -> list[str]:
    out: list[str] = []

    def rec(graph: FlowGraph) -> None:
        for node in graph.nodes:
            if isinstance(node, LoopNode):
                out.append(node.var)
                rec(node.body)

    rec(loop.body)
    return list(dict.fromkeys(out))


def clauses_for(report: LoopReport, result: CompilationResult) -> DirectiveClauses:
    """Derive directive clauses from a parallel loop's analysis results."""
    verdict = report.verdict
    loop_node = _find_loop_node(result, report)
    inner = _inner_indices(loop_node) if loop_node is not None else []
    privatized = list(verdict.privatized) if verdict else []
    reductions: list[tuple[str, str]] = []
    if verdict:
        from ..parallelize.reductions import find_reductions

        ops = {}
        if loop_node is not None:
            ops = {r.name: r.operator for r in find_reductions(loop_node.body)}
        for name in verdict.reductions:
            reductions.append((ops.get(name, "+"), name))
    copy_out = tuple(
        d.name for d in report.copy_out if d.needs_copy_out
    )
    inductions = tuple(verdict.inductions) if verdict else ()
    private = tuple(
        sorted(
            (set(privatized) | set(inductions))
            - set(copy_out) - set(inner) - {report.var}
        )
    )
    shared = _shared_variables(result, report, loop_node, set(private)
                               | set(copy_out) | set(inner) | {report.var}
                               | {name for _, name in reductions})
    return DirectiveClauses(
        index_vars=tuple([report.var] + inner),
        private=private,
        lastprivate=copy_out,
        reductions=tuple(reductions),
        inductions=inductions,
        shared=tuple(shared),
    )


def _shared_variables(
    result: CompilationResult,
    report: LoopReport,
    loop_node: Optional[LoopNode],
    not_shared: set[str],
) -> list[str]:
    if report.verdict is None or report.verdict.record is None:
        return []
    record = report.verdict.record
    names = record.mod_i.arrays() | record.ue_i.arrays()
    return sorted(n for n in names if n not in not_shared and "@" not in n)


def _find_loop_node(
    result: CompilationResult, report: LoopReport
) -> Optional[LoopNode]:
    for unit_name, loop in result.hsg.all_loops():
        if (
            unit_name == report.routine
            and loop.lineno == report.lineno
            and loop.var == report.var
        ):
            return loop
    return None


def _format_clause_list(names: tuple[str, ...]) -> str:
    return ", ".join(name.upper() for name in names)


def directive_lines(clauses: DirectiveClauses, style: str) -> list[str]:
    """Render one loop's directive (possibly continued over lines)."""
    if style == "sgi":
        local = _format_clause_list(
            tuple(clauses.index_vars) + clauses.private + clauses.lastprivate
        )
        parts = [f"LOCAL({local})" if local else ""]
        if clauses.shared:
            parts.append(f"SHARE({_format_clause_list(clauses.shared)})")
        for op, name in clauses.reductions:
            parts.append(f"REDUCTION({name.upper()})")
        body = ", ".join(p for p in parts if p)
        return [f"C$DOACROSS {body}"]
    if style == "omp":
        lines = ["C$OMP PARALLEL DO"]
        priv = tuple(clauses.index_vars[1:]) + clauses.private
        if priv:
            lines.append(f"C$OMP&  PRIVATE({_format_clause_list(priv)})")
        if clauses.lastprivate:
            lines.append(
                f"C$OMP&  LASTPRIVATE({_format_clause_list(clauses.lastprivate)})"
            )
        for op, name in clauses.reductions:
            omp_op = {"+": "+", "*": "*", "min": "MIN", "max": "MAX"}.get(op, "+")
            lines.append(f"C$OMP&  REDUCTION({omp_op}:{name.upper()})")
        if clauses.shared:
            lines.append(f"C$OMP&  SHARED({_format_clause_list(clauses.shared)})")
        return lines
    raise ValueError(f"unknown directive style {style!r}")


def scan_directive_lines(report: LoopReport) -> list[str]:
    """The scan-schedule hint for a PARALLEL_SCAN loop.

    A scan is *not* a plain parallel DO — running it under DOACROSS/OMP
    PARALLEL DO would race on the carried chain — so the hint names the
    recurrence and the two-pass schedule instead, as a comment directive
    a scan-aware backend (or a human) can act on.
    """
    matches = report.verdict.scan_matches if report.verdict else []
    if not matches:
        return ["C$PAR SCAN SCHEDULE(TWO-PASS)"]
    inner = ", ".join(
        f"{m.name.upper()}: {m.shape.replace('_', '-')} over {m.operator}"
        f" distance {m.distance}"
        for m in matches
    )
    return [f"C$PAR SCAN({inner}) SCHEDULE(TWO-PASS)"]


def annotate(result: CompilationResult, style: str = "omp") -> str:
    """Regenerate the program with parallelization directives.

    Loops the analysis proved parallel (directly, after privatization, or
    as reductions) get a directive; everything else is emitted verbatim.
    Only the outermost parallel loop of a nest is annotated.
    """
    by_location: dict[tuple[str, int, str], LoopReport] = {}
    for report in result.loops:
        by_location[(report.routine, report.lineno, report.var)] = report

    out_lines: list[str] = []
    for unit in result.program.units:
        out_lines.extend(_emit_unit(unit, result, by_location, style))
        out_lines.append("")
    return "\n".join(out_lines).rstrip() + "\n"


def _emit_unit(
    unit: ProgramUnit,
    result: CompilationResult,
    by_location: dict,
    style: str,
) -> list[str]:
    header = {
        "program": f"      PROGRAM {unit.name}",
        "subroutine": f"      SUBROUTINE {unit.name}({', '.join(unit.params)})",
        "function": f"      FUNCTION {unit.name}({', '.join(unit.params)})",
    }[unit.kind]
    lines = [header]
    for decl in unit.decls:
        lines.extend("      " + l.strip() for l in unparse_stmt(decl, 0))
    lines.extend(
        _emit_block(unit.body, unit.name, result, by_location, style, 1, False)
    )
    lines.append("      END")
    return lines


def _emit_block(
    stmts: list[Stmt],
    routine: str,
    result: CompilationResult,
    by_location: dict,
    style: str,
    indent: int,
    inside_parallel: bool,
) -> list[str]:
    from ..fortran.ast_nodes import IfBlock, LogicalIf

    pad = "      " + "  " * (indent - 1)
    out: list[str] = []
    for stmt in stmts:
        if isinstance(stmt, DoLoop):
            report = by_location.get((routine, stmt.lineno, stmt.var))
            scan_this = (
                report is not None
                and report.status is LoopStatus.PARALLEL_SCAN
                and not inside_parallel
            )
            annotate_this = (
                report is not None
                and report.parallel
                and not scan_this
                and not inside_parallel
            )
            if scan_this:
                # directives are comments: column 1, never indented
                out.extend(scan_directive_lines(report))
            elif annotate_this:
                clauses = clauses_for(report, result)
                out.extend(directive_lines(clauses, style))
            step = f", {stmt.step}" if stmt.step is not None else ""
            label = f"{stmt.label} " if stmt.label is not None else ""
            out.append(
                f"{pad}{label}DO {stmt.var} = {stmt.start}, {stmt.stop}{step}"
            )
            out.extend(
                _emit_block(
                    stmt.body,
                    routine,
                    result,
                    by_location,
                    style,
                    indent + 1,
                    inside_parallel or annotate_this or scan_this,
                )
            )
            out.append(f"{pad}ENDDO")
            if annotate_this and style == "omp":
                out.append("C$OMP END PARALLEL DO")
            continue
        if isinstance(stmt, IfBlock):
            for arm_idx, (cond, body) in enumerate(stmt.arms):
                key = "IF" if arm_idx == 0 else "ELSEIF"
                out.append(f"{pad}{key} ({cond}) THEN")
                out.extend(
                    _emit_block(body, routine, result, by_location, style,
                                indent + 1, inside_parallel)
                )
            if stmt.orelse:
                out.append(f"{pad}ELSE")
                out.extend(
                    _emit_block(stmt.orelse, routine, result, by_location,
                                style, indent + 1, inside_parallel)
                )
            out.append(f"{pad}ENDIF")
            continue
        for line in unparse_stmt(stmt, 0):
            out.append(pad + line.strip())
    return out
