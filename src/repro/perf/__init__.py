"""Profiling and cache-observability layer for the symbolic kernels.

See :mod:`repro.perf.profiler` for the instruments.  This package must
stay dependency-free within :mod:`repro` — the symbolic substrate
imports it, never the other way round.
"""

from .profiler import (
    COUNTERS,
    MISS,
    BoundedCache,
    Counters,
    Probe,
    add_time,
    caches,
    clear_caches,
    delta,
    disable,
    enable,
    hit_rate,
    is_enabled,
    probe,
    reset,
    reset_timers,
    resize_caches,
    snapshot,
    timed,
    timers,
)

__all__ = [
    "BoundedCache",
    "COUNTERS",
    "Counters",
    "MISS",
    "Probe",
    "add_time",
    "caches",
    "clear_caches",
    "delta",
    "disable",
    "enable",
    "hit_rate",
    "is_enabled",
    "probe",
    "reset",
    "reset_timers",
    "resize_caches",
    "snapshot",
    "timed",
    "timers",
]
