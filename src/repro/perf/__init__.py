"""Profiling and cache-observability layer for the symbolic kernels.

See :mod:`repro.perf.profiler` for the instruments.  This package must
stay dependency-free within :mod:`repro` — the symbolic substrate
imports it, never the other way round.
"""

from .profiler import (
    COUNTERS,
    MISS,
    BoundedCache,
    Counters,
    add_time,
    caches,
    clear_caches,
    delta,
    disable,
    enable,
    is_enabled,
    reset,
    reset_timers,
    resize_caches,
    snapshot,
    timed,
    timers,
)

__all__ = [
    "BoundedCache",
    "COUNTERS",
    "Counters",
    "MISS",
    "add_time",
    "caches",
    "clear_caches",
    "delta",
    "disable",
    "enable",
    "is_enabled",
    "reset",
    "reset_timers",
    "resize_caches",
    "snapshot",
    "timed",
    "timers",
]
