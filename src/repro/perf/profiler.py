"""Low-overhead profiling substrate for the symbolic kernels.

Three instruments, all per-process:

* :class:`BoundedCache` — the LRU table behind every hash-consing /
  memoization layer in :mod:`repro.symbolic`.  Each cache keeps its own
  hit/miss/eviction counters as plain integer attributes (an ``int``
  increment per event, always on) and registers itself in a module-level
  registry so :func:`snapshot` can read every gauge at once.
* :class:`Counters` — a slotted singleton of call counters for the hot
  entry points (``Comparer.prove``, Fourier–Motzkin eliminations, the
  GAR simplifier, ``SUM_loop``/``SUM_call``).
* phase timers — wall-clock accumulators that cost **nothing unless
  profiling is enabled**: the :func:`timed` decorator checks the module
  flag before touching the clock, so a disabled run pays one boolean
  test per decorated call and the undecorated hot paths pay nothing.

Process model: every worker process owns its own caches and counters
(nothing here is shared or locked).  The batch engine ships each
worker's :func:`snapshot` delta home inside the serialized result
payload, exactly like the summary-cache statistics.

The whole module is import-cycle free by construction: it must never
import anything else from :mod:`repro`.
"""

from __future__ import annotations

import functools
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List

#: sentinel distinguishing "absent" from a legitimately cached ``None``
#: (three-valued verdicts store ``None`` as a real answer)
MISS = object()

#: module flag consulted by the timing instruments; leave ``False`` for
#: near-zero overhead, flip with :func:`enable`
ENABLED = False


# --------------------------------------------------------------------------- #
# bounded LRU caches
# --------------------------------------------------------------------------- #


class BoundedCache:
    """A bounded LRU mapping with always-on hit/miss/eviction gauges.

    Backed by an :class:`collections.OrderedDict`: a hit refreshes the
    entry's recency, an insert beyond ``maxsize`` evicts the least
    recently used entry.  Values may legitimately be ``None`` — lookups
    use the :data:`MISS` sentinel, not ``None``, for absence.
    """

    __slots__ = ("name", "maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, name: str, maxsize: int = 8192, register: bool = True):
        self.name = name
        self.maxsize = max(1, maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Any, Any] = OrderedDict()
        if register:
            _CACHES[name] = self

    def get(self, key: Any, default: Any = MISS) -> Any:
        data = self._data
        value = data.get(key, MISS)
        if value is MISS:
            self.misses += 1
            return default
        data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> Any:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1
        return value

    def clear(self) -> None:
        """Drop every entry (the counters survive — they are cumulative)."""
        self._data.clear()

    def resize(self, maxsize: int) -> None:
        """Change the bound, evicting LRU entries down to it if needed."""
        self.maxsize = max(1, maxsize)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
        }

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BoundedCache({self.name!r}, size={len(self._data)}/"
            f"{self.maxsize}, hits={self.hits}, misses={self.misses})"
        )


#: registry of every cache created with ``register=True``
_CACHES: Dict[str, BoundedCache] = {}


def caches() -> Dict[str, BoundedCache]:
    """The live cache registry (name → cache)."""
    return dict(_CACHES)


def clear_caches() -> None:
    """Empty every registered cache (a "cold start" for benchmarks).

    Only cache *contents* are dropped; counters keep accumulating, so
    use :func:`snapshot` deltas to attribute hits to a phase.
    """
    for cache in _CACHES.values():
        cache.clear()


def resize_caches(maxsize: int, names: Iterable[str] | None = None) -> None:
    """Rebound some (or all) registered caches — property tests use tiny
    bounds to exercise eviction."""
    wanted = set(names) if names is not None else None
    for name, cache in _CACHES.items():
        if wanted is None or name in wanted:
            cache.resize(maxsize)


# --------------------------------------------------------------------------- #
# call counters
# --------------------------------------------------------------------------- #


class Counters:
    """Slotted integer counters for the symbolic hot paths."""

    __slots__ = (
        "prove_calls",
        "prove_fm_queries",
        "fm_eliminations",
        # silent-give-up visibility: every FM effort-cap bail-out is a
        # degradation event counted here (surfaced by --profile and
        # --stats-json, see docs/robustness.md)
        "fm_var_limit_bailouts",
        "fm_constraint_limit_bailouts",
        "fm_ne_splits_dropped",
        # matrix constraint core: systems decided on the vectorized path,
        # int64-overflow promotions to the exact path, queries submitted
        # through the batch entry points, and oracle cross-check runs
        "fm_matrix_systems",
        "fm_matrix_overflow_promotions",
        "fm_batched_queries",
        "fm_oracle_crosschecks",
        "deptest_batched_pairs",
        "budget_fallbacks",
        "gar_simplify_calls",
        "gar_emptiness_checks",
        "sum_loop_calls",
        "sum_call_calls",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


COUNTERS = Counters()


# --------------------------------------------------------------------------- #
# phase timers
# --------------------------------------------------------------------------- #

#: phase name → [calls, accumulated seconds]
_TIMERS: Dict[str, List[float]] = {}


def enable() -> None:
    """Turn the wall-clock phase timers on (counters are always on)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn the phase timers back off."""
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


def add_time(phase: str, seconds: float) -> None:
    """Credit *seconds* of wall clock to *phase*."""
    entry = _TIMERS.get(phase)
    if entry is None:
        _TIMERS[phase] = [1, seconds]
    else:
        entry[0] += 1
        entry[1] += seconds


def timed(phase: str) -> Callable:
    """Decorator: time the call under *phase* when profiling is enabled.

    The disabled cost is one boolean test plus the wrapper call — do not
    put this on per-comparison hot paths (those get plain counters), use
    it on phase-granularity entry points like ``SUM_loop``.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                add_time(phase, time.perf_counter() - t0)

        return wrapper

    return decorate


def timers() -> Dict[str, Dict[str, float]]:
    return {
        phase: {"calls": calls, "seconds": seconds}
        for phase, (calls, seconds) in _TIMERS.items()
    }


def reset_timers() -> None:
    _TIMERS.clear()


# --------------------------------------------------------------------------- #
# snapshots
# --------------------------------------------------------------------------- #


def snapshot() -> Dict[str, float]:
    """Every gauge as one flat ``name → number`` dict.

    Keys: ``counter.<name>``, ``cache.<name>.<hits|misses|evictions>``,
    and (when profiling was enabled at some point) ``time.<phase>.calls``
    / ``time.<phase>.seconds``.  Flat numbers subtract cleanly
    (:func:`delta`) and serialize to JSON without custom encoders.
    """
    out: Dict[str, float] = {}
    for name, value in COUNTERS.as_dict().items():
        out[f"counter.{name}"] = value
    for name, cache in _CACHES.items():
        out[f"cache.{name}.hits"] = cache.hits
        out[f"cache.{name}.misses"] = cache.misses
        out[f"cache.{name}.evictions"] = cache.evictions
    for phase, (calls, seconds) in _TIMERS.items():
        out[f"time.{phase}.calls"] = calls
        out[f"time.{phase}.seconds"] = seconds
    return out


def delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
    """``after - before``, key-wise (missing keys count as zero)."""
    return {
        key: value - before.get(key, 0)
        for key, value in after.items()
        if value - before.get(key, 0)
    }


class Probe:
    """Delta scope over every gauge: one request's worth of activity.

    The analysis daemon opens a probe per request so each response can
    carry the symbolic counters *that request* caused, not the resident
    process's lifetime totals.  Works as a context manager or via
    explicit :meth:`finish`; ``probe.delta`` holds the flat
    :func:`snapshot`-keyed difference afterwards.
    """

    __slots__ = ("before", "delta")

    def __init__(self) -> None:
        self.before: Dict[str, float] = snapshot()
        self.delta: Dict[str, float] = {}

    def finish(self) -> Dict[str, float]:
        """Close the scope; returns (and stores) the gauge delta."""
        self.delta = delta(self.before, snapshot())
        return self.delta

    def __enter__(self) -> "Probe":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()


def probe() -> Probe:
    """Open a :class:`Probe` at the current gauge values."""
    return Probe()


def hit_rate(snap: Dict[str, float], prefix: str = "cache.") -> float | None:
    """Aggregate hit rate over the ``<prefix>*.hits/.misses`` gauges.

    Accepts a full :func:`snapshot` or a :func:`delta`; returns ``None``
    when the slice saw no lookups at all (0/0 is not a rate).
    """
    hits = 0.0
    misses = 0.0
    for key, value in snap.items():
        if not key.startswith(prefix):
            continue
        if key.endswith(".hits"):
            hits += value
        elif key.endswith(".misses"):
            misses += value
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


def reset() -> None:
    """Zero the counters and timers (cache contents are untouched)."""
    COUNTERS.reset()
    reset_timers()
