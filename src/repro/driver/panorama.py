"""The end-to-end Panorama pipeline.

Mirrors the structure the paper describes in section 6: parse → build the
HSG → try the cheap conventional dependence tests on each loop → apply
the expensive symbolic array dataflow analysis only to loops the
conventional tests cannot resolve → privatize/classify → (optionally)
estimate speedups with the machine model.

Per-stage wall-clock timings are recorded for the Figure 4 reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..dataflow import AnalysisOptions, SummaryAnalyzer
from ..errors import BudgetExceeded
from ..perf import profiler
from ..resilience import budget as budgets
from ..resilience import faults
from ..deptest.ddg import ScreenReport, ScreenVerdict, screen_loop
from ..fortran import AnalyzedProgram, Program, analyze, parse_program
from ..hsg import HSG, LoopNode, build_hsg
from ..machine.costmodel import CostModel, LoopCost, ProgramCost
from ..machine.speedup import MachineModel
from ..parallelize import LoopStatus, LoopVerdict, classify_loop
from ..privatize.liveness import CopyOutDecision, copy_out_needed


@dataclass
class LoopReport:
    """Everything the pipeline learned about one loop."""

    routine: str
    var: str
    source_label: Optional[int]
    lineno: int
    screen: ScreenReport
    #: None when the conventional tests already resolved the loop
    verdict: Optional[LoopVerdict]
    status: LoopStatus
    used_dataflow: bool
    cost: Optional[LoopCost] = None
    speedup: float = 1.0
    pct_sequential: float = 0.0
    #: last-value copy-out decisions for the privatized arrays (3.2.1)
    copy_out: list[CopyOutDecision] = field(default_factory=list)
    #: non-None when the verdict is a budget-exhaustion degradation:
    #: "budget" | "deadline" | "steps"
    degraded: Optional[str] = None
    #: machine-checkable evidence records (content facts consumed by the
    #: loop, recurrence decompositions) behind a frontier-assisted
    #: verdict — replayed by the static auditor (docs/frontier.md)
    evidence: list[dict] = field(default_factory=list)
    #: execution-schedule hint for codegen/cost model (None = plain
    #: parallel DO; "two-pass-scan" = chunk partials + prefix combine)
    schedule: Optional[str] = None

    @property
    def parallel(self) -> bool:
        return self.status not in (LoopStatus.SERIAL, LoopStatus.UNKNOWN)

    def loop_id(self) -> str:
        """Display id like ``"interf/1000"``."""
        return f"{self.routine}/{self.source_label or self.var}"


@dataclass
class StageTimings:
    """Per-stage wall-clock seconds (Figure 4 instrumentation)."""

    parse: float = 0.0
    frontend: float = 0.0  # semantics + call graph + HSG
    conventional: float = 0.0
    dataflow: float = 0.0
    machine: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.parse
            + self.frontend
            + self.conventional
            + self.dataflow
            + self.machine
        )


@dataclass
class CompilationResult:
    program: Program
    analyzed: AnalyzedProgram
    hsg: HSG
    analyzer: SummaryAnalyzer
    loops: list[LoopReport] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)
    cost: Optional[ProgramCost] = None

    def loop(self, routine: str, label: int | None) -> LoopReport:
        """Look up one loop's report by routine and label."""
        for report in self.loops:
            if report.routine == routine and report.source_label == label:
                return report
        raise KeyError(f"{routine}/{label}")

    def parallel_loops(self) -> list[LoopReport]:
        """Reports of the loops found parallel."""
        return [r for r in self.loops if r.parallel]

    def degraded_loops(self) -> list[LoopReport]:
        """Reports whose verdict is a budget-exhaustion degradation."""
        return [r for r in self.loops if r.degraded is not None]

    def summary_line(self) -> str:
        """One-line result summary."""
        par = len(self.parallel_loops())
        return (
            f"{par}/{len(self.loops)} loops parallel "
            f"({self.timings.total * 1000:.1f} ms analysis)"
        )


def _index_context_arrays(loop: LoopNode) -> set[str]:
    """Names used where content facts bite: subscripts of other array
    references, IF guards, and inner loop headers."""
    from ..fortran.ast_nodes import Apply, NameRef
    from ..hsg.nodes import BasicBlockNode, IfConditionNode
    from ..hsg.nodes import LoopNode as _LoopNode

    used: set[str] = set()

    def names_of(expr) -> None:
        for node in expr.walk():
            if isinstance(node, (NameRef, Apply)):
                used.add(node.name)

    def exprs_of(graph) -> None:
        for node in graph.nodes:
            if isinstance(node, BasicBlockNode):
                for stmt in node.stmts:
                    for expr in getattr(stmt, "target", None), getattr(
                        stmt, "value", None
                    ):
                        if expr is None:
                            continue
                        for sub in expr.walk():
                            if isinstance(sub, Apply):
                                for arg in sub.args:
                                    names_of(arg)
            elif isinstance(node, IfConditionNode):
                names_of(node.cond)
            elif isinstance(node, _LoopNode):
                names_of(node.start)
                names_of(node.stop)
                if node.step is not None:
                    names_of(node.step)
                exprs_of(node.body)

    exprs_of(loop.body)
    return used


class PipelineHooks:
    """Extension seam for layers above the pipeline (the batch engine).

    ``attach`` runs after the HSG and the analyzer exist but before any
    loop is analyzed — the place to install cached summary providers.
    ``finish`` runs after the verdicts (and machine model) are complete —
    the place to harvest freshly computed summaries into a cache.
    """

    def attach(self, analyzer: SummaryAnalyzer, hsg: HSG) -> None:
        """Called once per compile, before loop processing."""

    def loop_done(self, report: "LoopReport") -> None:
        """Called after each loop's verdict is appended to the result.

        The streaming seam: the analysis daemon turns these calls into
        NDJSON ``loop_verdict`` events while the compile is still
        running.  Fires in ``hsg.all_loops()`` order (outermost first,
        routines in program order), before the machine model runs, so
        ``report.speedup``/``report.cost`` are not final yet.
        """

    def finish(self, result: "CompilationResult") -> None:
        """Called once per compile, after the result is fully built."""


class CompositeHooks(PipelineHooks):
    """Fan one compile's hook events out to several hook objects.

    Lets a caller combine orthogonal hooks — e.g. the engine's
    ``CachingHooks`` plus the server's streaming event hooks — without
    either knowing about the other.  Hooks are called in the order
    given; ``None`` entries are dropped.
    """

    def __init__(self, *hooks: PipelineHooks | None) -> None:
        self.hooks = [h for h in hooks if h is not None]

    def attach(self, analyzer: SummaryAnalyzer, hsg: HSG) -> None:
        """Forward ``attach`` to every child hook in order."""
        for hook in self.hooks:
            hook.attach(analyzer, hsg)

    def loop_done(self, report: "LoopReport") -> None:
        """Forward ``loop_done`` to every child that implements it."""
        for hook in self.hooks:
            # CachingHooks predates loop_done and is duck-typed
            done = getattr(hook, "loop_done", None)
            if done is not None:
                done(report)

    def finish(self, result: "CompilationResult") -> None:
        """Forward ``finish`` to every child hook in order."""
        for hook in self.hooks:
            hook.finish(result)


class Panorama:
    """Facade: the prototyping parallelizing analyzer of the paper."""

    def __init__(
        self,
        options: AnalysisOptions | None = None,
        sizes: Mapping[str, int] | None = None,
        machine: MachineModel | None = None,
        run_conventional: bool = True,
        run_machine_model: bool = True,
        hooks: PipelineHooks | None = None,
    ) -> None:
        self.options = options or AnalysisOptions()
        self.sizes = dict(sizes or {})
        self.machine = machine or MachineModel()
        self.run_conventional = run_conventional
        self.run_machine_model = run_machine_model
        self.hooks = hooks

    # -- pipeline -----------------------------------------------------------------

    def compile(self, source: str) -> CompilationResult:
        """Run the full pipeline on Fortran source text."""
        perf_before = profiler.snapshot()
        timings = StageTimings()
        t0 = time.perf_counter()
        program = parse_program(source)
        timings.parse = time.perf_counter() - t0

        t0 = time.perf_counter()
        analyzed = analyze(program)
        hsg = build_hsg(analyzed)
        timings.frontend = time.perf_counter() - t0

        analyzer = SummaryAnalyzer(hsg, self.options)
        if self.options.frontier and self.options.symbolic:
            from ..contents import infer_program

            facts = infer_program(analyzed, self.options)
            facts.install(analyzer)
            analyzer.stats.content_facts += facts.count()
        if self.hooks is not None:
            self.hooks.attach(analyzer, hsg)
        result = CompilationResult(program, analyzed, hsg, analyzer, timings=timings)

        budget = self.options.budget()
        if faults.should_fire("budget.exhaust"):
            budget = budgets.AnalysisBudget(max_steps=0)
        with budgets.budget_scope(budget):
            for unit_name, loop in hsg.all_loops():
                report = self._process_loop(analyzer, unit_name, loop, timings)
                result.loops.append(report)
                if self.hooks is not None:
                    done = getattr(self.hooks, "loop_done", None)
                    if done is not None:
                        done(report)

        if self.run_machine_model:
            t0 = time.perf_counter()
            self._apply_machine_model(result)
            timings.machine = time.perf_counter() - t0
        analyzer.stats.symbolic = profiler.delta(perf_before, profiler.snapshot())
        if self.hooks is not None:
            self.hooks.finish(result)
        return result

    def _process_loop(
        self,
        analyzer: SummaryAnalyzer,
        unit_name: str,
        loop: LoopNode,
        timings: StageTimings,
    ) -> LoopReport:
        ctx = analyzer.context_for(unit_name)
        for idx in analyzer.enclosing_indices(unit_name, loop):
            ctx = ctx.with_index(idx)
        t0 = time.perf_counter()
        try:
            # one step per loop: gives deadline budgets a per-loop
            # checkpoint even when the loop never reaches the symbolic
            # kernels, and makes max_steps=0 degrade everything
            budgets.charge(1)
            if self.run_conventional:
                screen = screen_loop(loop, ctx, analyzer.comparer)
            else:
                screen = ScreenReport(ScreenVerdict.POSSIBLE_DEPENDENCE)
        except BudgetExceeded as exc:
            timings.conventional += time.perf_counter() - t0
            return self._degraded_report(analyzer, unit_name, loop, exc)
        timings.conventional += time.perf_counter() - t0

        if (
            screen.verdict is ScreenVerdict.INDEPENDENT
            and not loop.has_premature_exit
        ):
            report = LoopReport(
                routine=unit_name,
                var=loop.var,
                source_label=loop.source_label,
                lineno=loop.lineno,
                screen=screen,
                verdict=None,
                status=LoopStatus.PARALLEL,
                used_dataflow=False,
            )
            self._attach_evidence(analyzer, unit_name, loop, report)
            return report
        t0 = time.perf_counter()
        try:
            verdict = classify_loop(analyzer, unit_name, loop)
            copy_out: list[CopyOutDecision] = []
            if verdict.privatized and verdict.record is not None:
                below = analyzer.below_summary(unit_name, loop)
                table = analyzer.hsg.analyzed.table(unit_name)
                for name in verdict.privatized:
                    if not table.is_array(name):
                        continue
                    copy_out.append(
                        copy_out_needed(
                            name,
                            verdict.record.mod,
                            below.ue,
                            analyzer.comparer,
                        )
                    )
        except BudgetExceeded as exc:
            timings.dataflow += time.perf_counter() - t0
            return self._degraded_report(
                analyzer, unit_name, loop, exc, screen=screen
            )
        timings.dataflow += time.perf_counter() - t0
        report = LoopReport(
            routine=unit_name,
            var=loop.var,
            source_label=loop.source_label,
            lineno=loop.lineno,
            screen=screen,
            verdict=verdict,
            status=verdict.status,
            used_dataflow=True,
            copy_out=copy_out,
            degraded=verdict.record.degraded if verdict.record else None,
        )
        if verdict.status is LoopStatus.PARALLEL_SCAN:
            report.schedule = "two-pass-scan"
        self._attach_evidence(analyzer, unit_name, loop, report)
        return report

    def _attach_evidence(
        self,
        analyzer: SummaryAnalyzer,
        unit_name: str,
        loop: LoopNode,
        report: LoopReport,
    ) -> None:
        """Attach frontier evidence records to a parallel loop's report.

        Evidence is the content facts the loop plausibly consumed (its
        body mentions the fact array in a subscript, a guard, or an
        inner loop header) plus the recurrence decompositions behind a
        scan verdict.  ``frontier_upgrades`` counts parallel verdicts
        resting on at least one such record.
        """
        if not self.options.frontier or not report.parallel:
            return
        if report.verdict is not None:
            report.evidence.extend(
                m.to_payload() for m in report.verdict.scan_matches
            )
        facts = analyzer.content_facts
        if facts is not None:
            used = _index_context_arrays(loop)
            report.evidence.extend(facts.evidence_for(unit_name, used))
        if report.evidence:
            analyzer.stats.frontier_upgrades += 1

    def _degraded_report(
        self,
        analyzer: SummaryAnalyzer,
        unit_name: str,
        loop: LoopNode,
        exc: BudgetExceeded,
        screen: ScreenReport | None = None,
    ) -> LoopReport:
        """Budget ran out outside the SUM_* fallbacks: conservative verdict."""
        analyzer.stats.budget_degradations += 1
        profiler.COUNTERS.budget_fallbacks += 1
        return LoopReport(
            routine=unit_name,
            var=loop.var,
            source_label=loop.source_label,
            lineno=loop.lineno,
            screen=screen or ScreenReport(ScreenVerdict.POSSIBLE_DEPENDENCE),
            verdict=None,
            status=LoopStatus.UNKNOWN,
            used_dataflow=True,
            degraded=exc.reason,
        )

    def _apply_machine_model(self, result: CompilationResult) -> None:
        model = CostModel(result.analyzed, self.sizes)
        cost = model.program_cost()
        result.cost = cost
        by_key: dict[tuple[str, Optional[int], int], LoopCost] = {}
        for lc in cost.loops:
            by_key[(lc.routine, lc.source_label, lc.lineno)] = lc
        for report in result.loops:
            lc = by_key.get((report.routine, report.source_label, report.lineno))
            if lc is None:
                continue
            report.cost = lc
            report.pct_sequential = cost.percent_of_sequential(lc)
            if report.status is LoopStatus.PARALLEL_SCAN:
                report.speedup = self.machine.scan_speedup(lc)
            elif report.parallel:
                report.speedup = self.machine.loop_speedup(lc)
