"""Plain-text table formatting for the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with auto-sized columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(
                cell.ljust(w) for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def yes_no(flag: bool) -> str:
    """Render a flag as ``"Yes"``/``"No"``."""
    return "Yes" if flag else "No"


def fmt(value: float, digits: int = 1) -> str:
    """Format a float with fixed digits."""
    return f"{value:.{digits}f}"


def format_stats(stats, timings=None) -> str:
    """One-line rendering of the analyzer's cost counters.

    *stats* is an :class:`~repro.dataflow.context.AnalysisStats`;
    *timings* (optional) a :class:`~repro.driver.panorama.StageTimings`
    whose dataflow share contextualizes the counters.
    """
    line = (
        f"analysis cost: {stats.nodes_visited} HSG nodes visited, "
        f"{stats.gar_ops} GAR ops, peak GAR list {stats.peak_gar_list}, "
        f"{stats.routines_summarized} routine / "
        f"{stats.loops_summarized} loop summaries"
    )
    if timings is not None and timings.total > 0:
        share = timings.dataflow / timings.total * 100.0
        line += f" ({share:.0f}% of time in dataflow)"
    return line
