"""Plain-text table formatting for the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with auto-sized columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(
                cell.ljust(w) for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def yes_no(flag: bool) -> str:
    """Render a flag as ``"Yes"``/``"No"``."""
    return "Yes" if flag else "No"


def fmt(value: float, digits: int = 1) -> str:
    """Format a float with fixed digits."""
    return f"{value:.{digits}f}"


def format_stats(stats, timings=None, cache_backend=None) -> str:
    """One-line rendering of the analyzer's cost counters.

    *stats* is an :class:`~repro.dataflow.context.AnalysisStats`;
    *timings* (optional) a :class:`~repro.driver.panorama.StageTimings`
    whose dataflow share contextualizes the counters; *cache_backend*
    (optional) names the active durable summary tier, leading the line
    the same way ``--profile`` leads with the constraint backend.
    """
    line = "analysis cost: "
    if cache_backend:
        line = f"cache backend: {cache_backend}\n" + line
    line += (
        f"{stats.nodes_visited} HSG nodes visited, "
        f"{stats.gar_ops} GAR ops, peak GAR list {stats.peak_gar_list}, "
        f"{stats.routines_summarized} routine / "
        f"{stats.loops_summarized} loop summaries"
    )
    if timings is not None and timings.total > 0:
        share = timings.dataflow / timings.total * 100.0
        line += f" ({share:.0f}% of time in dataflow)"
    symbolic = getattr(stats, "symbolic", None)
    if symbolic:
        hits = sum(
            v for k, v in symbolic.items()
            if k.startswith("cache.") and k.endswith(".hits")
        )
        misses = sum(
            v for k, v in symbolic.items()
            if k.startswith("cache.") and k.endswith(".misses")
        )
        proves = symbolic.get("counter.prove_calls", 0)
        if hits or misses:
            total = hits + misses
            rate = hits / total * 100.0 if total else 0.0
            line += (
                f"; symbolic caches: {int(hits)} hit(s) / "
                f"{int(misses)} miss(es) ({rate:.0f}% hit rate), "
                f"{int(proves)} prove call(s)"
            )
    return line


def format_perf(symbolic: dict) -> str:
    """Render a ``repro.perf`` snapshot delta (``--profile`` output).

    Three sections: per-phase wall-clock timers, hot-path call counters,
    and per-cache hit/miss/eviction gauges.  Keys follow the flat
    ``repro.perf.profiler.snapshot`` naming scheme.
    """
    from ..symbolic.matrix import backend_name

    sections: list[str] = [f"constraint backend: {backend_name()}"]
    phases = sorted(
        {k[5:].rsplit(".", 1)[0] for k in symbolic if k.startswith("time.")}
    )
    if phases:
        rows = [
            (
                p,
                int(symbolic.get(f"time.{p}.calls", 0)),
                f"{symbolic.get(f'time.{p}.seconds', 0.0) * 1000:.1f}",
            )
            for p in phases
        ]
        sections.append(
            format_table(["phase", "calls", "ms"], rows, title="phase timers")
        )
    counters = sorted(k for k in symbolic if k.startswith("counter."))
    if counters:
        rows = [(k.split(".", 1)[1], int(symbolic[k])) for k in counters]
        sections.append(
            format_table(["counter", "count"], rows, title="hot-path counters")
        )
    # cache names themselves contain dots ("monomial.intern"), so strip
    # the "cache." prefix and the final ".hits"/".misses"/… component
    names = sorted(
        {k[6:].rsplit(".", 1)[0] for k in symbolic if k.startswith("cache.")}
    )
    if names:
        rows = []
        for n in names:
            hits = int(symbolic.get(f"cache.{n}.hits", 0))
            misses = int(symbolic.get(f"cache.{n}.misses", 0))
            total = hits + misses
            rate = f"{hits / total * 100.0:.0f}%" if total else "-"
            rows.append(
                (n, hits, misses, int(symbolic.get(f"cache.{n}.evictions", 0)), rate)
            )
        sections.append(
            format_table(
                ["cache", "hits", "misses", "evictions", "hit rate"],
                rows,
                title="symbolic caches",
            )
        )
    if len(sections) == 1:
        return sections[0] + "\nno profiling data recorded"
    return "\n\n".join(sections)
