"""End-to-end pipeline, reporting, and CLI."""

from .panorama import (
    CompilationResult,
    CompositeHooks,
    LoopReport,
    Panorama,
    PipelineHooks,
    StageTimings,
)
from .report import format_table, yes_no

__all__ = [
    "CompilationResult",
    "CompositeHooks",
    "LoopReport",
    "Panorama",
    "PipelineHooks",
    "StageTimings",
    "format_table",
    "yes_no",
]
