"""Command-line interface: ``panorama [options] file.f``.

Runs the full pipeline on a Fortran source file and prints the per-loop
verdicts, optionally with loop summaries, the HSG, and technique
ablations.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..dataflow import AnalysisOptions
from ..perf import profiler
from .panorama import Panorama
from .report import format_perf, format_stats, format_table, yes_no


def build_arg_parser() -> argparse.ArgumentParser:
    """The panorama CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="panorama",
        description=(
            "Symbolic array dataflow analysis for array privatization and "
            "loop parallelization (reproduction of Gu, Li & Lee, SC'95)."
        ),
    )
    parser.add_argument("source", help="Fortran source file ('-' for stdin)")
    parser.add_argument(
        "--ablate",
        choices=["T1", "T2", "T3"],
        action="append",
        default=[],
        help="disable a technique (repeatable): T1 symbolic, "
        "T2 IF conditions, T3 interprocedural",
    )
    parser.add_argument(
        "--no-fm",
        action="store_true",
        help="disable the Fourier-Motzkin fallback prover",
    )
    parser.add_argument(
        "--no-frontier",
        action="store_true",
        help="disable the frontier pass (array-content facts and "
        "scan/recurrence recognition; docs/frontier.md); also settable "
        "via PANORAMA_NO_FRONTIER=1",
    )
    parser.add_argument(
        "--summaries",
        action="store_true",
        help="print MOD/UE loop summaries for every analyzed loop",
    )
    parser.add_argument(
        "--dump-hsg", action="store_true", help="print the HSG of every routine"
    )
    parser.add_argument(
        "--no-machine",
        action="store_true",
        help="skip cost/speedup estimation",
    )
    parser.add_argument(
        "--emit",
        choices=["omp", "sgi"],
        help="print the program annotated with parallelization directives",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the per-loop verdicts as machine-readable JSON",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable the symbolic-kernel profiler and print per-phase "
        "timers plus cache hit/miss counters after the verdicts",
    )
    parser.add_argument(
        "--budget-ms",
        type=float,
        metavar="MS",
        help="analysis deadline; on exhaustion remaining loops degrade "
        "to conservative 'unknown (budget)' verdicts (exit 3)",
    )
    parser.add_argument(
        "--budget-steps",
        type=int,
        metavar="N",
        help="symbolic step budget (deterministic analogue of --budget-ms)",
    )
    audit = parser.add_argument_group("auditing (docs/auditing.md)")
    audit.add_argument(
        "--audit",
        action="store_true",
        help="run the static race auditor over every parallel verdict and "
        "print its diagnostics (PAN1xx/PAN2xx/PAN3xx)",
    )
    audit.add_argument(
        "--sarif",
        metavar="PATH",
        help="write the audit diagnostics as a SARIF 2.1.0 log "
        "(implies --audit)",
    )
    audit.add_argument(
        "--strict-audit",
        action="store_true",
        help="exit 4 when the audit finds a confirmed disagreement or an "
        "internal-consistency violation (implies --audit)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=_version_string(),
    )
    return parser


def _version_string() -> str:
    from .. import __version__

    return f"%(prog)s {__version__}"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_arg_parser().parse_args(argv)
    if args.source == "-":
        source = sys.stdin.read()
    else:
        source = Path(args.source).read_text()

    extra = {"frontier": False} if args.no_frontier else {}
    options = AnalysisOptions(
        symbolic="T1" not in args.ablate,
        if_conditions="T2" not in args.ablate,
        interprocedural="T3" not in args.ablate,
        use_fm=not args.no_fm,
        budget_ms=args.budget_ms,
        budget_steps=args.budget_steps,
        **extra,
    )
    if args.profile:
        profiler.enable()
    run_audit = args.audit or args.sarif or args.strict_audit
    panorama = Panorama(options, run_machine_model=not args.no_machine)
    result = panorama.compile(source)
    # 3 = degraded-but-complete: some verdicts are budget fallbacks
    exit_code = 3 if result.degraded_loops() else 0

    audit_report = None
    if run_audit:
        from ..audit import audit_compilation

        audit_report = audit_compilation(
            result, Path(str(args.source)).name, source=source
        )
        if args.sarif:
            from ..diagnostics import write_sarif

            write_sarif(audit_report.diagnostics(), args.sarif)
        if args.strict_audit and audit_report.errors():
            # 4 = the audit found a confirmed disagreement; it trumps
            # the degraded-verdicts code because it is a soundness bug,
            # not a capacity shortfall
            exit_code = 4

    if args.json:
        # same serializer the batch engine ships results with
        from ..engine.telemetry import result_to_dict

        print(
            json.dumps(
                result_to_dict(
                    result,
                    name=Path(str(args.source)).name,
                    audit=audit_report,
                ),
                indent=2,
                sort_keys=True,
            )
        )
        return exit_code

    if args.dump_hsg:
        for unit in result.program.units:
            print(f"--- HSG of {unit.name} ---")
            print(result.hsg.graph(unit.name).dump())
            print()

    rows = []
    for report in result.loops:
        rows.append(
            [
                report.loop_id(),
                report.var,
                report.status.value,
                yes_no(report.used_dataflow),
                ", ".join(report.verdict.privatized) if report.verdict else "",
                ", ".join(report.verdict.reductions) if report.verdict else "",
                f"{report.speedup:.1f}x" if report.parallel else "-",
            ]
        )
    print(
        format_table(
            ["loop", "index", "status", "dataflow", "privatized",
             "reductions", "est. speedup"],
            rows,
            title=f"Panorama verdicts ({Path(str(args.source)).name})",
        )
    )
    print()
    print(result.summary_line())
    print(format_stats(result.analyzer.stats, result.timings))

    if args.profile:
        print()
        print(format_perf(result.analyzer.stats.symbolic))

    if args.summaries:
        for report in result.loops:
            if report.verdict and report.verdict.record:
                print()
                print(report.verdict.record)

    if audit_report is not None:
        from ..diagnostics import render_text

        print()
        print(audit_report.summary_line())
        diags = audit_report.diagnostics()
        if diags:
            print(render_text(diags))

    if args.emit:
        from ..codegen import annotate

        print()
        print(annotate(result, style=args.emit))
    if exit_code == 4:
        print(
            "panorama: strict audit failed: "
            f"{len(audit_report.errors())} error-severity diagnostic(s) "
            "(exit 4)",
            file=sys.stderr,
        )
    elif exit_code == 3:
        print(
            f"panorama: {len(result.degraded_loops())} loop verdict(s) "
            "degraded by budget exhaustion (exit 3)",
            file=sys.stderr,
        )
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
