"""Static execution-cost model over the AST.

Stands in for the paper's measurement substrate (Alliant FX/8 runs of the
Perfect codes): a simple operation-counting model that assigns each
statement a unit-ish cost and multiplies loop bodies by trip counts.
Symbolic trip counts are resolved against a caller-supplied environment of
problem-size parameters (the Perfect input decks fix these), with a
documented default when unknown.

Loops are reported with their *whole-program* cost: per-unit records are
scaled by the unit's invocation count, which is propagated top-down from
the main program through call sites (weighted by enclosing trip counts).

The model is deliberately simple — the Table 1 reproduction needs relative
magnitudes (which loop dominates, roughly how much work per iteration),
not cycle accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from ..dataflow.convert import ConversionContext, to_symexpr
from ..fortran.ast_nodes import (
    Apply,
    Assign,
    BinOp,
    CallStmt,
    Continue,
    DoLoop,
    Expr,
    Goto,
    IfBlock,
    IoStmt,
    LogicalIf,
    Return,
    Stmt,
    Stop,
    UnOp,
)
from ..fortran.semantics import AnalyzedProgram

#: default trip count for loops whose bounds the environment cannot resolve
DEFAULT_TRIP = 50
#: flat cost charged per intrinsic/external function evaluation
CALL_EVAL_COST = 8.0


@dataclass
class LoopCost:
    """Cost record for one source loop (whole-program totals)."""

    routine: str
    source_label: Optional[int]
    var: str
    lineno: int
    trips: float
    body_cost: float  # one iteration
    total_cost: float  # trips * body * invocations of the routine
    #: executions of the loop itself across the program
    invocations: float
    #: deepest loop is vector-unit eligible when its body is straight-line
    vectorizable_inner: bool


@dataclass
class ProgramCost:
    total: float
    loops: list[LoopCost] = field(default_factory=list)
    routine_costs: dict[str, float] = field(default_factory=dict)

    def loop(self, routine: str, label: int | None) -> LoopCost:
        """Look up the record of one source loop."""
        for lc in self.loops:
            if lc.routine == routine and lc.source_label == label:
                return lc
        raise KeyError(f"{routine}/{label}")

    def percent_of_sequential(self, lc: LoopCost) -> float:
        """The loop's share of total program cost."""
        return 100.0 * lc.total_cost / self.total if self.total else 0.0


class CostModel:
    """Operation-counting cost estimator."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        sizes: Mapping[str, int] | None = None,
        default_trip: int = DEFAULT_TRIP,
    ) -> None:
        self.analyzed = analyzed
        self.sizes = dict(sizes or {})
        self.default_trip = default_trip
        self._unit_cache: dict[str, float] = {}
        self._unit_loops: dict[str, list[LoopCost]] = {}
        self._unit_call_weights: dict[str, dict[str, float]] = {}
        self._in_progress: set[str] = set()

    # -- public ------------------------------------------------------------------

    def program_cost(self) -> ProgramCost:
        """Total cost plus per-loop records for the whole program."""
        self._unit_cache.clear()
        self._unit_loops.clear()
        self._unit_call_weights.clear()
        main = self.analyzed.program.main()
        total = self.unit_cost(main.name)
        invocations = self._invocation_counts(main.name)
        loops: list[LoopCost] = []
        for unit_name, records in self._unit_loops.items():
            times = invocations.get(unit_name, 0.0)
            if times <= 0:
                continue
            for record in records:
                loops.append(
                    replace(
                        record,
                        total_cost=record.total_cost * times,
                        invocations=record.invocations * times,
                    )
                )
        return ProgramCost(total, loops, dict(self._unit_cache))

    def unit_cost(self, name: str) -> float:
        """Cost of one routine invocation (cached)."""
        cached = self._unit_cache.get(name)
        if cached is not None:
            return cached
        if name in self._in_progress:
            return CALL_EVAL_COST  # recursion guard (rejected elsewhere)
        self._in_progress.add(name)
        try:
            unit = self.analyzed.unit(name)
            ctx = ConversionContext(self.analyzed.table(name))
            self._unit_loops[name] = []
            self._unit_call_weights[name] = {}
            cost = self._block_cost(unit.body, ctx, name, 1.0)
        finally:
            self._in_progress.discard(name)
        self._unit_cache[name] = cost
        return cost

    def _invocation_counts(self, main: str) -> dict[str, float]:
        """Times each unit executes, following weighted call edges from main."""
        counts: dict[str, float] = {main: 1.0}
        # process in caller-before-callee order: reverse of the bottom-up
        # topological order of the call graph edges we recorded
        order = self._topological_from(main)
        for caller in order:
            for callee, weight in self._unit_call_weights.get(caller, {}).items():
                counts[callee] = counts.get(callee, 0.0) + counts.get(
                    caller, 0.0
                ) * weight
        return counts

    def _topological_from(self, main: str) -> list[str]:
        """Callers strictly before callees (Kahn over the weighted edges)."""
        reachable: set[str] = set()

        def visit(name: str) -> None:
            if name in reachable:
                return
            reachable.add(name)
            for callee in self._unit_call_weights.get(name, {}):
                visit(callee)

        visit(main)
        indeg: dict[str, int] = {name: 0 for name in reachable}
        for caller in reachable:
            for callee in self._unit_call_weights.get(caller, {}):
                if callee in indeg:
                    indeg[callee] += 1
        ready = [n for n, d in indeg.items() if d == 0]
        order: list[str] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for callee in self._unit_call_weights.get(node, {}):
                indeg[callee] -= 1
                if indeg[callee] == 0:
                    ready.append(callee)
        return order

    # -- statement costs ---------------------------------------------------------------

    def _block_cost(
        self, stmts: list[Stmt], ctx: ConversionContext, routine: str, mult: float
    ) -> float:
        return sum(self._stmt_cost(s, ctx, routine, mult) for s in stmts)

    def _stmt_cost(
        self, stmt: Stmt, ctx: ConversionContext, routine: str, mult: float
    ) -> float:
        if isinstance(stmt, Assign):
            return 1.0 + self._expr_cost(stmt.value) + self._expr_cost(stmt.target)
        if isinstance(stmt, CallStmt):
            args = sum(self._expr_cost(a) for a in stmt.args)
            if stmt.name in {u.name for u in self.analyzed.program.units}:
                weights = self._unit_call_weights.setdefault(routine, {})
                weights[stmt.name] = weights.get(stmt.name, 0.0) + mult
                return 2.0 + args + self.unit_cost(stmt.name)
            return CALL_EVAL_COST + args
        if isinstance(stmt, IfBlock):
            cost = 0.0
            for cond, body in stmt.arms:
                cost += 0.5 + self._expr_cost(cond)
                cost += 0.5 * self._block_cost(body, ctx, routine, mult * 0.5)
            cost += 0.5 * self._block_cost(stmt.orelse, ctx, routine, mult * 0.5)
            return cost
        if isinstance(stmt, LogicalIf):
            return (
                0.5
                + self._expr_cost(stmt.cond)
                + 0.5 * self._stmt_cost(stmt.stmt, ctx, routine, mult * 0.5)
            )
        if isinstance(stmt, DoLoop):
            return self._loop_cost(stmt, ctx, routine, mult)
        if isinstance(stmt, IoStmt):
            return 4.0 + sum(self._expr_cost(i) for i in stmt.items)
        if isinstance(stmt, (Goto, Continue, Return, Stop)):
            return 0.2
        return 0.0  # declarations

    def _loop_cost(
        self, stmt: DoLoop, ctx: ConversionContext, routine: str, mult: float
    ) -> float:
        trips = self._trip_count(stmt, ctx)
        inner_ctx = ctx.with_index(stmt.var)
        body = self._block_cost(stmt.body, inner_ctx, routine, mult * trips)
        total = trips * (body + 0.5) + 1.0
        self._unit_loops.setdefault(routine, []).append(
            LoopCost(
                routine=routine,
                source_label=stmt.label if stmt.label is not None else stmt.end_label,
                var=stmt.var,
                lineno=stmt.lineno,
                trips=trips,
                body_cost=body,
                total_cost=total * mult,
                invocations=mult,
                vectorizable_inner=self._is_vector_body(stmt),
            )
        )
        return total

    def _trip_count(self, stmt: DoLoop, ctx: ConversionContext) -> float:
        lo = self._resolve(stmt.start, ctx)
        hi = self._resolve(stmt.stop, ctx)
        step = self._resolve(stmt.step, ctx) if stmt.step is not None else 1
        if lo is None or hi is None or step in (None, 0):
            return float(self.default_trip)
        trips = (hi - lo) // step + 1 if step else 0
        return float(max(trips, 0))

    def _resolve(self, expr: Optional[Expr], ctx: ConversionContext) -> Optional[int]:
        if expr is None:
            return None
        sym = to_symexpr(expr, ctx)
        if sym is None:
            return None
        try:
            value = sym.evaluate(dict(self.sizes))
        except KeyError:
            return None
        if value.denominator != 1:
            return None
        return value.numerator

    def _is_vector_body(self, stmt: DoLoop) -> bool:
        """The loop's iteration work vectorizes on a vector-unit CPU.

        True for an innermost loop whose body is straight-line array
        assignments, and for an outer loop whose contained loops are all
        vectorizable — the Alliant concurrent-outer/vector-inner regime
        that lets the paper's TRFD loops exceed the processor count.
        """
        inner_loops = [s for s in stmt.body if isinstance(s, DoLoop)]
        if inner_loops:
            simple_rest = all(
                isinstance(s, (DoLoop, Assign, Continue)) for s in stmt.body
            )
            return simple_rest and all(
                self._is_vector_body(inner) for inner in inner_loops
            )
        for s in stmt.body:
            if isinstance(s, (IfBlock, LogicalIf, Goto, CallStmt, IoStmt)):
                return False
        return any(
            isinstance(s, Assign) and isinstance(s.target, Apply)
            for s in stmt.body
        )

    # -- expression cost ----------------------------------------------------------------

    def _expr_cost(self, expr: Expr) -> float:
        cost = 0.0
        for node in expr.walk():
            if isinstance(node, BinOp):
                cost += 2.0 if node.op in ("*", "/", "**") else 1.0
            elif isinstance(node, UnOp):
                cost += 0.5
            elif isinstance(node, Apply):
                cost += 1.0 if node.is_array else CALL_EVAL_COST
        return cost
