"""Machine model substrate: cost estimation and Alliant-FX/8-like speedups."""

from .costmodel import CostModel, LoopCost, ProgramCost
from .speedup import MachineModel

__all__ = ["CostModel", "LoopCost", "MachineModel", "ProgramCost"]
