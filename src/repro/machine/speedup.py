"""Parallel speedup estimation — an Alliant FX/8-like machine model.

The paper measures (or, for ARC2D, estimates) per-loop speedups on an
8-processor Alliant FX/8 whose CPUs carry vector units.  This model
reproduces the *shape* of those numbers:

* a parallelized loop spreads its iterations over ``processors`` CPUs;
* an iteration whose body is a vectorizable inner loop (straight-line
  array operations) gains an extra ``vector_factor`` on each CPU — this is
  how the paper's TRFD loops exceed the processor count (16.4 on 8 CPUs);
* per-invocation startup and per-iteration synchronization overheads bound
  the achievable speedup for small loops (ARC2D's 3.0–4.0 figures).
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import LoopCost, ProgramCost


@dataclass(frozen=True)
class MachineModel:
    """An idealized bus-based shared-memory multiprocessor."""

    processors: int = 8
    #: extra per-CPU speedup when the parallel iteration body vectorizes
    vector_factor: float = 2.6
    #: fraction of each iteration that resists vectorization
    vector_serial_fraction: float = 0.08
    #: cost of forking/joining a parallel loop, in model cost units
    startup_cost: float = 120.0
    #: per-iteration scheduling overhead
    sync_cost: float = 0.6
    #: memory-bus contention efficiency per added processor
    efficiency: float = 0.97

    def effective_processors(self, trips: float) -> float:
        """Usable parallelism for a given trip count."""
        p = min(float(self.processors), max(trips, 1.0))
        # bus contention: each additional CPU contributes a bit less
        total = 0.0
        gain = 1.0
        for _ in range(int(p)):
            total += gain
            gain *= self.efficiency
        frac = p - int(p)
        total += gain * frac
        return max(total, 1.0)

    def vector_gain(self, loop: LoopCost) -> float:
        """Per-CPU gain from the vector units, when eligible."""
        if not loop.vectorizable_inner:
            return 1.0
        f = self.vector_serial_fraction
        return 1.0 / (f + (1.0 - f) / self.vector_factor)

    def loop_speedup(self, loop: LoopCost) -> float:
        """Estimated speedup of the parallelized loop over its serial run."""
        serial = loop.total_cost
        if serial <= 0:
            return 1.0
        p_eff = self.effective_processors(loop.trips)
        v = self.vector_gain(loop)
        parallel_compute = serial / (p_eff * v)
        parallel = parallel_compute + self.startup_cost + self.sync_cost * (
            loop.trips / max(p_eff, 1.0)
        )
        return max(serial / parallel, 1.0)

    def scan_speedup(self, loop: LoopCost) -> float:
        """Estimated speedup of a loop run under the two-pass scan
        schedule (chunk partials, then finalize with incoming prefixes).

        Each element is touched twice, the inter-chunk combine is a
        second fork/join, and the combine itself is a short serial
        ladder over the chunk summaries — so the scan ceiling is about
        half the plain parallel-DO ceiling, matching the classic
        ``2n/p + p`` work bound of block-wise prefix computation.
        """
        serial = loop.total_cost
        if serial <= 0:
            return 1.0
        p_eff = self.effective_processors(loop.trips)
        v = self.vector_gain(loop)
        two_pass_compute = 2.0 * serial / (p_eff * v)
        combine = self.sync_cost * p_eff  # serial chunk-summary ladder
        parallel = (
            two_pass_compute
            + 2.0 * self.startup_cost
            + combine
            + self.sync_cost * (loop.trips / max(p_eff, 1.0))
        )
        return max(serial / parallel, 1.0)

    def program_speedup(
        self, cost: ProgramCost, parallel_loops: list[LoopCost]
    ) -> float:
        """Amdahl combination: only the given loops run in parallel."""
        parallel_total = sum(l.total_cost for l in parallel_loops)
        serial_total = cost.total - parallel_total
        if cost.total <= 0:
            return 1.0
        new_time = serial_total
        for loop in parallel_loops:
            new_time += loop.total_cost / self.loop_speedup(loop)
        return cost.total / max(new_time, 1e-9)
