"""``panorama-serve``: the resident analysis daemon.

Examples::

    panorama-serve --port 8321                    # serve until ^C
    panorama-serve --port 0 --ready-file ready    # ephemeral port for CI
    panorama-serve --selftest                     # loopback full-path check

The daemon keeps the interned symbolic tables, proof memos, and the
content-addressed summary cache hot across requests — the warm-vs-cold
gap ``benchmarks/bench_symbolic.py`` measures is banked for every
request after the first.  See docs/server.md for the API.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path

from .. import __version__
from ..errors import EXIT_INTERRUPTED
from .app import PanoramaServer, ServerThread
from .service import AnalysisService, ServerConfig


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="panorama-serve",
        description=(
            "Resident Panorama analysis daemon: HTTP/JSON verdicts with "
            "hot symbolic caches (see docs/server.md)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8321,
        help="bind port; 0 picks an ephemeral port (announced on stderr)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="analyze/watch requests running or queued before new ones "
        "get 429 + Retry-After (default 8)",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="S",
        help="Retry-After seconds advertised on saturation (default 1)",
    )
    parser.add_argument(
        "--budget-ms",
        type=float,
        metavar="MS",
        help="per-request deadline ceiling; requests degrade to "
        "conservative verdicts in band (docs/robustness.md)",
    )
    parser.add_argument(
        "--budget-steps",
        type=int,
        metavar="N",
        help="per-request symbolic step ceiling (deterministic analogue)",
    )
    parser.add_argument(
        "--max-body-kb",
        type=int,
        default=4000,
        metavar="KB",
        help="request body cap; larger submissions get 413 (default 4000)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persistent summary-cache directory (shares the "
        "panorama-batch disk tier format)",
    )
    parser.add_argument(
        "--cache-backend",
        choices=["disk", "shared"],
        help="durable cache tier: pickle files (disk) or the "
        "multi-process SQLite tier (shared); default "
        "$PANORAMA_CACHE_BACKEND or disk",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run the static soundness auditor on every analyze by default",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="on SIGTERM/SIGINT, seconds to let in-flight requests "
        "finish (new work gets 503) before exiting 5 (default 10)",
    )
    parser.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write '<host> <port>' once listening (CI handshake)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="boot on an ephemeral port, drive the full HTTP request "
        "path end to end, and exit 0/1 (no external tooling needed)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    return ServerConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        retry_after_s=args.retry_after,
        max_body_bytes=args.max_body_kb * 1000,
        budget_ms=args.budget_ms,
        budget_steps=args.budget_steps,
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
        audit=args.audit,
        drain_timeout_s=args.drain_timeout,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.selftest:
        return run_selftest(config_from_args(args))

    service = AnalysisService(config_from_args(args))

    async def _run() -> int:
        server = await PanoramaServer(service).start()
        print(
            f"panorama-serve {__version__} listening on {server.url} "
            f"(pid {service.health()['pid']}, max in-flight "
            f"{service.config.max_inflight})",
            file=sys.stderr,
        )
        if args.ready_file:
            Path(args.ready_file).write_text(
                f"{server.host} {server.port}\n"
            )
        # graceful drain: SIGTERM/SIGINT stop admission, let in-flight
        # requests finish within --drain-timeout, then exit 5 (the
        # interrupted-but-consistent code the batch CLIs share)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-Unix loop / nested loop: ^C stays a KeyboardInterrupt
        serving = asyncio.ensure_future(server.serve_forever())
        waiting = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {serving, waiting}, return_when=asyncio.FIRST_COMPLETED
            )
            if stop.is_set():
                print(
                    "panorama-serve: draining (in-flight requests have "
                    f"{service.config.drain_timeout_s:g}s to finish; new "
                    "requests get 503)",
                    file=sys.stderr,
                )
                clean = await server.drain()
                print(
                    "panorama-serve: drained cleanly (exit 5)"
                    if clean
                    else "panorama-serve: drain timeout expired (exit 5)",
                    file=sys.stderr,
                )
                return EXIT_INTERRUPTED
            return 0
        finally:
            serving.cancel()
            waiting.cancel()
            await asyncio.gather(serving, waiting, return_exceptions=True)
            await server.aclose()

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        print("panorama-serve: shutting down (exit 5)", file=sys.stderr)
        return EXIT_INTERRUPTED


# --------------------------------------------------------------------------- #
# loopback selftest
# --------------------------------------------------------------------------- #


def run_selftest(config: ServerConfig) -> int:
    """Drive the daemon end to end over loopback HTTP and report.

    Covers every endpoint: health, warm-vs-cold analyze with verdict
    identity against the in-process pipeline, the NDJSON stream, the
    watch protocol with a real edit, the 422 source-error path, and
    deterministic 429 saturation (the ceiling is dropped to zero for
    one request — in-process, so no race).  Exit 0 iff everything held.
    """
    from ..driver.panorama import Panorama
    from ..engine.telemetry import loop_report_row
    from ..kernels import KERNELS
    from ..kernels.figure1 import FIGURE_1A
    from .client import PanoramaClient, ServiceError

    config.port = 0  # never collide with a real deployment
    failures: list[str] = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"  {'ok ' if ok else 'FAIL'} {label}"
              + (f" ({detail})" if detail else ""), file=sys.stderr)
        if not ok:
            failures.append(label)

    service = AnalysisService(config)
    with ServerThread(service) as thread:
        client = PanoramaClient(port=thread.port)
        print(
            f"panorama-serve selftest on {thread.server.url}", file=sys.stderr
        )

        health = client.health()
        check("GET /v1/health", health.get("status") == "ok")

        # verdict identity vs the in-process pipeline, cold then warm
        expected = [
            loop_report_row(r)
            for r in Panorama().compile(FIGURE_1A).loops
        ]
        first = client.analyze(FIGURE_1A, name="figure1a.f")
        second = client.analyze(FIGURE_1A, name="figure1a.f")
        check(
            "POST /v1/analyze matches in-process verdicts",
            first["loops"] == expected,
        )
        check(
            "verdicts stable across repeated requests",
            second["loops"] == first["loops"],
        )
        rate1 = first["request"]["hit_rate"] or 0.0
        rate2 = second["request"]["hit_rate"] or 0.0
        check(
            "resident caches warmed the second request",
            rate2 > rate1,
            f"hit rate {rate1:.3f} -> {rate2:.3f}",
        )

        events = list(client.analyze_stream(FIGURE_1A, name="figure1a.f"))
        kinds = [e.get("event") for e in events]
        check(
            "NDJSON stream shape",
            kinds
            and kinds[0] == "routine_started"
            and kinds[-1] == "done"
            and "loop_verdict" in kinds,
            "->".join(dict.fromkeys(kinds)),
        )

        # watch protocol: full first revision, then a touched routine
        big = KERNELS[0]
        sid = client.watch_open(name="watch.f")
        rev1 = client.watch_submit(sid, big.source, sizes=dict(big.sizes))
        edited = big.source.replace("DO ", "DO  ", 1)  # whitespace only
        rev2 = client.watch_submit(sid, edited, sizes=dict(big.sizes))
        check(
            "watch: first revision analyzes everything",
            bool(rev1["report"]["changed"]) and not rev1["report"]["reused"],
        )
        check(
            "watch: whitespace edit invalidates nothing",
            not rev2["report"]["changed"] and bool(rev2["report"]["reused"]),
            f"reused {len(rev2['report']['reused'])} routine(s)",
        )
        client.watch_close(sid)
        try:
            client.watch_submit(sid, big.source)
            check("watch: closed session rejected", False)
        except ServiceError as exc:
            check("watch: closed session rejected", exc.status == 404)

        # typed 422 on bad source; the daemon must keep answering after
        try:
            client.analyze("THIS IS NOT FORTRAN ][", name="bad.f")
            check("422 on malformed source", False)
        except ServiceError as exc:
            check(
                "422 on malformed source",
                exc.status == 422 and exc.kind in ("source", "analysis"),
                f"kind={exc.kind}",
            )

        # deterministic saturation: ceiling 0 → immediate 429 (a
        # non-retrying client, so the raw rejection is observable)
        fail_fast = PanoramaClient(port=thread.port, retries=0)
        ceiling = service.config.max_inflight
        service.config.max_inflight = 0
        try:
            fail_fast.analyze(FIGURE_1A)
            check("429 on saturation", False)
        except ServiceError as exc:
            check(
                "429 on saturation",
                exc.status == 429 and exc.retry_after is not None,
                f"Retry-After={exc.retry_after}",
            )
        finally:
            service.config.max_inflight = ceiling

        after = client.analyze(FIGURE_1A, name="figure1a.f")
        check(
            "daemon healthy after rejections",
            after["loops"] == expected,
        )

        stats = client.stats()
        check(
            "GET /v1/stats",
            stats["requests"]["analyze"] >= 4
            and stats["admission"]["rejected"] >= 1
            and stats["responses"].get("422", 0) >= 1,
        )
        print(json.dumps(stats["admission"], sort_keys=True), file=sys.stderr)

    if failures:
        print(f"selftest FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("selftest OK", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
