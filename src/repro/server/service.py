"""The daemon's synchronous core: resident caches + request handling.

:class:`AnalysisService` owns everything that makes a resident process
worth running — the content-addressed :class:`~repro.engine.cache.SummaryCache`
(memory tier, optionally disk-backed), the process-global interning and
proof-memo tables in :mod:`repro.symbolic` (warm by virtue of the
process staying alive), and the watch sessions' incremental engines —
and exposes plain-Python request methods the asyncio layer calls from
its single analysis thread.

Request semantics (docs/server.md):

* **typed errors, not crashes** — every failure becomes a
  :class:`RequestError` carrying the HTTP status mapped from the
  :func:`repro.errors.classify_exception` taxonomy: bad source / refused
  programs → 422, malformed request shapes → 400, anything else → 500.
  The resident caches survive all of them: the summary cache is
  content-addressed (a failed compile stores nothing under a key a good
  compile would read), and the interning tables only ever hold
  value-identical entries.
* **budgets degrade in band** — per-request budgets (request-supplied,
  clamped to the server's configured ceilings) never fail a request;
  exhaustion produces conservative ``unknown (budget)`` verdicts marked
  ``degraded`` in the payload, exactly like the CLI's exit-3 path.
* **per-request observability** — each response carries the
  :mod:`repro.perf` gauge delta *this request* caused (a
  :class:`~repro.perf.profiler.Probe` scope) plus the summary-cache
  delta, so clients can watch the resident caches get warm.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .. import __version__
from ..dataflow.context import AnalysisOptions
from ..driver.panorama import (
    CompilationResult,
    CompositeHooks,
    LoopReport,
    Panorama,
    PipelineHooks,
)
from ..engine.cache import CachingHooks, SummaryCache
from ..engine.incremental import IncrementalEngine
from ..engine.telemetry import EngineTelemetry, loop_report_row, result_to_dict
from ..errors import ReproError, classify_exception
from ..perf import profiler
from ..symbolic.matrix import backend_name as _matrix_backend

#: event type tags of the NDJSON stream, in emission order
STREAM_EVENTS = ("routine_started", "loop_verdict", "diagnostic", "done")


@dataclass
class ServerConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, bound port is announced at startup
    #: admission bound: analyze/watch requests running *or queued* on the
    #: analysis thread; beyond it requests get 429 + Retry-After
    max_inflight: int = 8
    #: Retry-After seconds advertised with a 429
    retry_after_s: float = 1.0
    #: request body cap in bytes (413 beyond it)
    max_body_bytes: int = 4_000_000
    #: per-request budget ceilings; request budgets may only tighten
    #: these (None = no ceiling)
    budget_ms: Optional[float] = None
    budget_steps: Optional[int] = None
    #: optional durable tier for the summary cache (shared with the
    #: batch engine's --cache-dir format)
    cache_dir: Optional[str] = None
    #: durable-tier implementation: "disk" | "shared" | None
    #: (= $PANORAMA_CACHE_BACKEND or disk); "shared" lets a daemon and
    #: concurrent batch shards serve one SQLite summary tier
    cache_backend: Optional[str] = None
    #: run the static soundness auditor on every analyze by default
    #: (requests can override per call)
    audit: bool = False
    #: graceful-drain budget: seconds a SIGTERM/SIGINT drain waits for
    #: in-flight requests before tearing the loop down anyway
    drain_timeout_s: float = 10.0


class RequestError(Exception):
    """A request-scoped failure with its HTTP mapping.

    *kind* follows the :func:`repro.errors.classify_exception` taxonomy
    plus the request-shape kinds ``"request"`` (bad field) and
    ``"not-found"`` (unknown watch session).
    """

    def __init__(self, status: int, kind: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.message = message

    def body(self) -> dict[str, Any]:
        return {
            "error": {
                "status": self.status,
                "kind": self.kind,
                "message": self.message,
            }
        }


class _EventHooks(PipelineHooks):
    """Turn pipeline progress into NDJSON stream events."""

    def __init__(self, emit: Callable[[dict[str, Any]], None]) -> None:
        self._emit = emit
        self._routine: Optional[str] = None

    def loop_done(self, report: LoopReport) -> None:
        if report.routine != self._routine:
            self._routine = report.routine
            self._emit({"event": "routine_started", "routine": report.routine})
        row = loop_report_row(report)
        # events fire before the machine model runs; don't publish
        # placeholder speedups the final payload will overwrite
        row.pop("speedup", None)
        row.pop("pct_sequential", None)
        row["event"] = "loop_verdict"
        self._emit(row)


@dataclass
class _WatchSession:
    """One LSP-style watch: an incremental engine pinned to options."""

    sid: str
    name: str
    engine: IncrementalEngine
    options: AnalysisOptions
    audit: bool
    revisions: int = 0
    created_at: float = field(default_factory=time.time)


class AnalysisService:
    """Resident-state request handler behind ``panorama-serve``.

    Analysis entry points (:meth:`analyze`, :meth:`analyze_stream`,
    :meth:`watch_submit`) must be called from a single thread at a time
    — the asyncio layer guarantees that with its one-worker executor.
    :meth:`health` / :meth:`stats` are read-only and safe from the event
    loop thread.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.cache = SummaryCache(
            self.config.cache_dir, backend=self.config.cache_backend
        )
        self.telemetry = EngineTelemetry()
        self.started_monotonic = time.monotonic()
        self.started_at = time.time()
        #: request counts by endpoint
        self.requests: dict[str, int] = {
            "analyze": 0,
            "analyze_stream": 0,
            "watch_open": 0,
            "watch_submit": 0,
            "watch_close": 0,
            "health": 0,
            "stats": 0,
        }
        #: response counts by HTTP status
        self.responses: dict[str, int] = {}
        #: admission gauges, mutated by the asyncio layer
        self.admission: dict[str, int] = {
            "in_flight": 0,
            "rejected": 0,
            "drained_rejects": 0,
        }
        #: set by PanoramaServer.drain(): health reports "draining" and
        #: new analysis requests get 503 + Retry-After while in-flight
        #: work completes (docs/robustness.md "Crash safety & resume")
        self.draining = False
        self._watch_sessions: dict[str, _WatchSession] = {}
        self._watch_seq = itertools.count(1)

    # -- request bookkeeping ------------------------------------------------------

    def note_request(self, endpoint: str) -> None:
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def note_response(self, status: int) -> None:
        key = str(status)
        self.responses[key] = self.responses.get(key, 0) + 1

    # -- request parsing ----------------------------------------------------------

    def _source_of(self, body: Any) -> tuple[str, str]:
        """Extract (name, source) from a request body; 400 on bad shape."""
        if not isinstance(body, dict):
            raise RequestError(400, "request", "request body must be a JSON object")
        source = body.get("source")
        if not isinstance(source, str) or not source.strip():
            raise RequestError(
                400, "request", 'missing or empty "source" field (Fortran text)'
            )
        name = body.get("name", "<request>")
        if not isinstance(name, str) or not name:
            raise RequestError(400, "request", '"name" must be a non-empty string')
        return name, source

    def _sizes_of(self, body: dict[str, Any]) -> dict[str, int]:
        sizes = body.get("sizes") or {}
        if not isinstance(sizes, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
            for k, v in sizes.items()
        ):
            raise RequestError(
                400, "request", '"sizes" must map symbol names to integers'
            )
        return dict(sizes)

    def build_options(self, body: dict[str, Any]) -> AnalysisOptions:
        """Request options → :class:`AnalysisOptions`, budgets clamped.

        A request may only *tighten* the server's budget ceilings — a
        client cannot buy itself an unlimited analysis on a daemon
        configured to degrade at 200 ms.
        """
        raw = body.get("options") or {}
        if not isinstance(raw, dict):
            raise RequestError(400, "request", '"options" must be an object')
        known = {"ablate", "no_fm", "no_frontier", "budget_ms", "budget_steps"}
        unknown = set(raw) - known
        if unknown:
            raise RequestError(
                400, "request",
                f"unknown option(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})",
            )
        ablate = raw.get("ablate") or []
        if not isinstance(ablate, list) or not set(ablate) <= {"T1", "T2", "T3"}:
            raise RequestError(
                400, "request", '"ablate" must be a list drawn from T1/T2/T3'
            )
        budget_ms = self._clamped(raw, "budget_ms", self.config.budget_ms, float)
        budget_steps = self._clamped(
            raw, "budget_steps", self.config.budget_steps, int
        )
        extra = {"frontier": False} if raw.get("no_frontier") else {}
        return AnalysisOptions(
            symbolic="T1" not in ablate,
            if_conditions="T2" not in ablate,
            interprocedural="T3" not in ablate,
            use_fm=not raw.get("no_fm", False),
            budget_ms=budget_ms,
            budget_steps=budget_steps,
            **extra,
        )

    @staticmethod
    def _clamped(raw, key, ceiling, cast):
        value = raw.get(key)
        if value is None:
            return ceiling
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RequestError(400, "request", f'"{key}" must be a number')
        if value <= 0:
            raise RequestError(400, "request", f'"{key}" must be positive')
        value = cast(value)
        if ceiling is not None:
            value = min(value, cast(ceiling))
        return value

    # -- analysis -----------------------------------------------------------------

    def analyze(
        self,
        body: Any,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """One ``POST /v1/analyze`` request: source in, verdicts out."""
        name, source = self._source_of(body)
        options = self.build_options(body)
        sizes = self._sizes_of(body)
        run_audit = self._audit_of(body, self.config.audit)

        t0 = time.perf_counter()
        cache_before = self.cache.stats.copy()
        hooks: PipelineHooks = CachingHooks(self.cache)
        if on_event is not None:
            hooks = CompositeHooks(hooks, _EventHooks(on_event))
        with profiler.probe() as pr:
            result = self._compile(
                Panorama(options, sizes=sizes, hooks=hooks), source
            )
            audit_report = None
            if run_audit:
                from ..audit import audit_compilation

                audit_report = audit_compilation(result, name, source=source)
        payload = result_to_dict(result, name=name, audit=audit_report)
        payload["degraded"] = bool(result.degraded_loops())
        payload["request"] = self._request_block(
            t0, pr, cache_before, result
        )
        self.telemetry.note_result(payload)
        return payload

    def analyze_stream(
        self,
        body: Any,
        emit: Callable[[dict[str, Any]], None],
    ) -> Optional[dict[str, Any]]:
        """The streaming variant: emits NDJSON events as analysis runs.

        Events: ``routine_started`` / ``loop_verdict`` while the compile
        progresses, ``diagnostic`` per audit finding, then exactly one of
        ``done`` (with the summary + per-request stats) or ``error``.
        Returns the payload on success, ``None`` when an error event was
        emitted (the HTTP status is already on the wire as an event — a
        stream cannot change its status line retroactively).
        """
        try:
            payload = self.analyze(body, on_event=emit)
        except RequestError as exc:
            emit({"event": "error", **exc.body()["error"]})
            return None
        for diag in (payload.get("audit") or {}).get("diagnostics", []):
            emit({"event": "diagnostic", **diag})
        emit(
            {
                "event": "done",
                "name": payload.get("name"),
                "loops": len(payload["loops"]),
                "parallel_loops": payload["parallel_loops"],
                "degraded": payload["degraded"],
                "request": payload["request"],
            }
        )
        return payload

    def _compile(self, panorama: Panorama, source: str) -> CompilationResult:
        """Run one compile, mapping failures onto the typed taxonomy."""
        try:
            return panorama.compile(source)
        except (KeyboardInterrupt, SystemExit):
            raise
        except ReproError as exc:
            kind = classify_exception(exc)
            # "budget" cannot reach here (SUM_* degrade in band), but if
            # it ever did, failing the one request is the safe answer
            status = 422 if kind in ("source", "analysis") else 500
            raise RequestError(status, kind, str(exc)) from exc
        except RecursionError as exc:
            raise RequestError(
                422, "analysis", "program nesting exceeds analyzer limits"
            ) from exc
        except MemoryError as exc:
            raise RequestError(500, "oom", "analysis ran out of memory") from exc
        except Exception as exc:
            raise RequestError(
                500, "internal", f"{type(exc).__name__}: {exc}"
            ) from exc

    def _request_block(
        self, t0: float, pr: profiler.Probe, cache_before, result
    ) -> dict[str, Any]:
        """The per-request observability payload."""
        symbolic = pr.delta
        return {
            "elapsed_ms": round((time.perf_counter() - t0) * 1000.0, 3),
            "degraded_loops": len(result.degraded_loops()),
            "summary_cache": self.cache.stats.delta(cache_before).as_dict(),
            "symbolic": symbolic,
            # hit rate of the symbolic memo/interning tables, this
            # request only: the number that climbs as the daemon warms
            "hit_rate": profiler.hit_rate(symbolic),
        }

    @staticmethod
    def _audit_of(body: Any, default: bool) -> bool:
        audit = body.get("audit", default) if isinstance(body, dict) else default
        if not isinstance(audit, bool):
            raise RequestError(400, "request", '"audit" must be a boolean')
        return audit

    # -- watch sessions -----------------------------------------------------------

    def watch_open(self, body: Any) -> dict[str, Any]:
        """Create a watch session pinned to one options set."""
        body = body if isinstance(body, dict) else {}
        options = self.build_options(body)
        name = body.get("name", "<watch>")
        if not isinstance(name, str) or not name:
            raise RequestError(400, "request", '"name" must be a non-empty string')
        sid = f"w{next(self._watch_seq)}"
        self._watch_sessions[sid] = _WatchSession(
            sid=sid,
            name=name,
            engine=IncrementalEngine(options, cache=self.cache),
            options=options,
            audit=self._audit_of(body, False),
        )
        return {"session": sid, "name": name}

    def _watch(self, sid: str) -> _WatchSession:
        session = self._watch_sessions.get(sid)
        if session is None:
            raise RequestError(404, "not-found", f"unknown watch session {sid!r}")
        return session

    def watch_submit(self, sid: str, body: Any) -> dict[str, Any]:
        """Submit a (possibly edited) revision of the watched source.

        The response reports only the loops of routines the edit
        actually touched (changed + invalidated-via-callee); everything
        served warm is summarized by name in ``report.reused``.
        """
        session = self._watch(sid)
        name, source = self._source_of(body)
        sizes = self._sizes_of(body)
        t0 = time.perf_counter()
        cache_before = self.cache.stats.copy()
        with profiler.probe() as pr:
            try:
                inc = session.engine.analyze(
                    source, name=session.name, sizes=sizes
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except ReproError as exc:
                kind = classify_exception(exc)
                status = 422 if kind in ("source", "analysis") else 500
                raise RequestError(status, kind, str(exc)) from exc
            except Exception as exc:
                raise RequestError(
                    500, "internal", f"{type(exc).__name__}: {exc}"
                ) from exc
        session.revisions += 1
        audit_payload = None
        if session.audit:
            from ..audit import audit_compilation

            audit_payload = audit_compilation(
                inc.result, session.name, source=source
            ).to_payload()
        report = inc.report
        affected = set(report.affected())
        rows = [
            loop_report_row(r)
            for r in inc.result.loops
            if r.routine in affected
        ]
        payload: dict[str, Any] = {
            "session": sid,
            "revision": session.revisions,
            "name": name,
            "report": report.to_dict(),
            "loops": rows,
            "total_loops": len(inc.result.loops),
            "parallel_loops": len(inc.result.parallel_loops()),
            "degraded": bool(inc.result.degraded_loops()),
            "request": self._request_block(t0, pr, cache_before, inc.result),
        }
        if audit_payload is not None:
            payload["audit"] = audit_payload
        return payload

    def watch_close(self, sid: str) -> dict[str, Any]:
        session = self._watch_sessions.pop(sid, None)
        if session is None:
            raise RequestError(404, "not-found", f"unknown watch session {sid!r}")
        return {"session": sid, "closed": True, "revisions": session.revisions}

    # -- introspection ------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
        }

    def stats(self) -> dict[str, Any]:
        """The ``GET /v1/stats`` payload: every resident gauge at once."""
        snap = profiler.snapshot()
        telemetry = self.telemetry.as_dict()
        return {
            "server": {
                "version": __version__,
                "pid": os.getpid(),
                "started_at": self.started_at,
                "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
                "watch_sessions": len(self._watch_sessions),
            },
            "admission": {
                "max_inflight": self.config.max_inflight,
                "in_flight": self.admission["in_flight"],
                "rejected": self.admission["rejected"],
                "drained_rejects": self.admission["drained_rejects"],
                "draining": self.draining,
                "retry_after_s": self.config.retry_after_s,
            },
            "requests": dict(self.requests),
            "responses": dict(self.responses),
            # lifetime symbolic gauges + the headline warm-cache number
            "perf": snap,
            "hit_rate": profiler.hit_rate(snap),
            "constraint_backend": _matrix_backend(),
            "cache_backend": self.cache.backend_name,
            "summary_cache": self.cache.stats.as_dict(),
            # batch-style roll-up: timings/stats/resilience/audit counters
            "telemetry": telemetry,
        }
