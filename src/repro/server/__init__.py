"""Panorama-as-a-service: the resident asyncio analysis daemon.

The batch/incremental/resilience layers built around the pipeline all
amortize cost *within* one process — and every CLI invocation throws
that warmth away.  This package keeps it: a long-lived stdlib-only
``asyncio`` HTTP/JSON daemon (``panorama-serve``) holding the interned
symbolic tables, proof memos, and the content-addressed summary cache
resident across requests.

* :mod:`repro.server.service` — :class:`AnalysisService`, the
  synchronous core: resident caches, typed request errors, per-request
  budgets and perf probes, watch sessions;
* :mod:`repro.server.app` — :class:`PanoramaServer`, the asyncio layer:
  routing, the single-analysis-thread executor, admission control
  (bounded in-flight, 429 + Retry-After), NDJSON streaming;
  :class:`ServerThread` for in-process deployments (tests, benchmarks);
* :mod:`repro.server.http` — minimal HTTP/1.1 plumbing;
* :mod:`repro.server.client` — :class:`PanoramaClient`, the thin
  stdlib client;
* :mod:`repro.server.cli` — the ``panorama-serve`` entry point and its
  ``--selftest`` loopback mode.

See docs/server.md for the endpoint and event schemas.
"""

from .app import PanoramaServer, ServerThread
from .client import PanoramaClient, ServiceError
from .service import AnalysisService, RequestError, ServerConfig

__all__ = [
    "AnalysisService",
    "PanoramaClient",
    "PanoramaServer",
    "RequestError",
    "ServerConfig",
    "ServerThread",
    "ServiceError",
]
