"""The asyncio daemon: routing, admission control, NDJSON streaming.

Concurrency model
-----------------

The event loop thread does I/O only.  All analysis runs on **one**
dedicated worker thread (a ``ThreadPoolExecutor(max_workers=1)``):
the symbolic interning tables, proof memos, and the summary cache are
per-process structures written without locks, and the active
:class:`~repro.resilience.budget.AnalysisBudget` is a process global —
serializing analysis keeps all of them single-writer while the loop
stays responsive for ``/v1/health`` and ``/v1/stats`` (and for telling
clients to back off).  Analysis is pure CPU-bound Python, so a second
analysis thread would buy contention, not throughput; scale-out is the
batch engine's job (``panorama-batch --jobs N``), scale-*up* of request
concurrency belongs to running several daemons behind a port balancer,
each with its own warm caches.

Admission control
-----------------

``max_inflight`` bounds analyze/watch requests *running or queued* on
the analysis thread.  At the bound, new analysis requests are answered
``429 Too Many Requests`` with a ``Retry-After`` header before any of
their work happens — saturation degrades to back-pressure, never to a
growing queue that eventually takes the resident process down.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from ..resilience import faults
from .http import (
    ProtocolError,
    Request,
    error_body,
    json_response,
    ndjson_line,
    read_request,
    response_bytes,
    stream_head,
)
from .service import AnalysisService, RequestError, ServerConfig

#: sentinel closing the event queue of one streaming response
_STREAM_END = object()


class PanoramaServer:
    """One listening daemon around an :class:`AnalysisService`."""

    def __init__(
        self,
        service: AnalysisService | None = None,
        host: str | None = None,
        port: int | None = None,
    ) -> None:
        self.service = service or AnalysisService()
        cfg = self.service.config
        self.host = host if host is not None else cfg.host
        self.port = port if port is not None else cfg.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="panorama-analysis"
        )
        #: open connection handler tasks, cancelled on aclose()
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> "PanoramaServer":
        """Bind and start accepting; resolves the ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def drain(self, timeout: float | None = None) -> bool:
        """Gracefully drain: stop admitting, let in-flight work finish.

        Flips the service into draining mode — health reports
        ``"draining"`` and new analysis requests get 503 + Retry-After
        (the listener stays open so clients receive the typed rejection,
        not a connection refusal) — then waits up to *timeout* seconds
        (default ``ServerConfig.drain_timeout_s``) for the in-flight
        gauge to hit zero before tearing everything down with
        :meth:`aclose`.  Returns True when every in-flight request
        completed inside the budget.
        """
        service = self.service
        service.draining = True
        if timeout is None:
            timeout = service.config.drain_timeout_s
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, timeout)
        while service.admission["in_flight"] > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        clean = service.admission["in_flight"] == 0
        await self.aclose()
        return clean

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            if faults.should_fire("server.conn"):
                # chaos site: the daemon drops this connection cold, as a
                # crashed peer or a mid-accept kill would (clients see a
                # reset / empty reply and must retry)
                writer.transport.abort()
                return
            while True:
                try:
                    request = await read_request(
                        reader, self.service.config.max_body_bytes
                    )
                except ProtocolError as exc:
                    self.service.note_response(exc.status)
                    writer.write(
                        json_response(
                            exc.status,
                            error_body(exc.status, "protocol", exc.message),
                            close=True,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    streamed = await self._dispatch(request, writer)
                except ProtocolError as exc:
                    self.service.note_response(exc.status)
                    writer.write(
                        json_response(
                            exc.status,
                            error_body(exc.status, "protocol", exc.message),
                            close=True,
                        )
                    )
                    await writer.drain()
                    break
                except Exception as exc:  # routing bug: answer, don't vanish
                    self.service.note_response(500)
                    writer.write(
                        json_response(
                            500,
                            error_body(
                                500, "internal",
                                f"{type(exc).__name__}: {exc}",
                            ),
                            close=True,
                        )
                    )
                    await writer.drain()
                    break
                if streamed:
                    break  # streaming responses are EOF-terminated
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            # deregister only once fully torn down: a task that removed
            # itself before its last await could be left pending (and
            # never cancelled) when aclose() runs in that window
            if task is not None:
                self._connections.discard(task)

    async def _dispatch(self, request: Request, writer) -> bool:
        """Route one request; returns True when the response streamed."""
        service = self.service
        method, path = request.method, request.path

        if path == "/v1/health":
            if method != "GET":
                self._write(writer, self._method_not_allowed("GET"))
                return False
            service.note_request("health")
            self._write(writer, self._json(200, service.health()))
            return False

        if path == "/v1/stats":
            if method != "GET":
                self._write(writer, self._method_not_allowed("GET"))
                return False
            service.note_request("stats")
            self._write(writer, self._json(200, service.stats()))
            return False

        if path == "/v1/analyze":
            if method != "POST":
                self._write(writer, self._method_not_allowed("POST"))
                return False
            return await self._analyze(request, writer)

        if path == "/v1/watch":
            if method != "POST":
                self._write(writer, self._method_not_allowed("POST"))
                return False
            service.note_request("watch_open")
            self._write(writer, self._guarded(lambda: service.watch_open(
                request.json() if request.body else {}
            )))
            return False

        if path.startswith("/v1/watch/"):
            sid = path[len("/v1/watch/"):]
            if method == "POST":
                return await self._watch_submit(sid, request, writer)
            if method == "DELETE":
                service.note_request("watch_close")
                self._write(
                    writer, self._guarded(lambda: service.watch_close(sid))
                )
                return False
            self._write(writer, self._method_not_allowed("POST, DELETE"))
            return False

        self.service.note_response(404)
        self._write(
            writer,
            json_response(
                404, error_body(404, "not-found", f"no route for {path}")
            ),
        )
        return False

    # -- the analysis endpoints ---------------------------------------------------

    async def _analyze(self, request: Request, writer) -> bool:
        service = self.service
        body = request.json()  # ProtocolError (400) propagates to the handler
        stream = request.wants_ndjson()
        service.note_request("analyze_stream" if stream else "analyze")

        rejection = self._admit()
        if rejection is not None:
            self._write(writer, rejection)
            return False

        loop = asyncio.get_running_loop()
        try:
            if not stream:
                payload = await loop.run_in_executor(
                    self._executor, lambda: service.analyze(body)
                )
                self._write(writer, self._json(200, payload))
                return False
            await self._stream(
                writer,
                loop,
                lambda emit: service.analyze_stream(body, emit),
            )
            return True
        except RequestError as exc:
            self._write(writer, self._json(exc.status, exc.body()))
            return False
        finally:
            service.admission["in_flight"] -= 1

    async def _watch_submit(self, sid: str, request: Request, writer) -> bool:
        service = self.service
        body = request.json()
        service.note_request("watch_submit")
        rejection = self._admit()
        if rejection is not None:
            self._write(writer, rejection)
            return False
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                self._executor, lambda: service.watch_submit(sid, body)
            )
            self._write(writer, self._json(200, payload))
        except RequestError as exc:
            self._write(writer, self._json(exc.status, exc.body()))
        finally:
            service.admission["in_flight"] -= 1
        return False

    async def _stream(self, writer, loop, run) -> None:
        """Run one streaming analysis, relaying events as NDJSON lines.

        The worker thread pushes events through a thread-safe hop onto
        an ``asyncio.Queue``; this coroutine drains the queue onto the
        socket as the compile progresses.  The status line goes out
        before the analysis starts — stream errors arrive as ``error``
        events, which is the NDJSON contract (docs/server.md).
        """
        queue: asyncio.Queue = asyncio.Queue()

        def emit(event: dict[str, Any]) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        def run_and_close() -> Optional[dict[str, Any]]:
            try:
                return run(emit)
            finally:
                loop.call_soon_threadsafe(queue.put_nowait, _STREAM_END)

        future = loop.run_in_executor(self._executor, run_and_close)
        writer.write(stream_head())
        await writer.drain()
        status = 200
        while True:
            event = await queue.get()
            if event is _STREAM_END:
                break
            if event.get("event") == "error":
                status = event.get("status", 500)
            try:
                writer.write(ndjson_line(event))
                await writer.drain()
            except (ConnectionError, OSError):
                # client hung up mid-stream: let the analysis finish
                # (its summaries still warm the caches), drop the rest
                while (await queue.get()) is not _STREAM_END:
                    pass
                break
        await future
        self.service.note_response(status)

    # -- admission ----------------------------------------------------------------

    def _admit(self) -> Optional[bytes]:
        """Take an in-flight slot, or build the 429/503 rejection."""
        service = self.service
        cfg = service.config
        if service.draining:
            service.admission["drained_rejects"] += 1
            service.note_response(503)
            return json_response(
                503,
                error_body(
                    503,
                    "draining",
                    "daemon is draining; in-flight requests are finishing "
                    "and no new work is admitted",
                ),
                extra_headers=[
                    ("Retry-After", f"{max(1, round(cfg.retry_after_s))}")
                ],
            )
        if service.admission["in_flight"] >= cfg.max_inflight:
            service.admission["rejected"] += 1
            service.note_response(429)
            return json_response(
                429,
                error_body(
                    429,
                    "saturated",
                    f"{service.admission['in_flight']} request(s) already "
                    "in flight; retry later",
                ),
                extra_headers=[
                    ("Retry-After", f"{max(1, round(cfg.retry_after_s))}")
                ],
            )
        service.admission["in_flight"] += 1
        return None

    # -- response helpers ---------------------------------------------------------

    @staticmethod
    def _write(writer, data: bytes) -> None:
        writer.write(data)

    def _json(self, status: int, obj: Any) -> bytes:
        self.service.note_response(status)
        return json_response(status, obj)

    def _method_not_allowed(self, allowed: str) -> bytes:
        self.service.note_response(405)
        return response_bytes(
            405,
            b'{"error": {"status": 405, "kind": "protocol", '
            b'"message": "method not allowed"}}\n',
            extra_headers=[("Allow", allowed)],
        )

    def _guarded(self, fn) -> bytes:
        """Run a non-analysis service call, mapping RequestError to JSON."""
        try:
            return self._json(200, fn())
        except RequestError as exc:
            return self._json(exc.status, exc.body())


class ServerThread:
    """A daemon running on a background thread (tests, selftest, bench).

    ``start()`` boots the event loop on a daemon thread, binds the
    server, and blocks until the port is known; ``stop()`` tears the
    loop down and joins the thread.  Usable as a context manager.
    """

    def __init__(self, service: AnalysisService | None = None) -> None:
        self.service = service or AnalysisService()
        self.server: Optional[PanoramaServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._loop = asyncio.new_event_loop()

        def runner() -> None:
            loop = self._loop
            asyncio.set_event_loop(loop)
            server = PanoramaServer(self.service)
            try:
                loop.run_until_complete(server.start())
            except BaseException as exc:  # bind failure must not hang start()
                self._boot_error = exc
                self._ready.set()
                return
            self.server = server
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(server.aclose())
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="panorama-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._boot_error is not None:
            raise RuntimeError("server failed to start") from self._boot_error
        return self

    @property
    def port(self) -> int:
        assert self.server is not None, "start() first"
        return self.server.port

    @property
    def host(self) -> str:
        assert self.server is not None, "start() first"
        return self.server.host

    def drain(self, timeout: float | None = None) -> bool:
        """Run a graceful drain on the server's loop; returns True when
        every in-flight request finished inside the budget."""
        assert self.server is not None and self._loop is not None, (
            "start() first"
        )
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(timeout), self._loop
        )
        budget = (
            timeout
            if timeout is not None
            else self.service.config.drain_timeout_s
        )
        return bool(future.result(timeout=budget + 30.0))

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
