"""Thin stdlib client for the ``panorama-serve`` daemon.

Pure :mod:`http.client` + :mod:`json` — no dependencies — so the test
suite, CI, and the benchmarks can drive the full HTTP request path with
nothing but the standard library.  One connection per request: the
daemon's win is resident *analysis* state, not connection reuse, and
fresh connections keep the client trivially correct around streamed
(EOF-terminated) responses.

    client = PanoramaClient(port=8321)
    payload = client.analyze(source, name="loop.f")
    for event in client.analyze_stream(source):
        print(event["event"])
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Iterator, Optional

from ..resilience.backoff import backoff_delay

#: HTTP statuses the client treats as transient back-pressure: 429
#: (saturated) and 503 (draining daemon) both advertise Retry-After
RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceError(Exception):
    """A non-2xx daemon response, with its status and decoded payload."""

    def __init__(
        self,
        status: int,
        payload: dict[str, Any],
        retry_after: Optional[float] = None,
    ) -> None:
        err = payload.get("error", {}) if isinstance(payload, dict) else {}
        super().__init__(
            f"HTTP {status}: {err.get('kind', '?')}: "
            f"{err.get('message', 'no detail')}"
        )
        self.status = status
        self.payload = payload
        #: typed error kind (repro.errors taxonomy / "request" / "saturated")
        self.kind = err.get("kind")
        #: seconds from a 429's Retry-After header, when present
        self.retry_after = retry_after


class PanoramaClient:
    """Client for one daemon instance.

    Transient back-pressure is retried: a 429 (saturated) or 503
    (draining) response — or a connection the daemon dropped cold — is
    retried up to *retries* times, sleeping the larger of the server's
    ``Retry-After`` hint and the batch engine's seeded exponential
    backoff (:func:`repro.resilience.backoff.backoff_delay`, so waits
    are reproducible under a fixed *retry_seed*).  ``retries=0``
    restores fail-fast behaviour for tests that assert on the raw 429.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        timeout: float = 300.0,
        retries: int = 2,
        backoff_base: float = 0.05,
        retry_seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.retry_seed = retry_seed

    # -- plumbing -----------------------------------------------------------------

    def request(
        self, method: str, path: str, body: Any | None = None
    ) -> dict[str, Any]:
        """One JSON request/response round trip; raises ServiceError on
        non-2xx statuses.  429/503 and dropped connections are retried
        per the constructor's retry policy."""
        rng = random.Random(self.retry_seed)
        attempt = 0
        while True:
            try:
                return self._round_trip(method, path, body)
            except ServiceError as exc:
                if exc.status not in RETRYABLE_STATUSES or attempt >= self.retries:
                    raise
                floor = exc.retry_after or 0.0
            except (ConnectionError, http.client.BadStatusLine):
                # daemon dropped the connection cold (crash, chaos site
                # server.conn): indistinguishable from a restart window
                if attempt >= self.retries:
                    raise
                floor = 0.0
            attempt += 1
            time.sleep(backoff_delay(attempt, self.backoff_base, rng,
                                     floor=floor))

    def _round_trip(
        self, method: str, path: str, body: Any | None
    ) -> dict[str, Any]:
        conn = self._connect()
        try:
            self._send(conn, method, path, body)
            resp = conn.getresponse()
            data = resp.read()
        finally:
            conn.close()
        return self._decode(resp, data)

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    @staticmethod
    def _send(conn, method: str, path: str, body: Any | None) -> None:
        headers = {"Accept": "application/json"}
        encoded = None
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=encoded, headers=headers)

    @staticmethod
    def _decode(resp, data: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(data) if data else {}
        except json.JSONDecodeError:
            payload = {"error": {"kind": "protocol", "message": data[:200].decode(
                "utf-8", "replace")}}
        if resp.status >= 400:
            retry_after = resp.headers.get("Retry-After")
            raise ServiceError(
                resp.status,
                payload,
                retry_after=float(retry_after) if retry_after else None,
            )
        return payload

    # -- endpoints ----------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/v1/health")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/v1/stats")

    def analyze(
        self,
        source: str,
        name: str = "<request>",
        options: dict[str, Any] | None = None,
        sizes: dict[str, int] | None = None,
        audit: bool | None = None,
    ) -> dict[str, Any]:
        """``POST /v1/analyze``: the full verdict payload."""
        return self.request("POST", "/v1/analyze", self._body(
            source, name, options, sizes, audit
        ))

    def analyze_stream(
        self,
        source: str,
        name: str = "<request>",
        options: dict[str, Any] | None = None,
        sizes: dict[str, int] | None = None,
        audit: bool | None = None,
    ) -> Iterator[dict[str, Any]]:
        """``POST /v1/analyze?stream=1``: yields NDJSON events as the
        daemon produces them; the last event is ``done`` or ``error``.

        Only the *initial* status is retried (429/503/dropped
        connection); once events start flowing a failure surfaces
        mid-iteration, as any streaming consumer must expect."""
        body = self._body(source, name, options, sizes, audit)
        rng = random.Random(self.retry_seed)
        attempt = 0
        while True:
            conn = self._connect()
            try:
                try:
                    self._send(conn, "POST", "/v1/analyze?stream=1", body)
                    resp = conn.getresponse()
                    if resp.status != 200:
                        self._decode(resp, resp.read())  # raises ServiceError
                except ServiceError as exc:
                    if (exc.status not in RETRYABLE_STATUSES
                            or attempt >= self.retries):
                        raise
                    floor = exc.retry_after or 0.0
                except (ConnectionError, http.client.BadStatusLine):
                    if attempt >= self.retries:
                        raise
                    floor = 0.0
                else:
                    # EOF-terminated NDJSON: one JSON document per line
                    for raw in resp:
                        line = raw.strip()
                        if line:
                            yield json.loads(line)
                    return
            finally:
                conn.close()
            attempt += 1
            time.sleep(backoff_delay(attempt, self.backoff_base, rng,
                                     floor=floor))

    @staticmethod
    def _body(source, name, options, sizes, audit) -> dict[str, Any]:
        body: dict[str, Any] = {"source": source, "name": name}
        if options:
            body["options"] = options
        if sizes:
            body["sizes"] = sizes
        if audit is not None:
            body["audit"] = audit
        return body

    # -- watch sessions -----------------------------------------------------------

    def watch_open(
        self,
        name: str = "<watch>",
        options: dict[str, Any] | None = None,
        audit: bool | None = None,
    ) -> str:
        """Open a watch session; returns its id."""
        body: dict[str, Any] = {"name": name}
        if options:
            body["options"] = options
        if audit is not None:
            body["audit"] = audit
        return self.request("POST", "/v1/watch", body)["session"]

    def watch_submit(
        self,
        session: str,
        source: str,
        name: str = "<watch>",
        sizes: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        """Submit a revision; returns the invalidation report + the
        verdicts of the routines the edit touched."""
        body: dict[str, Any] = {"source": source, "name": name}
        if sizes:
            body["sizes"] = sizes
        return self.request("POST", f"/v1/watch/{session}", body)

    def watch_close(self, session: str) -> dict[str, Any]:
        return self.request("DELETE", f"/v1/watch/{session}")
