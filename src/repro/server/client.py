"""Thin stdlib client for the ``panorama-serve`` daemon.

Pure :mod:`http.client` + :mod:`json` — no dependencies — so the test
suite, CI, and the benchmarks can drive the full HTTP request path with
nothing but the standard library.  One connection per request: the
daemon's win is resident *analysis* state, not connection reuse, and
fresh connections keep the client trivially correct around streamed
(EOF-terminated) responses.

    client = PanoramaClient(port=8321)
    payload = client.analyze(source, name="loop.f")
    for event in client.analyze_stream(source):
        print(event["event"])
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator, Optional


class ServiceError(Exception):
    """A non-2xx daemon response, with its status and decoded payload."""

    def __init__(
        self,
        status: int,
        payload: dict[str, Any],
        retry_after: Optional[float] = None,
    ) -> None:
        err = payload.get("error", {}) if isinstance(payload, dict) else {}
        super().__init__(
            f"HTTP {status}: {err.get('kind', '?')}: "
            f"{err.get('message', 'no detail')}"
        )
        self.status = status
        self.payload = payload
        #: typed error kind (repro.errors taxonomy / "request" / "saturated")
        self.kind = err.get("kind")
        #: seconds from a 429's Retry-After header, when present
        self.retry_after = retry_after


class PanoramaClient:
    """Client for one daemon instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------------

    def request(
        self, method: str, path: str, body: Any | None = None
    ) -> dict[str, Any]:
        """One JSON request/response round trip; raises ServiceError on
        non-2xx statuses."""
        conn = self._connect()
        try:
            self._send(conn, method, path, body)
            resp = conn.getresponse()
            data = resp.read()
        finally:
            conn.close()
        return self._decode(resp, data)

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    @staticmethod
    def _send(conn, method: str, path: str, body: Any | None) -> None:
        headers = {"Accept": "application/json"}
        encoded = None
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=encoded, headers=headers)

    @staticmethod
    def _decode(resp, data: bytes) -> dict[str, Any]:
        try:
            payload = json.loads(data) if data else {}
        except json.JSONDecodeError:
            payload = {"error": {"kind": "protocol", "message": data[:200].decode(
                "utf-8", "replace")}}
        if resp.status >= 400:
            retry_after = resp.headers.get("Retry-After")
            raise ServiceError(
                resp.status,
                payload,
                retry_after=float(retry_after) if retry_after else None,
            )
        return payload

    # -- endpoints ----------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/v1/health")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/v1/stats")

    def analyze(
        self,
        source: str,
        name: str = "<request>",
        options: dict[str, Any] | None = None,
        sizes: dict[str, int] | None = None,
        audit: bool | None = None,
    ) -> dict[str, Any]:
        """``POST /v1/analyze``: the full verdict payload."""
        return self.request("POST", "/v1/analyze", self._body(
            source, name, options, sizes, audit
        ))

    def analyze_stream(
        self,
        source: str,
        name: str = "<request>",
        options: dict[str, Any] | None = None,
        sizes: dict[str, int] | None = None,
        audit: bool | None = None,
    ) -> Iterator[dict[str, Any]]:
        """``POST /v1/analyze?stream=1``: yields NDJSON events as the
        daemon produces them; the last event is ``done`` or ``error``."""
        conn = self._connect()
        try:
            self._send(
                conn,
                "POST",
                "/v1/analyze?stream=1",
                self._body(source, name, options, sizes, audit),
            )
            resp = conn.getresponse()
            if resp.status != 200:
                self._decode(resp, resp.read())  # raises ServiceError
            # EOF-terminated NDJSON: one JSON document per line
            for raw in resp:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    @staticmethod
    def _body(source, name, options, sizes, audit) -> dict[str, Any]:
        body: dict[str, Any] = {"source": source, "name": name}
        if options:
            body["options"] = options
        if sizes:
            body["sizes"] = sizes
        if audit is not None:
            body["audit"] = audit
        return body

    # -- watch sessions -----------------------------------------------------------

    def watch_open(
        self,
        name: str = "<watch>",
        options: dict[str, Any] | None = None,
        audit: bool | None = None,
    ) -> str:
        """Open a watch session; returns its id."""
        body: dict[str, Any] = {"name": name}
        if options:
            body["options"] = options
        if audit is not None:
            body["audit"] = audit
        return self.request("POST", "/v1/watch", body)["session"]

    def watch_submit(
        self,
        session: str,
        source: str,
        name: str = "<watch>",
        sizes: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        """Submit a revision; returns the invalidation report + the
        verdicts of the routines the edit touched."""
        body: dict[str, Any] = {"source": source, "name": name}
        if sizes:
            body["sizes"] = sizes
        return self.request("POST", f"/v1/watch/{session}", body)

    def watch_close(self, session: str) -> dict[str, Any]:
        return self.request("DELETE", f"/v1/watch/{session}")
