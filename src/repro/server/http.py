"""Minimal HTTP/1.1 plumbing over ``asyncio`` streams (stdlib only).

Just enough protocol for the analysis daemon: request-line + headers +
``Content-Length`` bodies in, fixed-length JSON responses or
EOF-terminated NDJSON streams out.  Deliberately *not* a general web
server — no chunked request bodies, no multipart, no TLS — so the whole
attack/parsing surface stays a few hundred auditable lines.

Limits are enforced while reading: an oversized request line, header
block, or body raises :class:`ProtocolError` with the HTTP status the
connection handler should answer with (400/413/431), before the bytes
are ever buffered whole.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Iterable
from urllib.parse import parse_qsl, urlsplit

#: reason phrases for the statuses the daemon actually emits
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}

#: request-line / single-header-line byte cap
MAX_LINE = 8192
#: header count cap
MAX_HEADERS = 64


class ProtocolError(Exception):
    """Malformed or over-limit HTTP input; carries the response status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str  # path only, query string split off
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)  # keys lower-cased
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (400 on syntax errors or non-UTF-8)."""
        if not self.body:
            raise ProtocolError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}") from exc

    def wants_ndjson(self) -> bool:
        """Did the client ask for a streaming NDJSON response?"""
        if self.query.get("stream", "").lower() in ("1", "true", "yes"):
            return True
        return "application/x-ndjson" in self.headers.get("accept", "")


async def _read_line(reader, what: str) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise ProtocolError(400, f"truncated {what}") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(431, f"{what} too long") from exc
    if len(line) > MAX_LINE:
        raise ProtocolError(431, f"{what} too long")
    return line


async def read_request(reader, max_body: int) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    line = await _read_line(reader, "request line")
    if not line.strip():
        return None
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise ProtocolError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol {version}")

    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader, "header line")
        if not line.strip():
            break
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError(431, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "bad Content-Length") from None
        if length < 0:
            raise ProtocolError(400, "bad Content-Length")
        if length > max_body:
            raise ProtocolError(
                413, f"request body exceeds {max_body} byte limit"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError(400, "truncated request body") from exc

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Iterable[tuple[str, str]] = (),
    close: bool = False,
) -> bytes:
    """A complete fixed-length HTTP/1.1 response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_body(obj: Any) -> bytes:
    """Canonical JSON encoding for response bodies."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def json_response(
    status: int,
    obj: Any,
    extra_headers: Iterable[tuple[str, str]] = (),
    close: bool = False,
) -> bytes:
    """A complete JSON response."""
    return response_bytes(
        status, json_body(obj), extra_headers=extra_headers, close=close
    )


def error_body(status: int, kind: str, message: str) -> dict[str, Any]:
    """The daemon's uniform error payload shape."""
    return {
        "error": {
            "status": status,
            "kind": kind,
            "message": message,
        }
    }


def stream_head(content_type: str = "application/x-ndjson") -> bytes:
    """Response head for an EOF-terminated streaming body.

    No ``Content-Length``: per HTTP/1.1 the body runs until the server
    closes the connection, which every stdlib client understands —
    simpler and more robust than chunked encoding for NDJSON.
    """
    return (
        "HTTP/1.1 200 OK\r\n"
        f"Content-Type: {content_type}\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")


def ndjson_line(event: Any) -> bytes:
    """One NDJSON event line."""
    return (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
