"""repro: a reproduction of "Symbolic Array Dataflow Analysis for Array
Privatization and Program Parallelization" (Gu, Li & Lee, SC 1995).

The package implements the paper's Panorama-style analyzer end to end:

* :mod:`repro.fortran` — Fortran-77 subset frontend (lexer, parser,
  semantics, call graph);
* :mod:`repro.symbolic` — symbolic expressions, relational atoms, CNF
  guard predicates, the pairwise simplifier, Fourier-Motzkin refutation;
* :mod:`repro.regions` — guarded array regions (GARs) and their set
  algebra;
* :mod:`repro.hsg` — the Hierarchical Supergraph;
* :mod:`repro.dataflow` — the SUM_bb / SUM_loop / SUM_call / SUM_segment
  summary algorithms with on-the-fly scalar substitution and expansion;
* :mod:`repro.deptest` — conventional dependence tests (GCD, Banerjee,
  symbolic range) used as the cheap pre-filter;
* :mod:`repro.privatize`, :mod:`repro.parallelize` — the two clients;
* :mod:`repro.machine` — cost model and speedup estimation;
* :mod:`repro.driver` — the end-to-end pipeline and CLI;
* :mod:`repro.kernels` — Figure 1 examples and Perfect-loop kernels.

Quickstart::

    from repro import Panorama
    result = Panorama().compile(fortran_source)
    for loop in result.loops:
        print(loop.loop_id(), loop.status.value)
"""

from .dataflow import AnalysisOptions, SummaryAnalyzer
from .driver import CompilationResult, LoopReport, Panorama
from .parallelize import LoopStatus

__version__ = "1.0.0"

__all__ = [
    "AnalysisOptions",
    "CompilationResult",
    "LoopReport",
    "LoopStatus",
    "Panorama",
    "SummaryAnalyzer",
    "__version__",
]
