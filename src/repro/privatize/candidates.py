"""Privatization candidate detection (paper section 3.2.1).

An array ``A`` is a privatization *candidate* in loop ``L`` when its
elements are overwritten in different iterations of ``L`` — established by
examining subscripts: if the region written in an iteration does not
depend on the loop index, every iteration writes the same elements.
Scalars (modeled as rank-1 regions) follow the same rule and come out as
scalar privatization, with loop indices excluded (a DO index is implicitly
private).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataflow.context import LoopSummaryRecord
from ..fortran.semantics import SymbolTable


@dataclass(frozen=True)
class Candidate:
    name: str
    is_array: bool
    #: why it qualifies (for reports)
    reason: str


def find_candidates(
    record: LoopSummaryRecord, table: SymbolTable
) -> list[Candidate]:
    """Variables written in the loop whose written region is index-invariant."""
    out: list[Candidate] = []
    for name in sorted(record.mod_i.arrays()):
        if name == record.var:
            continue  # the loop's own index
        written = record.mod_i.for_array(name)
        if written.is_empty():
            continue
        if written.contains_var(record.var):
            continue  # different elements per iteration: no storage reuse
        is_array = table.is_array(name)
        kind = "array" if is_array else "scalar"
        out.append(
            Candidate(
                name,
                is_array,
                f"{kind} {name} is overwritten identically across iterations "
                f"of {record.var}",
            )
        )
    return out
