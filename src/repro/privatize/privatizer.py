"""The privatizability test (paper section 3.2.1).

A candidate is privatizable in loop ``L`` (index ``i``) when no flow
dependence is carried by ``L``::

    MOD_{<i}  ∩  UE_i  =  ∅

Both operands may be over-approximations, so a provably empty intersection
is a proof.  The simple sufficient condition ``UE_i = ∅`` is reported when
it applies (the paper highlights it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataflow.context import LoopSummaryRecord
from ..fortran.semantics import SymbolTable
from ..regions import GARList
from ..regions.gar_ops import intersect_lists, lists_intersect_empty
from ..symbolic import Comparer
from .candidates import Candidate, find_candidates


@dataclass(frozen=True)
class PrivatizationVerdict:
    name: str
    is_array: bool
    privatizable: bool
    reason: str
    #: the offending intersection when not privatizable (diagnostics)
    conflict: GARList = field(default_factory=GARList)


@dataclass
class LoopPrivatization:
    """All per-variable verdicts for one loop."""

    routine: str
    loop_var: str
    verdicts: list[PrivatizationVerdict] = field(default_factory=list)

    def privatizable_arrays(self) -> list[str]:
        """Names of arrays that passed the test."""
        return [v.name for v in self.verdicts if v.is_array and v.privatizable]

    def privatizable_scalars(self) -> list[str]:
        """Names of scalars that passed the test."""
        return [
            v.name for v in self.verdicts if not v.is_array and v.privatizable
        ]

    def failed(self) -> list[PrivatizationVerdict]:
        """Verdicts of variables that failed the test."""
        return [v for v in self.verdicts if not v.privatizable]

    def verdict_for(self, name: str) -> PrivatizationVerdict:
        """The verdict of one variable (KeyError if absent)."""
        for v in self.verdicts:
            if v.name == name:
                return v
        raise KeyError(name)


def test_privatizable(
    name: str, record: LoopSummaryRecord, cmp: Comparer
) -> PrivatizationVerdict:
    """Apply the ``MOD_{<i} ∩ UE_i = ∅`` test to one variable."""
    is_array_like = True  # the region layer does not care; caller labels it
    ue_i = record.ue_i.for_array(name)
    if ue_i.is_empty() or ue_i.provably_empty(use_fm=cmp.use_fm):
        return PrivatizationVerdict(
            name,
            is_array_like,
            True,
            f"UE_i({name}) = empty: every use is preceded by a write in the "
            f"same iteration",
        )
    mod_lt = record.mod_lt.for_array(name)
    if lists_intersect_empty(ue_i, mod_lt, cmp):
        return PrivatizationVerdict(
            name,
            is_array_like,
            True,
            f"MOD_<{record.var} ∩ UE_{record.var} = empty: exposed uses never "
            f"read elements written by earlier iterations",
        )
    conflict = intersect_lists(ue_i, mod_lt, cmp)
    return PrivatizationVerdict(
        name,
        is_array_like,
        False,
        f"possible loop-carried flow dependence on {name}",
        conflict,
    )


def privatize_loop(
    record: LoopSummaryRecord, table: SymbolTable, cmp: Comparer
) -> LoopPrivatization:
    """Candidate detection + privatizability test for every candidate."""
    result = LoopPrivatization(record.routine, record.var)
    for candidate in find_candidates(record, table):
        verdict = test_privatizable(candidate.name, record, cmp)
        result.verdicts.append(
            PrivatizationVerdict(
                candidate.name,
                candidate.is_array,
                verdict.privatizable,
                verdict.reason,
                verdict.conflict,
            )
        )
    return result
