"""Last-value copy-out analysis for privatized arrays (section 3.2.1).

After privatization each iteration writes its own copy; if the original
array is *live after the loop* (some element may be read before being
rewritten), the values produced by the final iteration must be copied out
of the private copies.  Previous work (Li '92, Tu & Padua '93) treats this
with a live-range analysis; here the check uses the summaries already
available: the variable is treated as live unless the analysis can prove
no later use is upward-exposed to the loop.

Because the propagation is backward, the sets flowing up from *below* a
loop node are exactly "what the rest of the program still wants"; the
driver records them per loop so this module can decide copy-out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..regions import GARList
from ..regions.gar_ops import lists_intersect_empty
from ..symbolic import Comparer


@dataclass(frozen=True)
class CopyOutDecision:
    name: str
    needs_copy_out: bool
    reason: str


def copy_out_needed(
    name: str,
    loop_mod: GARList,
    ue_below: GARList,
    cmp: Comparer,
) -> CopyOutDecision:
    """Does privatized *name* need its last value copied out?

    ``ue_below`` is the upward-exposed use set of the program segment that
    follows the loop (within the routine); if the loop's writes to *name*
    feed none of those uses, the private copies can simply be discarded.
    When ``ue_below`` is unavailable (interprocedural continuation), the
    caller passes an Ω set and the answer is conservatively "yes".
    """
    written = loop_mod.for_array(name)
    wanted = ue_below.for_array(name)
    if wanted.is_empty():
        return CopyOutDecision(
            name, False, f"{name} is not used after the loop in this routine"
        )
    if lists_intersect_empty(written, wanted, cmp):
        return CopyOutDecision(
            name,
            False,
            f"later uses of {name} never read elements the loop writes",
        )
    return CopyOutDecision(
        name, True, f"{name} may be read after the loop; copy out last value"
    )
