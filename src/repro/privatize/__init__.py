"""Array (and scalar) privatization — client 1 of the dataflow analysis."""

from .candidates import Candidate, find_candidates
from .liveness import CopyOutDecision, copy_out_needed
from .privatizer import (
    LoopPrivatization,
    PrivatizationVerdict,
    privatize_loop,
    test_privatizable,
)

__all__ = [
    "Candidate",
    "CopyOutDecision",
    "LoopPrivatization",
    "PrivatizationVerdict",
    "copy_out_needed",
    "find_candidates",
    "privatize_loop",
    "test_privatizable",
]
