"""Content-fact inference: abstract interpretation of defining loops.

The derivation is deliberately **intra-routine**: a fact is a pure
function of one unit's source text plus the analysis options, which is
exactly the invariant the content-addressed summary cache fingerprints
(`engine/cache.py`) already capture — installing facts never needs a new
cache-key ingredient beyond the ``frontier`` toggle itself.

Eligibility of an array ``X`` in a unit:

* ``X`` is rank-1, integer-typed, and not in COMMON (callees could
  rewrite COMMON storage behind the analysis' back);
* every write to ``X`` in the unit sits in one *defining loop* — an
  unguarded, un-nested ``DO v = lo, hi`` whose body assigns ``X(v)``
  either unconditionally or in every arm of one IF/ELSE;
* ``X`` is never passed to a CALL, never appears in I/O, and is never
  read before the defining loop.

The right-hand sides are abstracted into the :mod:`.domain` lattice;
IF-arm writers are merged with the lattice join (two different constants
become an interval instead of being dropped).  A separate *coverage*
pass proves every later read hits the written segment — only covered
facts export index-array forms and guard bounds into conversion
contexts; uncovered facts are still recorded (and audited/validated)
but change nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Iterator, Optional

from ..fortran.ast_nodes import (
    Apply,
    Assign,
    BinOp,
    CallStmt,
    Continue,
    DoLoop,
    Expr,
    IfBlock,
    IntLit,
    IoStmt,
    LogicalIf,
    NameRef,
    Stmt,
)
from ..fortran.semantics import AnalyzedProgram
from ..symbolic import Predicate, SymExpr
from .domain import (
    ContentFact,
    Monotone,
    ValueAbstract,
    abstract_of_affine,
    join_value,
    monotone_of_affine,
)


def element_type(table, name: str) -> str:
    """Element type of an array: declared type, else the implicit rule.

    ``SymbolTable.type_of`` only records declared types for *scalars*;
    arrays keep their element type in the Declaration statement.
    """
    from ..fortran.ast_nodes import Declaration

    for decl in table.unit.decls:
        if isinstance(decl, Declaration):
            for entity, _dims in decl.entities:
                if entity == name:
                    return decl.type_name
    return "integer" if name[0] in "ijklmn" else "real"


@dataclass
class _ReadSite:
    """One array read with the loop context needed for coverage proofs."""

    position: int
    apply: Apply
    #: enclosing DO loops, outermost first
    loops: tuple[DoLoop, ...]


@dataclass
class _ArrayUse:
    """Everything one unit does with one array, in walk order."""

    write_positions: list[int] = field(default_factory=list)
    reads: list[_ReadSite] = field(default_factory=list)
    #: poisoned: passed to a CALL, used in I/O, written outside a clean
    #: defining loop, multi-dimensional use, ...
    poisoned: Optional[str] = None

    def poison(self, why: str) -> None:
        if self.poisoned is None:
            self.poisoned = why


def _exprs_of(stmt: Stmt) -> Iterator[Expr]:
    """Top-level expressions of one statement (not recursing into bodies)."""
    if isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, CallStmt):
        yield from stmt.args
    elif isinstance(stmt, IfBlock):
        for cond, _body in stmt.arms:
            yield cond
    elif isinstance(stmt, LogicalIf):
        yield stmt.cond
    elif isinstance(stmt, DoLoop):
        yield stmt.start
        yield stmt.stop
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, IoStmt):
        for e in getattr(stmt, "args", ()) or ():
            if isinstance(e, Expr):
                yield e


class _UnitScan:
    """One pre-order walk collecting every array/scalar use with context."""

    def __init__(self, table) -> None:
        self.table = table
        self.uses: dict[str, _ArrayUse] = {}
        #: scalar name → positions of writes to it
        self.scalar_writes: dict[str, list[int]] = {}
        self.position = 0

    def use(self, name: str) -> _ArrayUse:
        return self.uses.setdefault(name, _ArrayUse())

    def scan(self, stmts: list[Stmt], loops: tuple[DoLoop, ...], guarded: bool):
        for stmt in stmts:
            self.position += 1
            pos = self.position
            if isinstance(stmt, Assign):
                target = stmt.target
                if isinstance(target, Apply):
                    self.use(target.name).write_positions.append(pos)
                    self._reads(target.args, pos, loops)
                else:
                    self.scalar_writes.setdefault(target.name, []).append(pos)
                self._reads([stmt.value], pos, loops)
            elif isinstance(stmt, CallStmt):
                for arg in stmt.args:
                    for node in arg.walk():
                        if (
                            isinstance(node, (NameRef, Apply))
                            and self.table.is_array(node.name)
                        ):
                            self.use(node.name).poison("passed to a CALL")
                        elif isinstance(node, NameRef):
                            # the callee may write any scalar passed by
                            # reference
                            self.scalar_writes.setdefault(
                                node.name, []
                            ).append(pos)
                self._reads(stmt.args, pos, loops)
            elif isinstance(stmt, IoStmt):
                for e in _exprs_of(stmt):
                    for node in e.walk():
                        if isinstance(
                            node, (NameRef, Apply)
                        ) and self.table.is_array(node.name):
                            self.use(node.name).poison("used in I/O")
                self._reads(list(_exprs_of(stmt)), pos, loops)
            elif isinstance(stmt, IfBlock):
                self._reads([cond for cond, _ in stmt.arms], pos, loops)
                for _, body in stmt.arms:
                    self.scan(body, loops, True)
                self.scan(stmt.orelse, loops, True)
            elif isinstance(stmt, LogicalIf):
                self._reads([stmt.cond], pos, loops)
                self.scan([stmt.stmt], loops, True)
            elif isinstance(stmt, DoLoop):
                self._reads(list(_exprs_of(stmt)), pos, loops)
                self.scalar_writes.setdefault(stmt.var, []).append(pos)
                self.scan(stmt.body, loops + (stmt,), guarded)
            elif isinstance(stmt, Continue):
                pass
            else:
                # GOTO / RETURN / STOP and anything unmodeled: poison
                # every array mentioned (none for the control statements)
                for e in _exprs_of(stmt):
                    for node in e.walk():
                        if isinstance(
                            node, (NameRef, Apply)
                        ) and self.table.is_array(node.name):
                            self.use(node.name).poison("unmodeled statement")

    def _reads(self, exprs: list[Expr], pos: int, loops) -> None:
        for e in exprs:
            for node in e.walk():
                if isinstance(node, Apply) and self.table.is_array(node.name):
                    self.use(node.name).reads.append(
                        _ReadSite(pos, node, tuple(loops))
                    )
                elif isinstance(node, NameRef) and self.table.is_array(
                    node.name
                ):
                    # whole-array reference outside a call: unanalyzable
                    self.use(node.name).poison("whole-array reference")


# --------------------------------------------------------------------------- #
# defining-loop abstraction
# --------------------------------------------------------------------------- #


def _assigns_to(stmts: list[Stmt], array: str) -> list[Assign]:
    out = []
    for stmt in stmts:
        for s in stmt.walk():
            if (
                isinstance(s, Assign)
                and isinstance(s.target, Apply)
                and s.target.name == array
            ):
                out.append(s)
    return out


def _touches(stmts: list[Stmt], array: str) -> int:
    count = 0
    for stmt in stmts:
        for s in stmt.walk():
            for e in _exprs_of(s):
                for node in e.walk():
                    if isinstance(node, (Apply, NameRef)) and node.name == array:
                        count += 1
    return count


def _stable_base(
    base: SymExpr, scan: _UnitScan, loop_pos: int, loop_var: str
) -> bool:
    """Is every free symbol of *base* unchanged from the defining loop on?

    A form substituted at a read site evaluates its symbols at *read*
    time; the fact computed them at *write* time.  The two agree exactly
    when no write to the symbol sits at or after the defining loop.
    """
    for name in base.free_vars():
        if name == loop_var:
            return False
        writes = scan.scalar_writes.get(name, ())
        if any(p >= loop_pos for p in writes):
            return False
    return True


def _affine_rhs(
    value: Expr, ctx, loop_var: str
) -> Optional[tuple[Fraction, SymExpr]]:
    """``(coeff, base)`` of an affine-in-the-index right-hand side."""
    from ..dataflow.convert import to_symexpr

    sym = to_symexpr(value, ctx)
    if sym is None or not sym.is_linear_in(loop_var):
        return None
    coeff = sym.coeff_of_var(loop_var)
    base = sym - SymExpr.var(loop_var).scaled(coeff)
    if loop_var in base.free_vars():
        return None
    return coeff, base


def _recurrence_rhs(
    value: Expr, array: str, loop_var: str, ctx
) -> Optional[Fraction]:
    """The constant step of ``X(v) = X(v-1) ± c``, or ``None``."""
    from ..dataflow.convert import to_symexpr

    if not isinstance(value, BinOp) or value.op not in ("+", "-"):
        return None
    sides = [(value.left, value.right, 1 if value.op == "+" else -1)]
    if value.op == "+":
        sides.append((value.right, value.left, 1))
    for prev, delta_expr, sign in sides:
        if not (isinstance(prev, Apply) and prev.name == array):
            continue
        if len(prev.args) != 1:
            return None
        sub = to_symexpr(prev.args[0], ctx)
        if sub is None or sub != SymExpr.var(loop_var) - SymExpr.const(1):
            return None
        delta_sym = to_symexpr(delta_expr, ctx)
        if delta_sym is None:
            return None
        delta = delta_sym.constant_value()
        if delta is None or delta == 0:
            return None
        if any(
            isinstance(n, (Apply, NameRef)) and n.name == array
            for n in delta_expr.walk()
        ):
            return None
        return delta * sign
    return None


def _loop_value(
    loop: DoLoop, array: str, scan: _UnitScan, loop_pos: int, ctx
) -> Optional[tuple[ValueAbstract, Optional[Fraction], int]]:
    """Abstract the values *loop* leaves in ``array``.

    Returns ``(value, recurrence_delta, lineno)`` or ``None`` when the
    loop is not a clean total writer of ``X(v)``.
    """
    v = loop.var
    body_ctx = ctx.with_index(v)
    assigns = _assigns_to(loop.body, array)
    lineno = assigns[0].lineno if assigns else loop.lineno

    def is_xv(target: Apply) -> bool:
        return (
            len(target.args) == 1
            and isinstance(target.args[0], NameRef)
            and target.args[0].name == v
        )

    if not all(is_xv(a.target) for a in assigns):  # type: ignore[arg-type]
        return None

    # layout: every statement of the body either never touches X, is the
    # single unconditional assign, or is one IF/ELSE assigning X in all arms
    unconditional: list[Assign] = []
    branches: list[IfBlock] = []
    for stmt in loop.body:
        touches = _touches([stmt], array)
        if touches == 0:
            continue
        if isinstance(stmt, Assign) and isinstance(stmt.target, Apply):
            reads_x = _touches([stmt], array) - 1
            if stmt.target.name == array and reads_x in (0, 1):
                unconditional.append(stmt)
                continue
            return None
        if isinstance(stmt, IfBlock):
            branches.append(stmt)
            continue
        return None

    if len(unconditional) == 1 and not branches:
        stmt = unconditional[0]
        if _touches([stmt], array) == 1:
            affine = _affine_rhs(stmt.value, body_ctx, v)
            if affine is not None and _stable_base(
                affine[1], scan, loop_pos, v
            ):
                return abstract_of_affine(*affine), None, stmt.lineno
            return None
        delta = _recurrence_rhs(stmt.value, array, v, body_ctx)
        if delta is None:
            return None
        mono = (
            Monotone.STRICT_INC if delta > 0 else Monotone.STRICT_DEC
        )
        return ValueAbstract(mono=mono), delta, stmt.lineno

    if len(branches) == 1 and not unconditional:
        block = branches[0]
        if any(_touches([cond], array) for cond, _ in block.arms):
            return None
        if not block.orelse:
            return None  # partial write: some iterations leave X(v) stale
        arms = [body for _, body in block.arms] + [block.orelse]
        merged: Optional[ValueAbstract] = None
        for body in arms:
            writes = _assigns_to(body, array)
            if len(writes) != 1 or _touches(body, array) != 1:
                return None
            affine = _affine_rhs(writes[0].value, body_ctx, v)
            if affine is None or not _stable_base(
                affine[1], scan, loop_pos, v
            ):
                return None
            value = abstract_of_affine(*affine)
            merged = value if merged is None else join_value(merged, value)
        if merged is None or merged.is_top():
            return None
        return merged, None, block.lineno
    return None


# --------------------------------------------------------------------------- #
# coverage proofs
# --------------------------------------------------------------------------- #


def _covers_reads(
    use: _ArrayUse,
    loop: DoLoop,
    loop_positions: tuple[int, int],
    ctx,
    comparer,
) -> bool:
    """Every read outside the defining loop provably hits ``[lo, hi]``."""
    from ..dataflow.convert import to_symexpr

    lo = to_symexpr(loop.start, ctx)
    hi = to_symexpr(loop.stop, ctx)
    if lo is None or hi is None:
        return False
    start, end = loop_positions
    for site in use.reads:
        if start <= site.position <= end:
            continue  # in-loop reads are handled by the shape analysis
        if len(site.apply.args) != 1:
            return False
        site_ctx = ctx
        atoms = Predicate.true()
        usable = True
        for enclosing in site.loops:
            site_ctx = site_ctx.with_index(enclosing.var)
            if enclosing.step is not None and not (
                isinstance(enclosing.step, IntLit)
                and enclosing.step.value == 1
            ):
                usable = False
                continue
            elo = to_symexpr(enclosing.start, site_ctx)
            ehi = to_symexpr(enclosing.stop, site_ctx)
            if elo is None or ehi is None:
                continue  # sound to omit the range atom
            iv = SymExpr.var(enclosing.var)
            atoms = atoms & Predicate.le(elo, iv) & Predicate.le(iv, ehi)
        if not usable:
            return False
        sub = to_symexpr(site.apply.args[0], site_ctx)
        if sub is None:
            return False
        cmp = comparer.refine(atoms)
        if cmp.le(lo, sub) is not True or cmp.le(sub, hi) is not True:
            return False
    return True


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #


@dataclass
class ContentFacts:
    """All content facts of one program, ready for installation."""

    by_unit: dict[str, list[ContentFact]] = field(default_factory=dict)

    def count(self) -> int:
        return sum(len(v) for v in self.by_unit.values())

    def facts_for(self, unit: str) -> list[ContentFact]:
        return self.by_unit.get(unit, [])

    def forms_for(self, unit: str) -> dict[str, SymExpr]:
        """Coverage-verified affine closed forms, for subscript substitution."""
        out: dict[str, SymExpr] = {}
        for fact in self.facts_for(unit):
            if fact.kind == "affine" and fact.covered:
                form = fact.form()
                if form is not None:
                    out[fact.array] = form
        return out

    def bounds_for(self, unit: str) -> dict[str, tuple[Fraction, Fraction]]:
        """Coverage-verified element bounds, for guard discharge."""
        out: dict[str, tuple[Fraction, Fraction]] = {}
        for fact in self.facts_for(unit):
            if (
                fact.covered
                and fact.kind in ("affine", "bounds")
                and fact.value_lo is not None
                and fact.value_hi is not None
            ):
                out[fact.array] = (fact.value_lo, fact.value_hi)
        return out

    def install(self, analyzer) -> None:
        """Attach to a SummaryAnalyzer: context_for() then merges the
        derived forms/bounds into every conversion context it builds."""
        analyzer.content_facts = self

    def evidence_for(self, unit: str, arrays: set[str]) -> list[dict[str, Any]]:
        """Evidence payloads of the *exported* facts a loop consumed."""
        out = []
        for fact in self.facts_for(unit):
            if fact.array in arrays and fact.covered:
                out.append(fact.to_payload())
        return out


def infer_unit(
    analyzed: AnalyzedProgram, unit_name: str, options=None
) -> list[ContentFact]:
    """Content facts of one unit (pure function of its source + options)."""
    from ..dataflow.context import AnalysisOptions
    from ..dataflow.convert import ConversionContext

    options = options or AnalysisOptions()
    if not (options.frontier and options.symbolic):
        return []
    table = analyzed.table(unit_name)
    unit = analyzed.unit(unit_name)

    scan = _UnitScan(table)
    scan.scan(unit.body, (), False)

    # locate top-level defining loops with their walk-position spans
    spans: dict[int, tuple[DoLoop, int, int]] = {}
    position = 0

    def measure(stmts: list[Stmt]) -> int:
        nonlocal position
        for stmt in stmts:
            position += 1
            start = position
            for block in stmt.body_blocks():
                measure(block)
            if isinstance(stmt, DoLoop):
                spans[id(stmt)] = (stmt, start, position)
        return position

    measure(unit.body)
    top_loops = [
        spans[id(stmt)] for stmt in unit.body if isinstance(stmt, DoLoop)
    ]

    ctx = ConversionContext(
        table=table,
        symbolic=options.symbolic,
        if_conditions=options.if_conditions,
    )
    comparer = options.comparer()
    from ..dataflow.convert import to_symexpr

    facts: list[ContentFact] = []
    for name in sorted(scan.uses):
        use = scan.uses[name]
        if use.poisoned is not None:
            continue
        if not use.write_positions:
            continue
        info = table.arrays.get(name)
        if info is None or info.rank != 1:
            continue
        if element_type(table, name) != "integer":
            continue
        if table.common_block_of(name) is not None:
            continue
        # one defining loop must span every write
        defining = [
            (loop, start, end)
            for loop, start, end in top_loops
            if all(start <= p <= end for p in use.write_positions)
        ]
        if len(defining) != 1:
            continue
        loop, start, end = defining[0]
        if loop.step is not None and not (
            isinstance(loop.step, IntLit) and loop.step.value == 1
        ):
            continue
        if any(p < start for p in (s.position for s in use.reads)):
            continue  # read before definition: caller data escapes
        abstracted = _loop_value(loop, name, scan, start, ctx)
        if abstracted is None:
            continue
        value, delta, lineno = abstracted
        lo = to_symexpr(loop.start, ctx)
        hi = to_symexpr(loop.stop, ctx)
        if lo is None or hi is None:
            continue
        if not _stable_base(lo, scan, start, loop.var) or not _stable_base(
            hi, scan, start, loop.var
        ):
            continue
        covered = _covers_reads(use, loop, (start, end), ctx, comparer)
        if value.affine is not None:
            coeff, base = value.affine
            vlo, vhi = (value.bounds or (None, None))
            facts.append(
                ContentFact(
                    unit=unit_name,
                    array=name,
                    kind="affine",
                    seg_lo=lo,
                    seg_hi=hi,
                    coeff=coeff,
                    base=base,
                    value_lo=vlo,
                    value_hi=vhi,
                    mono=monotone_of_affine(coeff),
                    covered=covered,
                    lineno=lineno,
                    detail=f"{name}({loop.var}) = {coeff}*{loop.var} + {base}",
                )
            )
        elif value.bounds is not None:
            facts.append(
                ContentFact(
                    unit=unit_name,
                    array=name,
                    kind="bounds",
                    seg_lo=lo,
                    seg_hi=hi,
                    value_lo=value.bounds[0],
                    value_hi=value.bounds[1],
                    mono=value.mono,
                    covered=covered,
                    lineno=lineno,
                    detail=(
                        f"{value.bounds[0]} <= {name}(k) <= {value.bounds[1]}"
                    ),
                )
            )
        elif delta is not None:
            facts.append(
                ContentFact(
                    unit=unit_name,
                    array=name,
                    kind="monotone",
                    seg_lo=lo,
                    seg_hi=hi,
                    mono=value.mono,
                    delta=delta,
                    covered=False,  # monotone facts export nothing yet
                    lineno=lineno,
                    detail=f"{name}(k) - {name}(k-1) = {delta} on the segment",
                )
            )
    return facts


def infer_program(analyzed: AnalyzedProgram, options=None) -> ContentFacts:
    """Content facts for every unit of a program."""
    out = ContentFacts()
    for unit in analyzed.program.units:
        facts = infer_unit(analyzed, unit.name, options)
        if facts:
            out.by_unit[unit.name] = facts
    return out
