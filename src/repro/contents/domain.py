"""The abstract value lattice of the array-content domain.

One abstract element describes what is known about the *values* an array
holds over a written segment ``[lo, hi]``:

* ``affine`` — every cell satisfies ``value(k) = coeff*k + base`` (the
  strongest element short of ⊥; implies monotonicity by the sign of
  ``coeff`` and injectivity whenever ``coeff ≠ 0``);
* ``bounds`` — every cell lies in a constant interval ``[vlo, vhi]``;
* ``monotone`` — consecutive cells differ by a known-sign constant
  (derived from first-order recurrences ``X(i) = X(i-1) + c``).

The partial order is precision: affine ⊑ monotone ⊑ ⊤ and
affine-with-constant-data ⊑ bounds ⊑ ⊤.  :func:`join_value` computes
least upper bounds when control flow merges two writers (IF arms), which
is where "two different constants" degrades gracefully to an interval
instead of being dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Optional

from ..symbolic import SymExpr


class Monotone(enum.Enum):
    """Monotonicity element of the lattice (⊤ = UNKNOWN)."""

    CONSTANT = "constant"
    STRICT_INC = "strictly-increasing"
    NONDECREASING = "nondecreasing"
    STRICT_DEC = "strictly-decreasing"
    NONINCREASING = "nonincreasing"
    UNKNOWN = "unknown"


#: Hasse diagram edges, child (more precise) → parents
_ABOVE = {
    Monotone.CONSTANT: {Monotone.NONDECREASING, Monotone.NONINCREASING},
    Monotone.STRICT_INC: {Monotone.NONDECREASING},
    Monotone.STRICT_DEC: {Monotone.NONINCREASING},
    Monotone.NONDECREASING: {Monotone.UNKNOWN},
    Monotone.NONINCREASING: {Monotone.UNKNOWN},
    Monotone.UNKNOWN: set(),
}


def _ups(m: Monotone) -> set[Monotone]:
    """The up-set {x : m ⊑ x} of one element."""
    out = {m}
    frontier = [m]
    while frontier:
        for parent in _ABOVE[frontier.pop()]:
            if parent not in out:
                out.add(parent)
                frontier.append(parent)
    return out


def join_monotone(a: Monotone, b: Monotone) -> Monotone:
    """Least upper bound of two monotonicity elements."""
    # the common up-set is always a chain towards ⊤ in this lattice;
    # its minimum is the least upper bound
    common = _ups(a) & _ups(b)
    best = Monotone.UNKNOWN
    for m in common:
        if best in _ups(m):
            best = m
    return best


def monotone_of_affine(coeff: Fraction) -> Monotone:
    """Monotonicity implied by an affine closed form's slope."""
    if coeff > 0:
        return Monotone.STRICT_INC
    if coeff < 0:
        return Monotone.STRICT_DEC
    return Monotone.CONSTANT


@dataclass
class ValueAbstract:
    """What is known about a segment's cell values (one lattice element)."""

    #: closed form value(k) = coeff*k + base (base loop-invariant)
    affine: Optional[tuple[Fraction, SymExpr]] = None
    #: constant interval every cell lies in
    bounds: Optional[tuple[Fraction, Fraction]] = None
    mono: Monotone = Monotone.UNKNOWN

    def is_top(self) -> bool:
        return (
            self.affine is None
            and self.bounds is None
            and self.mono is Monotone.UNKNOWN
        )


def abstract_of_affine(coeff: Fraction, base: SymExpr) -> ValueAbstract:
    """The lattice element of a proven affine closed form."""
    bounds = None
    if coeff == 0:
        c = base.constant_value()
        if c is not None:
            bounds = (c, c)
    return ValueAbstract(
        affine=(coeff, base), bounds=bounds, mono=monotone_of_affine(coeff)
    )


def join_value(a: ValueAbstract, b: ValueAbstract) -> ValueAbstract:
    """Least upper bound of two value abstractions (merge of two writers).

    The join models a *data-dependent* choice of writer per cell, so the
    sequence-shaped component cannot be joined pointwise: interleaving
    two increasing closed forms need not be increasing.  Monotonicity is
    instead re-derived from what survives the join — a shared affine
    form, or a collapsed single-value interval.
    """
    affine = None
    if (
        a.affine is not None
        and b.affine is not None
        and a.affine[0] == b.affine[0]
        and a.affine[1] == b.affine[1]
    ):
        affine = a.affine
    bounds = None
    if a.bounds is not None and b.bounds is not None:
        bounds = (min(a.bounds[0], b.bounds[0]), max(a.bounds[1], b.bounds[1]))
    if affine is not None:
        mono = monotone_of_affine(affine[0])
    elif bounds is not None and bounds[0] == bounds[1]:
        mono = Monotone.CONSTANT
    else:
        mono = Monotone.UNKNOWN
    return ValueAbstract(affine=affine, bounds=bounds, mono=mono)


@dataclass
class ContentFact:
    """One exported fact about one array's written segment in one unit."""

    unit: str
    array: str
    #: 'affine' | 'bounds' | 'monotone'
    kind: str
    #: written segment (defining-loop bounds, symbolic)
    seg_lo: SymExpr = None  # type: ignore[assignment]
    seg_hi: SymExpr = None  # type: ignore[assignment]
    #: affine closed form (kind == 'affine')
    coeff: Optional[Fraction] = None
    base: Optional[SymExpr] = None
    #: element bounds (kind == 'bounds', or affine over constant data)
    value_lo: Optional[Fraction] = None
    value_hi: Optional[Fraction] = None
    #: monotonicity (all kinds)
    mono: Monotone = Monotone.UNKNOWN
    #: first-order recurrence step (kind == 'monotone')
    delta: Optional[Fraction] = None
    #: every read of the array in the unit provably hits the segment —
    #: the gate for exporting forms/bounds into conversion contexts
    covered: bool = False
    lineno: int = 0
    detail: str = ""

    @property
    def injective(self) -> bool:
        """Distinct cells provably hold distinct values."""
        if self.kind == "affine":
            return self.coeff != 0
        return self.mono in (Monotone.STRICT_INC, Monotone.STRICT_DEC)

    def form(self) -> Optional[SymExpr]:
        """Index-array closed form over ``subscript_placeholder(1)``."""
        if self.kind != "affine" or self.coeff is None or self.base is None:
            return None
        from ..dataflow.convert import subscript_placeholder

        return subscript_placeholder(1).scaled(self.coeff) + self.base

    def to_payload(self) -> dict[str, Any]:
        """Machine-checkable evidence record (docs/frontier.md)."""
        out: dict[str, Any] = {
            "kind": "content",
            "unit": self.unit,
            "array": self.array,
            "fact": self.kind,
            "segment": [str(self.seg_lo), str(self.seg_hi)],
            "monotone": self.mono.value,
            "injective": self.injective,
            "covered": self.covered,
            "lineno": self.lineno,
        }
        if self.kind == "affine":
            out["coeff"] = str(self.coeff)
            out["base"] = str(self.base)
        if self.value_lo is not None and self.value_hi is not None:
            out["value_lo"] = str(self.value_lo)
            out["value_hi"] = str(self.value_hi)
        if self.delta is not None:
            out["delta"] = str(self.delta)
        if self.detail:
            out["detail"] = self.detail
        return out

    def matches_payload(self, payload: dict[str, Any]) -> bool:
        """Does this fact support an evidence record? (auditor replay)"""
        mine = self.to_payload()
        return all(
            mine.get(key) == value
            for key, value in payload.items()
            if key not in ("detail",)
        )
