"""The partial-order array-content abstract domain (docs/frontier.md).

Infers per-array, per-segment *value* facts — closed affine forms,
monotonicity, and element bounds — for arrays a routine initializes in
one clean defining loop, and exports them as extra conversion context
(index-array forms, guard bounds) that the symbolic comparer and the
GAR machinery consume transparently.  This is the mechanical version of
the paper's section-6 "forward substitution by hand" for subscript
arrays like ARC2D's ``JPLUS``/``JMINUS``.
"""

from .domain import ContentFact, Monotone, join_monotone
from .infer import ContentFacts, infer_program, infer_unit

__all__ = [
    "ContentFact",
    "ContentFacts",
    "Monotone",
    "infer_program",
    "infer_unit",
    "join_monotone",
]
