"""GAR and GAR-list set operations (paper section 3.1, "GAR operations").

The nested-GAR notation ``[[P, Tlist]]`` of the paper — distribute ``P``
into every member of ``Tlist`` — is realized by
:meth:`~repro.regions.gar.GARList.and_guard`.

Soundness contract
------------------
* ``union`` and ``intersect`` accept inexact (over-approximating) operands
  and produce correspondingly inexact results.
* ``subtract`` **kills only with exact subtrahends**: an inexact GAR on the
  right-hand side must not remove elements, so it is skipped and the result
  is marked inexact (it then over-approximates the true difference, which
  is the safe direction for upward-exposed-use sets).
"""

from __future__ import annotations

from typing import Optional

from ..perf.profiler import MISS, BoundedCache
from ..symbolic import Comparer, Predicate, predicate_implies
from . import sanitize
from .gar import GAR, GARList
from .gar_simplify import simplify_gar_list
from .region_ops import region_difference, region_intersect, region_union

#: (op tag, T1, T2, context fingerprint, symbolic flag) → GARList.  The
#: pairwise GAR operations are pure functions of the operands and the
#: proof context; propagation and the resident daemon repeat them
#: constantly, so one shared memo covers intersect/union/subtract.
_PAIR_CACHE = BoundedCache("gar.pair_ops", maxsize=32768)


def _pair_key(tag: str, t1: GAR, t2: GAR, cmp: Comparer) -> tuple:
    return (tag, t1, t2, cmp._ctx_key, cmp.symbolic)


def gar_intersect(t1: GAR, t2: GAR, cmp: Comparer) -> GARList:
    """``T1 ∩ T2 = [[P1 ∧ P2, R1 ∩ R2]]``."""
    key = _pair_key("i", t1, t2, cmp)
    cached = _PAIR_CACHE.get(key)
    if cached is not MISS:
        return cached
    return _PAIR_CACHE.put(key, _gar_intersect_uncached(t1, t2, cmp))


def _gar_intersect_uncached(t1: GAR, t2: GAR, cmp: Comparer) -> GARList:
    guard = t1.guard & t2.guard
    if guard.is_false():
        return GARList.empty()
    inner = region_intersect(t1.region, t2.region, cmp.refine(guard))
    result = inner.and_guard(guard)
    if not (t1.exact and t2.exact):
        result = result.inexact()
    return result


def gar_union(t1: GAR, t2: GAR, cmp: Comparer) -> GARList:
    """``T1 ∪ T2`` with the paper's three special-case simplifications.

    * ``R1 == R2``: ``[P1 ∨ P2, R1]``
    * ``P1 => P2``: ``[[P1, R1 ∪ R2]] ∪ [¬P1 ∧ P2, R2]``
    * ``P2 => P1``: symmetric
    * otherwise the general three-piece formula, or simply the two-element
      list when the region union does not merge.
    """
    key = _pair_key("u", t1, t2, cmp)
    cached = _PAIR_CACHE.get(key)
    if cached is not MISS:
        return cached
    return _PAIR_CACHE.put(key, _gar_union_uncached(t1, t2, cmp))


def _gar_union_uncached(t1: GAR, t2: GAR, cmp: Comparer) -> GARList:
    exact = t1.exact and t2.exact
    if t1.region == t2.region:
        guard = t1.guard | t2.guard
        if guard.is_unknown() and not (t1.guard.is_unknown() or t2.guard.is_unknown()):
            return GARList.of(t1, t2)  # don't lose precision to a Δ guard
        return GARList.of(GAR(guard, t1.region, exact))
    if predicate_implies(t1.guard, t2.guard, use_fm=cmp.use_fm):
        merged = region_union(t1.region, t2.region, cmp.refine(t1.guard))
        if merged is not None:
            not_p1 = t1.guard.negate()
            return GARList.of(
                GAR(t1.guard, merged, exact),
                GAR(not_p1 & t2.guard, t2.region, exact),
            )
    if predicate_implies(t2.guard, t1.guard, use_fm=cmp.use_fm):
        merged = region_union(t1.region, t2.region, cmp.refine(t2.guard))
        if merged is not None:
            not_p2 = t2.guard.negate()
            return GARList.of(
                GAR(t2.guard, merged, exact),
                GAR(t1.guard & not_p2, t1.region, exact),
            )
    if t1.guard == t2.guard:
        merged = region_union(t1.region, t2.region, cmp.refine(t1.guard))
        if merged is not None:
            return GARList.of(GAR(t1.guard, merged, exact))
    return GARList.of(t1, t2)


def gar_subtract(t1: GAR, t2: GAR, cmp: Comparer) -> GARList:
    """``T1 - T2 = [[P1 ∧ P2, R1 - R2]] ∪ [P1 ∧ ¬P2, R1]``.

    When the subtrahend is inexact, has an unknown guard, or the region
    difference is unrepresentable, the result is ``T1`` marked inexact
    (a safe over-approximation of the true difference).
    """
    key = _pair_key("s", t1, t2, cmp)
    cached = _PAIR_CACHE.get(key)
    if cached is not MISS:
        return cached
    return _PAIR_CACHE.put(key, _gar_subtract_uncached(t1, t2, cmp))


def _gar_subtract_uncached(t1: GAR, t2: GAR, cmp: Comparer) -> GARList:
    if not t2.exact or t2.guard.is_unknown():
        return GARList.of(t1.inexact())
    if t1.region.array != t2.region.array or t1.region.rank != t2.region.rank:
        return GARList.of(t1)
    both = t1.guard & t2.guard
    not_p2 = t2.guard.negate()
    escape = GAR(t1.guard & not_p2, t1.region, t1.exact and not not_p2.is_unknown())
    if not_p2.is_unknown():
        # cannot represent the complement: keep T1 but inexact
        escape = t1.inexact()
        return GARList.of(escape)
    if both.is_false():
        return GARList.of(GAR(t1.guard, t1.region, t1.exact))
    diff = region_difference(t1.region, t2.region, cmp.refine(both))
    if diff is None:
        # unrepresentable difference: over-approximate by T1 restricted to
        # the two guard branches (still a superset of the true difference)
        return GARList.of(GAR(both, t1.region, False), escape)
    pieces = diff.and_guard(both)
    if not t1.exact:
        pieces = pieces.inexact()
    return pieces.union(GARList.of(escape))


# -- list-level operations ------------------------------------------------------


def union_lists(a: GARList, b: GARList, cmp: Comparer) -> GARList:
    """Union of two summaries, simplified."""
    result = simplify_gar_list(a.union(b), cmp)
    if sanitize.enabled():
        sanitize.check("union", a, b, result)
    return result


def intersect_lists(a: GARList, b: GARList, cmp: Comparer) -> GARList:
    """Pairwise intersection of two summaries (distributes over union)."""
    out = GARList.empty()
    for x in a:
        for y in b:
            if x.array != y.array:
                continue
            out = out.union(gar_intersect(x, y, cmp))
    result = simplify_gar_list(out, cmp)
    if sanitize.enabled():
        sanitize.check("intersect", a, b, result)
    return result


def subtract_lists(minuend: GARList, subtrahend: GARList, cmp: Comparer) -> GARList:
    """``minuend - subtrahend``: fold the right list through the left.

    ``(A ∪ B) - C = (A - C) ∪ (B - C)`` and ``X - (C ∪ D) = (X - C) - D``.
    """
    current = minuend
    for y in subtrahend:
        next_pieces = GARList.empty()
        for x in current:
            if x.array != y.array:
                next_pieces = next_pieces.add(x)
            else:
                next_pieces = next_pieces.union(gar_subtract(x, y, cmp))
        current = simplify_gar_list(next_pieces, cmp)
    if sanitize.enabled():
        sanitize.check("subtract", minuend, subtrahend, current)
    return current


def lists_intersect_empty(a: GARList, b: GARList, cmp: Comparer) -> bool:
    """Provably ``a ∩ b = ∅`` — the workhorse of the dependence tests.

    Sound with over-approximating operands: if even the over-approximated
    intersection is empty, the true one is.
    """
    inter = intersect_lists(a, b, cmp)
    return inter.provably_empty(use_fm=cmp.use_fm)
