"""Guarded array regions (GARs) and GAR lists (paper section 3).

A GAR ``[P, R]`` pairs a guard predicate ``P`` with a regular array region
``R``: the set of elements of ``R`` accessed *when* ``P`` holds.  Following
the paper, the constructor always conjoins the region's per-dimension
``lo <= hi`` conditions into the guard, so emptiness of a GAR can be
detected by examining the guard alone.

A :class:`GARList` is a finite union of GARs — the representation used for
the ``MOD``/``UE`` summary sets.

Exactness.  The paper states the summary sets are exact "unless the GAR's
contain unknown components".  We track this explicitly: ``exact=False``
marks a GAR that may *over-approximate* its true set (unknown guard Δ,
Ω dimensions, or information lost in an operation).  Over-approximations
are safe for proving dependence *absence* (an empty over-approximation is
truly empty) but must never be used to kill upward-exposed uses; the
subtraction operator in :mod:`repro.regions.gar_ops` enforces that.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from ..symbolic import (
    Comparer,
    Predicate,
    SymExpr,
    predicate_unsat,
    predicate_unsat_many,
)
from .ranges import Range
from .region import OMEGA_DIM, RegularRegion


class GAR:
    """An immutable guarded array region ``[P, R]``."""

    __slots__ = ("guard", "region", "exact", "_hash")

    def __init__(
        self, guard: Predicate, region: RegularRegion, exact: bool = True
    ) -> None:
        guard = guard & region.nonempty_pred()
        if guard.is_unknown() or not region.is_fully_known():
            exact = False
        self.guard = guard
        self.region = region
        self.exact = exact
        self._hash = hash((self.guard, self.region, self.exact))

    # -- constructors --------------------------------------------------------

    @classmethod
    def of_reference(
        cls, array: str, subscripts: Sequence[SymExpr], guard: Predicate | None = None
    ) -> "GAR":
        """The GAR of a single array reference ``A(e1, ..., em)``."""
        return cls(
            guard if guard is not None else Predicate.true(),
            RegularRegion.point(array, subscripts),
        )

    @classmethod
    def omega(cls, array: str, rank: int) -> "GAR":
        """Wholly unknown access of *array* — guard Δ, region Ω."""
        return cls(Predicate.unknown(), RegularRegion.omega(array, rank), exact=False)

    # -- tests --------------------------------------------------------------------

    @property
    def array(self) -> str:
        return self.region.array

    def is_empty(self) -> bool:
        """Statically empty (guard already normalized to False)."""
        return self.guard.is_false()

    def provably_empty(self, use_fm: bool = True) -> bool:
        """Is the guard provably unsatisfiable?"""
        return predicate_unsat(self.guard, use_fm=use_fm)

    def is_omega(self) -> bool:
        """Wholly unknown GAR (guard Δ, region Ω)?"""
        return self.guard.is_unknown() and self.region.is_omega()

    def free_vars(self) -> frozenset[str]:
        """Variables in the guard and region."""
        return self.guard.free_vars() | self.region.free_vars()

    def contains_var(self, name: str) -> bool:
        """Does *name* occur in the guard or region?"""
        return self.guard.contains(name) or self.region.contains_var(name)

    # -- rewriting --------------------------------------------------------------------

    def with_guard(self, guard: Predicate) -> "GAR":
        """A copy with the guard replaced."""
        return GAR(guard, self.region, self.exact)

    def and_guard(self, extra: Predicate) -> "GAR":
        """Further qualify this GAR by an additional condition."""
        if extra.is_true():
            return self
        exact = self.exact and not extra.is_unknown()
        return GAR(self.guard & extra, self.region, exact)

    def inexact(self) -> "GAR":
        """A copy marked as a (possible) over-approximation."""
        return self if not self.exact else GAR(self.guard, self.region, exact=False)

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "GAR":
        """Value substitution into guard and region."""
        return GAR(
            self.guard.substitute(bindings),
            self.region.substitute(bindings),
            self.exact,
        )

    def rename(self, mapping: Mapping[str, str]) -> "GAR":
        """Variable renaming in guard and region."""
        return GAR(
            self.guard.rename(mapping), self.region.rename(mapping), self.exact
        )

    def with_array(self, array: str) -> "GAR":
        """A copy attached to another array."""
        return GAR(self.guard, self.region.with_array(array), self.exact)

    # -- concrete oracle -----------------------------------------------------------------

    def enumerate(self, env: Mapping[str, int]) -> set[tuple[int, ...]]:
        """Concrete element set under *env* (test oracle, exact GARs only)."""
        if self.guard.is_unknown():
            raise ValueError("cannot enumerate a GAR with unknown guard")
        if not self.guard.evaluate(env):
            return set()
        return self.region.enumerate(env)

    # -- identity ----------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GAR)
            and self.guard == other.guard
            and self.region == other.region
            and self.exact == other.exact
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"GAR<{self}>"

    def __str__(self) -> str:
        marker = "" if self.exact else "~"
        return f"{marker}[{self.guard}, {self.region}]"


class GARList:
    """A finite union of GARs — the ``MOD`` / ``UE`` summary representation."""

    __slots__ = ("gars", "_hash")

    def __init__(self, gars: Iterable[GAR] = ()) -> None:
        self.gars: Tuple[GAR, ...] = tuple(g for g in gars if not g.is_empty())
        # hashing builds a frozenset (order-insensitive, matching __eq__);
        # most lists are never used as keys, so defer it
        self._hash = None

    @classmethod
    def empty(cls) -> "GARList":
        return _EMPTY

    @classmethod
    def of(cls, *gars: GAR) -> "GARList":
        return cls(gars)

    # -- tests ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """Statically empty list (no members)?"""
        return not self.gars

    def provably_empty(self, use_fm: bool = True) -> bool:
        """Is the guard provably unsatisfiable?

        All member guards go to the constraint core as one batch.
        """
        if not self.gars:
            return True
        return all(
            predicate_unsat_many([g.guard for g in self.gars], use_fm=use_fm)
        )

    def is_exact(self) -> bool:
        """Are all members exact?"""
        return all(g.exact for g in self.gars)

    def arrays(self) -> frozenset[str]:
        """Names of all arrays mentioned."""
        return frozenset(g.array for g in self.gars)

    def for_array(self, array: str) -> "GARList":
        """The sub-list for one array."""
        return GARList(g for g in self.gars if g.array == array)

    def free_vars(self) -> frozenset[str]:
        """Variables in the guard and region."""
        out: set[str] = set()
        for g in self.gars:
            out |= g.free_vars()
        return frozenset(out)

    def contains_var(self, name: str) -> bool:
        """Does *name* occur in the guard or region?"""
        return any(g.contains_var(name) for g in self.gars)

    # -- building ------------------------------------------------------------------

    def union(self, other: "GARList") -> "GARList":
        """Concatenation (union semantics; no simplification)."""
        if other.is_empty():
            return self
        if self.is_empty():
            return other
        return GARList(self.gars + other.gars)

    def add(self, gar: GAR) -> "GARList":
        """The list with one more GAR."""
        return GARList(self.gars + (gar,))

    def map(self, fn) -> "GARList":
        """A new list with *fn* applied to every member."""
        return GARList(fn(g) for g in self.gars)

    def and_guard(self, extra: Predicate) -> "GARList":
        """Every member further qualified by *extra*."""
        return self.map(lambda g: g.and_guard(extra))

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "GARList":
        """Value substitution into guard and region."""
        return self.map(lambda g: g.substitute(bindings))

    def rename(self, mapping: Mapping[str, str]) -> "GARList":
        """Variable renaming in guard and region."""
        return self.map(lambda g: g.rename(mapping))

    def inexact(self) -> "GARList":
        """A copy marked as a (possible) over-approximation."""
        return self.map(lambda g: g.inexact())

    # -- concrete oracle -----------------------------------------------------------------

    def enumerate(self, env: Mapping[str, int]) -> set[tuple[int, ...]]:
        """Concrete element set under an environment (oracle)."""
        out: set[tuple[int, ...]] = set()
        for g in self.gars:
            out |= g.enumerate(env)
        return out

    # -- identity ----------------------------------------------------------------------------

    def __iter__(self) -> Iterator[GAR]:
        return iter(self.gars)

    def __len__(self) -> int:
        return len(self.gars)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GARList) and set(self.gars) == set(other.gars)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = self._hash = hash(frozenset(self.gars))
        return cached

    def __repr__(self) -> str:
        return f"GARList<{self}>"

    def __str__(self) -> str:
        if not self.gars:
            return "{}"
        return " U ".join(str(g) for g in self.gars)


_EMPTY = GARList(())
