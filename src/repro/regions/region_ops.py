"""Set operations on regular array regions (paper section 3.1).

Results are :class:`~repro.regions.gar.GARList`\\ s because intersections
and differences of symbolic ranges split into guarded cases.  A
:class:`~repro.symbolic.compare.Comparer` prunes cases that the guard
context already decides — the paper's observation that "in practice the
intersection is usually much simpler than the general formula indicates".
"""

from __future__ import annotations

from typing import Optional

from ..errors import RegionError
from ..symbolic import Comparer, Predicate
from .gar import GAR, GARList
from .ranges import (
    Range,
    range_covers,
    range_difference,
    range_intersect,
    range_union,
)
from .region import OMEGA_DIM, RegularRegion


def _check_same_array(r1: RegularRegion, r2: RegularRegion) -> None:
    if r1.array != r2.array:
        raise RegionError(f"region operation across arrays {r1.array}/{r2.array}")
    if r1.rank != r2.rank:
        raise RegionError(
            f"region operation across ranks {r1.rank}/{r2.rank} of {r1.array}"
        )


def region_intersect(
    r1: RegularRegion, r2: RegularRegion, cmp: Comparer
) -> GARList:
    """``r1 ∩ r2`` as a GAR list.

    An Ω dimension intersected with anything yields an Ω dimension and the
    result is marked inexact (it over-approximates the true intersection).
    """
    _check_same_array(r1, r2)
    exact = True
    # per-dimension guarded alternatives
    cases: list[list[tuple[Predicate, object]]] = []
    for d1, d2 in zip(r1.dims, r2.dims):
        if d1 is OMEGA_DIM and d2 is OMEGA_DIM:
            exact = False
            cases.append([(Predicate.true(), OMEGA_DIM)])
        elif d1 is OMEGA_DIM:
            exact = False
            cases.append([(Predicate.true(), d2)])
        elif d2 is OMEGA_DIM:
            exact = False
            cases.append([(Predicate.true(), d1)])
        else:
            pieces = range_intersect(d1, d2, cmp)
            if pieces is None:
                exact = False
                cases.append([(Predicate.true(), OMEGA_DIM)])
            elif not pieces:
                return GARList.empty()
            else:
                cases.append([(p, rng) for p, rng in pieces])
    out: list[GAR] = []

    def build(i: int, guard: Predicate, dims: list[object]) -> None:
        if guard.is_false():
            return
        if i == len(cases):
            out.append(GAR(guard, RegularRegion(r1.array, dims), exact))
            return
        for pred, dim in cases[i]:
            build(i + 1, guard & pred, dims + [dim])

    build(0, Predicate.true(), [])
    return GARList(out)


def region_union(
    r1: RegularRegion, r2: RegularRegion, cmp: Comparer
) -> Optional[RegularRegion]:
    """``r1 ∪ r2`` merged into a single region when provably possible.

    Per the paper: merge only when representable as one regular region —
    all dimensions equal except at most one, which merges as a range union.
    ``None`` means "keep both" (always representable as a list).
    """
    _check_same_array(r1, r2)
    if r1 == r2:
        return r1
    # containment shortcuts
    if region_covers(r1, r2, cmp):
        return r1
    if region_covers(r2, r1, cmp):
        return r2
    differing: list[int] = []
    for i, (d1, d2) in enumerate(zip(r1.dims, r2.dims)):
        if d1 is OMEGA_DIM or d2 is OMEGA_DIM:
            if d1 is not d2:
                return None
        elif d1 != d2:
            differing.append(i)
    if len(differing) != 1:
        return None
    i = differing[0]
    d1, d2 = r1.dims[i], r2.dims[i]
    assert isinstance(d1, Range) and isinstance(d2, Range)
    merged = range_union(d1, d2, cmp)
    if merged is None:
        return None
    return r1.with_dim(i, merged)


def region_difference(
    r1: RegularRegion, r2: RegularRegion, cmp: Comparer
) -> Optional[GARList]:
    """``r1 - r2`` by the paper's per-dimension recursion.

    The identity used (valid for arbitrary operands, not only ``r2 ⊆ r1``)::

        R1 - R2 = (r1_1 - r2_1, R1rest)  ∪  (r1_1 ∩ r2_1, R1rest - R2rest)

    Returns ``None`` (Ω) when any per-dimension operation is
    unrepresentable or an Ω dimension is involved — the caller must then
    over-approximate the difference by ``r1`` marked inexact.

    Assumes the *subtrahend is non-empty on the paths where it applies*;
    GAR-level subtraction guarantees this because every GAR guard carries
    its region's non-emptiness conditions (see :class:`~repro.regions.gar.GAR`).
    """
    _check_same_array(r1, r2)
    if not r1.is_fully_known() or not r2.is_fully_known():
        return None

    def rec(dims1: tuple, dims2: tuple) -> Optional[list[tuple[Predicate, tuple]]]:
        d1, d2 = dims1[0], dims2[0]
        assert isinstance(d1, Range) and isinstance(d2, Range)
        head_diff = range_difference(d1, d2, cmp)
        if head_diff is None:
            return None
        out: list[tuple[Predicate, tuple]] = []
        rest1 = dims1[1:]
        for pred, rng in head_diff:
            out.append((pred, (rng,) + rest1))
        if len(dims1) > 1:
            head_int = range_intersect(d1, d2, cmp)
            if head_int is None:
                return None
            if head_int:
                tail = rec(rest1, dims2[1:])
                if tail is None:
                    return None
                for p_head, rng in head_int:
                    for p_tail, dims_tail in tail:
                        out.append((p_head & p_tail, (rng,) + dims_tail))
        return out

    pieces = rec(r1.dims, r2.dims)
    if pieces is None:
        return None
    return GARList(
        GAR(pred, RegularRegion(r1.array, dims))
        for pred, dims in pieces
        if not pred.is_false()
    )


def region_covers(r1: RegularRegion, r2: RegularRegion, cmp: Comparer) -> bool:
    """Provably ``r2 ⊆ r1`` dimension-wise (Ω in r1 covers anything along
    that dimension only if r2 is also Ω there — conservative)."""
    if r1.array != r2.array or r1.rank != r2.rank:
        return False
    for d1, d2 in zip(r1.dims, r2.dims):
        if d1 is OMEGA_DIM:
            continue  # unknown extent: cannot certify, but Ω means "maybe all"
        if d2 is OMEGA_DIM:
            return False
        if not range_covers(d1, d2, cmp):
            return False
    # Ω dims in r1 make "covers" uncertain; require full knowledge for True
    return r1.is_fully_known()
