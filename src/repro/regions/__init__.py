"""Guarded array regions: the paper's summary representation (section 3).

Range triples, rectangular regular array regions, GARs ``[P, R]``, GAR
lists with union semantics, their set operations, and the GAR simplifier.
"""

from .gar import GAR, GARList
from .gar_ops import (
    gar_intersect,
    gar_subtract,
    gar_union,
    intersect_lists,
    lists_intersect_empty,
    subtract_lists,
    union_lists,
)
from .gar_simplify import simplify_gar_list
from .ranges import Range, range_covers, range_difference, range_intersect, range_union
from .shapes import (
    band,
    diagonal,
    dim_symbol,
    enumerate_shaped,
    is_shaped,
    shaped,
    shaped_intersect_empty,
    shaped_provably_empty,
    triangle,
)
from .region import OMEGA_DIM, RegularRegion
from .region_ops import region_covers, region_difference, region_intersect, region_union

__all__ = [
    "GAR",
    "GARList",
    "OMEGA_DIM",
    "Range",
    "RegularRegion",
    "gar_intersect",
    "gar_subtract",
    "gar_union",
    "intersect_lists",
    "lists_intersect_empty",
    "range_covers",
    "range_difference",
    "range_intersect",
    "range_union",
    "region_covers",
    "region_difference",
    "region_intersect",
    "region_union",
    "band",
    "diagonal",
    "dim_symbol",
    "enumerate_shaped",
    "is_shaped",
    "shaped",
    "shaped_intersect_empty",
    "shaped_provably_empty",
    "simplify_gar_list",
    "subtract_lists",
    "triangle",
    "union_lists",
]
