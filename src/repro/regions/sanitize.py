"""Debug-gated concrete-sampling sanitizer for the GAR list algebra.

Enabled via ``PANORAMA_SANITIZE=1`` (or :func:`enable` in tests), this
module cross-checks every :func:`~repro.regions.gar_ops.union_lists`,
``intersect_lists``, and ``subtract_lists`` result by enumerating the
operands and the result on small concrete environments and comparing the
element sets against the contracts of docs/soundness.md:

* union:      ``result ⊇ a ∪ b``; equality when all three are exact;
* intersect:  ``result ⊇ a ∩ b``; equality when all three are exact;
* subtract:   ``a ⊇ result ⊇ a − b`` (subtraction never invents elements
  and only kills elements actually in the subtrahend).

GARs with Δ guards or Ω dimensions cannot be enumerated; environments
where any operand raises are skipped — the sanitizer samples, it does
not prove.  Violations become ``PAN301`` diagnostics collected in a
process-local buffer that the audit layer drains into its report.

The checks are deliberately bounded (``MAX_ENVS`` environments, regions
over ``MAX_ELEMENTS`` elements are skipped) so a sanitized run stays
usable on the full kernel registry.
"""

from __future__ import annotations

import itertools
import os
from typing import Iterator, Mapping, Optional

from ..diagnostics import Diagnostic
from .gar import GARList

ENV_VAR = "PANORAMA_SANITIZE"

#: sampled values per free variable (0 exercises false-y guards)
SAMPLE_VALUES = (0, 1, 2, 3)
#: cap on sampled environments per operation
MAX_ENVS = 24
#: skip environments where any operand enumerates to more elements
MAX_ELEMENTS = 512
#: stop collecting after this many findings (a broken operator would
#: otherwise flood the buffer)
MAX_FINDINGS = 50

_FORCED: Optional[bool] = None
_FINDINGS: list[Diagnostic] = []


def enabled() -> bool:
    """Is the sanitizer active (forced flag, else the env var)?"""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(ENV_VAR, "") not in ("", "0")


def enable() -> None:
    """Force the sanitizer on (tests)."""
    global _FORCED
    _FORCED = True


def disable() -> None:
    """Force the sanitizer off (tests)."""
    global _FORCED
    _FORCED = False


def reset() -> None:
    """Back to env-var gating; clears collected findings."""
    global _FORCED
    _FORCED = None
    _FINDINGS.clear()


def drain() -> list[Diagnostic]:
    """Return and clear the collected PAN301 findings."""
    out = list(_FINDINGS)
    _FINDINGS.clear()
    return out


def _sample_envs(names: frozenset[str]) -> Iterator[dict[str, int]]:
    ordered = sorted(names)
    combos = itertools.product(SAMPLE_VALUES, repeat=len(ordered))
    for combo in itertools.islice(combos, MAX_ENVS):
        yield dict(zip(ordered, combo))


def _try_enumerate(
    gars: GARList, env: Mapping[str, int]
) -> Optional[set[tuple[str, tuple[int, ...]]]]:
    """Element set tagged by array name, or None when not enumerable."""
    out: set[tuple[str, tuple[int, ...]]] = set()
    try:
        for g in gars:
            for point in g.enumerate(env):
                out.add((g.array, point))
                if len(out) > MAX_ELEMENTS:
                    return None
    except Exception:
        # Δ guards, Ω dims, non-integer ranges: this env cannot witness
        return None
    return out


def _report(op: str, env: Mapping[str, int], detail: str) -> None:
    if len(_FINDINGS) >= MAX_FINDINGS:
        return
    _FINDINGS.append(
        Diagnostic(
            code="PAN301",
            message=f"GAR {op} violated its sampling contract: {detail}",
            data={"op": op, "env": dict(env)},
        )
    )


def _fmt(points: set[tuple[str, tuple[int, ...]]]) -> str:
    shown = sorted(points)[:4]
    body = ", ".join(f"{a}{list(p)}" for a, p in shown)
    more = f" (+{len(points) - len(shown)} more)" if len(points) > len(shown) else ""
    return f"{{{body}}}{more}"


def check(op: str, a: GARList, b: GARList, result: GARList) -> None:
    """Sample-check one list operation; append PAN301 on violation."""
    if len(_FINDINGS) >= MAX_FINDINGS:
        return
    names = a.free_vars() | b.free_vars() | result.free_vars()
    all_exact = a.is_exact() and b.is_exact() and result.is_exact()
    for env in _sample_envs(names):
        ea = _try_enumerate(a, env)
        eb = _try_enumerate(b, env)
        er = _try_enumerate(result, env)
        if ea is None or eb is None or er is None:
            continue
        if op == "union":
            expected = ea | eb
            if not expected <= er:
                _report(op, env, f"result misses {_fmt(expected - er)}")
                return
            if all_exact and er != expected:
                _report(op, env, f"exact result has extras {_fmt(er - expected)}")
                return
        elif op == "intersect":
            expected = ea & eb
            if not expected <= er:
                _report(op, env, f"result misses {_fmt(expected - er)}")
                return
            if all_exact and er != expected:
                _report(op, env, f"exact result has extras {_fmt(er - expected)}")
                return
        elif op == "subtract":
            floor = ea - eb
            if not floor <= er:
                _report(
                    op, env, f"result killed unsubtracted {_fmt(floor - er)}"
                )
                return
            if not er <= ea:
                _report(op, env, f"result invented {_fmt(er - ea)}")
                return
        else:  # pragma: no cover - programming error, not data
            raise ValueError(f"unknown op {op!r}")
