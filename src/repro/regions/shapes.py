"""Non-rectangular regions via dimension symbols (paper section 5.3).

The paper's extension for triangular/diagonal shapes: introduce a special
symbol ψ_i for each dimension *i* and let the guard constrain the
coordinates themselves — ``[ψ1 = ψ2, A(1:n, 1:n)]`` is the diagonal,
``[ψ1 <= ψ2, A(1:n, 1:n)]`` an upper triangle.  A predicate may then mix
two kinds of conditions: shape conditions over ψ symbols and ordinary
access conditions.

The paper notes its privatization experiments never needed this; here it
is provided as the documented optional feature it describes.  Shaped GARs
compose with the ordinary GAR operations (guards conjoin, regions
intersect per dimension); this module adds the pieces that must know
about ψ:

* construction helpers (:func:`diagonal`, :func:`triangle`, :func:`band`),
* membership and enumeration (bind ψ_i to the candidate coordinates),
* an emptiness test that bounds each ψ_i by its dimension's range before
  calling the Fourier–Motzkin engine.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..symbolic import (
    Comparer,
    ExprLike,
    Predicate,
    Relation,
    SymExpr,
    definitely_unsat,
)
from .gar import GAR
from .ranges import Range
from .region import RegularRegion

#: dimension symbols use a name no Fortran identifier can collide with
_PSI_PREFIX = "psi%"


def dim_symbol(dimension: int) -> SymExpr:
    """The ψ symbol of a (1-based) dimension."""
    if dimension < 1:
        raise ValueError("dimensions are 1-based")
    return SymExpr.var(f"{_PSI_PREFIX}{dimension}")


def is_dim_symbol(name: str) -> bool:
    """Is *name* a ψ dimension symbol?"""
    return name.startswith(_PSI_PREFIX)


def shape_symbols(gar: GAR) -> frozenset[str]:
    """The ψ symbols appearing in a GAR's guard."""
    return frozenset(n for n in gar.guard.free_vars() if is_dim_symbol(n))


def is_shaped(gar: GAR) -> bool:
    """Does the GAR's guard constrain coordinates via ψ symbols?"""
    return bool(shape_symbols(gar))


# -- constructors ---------------------------------------------------------------


def shaped(guard: Predicate, region: RegularRegion) -> GAR:
    """A GAR whose guard may constrain coordinates through ψ symbols.

    Shaped GARs are marked inexact for the *rectangular* machinery (their
    rectangular region over-approximates the true set), which keeps every
    ordinary GAR operation sound without modification: a shaped MOD never
    kills, a shaped UE only over-exposes.
    """
    return GAR(guard, region, exact=False)


def diagonal(array: str, n: ExprLike) -> GAR:
    """``A(i, i), i = 1..n`` as ``[ψ1 = ψ2, A(1:n, 1:n)]``."""
    guard = Predicate.eq(dim_symbol(1), dim_symbol(2))
    return shaped(guard, RegularRegion(array, [Range(1, n), Range(1, n)]))


def triangle(array: str, n: ExprLike, upper: bool = True) -> GAR:
    """Upper (``ψ1 <= ψ2``) or lower triangle of an n×n array."""
    if upper:
        guard = Predicate.le(dim_symbol(1), dim_symbol(2))
    else:
        guard = Predicate.ge(dim_symbol(1), dim_symbol(2))
    return shaped(guard, RegularRegion(array, [Range(1, n), Range(1, n)]))


def band(array: str, n: ExprLike, width: ExprLike) -> GAR:
    """Band matrix: ``|ψ1 - ψ2| <= width``."""
    d1, d2 = dim_symbol(1), dim_symbol(2)
    guard = Predicate.le(d1 - d2, width) & Predicate.le(d2 - d1, width)
    return shaped(guard, RegularRegion(array, [Range(1, n), Range(1, n)]))


# -- semantics ---------------------------------------------------------------------


def _psi_bindings(idx: tuple[int, ...]) -> dict[str, int]:
    return {f"{_PSI_PREFIX}{k}": value for k, value in enumerate(idx, start=1)}


def contains(gar: GAR, idx: tuple[int, ...], env: Mapping[str, int]) -> bool:
    """Is the element *idx* in the shaped GAR under *env*?"""
    if gar.guard.is_unknown():
        raise ValueError("cannot decide membership under an unknown guard")
    full_env = dict(env)
    full_env.update(_psi_bindings(idx))
    if not gar.guard.evaluate(full_env):
        return False
    if not gar.region.is_fully_known():
        raise ValueError("cannot decide membership with unknown dimensions")
    return idx in gar.region.enumerate(env)


def enumerate_shaped(gar: GAR, env: Mapping[str, int]) -> set[tuple[int, ...]]:
    """All elements of a shaped GAR under *env* (test oracle)."""
    if gar.guard.is_unknown():
        raise ValueError("cannot enumerate an unknown guard")
    out = set()
    for idx in gar.region.enumerate(env):
        full_env = dict(env)
        full_env.update(_psi_bindings(idx))
        if gar.guard.evaluate(full_env):
            out.add(idx)
    return out


def shaped_provably_empty(gar: GAR, cmp: Optional[Comparer] = None) -> bool:
    """Emptiness of a shaped GAR: the guard's unit atoms plus each ψ's
    dimension bounds must be jointly unsatisfiable."""
    if gar.guard.is_false():
        return True
    if not gar.guard.is_cnf():
        return False
    atoms = list(gar.guard.unit_atoms())
    for k, dim in enumerate(gar.region.dims, start=1):
        if isinstance(dim, Range):
            psi = dim_symbol(k)
            atoms.append(Relation.ge(psi, dim.lo))
            atoms.append(Relation.le(psi, dim.hi))
    return definitely_unsat(atoms)


def shaped_intersect_empty(a: GAR, b: GAR) -> bool:
    """Provably disjoint shaped GARs of the same array.

    Intersection conjoins the guards (ψ symbols refer to the *element
    coordinates*, shared between operands) and intersects the rectangles;
    the combined system is then tested for satisfiability.
    """
    if a.array != b.array or a.region.rank != b.region.rank:
        return True
    if not (a.guard.is_cnf() or a.guard.is_true()) or not (
        b.guard.is_cnf() or b.guard.is_true()
    ):
        return False
    atoms = list(a.guard.unit_atoms()) + list(b.guard.unit_atoms())
    for k, (d1, d2) in enumerate(zip(a.region.dims, b.region.dims), start=1):
        psi = dim_symbol(k)
        for dim in (d1, d2):
            if isinstance(dim, Range):
                atoms.append(Relation.ge(psi, dim.lo))
                atoms.append(Relation.le(psi, dim.hi))
            else:
                return False  # unknown extent: cannot certify disjointness
    return definitely_unsat(atoms)
