"""The GAR simplifier (paper section 5.2, top level).

Invoked whenever GAR lists change during summary propagation.  It
eliminates redundant GARs and combines several GARs into one when
possible:

* drop GARs whose guard is provably unsatisfiable (the emptiness check —
  by construction the guard carries the region's ``lo <= hi`` conditions,
  so only the guard needs examining);
* drop a GAR covered by another (region containment + guard implication);
* merge two GARs with identical regions by OR-ing the guards;
* merge two GARs with identical (or implied) guards whose regions union
  into a single regular region.

All rewrites preserve the denoted set exactly, so exactness flags survive
except where noted inline.
"""

from __future__ import annotations

from ..perf.profiler import COUNTERS, MISS, BoundedCache, timed
from ..resilience.budget import charge as _budget_charge
from ..symbolic import Comparer, predicate_implies, predicate_unsat_many
from .gar import GAR, GARList
from .region_ops import region_covers, region_union

#: beyond this many GARs the quadratic pairwise pass is skipped
MAX_PAIRWISE = 40
#: bounded fixpoint iterations
MAX_PASSES = 4

#: (gar tuple, context fingerprint, symbolic flag) → simplified GARList.
#: Propagation re-simplifies the same lists under the same guard context
#: on every pass (and again on every warm re-analysis in a resident
#: process); the result is a pure function of the key, so the memo is
#: invisible to summaries.
_SIMPLIFY_CACHE = BoundedCache("gar.simplify", maxsize=16384)


def _try_merge(g1: GAR, g2: GAR, cmp: Comparer) -> GAR | None:
    """A single GAR equal (as a set) to ``g1 ∪ g2``, or ``None``."""
    if g1.array != g2.array or g1.region.rank != g2.region.rank:
        return None
    exact = g1.exact and g2.exact
    if g1.region == g2.region:
        guard = g1.guard | g2.guard
        if not guard.is_unknown() or g1.guard.is_unknown() or g2.guard.is_unknown():
            return GAR(guard, g1.region, exact)
        return None
    if g1.guard == g2.guard:
        merged = region_union(g1.region, g2.region, cmp.refine(g1.guard))
        if merged is not None:
            return GAR(g1.guard, merged, exact)
    return None


def _covers(g1: GAR, g2: GAR, cmp: Comparer) -> bool:
    """Provably ``g2 ⊆ g1`` (so g2 is redundant in a union with g1)."""
    if g1.array != g2.array:
        return False
    if not predicate_implies(g2.guard, g1.guard, use_fm=cmp.use_fm):
        return False
    return region_covers(g1.region, g2.region, cmp.refine(g2.guard))


@timed("gar_simplify")
def simplify_gar_list(gars: GARList, cmp: Comparer) -> GARList:
    """Remove empty and redundant members; merge where possible.

    Results are memoized on (member tuple, comparer fingerprint): the
    simplifier is a pure function of the list order and the proof
    context, and propagation repeats both constantly.
    """
    COUNTERS.gar_simplify_calls += 1
    # one simplifier entry = one budget step, cached or not (budgeted
    # runs must terminate deterministically, see Comparer.prove)
    _budget_charge(1)
    key = (gars.gars, cmp._ctx_key, cmp.symbolic)
    cached = _SIMPLIFY_CACHE.get(key)
    if cached is not MISS:
        return cached
    return _SIMPLIFY_CACHE.put(key, _simplify_gar_list_uncached(gars, cmp))


def _simplify_gar_list_uncached(gars: GARList, cmp: Comparer) -> GARList:
    # emptiness is a pure property of the GAR (its guard), so compute it
    # at most once per distinct GAR for the whole call — the per-pass
    # re-filter below used to re-prove it for every survivor
    empties: dict[GAR, bool] = {}

    def is_empty(g: GAR) -> bool:
        cached = empties.get(g)
        if cached is None:
            COUNTERS.gar_emptiness_checks += 1
            cached = empties[g] = g.provably_empty(use_fm=cmp.use_fm)
        return cached

    # pre-screen every member's guard in one batch submission to the
    # constraint core instead of one FM entry per member
    members = list(gars)
    if members:
        COUNTERS.gar_emptiness_checks += len(members)
        verdicts = predicate_unsat_many(
            [g.guard for g in members], use_fm=cmp.use_fm
        )
        for g, verdict in zip(members, verdicts):
            empties[g] = verdict
    work = [g for g in members if not empties[g]]
    if len(work) <= 1:
        return GARList(work)
    if len(work) > MAX_PAIRWISE:
        return GARList(work)
    for _ in range(MAX_PASSES):
        changed = False
        # pairwise merging
        merged_out: list[GAR] = []
        consumed: set[int] = set()
        for i, g1 in enumerate(work):
            if i in consumed:
                continue
            current = g1
            for j in range(i + 1, len(work)):
                if j in consumed:
                    continue
                candidate = _try_merge(current, work[j], cmp)
                if candidate is not None:
                    current = candidate
                    consumed.add(j)
                    changed = True
            merged_out.append(current)
        work = merged_out
        # coverage-based redundancy removal
        kept: list[GAR] = []
        removed: set[int] = set()
        for i, g in enumerate(work):
            redundant = False
            for j, other in enumerate(work):
                if i == j or j in removed:
                    continue
                if _covers(other, g, cmp) and not (_covers(g, other, cmp) and j > i):
                    redundant = True
                    break
            if redundant:
                removed.add(i)
                changed = True
            else:
                kept.append(g)
        work = kept
        # drop any newly-empty results; only a structural change (a merge
        # building new GARs) can introduce one, so skip the re-check when
        # the pass was a no-op
        if not changed:
            break
        work = [g for g in work if not is_empty(g)]
    return GARList(work)
