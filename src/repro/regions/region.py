"""Regular array regions: rectangular, per-dimension range triples.

``A(r1, r2, ..., rm)`` where each ``ri`` is a :class:`~repro.regions.ranges.Range`
or the per-dimension unknown marker Ω (:data:`OMEGA_DIM`).  A region with an
Ω dimension over-approximates along that dimension (it stands for the whole
extent); a region can also be wholly unknown (:func:`RegularRegion.omega`).

Regions are pure data — the set operations live in
:mod:`repro.regions.region_ops` because their results are guarded lists.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple, Union

from ..errors import RegionError
from ..symbolic import Predicate, SymExpr
from .ranges import Range


class _OmegaDim:
    """Singleton marker for an unknown dimension (paper's Ω per dimension)."""

    _instance: Optional["_OmegaDim"] = None

    def __new__(cls) -> "_OmegaDim":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "OMEGA"

    def __str__(self) -> str:
        return "*"


OMEGA_DIM = _OmegaDim()
Dim = Union[Range, _OmegaDim]


class RegularRegion:
    """An immutable rectangular region of a named array."""

    __slots__ = ("array", "dims", "_hash", "_nonempty")

    def __init__(self, array: str, dims: Sequence[Dim]) -> None:
        if not dims:
            raise RegionError(f"region of {array!r} needs at least one dimension")
        self.array = array
        self.dims: Tuple[Dim, ...] = tuple(dims)
        self._hash = hash((self.array, self.dims))
        self._nonempty = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def point(cls, array: str, subscripts: Sequence[SymExpr]) -> "RegularRegion":
        """The single-element region of one array reference."""
        return cls(array, [Range.point(s) for s in subscripts])

    @classmethod
    def omega(cls, array: str, rank: int) -> "RegularRegion":
        """The wholly unknown region of the paper (Ω)."""
        return cls(array, [OMEGA_DIM] * max(rank, 1))

    # -- structure ---------------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.dims)

    def is_fully_known(self) -> bool:
        """True when no dimension is Ω."""
        return all(isinstance(d, Range) for d in self.dims)

    def is_omega(self) -> bool:
        """True when every dimension is Ω."""
        return all(d is OMEGA_DIM for d in self.dims)

    def known_dims(self) -> list[tuple[int, Range]]:
        """The (index, Range) pairs of the non-Ω dimensions."""
        return [(i, d) for i, d in enumerate(self.dims) if isinstance(d, Range)]

    def nonempty_pred(self) -> Predicate:
        """Conjunction of per-dimension ``lo <= hi`` conditions.

        Computed once per region — every GAR construction conjoins it.
        """
        cached = self._nonempty
        if cached is not None:
            return cached
        pred = Predicate.true()
        for d in self.dims:
            if isinstance(d, Range):
                pred = pred & d.nonempty_pred()
        self._nonempty = pred
        return pred

    def free_vars(self) -> frozenset[str]:
        """Variables occurring in any dimension."""
        out: set[str] = set()
        for d in self.dims:
            if isinstance(d, Range):
                out |= d.free_vars()
        return frozenset(out)

    def contains_var(self, name: str) -> bool:
        """Does *name* occur in any dimension?"""
        return any(
            isinstance(d, Range) and d.contains_var(name) for d in self.dims
        )

    def dims_containing(self, name: str) -> list[int]:
        """Indices of the dimensions mentioning *name*."""
        return [
            i
            for i, d in enumerate(self.dims)
            if isinstance(d, Range) and d.contains_var(name)
        ]

    # -- rewriting ------------------------------------------------------------------

    def with_dim(self, index: int, dim: Dim) -> "RegularRegion":
        """A copy with one dimension replaced."""
        dims = list(self.dims)
        dims[index] = dim
        return RegularRegion(self.array, dims)

    def with_array(self, array: str) -> "RegularRegion":
        """A copy renamed to another array."""
        return RegularRegion(array, self.dims)

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "RegularRegion":
        """Value substitution into every dimension."""
        return RegularRegion(
            self.array,
            [d.substitute(bindings) if isinstance(d, Range) else d for d in self.dims],
        )

    def rename(self, mapping: Mapping[str, str]) -> "RegularRegion":
        """Variable renaming in every dimension."""
        return RegularRegion(
            self.array,
            [d.rename(mapping) if isinstance(d, Range) else d for d in self.dims],
        )

    # -- concrete oracle ---------------------------------------------------------------

    def enumerate(self, env: Mapping[str, int]) -> set[tuple[int, ...]]:
        """All concrete index tuples (test oracle; Ω dims are not allowed)."""
        if not self.is_fully_known():
            raise RegionError(f"cannot enumerate region with unknown dims: {self}")
        axes = [d.enumerate(env) for d in self.dims if isinstance(d, Range)]
        out: set[tuple[int, ...]] = set()

        def rec(prefix: tuple[int, ...], rest: list[list[int]]) -> None:
            if not rest:
                out.add(prefix)
                return
            for v in rest[0]:
                rec(prefix + (v,), rest[1:])

        rec((), axes)
        return out

    # -- identity -----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RegularRegion)
            and self.array == other.array
            and self.dims == other.dims
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"RegularRegion<{self}>"

    def __str__(self) -> str:
        inner = ", ".join(str(d) for d in self.dims)
        return f"{self.array}({inner})"
