"""Range triples ``(l : u : s)`` and their set operations (paper 5.1).

A :class:`Range` denotes the integer set ``{l, l+s, l+2s, ...} ∩ [l, u]``
with symbolic bounds.  Following the paper, the requirement ``l <= u`` is
*not* part of the range itself: every operation that may produce an empty
range attaches the non-emptiness condition to the guard, so that range
arithmetic never needs to case split on emptiness.

``min``/``max`` never appear inside ranges; where the paper's formulas use
them, we either resolve the comparison with a :class:`~repro.symbolic.compare.Comparer`
or emit the explicit inequality case split into guards — exactly the
treatment described in section 3.

All operations return a list of ``(Predicate, Range)`` pairs (a *guarded
range list*, union semantics) or ``None`` when the result cannot be
represented (the paper's Ω).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from ..errors import RegionError
from ..symbolic import Comparer, ExprLike, Predicate, SymExpr

GuardedRange = Tuple[Predicate, "Range"]
GuardedRangeList = List[GuardedRange]


class Range:
    """An immutable symbolic range triple ``(lo : hi : step)``."""

    __slots__ = ("lo", "hi", "step", "_hash", "_nonempty")

    def __init__(self, lo: ExprLike, hi: ExprLike, step: ExprLike = 1) -> None:
        self.lo = SymExpr.coerce(lo)
        self.hi = SymExpr.coerce(hi)
        self.step = SymExpr.coerce(step)
        sv = self.step.constant_value()
        if sv is not None and sv <= 0:
            raise RegionError(f"range step must be positive, got {sv}")
        self._hash = hash((self.lo, self.hi, self.step))
        self._nonempty = None

    @classmethod
    def point(cls, at: ExprLike) -> "Range":
        e = SymExpr.coerce(at)
        return cls(e, e, 1)

    # -- structure --------------------------------------------------------------

    def step_const(self) -> Optional[int]:
        """The step as an int when constant, else ``None``."""
        v = self.step.constant_value()
        if v is not None and v.denominator == 1:
            return v.numerator
        return None

    def is_point(self) -> bool:
        """True when ``lo == hi`` syntactically."""
        return self.lo == self.hi

    def is_unit_step(self) -> bool:
        """True when the step is the constant 1."""
        return self.step_const() == 1

    def nonempty_pred(self) -> Predicate:
        """The ``lo <= hi`` condition the paper keeps in the guard.

        Computed once per range — every GAR construction conjoins it.
        """
        cached = self._nonempty
        if cached is None:
            cached = self._nonempty = Predicate.le(self.lo, self.hi)
        return cached

    def free_vars(self) -> frozenset[str]:
        """Variables in the bounds and step."""
        return self.lo.free_vars() | self.hi.free_vars() | self.step.free_vars()

    def contains_var(self, name: str) -> bool:
        """Does *name* occur in the bounds or step?"""
        return (
            self.lo.contains(name)
            or self.hi.contains(name)
            or self.step.contains(name)
        )

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "Range":
        """Value substitution into bounds and step."""
        return Range(
            self.lo.substitute(bindings),
            self.hi.substitute(bindings),
            self.step.substitute(bindings),
        )

    def rename(self, mapping: Mapping[str, str]) -> "Range":
        """Variable renaming in bounds and step."""
        return Range(
            self.lo.rename(mapping),
            self.hi.rename(mapping),
            self.step.rename(mapping),
        )

    def shifted(self, delta: ExprLike) -> "Range":
        """The range translated by *delta*."""
        d = SymExpr.coerce(delta)
        return Range(self.lo + d, self.hi + d, self.step)

    def enumerate(self, env: Mapping[str, int]) -> list[int]:
        """Concrete elements under *env* (test oracle)."""
        lo = self.lo.evaluate(env)
        hi = self.hi.evaluate(env)
        step = self.step.evaluate(env)
        if step.denominator != 1 or lo.denominator != 1 or hi.denominator != 1:
            raise RegionError(f"non-integer range {self} under {dict(env)}")
        return list(range(lo.numerator, hi.numerator + 1, step.numerator))

    # -- identity -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Range)
            and self.lo == other.lo
            and self.hi == other.hi
            and self.step == other.step
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Range<{self}>"

    def __str__(self) -> str:
        if self.is_point():
            return str(self.lo)
        if self.is_unit_step():
            return f"{self.lo}:{self.hi}"
        return f"{self.lo}:{self.hi}:{self.step}"


def _same_grid(r1: Range, r2: Range, cmp: Comparer) -> Optional[bool]:
    """Do the two ranges lie on the same arithmetic grid?

    For equal constant steps ``c``: true iff ``c`` divides ``l1 - l2``.
    For equal symbolic steps: true iff the lower bounds are provably equal.
    """
    s1, s2 = r1.step_const(), r2.step_const()
    if s1 is not None and s2 is not None:
        if s1 != s2:
            return None
        if s1 == 1:
            return True
        diff = (r1.lo - r2.lo).constant_value()
        if diff is None:
            # symbolic offset: same grid only if provably equal lower bounds
            return True if cmp.eq(r1.lo, r2.lo) is True else None
        return diff.denominator == 1 and diff.numerator % s1 == 0
    if r1.step == r2.step:
        return True if cmp.eq(r1.lo, r2.lo) is True else None
    return None


def _min_cases(
    a: SymExpr, b: SymExpr, cmp: Comparer
) -> list[tuple[Predicate, SymExpr]]:
    """``min(a, b)`` as guarded alternatives, resolved if provable."""
    r = cmp.le(a, b)
    if r is True:
        return [(Predicate.true(), a)]
    if r is False:
        return [(Predicate.true(), b)]
    if cmp.le(b, a) is True:
        return [(Predicate.true(), b)]
    return [(Predicate.le(a, b), a), (Predicate.gt(a, b), b)]


def _max_cases(
    a: SymExpr, b: SymExpr, cmp: Comparer
) -> list[tuple[Predicate, SymExpr]]:
    """``max(a, b)`` as guarded alternatives, resolved if provable."""
    r = cmp.le(a, b)
    if r is True:
        return [(Predicate.true(), b)]
    if r is False:
        return [(Predicate.true(), a)]
    if cmp.le(b, a) is True:
        return [(Predicate.true(), a)]
    return [(Predicate.le(a, b), b), (Predicate.gt(a, b), a)]


def _guarded(pred: Predicate, rng: Range) -> Optional[GuardedRange]:
    """Attach the non-emptiness condition; drop statically empty results."""
    full = pred & rng.nonempty_pred()
    if full.is_false():
        return None
    return (full, rng)


def range_intersect(
    r1: Range, r2: Range, cmp: Comparer
) -> Optional[GuardedRangeList]:
    """``r1 ∩ r2`` per the five step cases of section 5.1.

    Returns a guarded range list, or ``None`` for an unrepresentable (Ω)
    result.  An empty list is a provably empty intersection.
    """
    grid = _same_grid(r1, r2, cmp)
    if grid is True:
        step = r1.step
        out: GuardedRangeList = []
        for p_lo, lo in _max_cases(r1.lo, r2.lo, cmp):
            for p_hi, hi in _min_cases(r1.hi, r2.hi, cmp):
                item = _guarded(p_lo & p_hi, Range(lo, hi, step))
                if item is not None:
                    out.append(item)
        return out
    if grid is False:
        return []  # same constant step, different residues: disjoint
    s1, s2 = r1.step_const(), r2.step_const()
    if s1 is not None and s2 is not None and s1 % s2 == 0 and s1 != s2:
        # coarser grid r1 against finer r2 (paper's case 4: "divide r2
        # into several smaller ranges with step s1"): only the residue
        # class of r2 matching r1's grid can intersect.
        sub = _aligned_subrange(r2, r1, s1)
        if sub is None:
            return None  # symbolic offsets: alignment undecidable
        if sub is False:
            return []  # no residue of r2 lies on r1's grid
        return range_intersect(r1, sub, cmp)
    if s2 is not None and s1 is not None and s2 % s1 == 0 and s1 != s2:
        return range_intersect(r2, r1, cmp)
    return None


def _aligned_subrange(fine: Range, coarse: Range, step: int):
    """The sub-range of *fine* lying on *coarse*'s step-``step`` grid.

    Requires constant steps and a constant offset between the lower
    bounds; returns ``None`` when undecidable, ``False`` when no residue
    of *fine* matches, else the aligned :class:`Range` with step *step*.
    """
    s2 = fine.step_const()
    if s2 is None:
        return None
    offset = (coarse.lo - fine.lo).constant_value()
    if offset is None or offset.denominator != 1:
        return None
    # elements of fine: fine.lo + k*s2; on coarse's grid when
    # k*s2 ≡ offset (mod step) — since s2 | step, solvable iff s2 | offset
    if offset.numerator % s2 != 0:
        return False
    k0 = offset.numerator // s2
    ratio = step // s2
    k_first = k0 % ratio
    first = fine.lo + k_first * s2
    return Range(first, fine.hi, step)


def range_union(r1: Range, r2: Range, cmp: Comparer) -> Optional[Range]:
    """``r1 ∪ r2`` merged into a single range when provably possible.

    ``None`` means "keep the two ranges as a list" (not Ω — the union of
    two ranges is always representable as a list, per the paper).

    Precondition: the merge is valid only where both operands are
    non-empty, so the comparer context is refined with their ``lo <= hi``
    conditions.  Every GAR-level caller guarantees those conditions hold
    on the paths where the merged range is used (GAR guards carry them by
    construction); this is what licenses the paper's
    ``(1:a) U (a+1:100) = (1:100)`` example.
    """
    if r1 == r2:
        return r1
    cmp = cmp.refine(r1.nonempty_pred() & r2.nonempty_pred())
    grid = _same_grid(r1, r2, cmp)
    if grid is not True:
        return None
    step = r1.step
    sc = r1.step_const()
    # Mergeable when neither leaves a gap: l2 <= u1 + s and l1 <= u2 + s.
    no_gap_12 = cmp.le(r2.lo, r1.hi + step)
    no_gap_21 = cmp.le(r1.lo, r2.hi + step)
    if no_gap_12 is not True or no_gap_21 is not True:
        # containment fallbacks: r2 within r1 entirely
        if (
            cmp.le(r1.lo, r2.lo) is True
            and cmp.le(r2.hi, r1.hi) is True
            and cmp.le(r2.lo, r2.hi) is not True
        ):
            # r2 possibly empty and inside: union is r1 either way
            return r1
        return None
    lo_cases = _min_cases(r1.lo, r2.lo, cmp)
    hi_cases = _max_cases(r1.hi, r2.hi, cmp)
    if len(lo_cases) == 1 and len(hi_cases) == 1:
        return Range(lo_cases[0][1], hi_cases[0][1], step if sc != 1 else 1)
    return None


def range_difference(
    r1: Range, r2: Range, cmp: Comparer
) -> Optional[GuardedRangeList]:
    """``r1 - r2`` per section 5.1.

    The result is exact whenever the two ranges share a grid; on distinct
    constant-step grids with non-aligned residues the difference is ``r1``;
    otherwise ``None`` (Ω — caller over-approximates with ``r1``).
    """
    grid = _same_grid(r1, r2, cmp)
    if grid is False:
        return [(r1.nonempty_pred(), r1)]
    if grid is not True:
        s1, s2 = r1.step_const(), r2.step_const()
        if s1 is not None and s2 is not None and s1 % s2 == 0 and s1 != s2:
            # only r2's residue class on r1's grid can remove anything
            sub = _aligned_subrange(r2, r1, s1)
            if sub is None:
                return None
            if sub is False:
                return [(r1.nonempty_pred(), r1)]
            return range_difference(r1, sub, cmp)
        return None
    step = r1.step
    sc = r1.step_const()
    # The right piece starts after r2's LAST GRID POINT, which is r2.hi
    # only when r2.hi lies on the grid; otherwise align it down.  With a
    # symbolic mis-alignment the formula would skip elements (an unsound
    # under-approximation), so give up (Ω) unless it is computable.
    r2_hi = r2.hi
    if sc is not None and sc > 1:
        span = (r2.hi - r2.lo).constant_value()
        if span is None or span.denominator != 1:
            return None
        # floor alignment is correct for empty subtrahends too: span < 0
        # aligns r2_hi below r2.lo, so the right piece starts at or before
        # r1.lo and the difference degenerates to r1
        r2_hi = r2.lo + (span.numerator // sc) * sc
    elif sc is None:
        # symbolic step: alignment of r2.hi is undecidable
        if cmp.eq(r2.hi, r2.lo) is not True:
            return None
    out: GuardedRangeList = []
    # left piece: (l1 : min(u1, l2 - s) : s)
    for p_hi, hi in _min_cases(r1.hi, r2.lo - step, cmp):
        item = _guarded(p_hi, Range(r1.lo, hi, step))
        if item is not None:
            out.append(item)
    # right piece: (max(l1, last_grid(u2) + s) : u1 : s)
    for p_lo, lo in _max_cases(r1.lo, r2_hi + step, cmp):
        item = _guarded(p_lo, Range(lo, r1.hi, step))
        if item is not None:
            out.append(item)
    return out


def range_covers(r1: Range, r2: Range, cmp: Comparer) -> bool:
    """Provably ``r2 ⊆ r1`` (treating possibly-empty r2 as contained)."""
    grid = _same_grid(r1, r2, cmp)
    if grid is not True:
        s1 = r1.step_const()
        if s1 == 1:
            # unit-step r1 covers anything inside its bounds
            return cmp.le(r1.lo, r2.lo) is True and cmp.le(r2.hi, r1.hi) is True
        return False
    return cmp.le(r1.lo, r2.lo) is True and cmp.le(r2.hi, r1.hi) is True
