"""Empirical validation of the analysis against concrete executions.

The strongest form of testing this reproduction has: run a kernel in the
concrete interpreter, collect its per-iteration access trace for a chosen
DO loop, and check the symbolic analysis' claims against reality:

1. **MOD_i over-approximates** — every location actually written in
   iteration ``i`` lies in the symbolic ``MOD_i`` evaluated at ``i``;
2. **UE_i over-approximates** — every location read in iteration ``i``
   before being written in that iteration lies in the symbolic ``UE_i``;
3. **privatization soundness** — if the analysis declares a variable
   privatizable, the trace contains no cross-iteration flow: no exposed
   read of a location last written by an *earlier* iteration.

Symbolic sets are evaluated extensionally under the loop-entry values of
the routine's scalars.  A GAR whose guard or region mentions symbols with
no concrete value (opaque ``@`` symbols) cannot be enumerated; it is
treated as "may cover anything", which can only make checks 1–2 pass
vacuously for that variable — recorded as ``skipped`` so tests can
require a minimum of non-vacuous coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .dataflow import SummaryAnalyzer
from .dataflow.context import LoopSummaryRecord
from .fortran import analyze, parse_program
from .fortran.interp import AccessEvent, Interpreter
from .hsg import build_hsg
from .privatize import privatize_loop
from .regions import GARList


@dataclass
class IterationTrace:
    """Accesses of one iteration of the target loop, per variable name."""

    index_value: int
    writes: dict[str, set[tuple[int, ...]]] = field(default_factory=dict)
    exposed_reads: dict[str, set[tuple[int, ...]]] = field(default_factory=dict)
    #: reads NOT followed by a write to the same location later in the
    #: iteration (the dynamic counterpart of DE_i)
    downward_reads: dict[str, set[tuple[int, ...]]] = field(default_factory=dict)


@dataclass
class ValidationReport:
    routine: str
    var: str
    iterations: list[IterationTrace]
    #: claim violations, each a human-readable string; empty = validated
    violations: list[str] = field(default_factory=list)
    #: per-variable checks skipped because a summary GAR was not
    #: concretely evaluable (opaque symbols)
    skipped: set[str] = field(default_factory=set)
    #: variables with fully validated MOD_i/UE_i containment
    checked: set[str] = field(default_factory=set)
    #: privatizable variables whose traces were verified flow-free
    privatization_checked: set[str] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.violations


class _LoopTraceCollector:
    """Observer assigning access events to iterations of one target loop."""

    def __init__(self, target_loop) -> None:
        self.target_loop = target_loop
        self.iterations: list[IterationTrace] = []
        self.current: Optional[IterationTrace] = None
        self._written_this_iter: set[tuple[int, tuple]] = set()
        #: ordered (kind, payload) event log of the current iteration
        self._events: list[tuple[str, object]] = []
        #: (storage id, index) -> index of the iteration that last wrote it
        self.last_writer: dict[tuple[int, tuple], int] = {}
        #: exposed reads whose location was written by an earlier iteration
        self.cross_iteration_flow: dict[str, set[tuple]] = {}
        self._names: dict[int, str] = {}
        #: strong references to every observed storage object: ``id()``
        #: values must stay unique for the whole run (short-lived callee
        #: locals would otherwise free their ids for later storages)
        self._storages: dict[int, object] = {}

    # -- interpreter hooks ---------------------------------------------------

    def loop_hook(self, routine: str, loop, value: int, phase: str) -> None:
        if loop is not self.target_loop:
            return
        self._finish_iteration()
        if phase == "iter":
            self.current = IterationTrace(value)
            self.iterations.append(self.current)
            self._written_this_iter = set()
            self._events = []
        else:  # exit
            self.current = None
            # instance boundary: for an inner loop re-entered by an outer
            # iteration, writes from a previous dynamic instance reach a
            # later instance's reads from *outside* the loop (privatization
            # covers them by copy-in) — only same-instance producers count
            # as loop-carried flow
            self.last_writer = {}

    def _finish_iteration(self) -> None:
        """Derive downward-exposed reads: reversed scan over the event log
        keeps reads with no later write to the same location."""
        if self.current is None:
            return
        killed: set[tuple[int, tuple]] = set()
        for kind, payload in reversed(self._events):
            sid, idx = payload
            if kind == "w":
                killed.add(payload)
            elif payload not in killed:
                self.current.downward_reads.setdefault(sid, set()).add(idx)

    def observe(self, event: AccessEvent) -> None:
        if self.current is None:
            return
        sid = id(event.storage)
        self._storages.setdefault(sid, event.storage)
        self._names.setdefault(sid, event.name)
        # scalars are modeled as rank-1 single-cell regions by the analysis
        index = event.index if event.is_array else (1,)
        key = (sid, index)
        if event.kind == "write":
            self.current.writes.setdefault(sid, set()).add(index)
            self._written_this_iter.add(key)
            self.last_writer[key] = len(self.iterations) - 1
            self._events.append(("w", key))
            return
        self._events.append(("r", key))
        if key not in self._written_this_iter:
            self.current.exposed_reads.setdefault(sid, set()).add(index)
            writer = self.last_writer.get(key)
            if writer is not None and writer < len(self.iterations) - 1:
                self.cross_iteration_flow.setdefault(sid, set()).add(index)

    def finalize(self, name_of: dict[int, str]) -> None:
        """Re-key every trace from storage identity to *caller* names.

        Accesses to storage invisible in the target routine's frame
        (callee locals and temporaries) are dropped — they have no
        caller-visible summary by design.
        """

        def rekey(table: dict) -> dict:
            out: dict[str, set] = {}
            for sid, indices in table.items():
                name = name_of.get(sid)
                if name is not None:
                    out.setdefault(name, set()).update(indices)
            return out

        for trace in self.iterations:
            trace.writes = rekey(trace.writes)
            trace.exposed_reads = rekey(trace.exposed_reads)
            trace.downward_reads = rekey(trace.downward_reads)
        self.cross_iteration_flow = rekey(self.cross_iteration_flow)


def _enumerate_gars(
    gars: GARList, env: Mapping[str, int]
) -> Optional[set[tuple[int, ...]]]:
    """Concrete element set, or ``None`` if any GAR is unevaluable."""
    out: set[tuple[int, ...]] = set()
    for gar in gars:
        if gar.guard.is_unknown() or not gar.region.is_fully_known():
            return None
        try:
            if not gar.guard.evaluate(env):
                continue
            out |= gar.region.enumerate(env)
        except KeyError:
            return None  # a symbol (e.g. an opaque) has no concrete value
    return out


def validate_loop(
    source: str,
    routine: str,
    var: str,
    args: Mapping[str, object],
    env: Mapping[str, int] | None = None,
    occurrence: int = 0,
    options=None,
) -> ValidationReport:
    """Run *routine* concretely and validate the analysis of loop *var*.

    ``args`` are the concrete dummy-argument values; ``env`` supplies the
    integer/logical bindings used to evaluate symbolic summaries (defaults
    to the integer- and bool-valued entries of ``args``); ``occurrence``
    selects among several loops sharing the index variable name;
    ``options`` configures the analysis (frontier content facts are
    inferred and installed when it enables them).
    """
    analyzed = analyze(parse_program(source))
    hsg = build_hsg(analyzed)
    matching = [
        (unit, loop)
        for unit, loop in hsg.all_loops()
        if unit == routine and loop.var == var
    ]
    if occurrence >= len(matching):
        raise ValueError(f"no loop {routine}/{var} (occurrence {occurrence})")
    unit, target = matching[occurrence]

    collector = _LoopTraceCollector(target)
    interp = Interpreter(
        analyzed,
        observer=collector.observe,
        loop_hook=collector.loop_hook,
        hsg=hsg,
    )
    frame = interp.run_routine(routine, **args)
    name_of = {id(storage): name for name, storage in frame.storage.items()}
    collector.finalize(name_of)

    analyzer = SummaryAnalyzer(hsg, options)
    if analyzer.options.frontier and analyzer.options.symbolic:
        from .contents import infer_program

        infer_program(analyzed, analyzer.options).install(analyzer)
    record: LoopSummaryRecord = analyzer.loop_record(unit, target)
    enclosing = set(analyzer.enclosing_indices(unit, target))
    de_ctx = analyzer.context_for(unit)
    for idx in analyzer.enclosing_indices(unit, target):
        de_ctx = de_ctx.with_index(idx)
    de_i, _de = analyzer.loop_de_sets(target, de_ctx)

    if env is None:
        env = {
            k: int(v)
            for k, v in args.items()
            if isinstance(v, (int, bool)) and not isinstance(v, float)
        }
    report = ValidationReport(routine, var, collector.iterations)

    names = set()
    for trace in collector.iterations:
        names |= set(trace.writes) | set(trace.exposed_reads)
    names.discard(var)  # the target loop's own header maintains its index
    names -= enclosing  # enclosing indices are implicitly private
    for name in sorted(names):
        _check_containment(report, record, de_i, name, env)

    table = analyzed.table(routine)
    privatization = privatize_loop(record, table, analyzer.comparer)
    for verdict in privatization.verdicts:
        if not verdict.privatizable:
            continue
        flowed = collector.cross_iteration_flow.get(verdict.name)
        if flowed:
            report.violations.append(
                f"{verdict.name} declared privatizable but iteration trace "
                f"shows cross-iteration flow at {sorted(flowed)[:5]}"
            )
        else:
            report.privatization_checked.add(verdict.name)
    return report


def _check_containment(
    report: ValidationReport,
    record: LoopSummaryRecord,
    de_i,
    name: str,
    base_env: Mapping[str, int],
) -> None:
    mod_i = record.mod_i.for_array(name)
    ue_i = record.ue_i.for_array(name)
    de_name = de_i.for_array(name)
    fully_checked = True
    for trace in report.iterations:
        env = dict(base_env)
        env[record.var] = trace.index_value
        symbolic_mod = _enumerate_gars(mod_i, env)
        actual_writes = trace.writes.get(name, set())
        if symbolic_mod is None:
            fully_checked = False
        elif not actual_writes <= symbolic_mod:
            extra = sorted(actual_writes - symbolic_mod)[:5]
            report.violations.append(
                f"MOD_{record.var}({name}) at {record.var}="
                f"{trace.index_value} misses writes {extra}"
            )
        symbolic_ue = _enumerate_gars(ue_i, env)
        actual_exposed = trace.exposed_reads.get(name, set())
        if symbolic_ue is None:
            fully_checked = False
        elif not actual_exposed <= symbolic_ue:
            extra = sorted(actual_exposed - symbolic_ue)[:5]
            report.violations.append(
                f"UE_{record.var}({name}) at {record.var}="
                f"{trace.index_value} misses exposed reads {extra}"
            )
        symbolic_de = _enumerate_gars(de_name, env)
        actual_downward = trace.downward_reads.get(name, set())
        if symbolic_de is None:
            fully_checked = False
        elif not actual_downward <= symbolic_de:
            extra = sorted(actual_downward - symbolic_de)[:5]
            report.violations.append(
                f"DE_{record.var}({name}) at {record.var}="
                f"{trace.index_value} misses downward-exposed reads {extra}"
            )
    if fully_checked and report.iterations:
        report.checked.add(name)
    elif report.iterations:
        report.skipped.add(name)


# --------------------------------------------------------------------------- #
# frontier validation: content facts and scan decompositions
# --------------------------------------------------------------------------- #


def validate_content_facts(
    source: str,
    routine: str,
    args: Mapping[str, object],
    env: Mapping[str, int] | None = None,
    options=None,
) -> list[str]:
    """Check every inferred content fact against a concrete execution.

    Runs *routine* in the interpreter, then verifies each fact of the
    content domain as an invariant of the final storage: affine facts
    must predict every segment cell exactly, bounds facts must contain
    every cell, monotone facts must hold between consecutive cells.
    Returns the violations (empty = all facts validated).
    """
    from fractions import Fraction

    from .contents import infer_unit
    from .fortran.interp import ArrayStorage

    analyzed = analyze(parse_program(source))
    facts = infer_unit(analyzed, routine, options)
    hsg = build_hsg(analyzed)
    interp = Interpreter(analyzed, hsg=hsg)
    frame = interp.run_routine(routine, **args)
    if env is None:
        env = {
            k: int(v)
            for k, v in args.items()
            if isinstance(v, (int, bool)) and not isinstance(v, float)
        }

    violations: list[str] = []
    for fact in facts:
        storage = frame.storage.get(fact.array)
        if not isinstance(storage, ArrayStorage):
            violations.append(f"{fact.array}: no array storage after run")
            continue
        try:
            lo = fact.seg_lo.evaluate_int(env)
            hi = fact.seg_hi.evaluate_int(env)
        except Exception:
            violations.append(
                f"{fact.array}: segment [{fact.seg_lo}, {fact.seg_hi}] "
                f"not evaluable under {dict(env)}"
            )
            continue
        cells = []
        for k in range(lo, hi + 1):
            value = storage.cells.get((k,))
            if value is None:
                violations.append(
                    f"{fact.array}({k}): cell in claimed segment never "
                    f"written"
                )
                break
            cells.append((k, Fraction(value) if not isinstance(
                value, bool) else Fraction(int(value))))
        else:
            violations.extend(_check_fact_cells(fact, cells, env))
    return violations


def _check_fact_cells(fact, cells, env) -> list[str]:
    out: list[str] = []
    if fact.kind == "affine":
        base = fact.base.evaluate(env)
        for k, value in cells:
            expected = fact.coeff * k + base
            if value != expected:
                out.append(
                    f"{fact.array}({k}) = {value}, affine form predicts "
                    f"{expected}"
                )
    if fact.value_lo is not None and fact.value_hi is not None:
        for k, value in cells:
            if not (fact.value_lo <= value <= fact.value_hi):
                out.append(
                    f"{fact.array}({k}) = {value} outside "
                    f"[{fact.value_lo}, {fact.value_hi}]"
                )
    if fact.kind == "monotone" and fact.delta is not None:
        for (k1, v1), (k2, v2) in zip(cells, cells[1:]):
            if v2 - v1 != fact.delta:
                out.append(
                    f"{fact.array}({k2}) - {fact.array}({k1}) = {v2 - v1}, "
                    f"recurrence step is {fact.delta}"
                )
    from .contents import Monotone

    checks = {
        Monotone.STRICT_INC: lambda a, b: b > a,
        Monotone.STRICT_DEC: lambda a, b: b < a,
        Monotone.NONDECREASING: lambda a, b: b >= a,
        Monotone.NONINCREASING: lambda a, b: b <= a,
        Monotone.CONSTANT: lambda a, b: b == a,
    }
    check = checks.get(fact.mono)
    if check is not None:
        for (k1, v1), (k2, v2) in zip(cells, cells[1:]):
            if not check(v1, v2):
                out.append(
                    f"{fact.array}({k1}..{k2}) violates {fact.mono.value}"
                )
    return out


_SCAN_OPS = {
    "+": (lambda a, b: a + b, 0),
    "*": (lambda a, b: a * b, 1),
    "min": (min, None),
    "max": (max, None),
}


def blocked_scan(op: str, seed, increments: list, chunks: int = 3) -> list:
    """Reference two-pass execution of ``x_k = x_{k-1} ⊕ inc_k``.

    Phase 1 computes each chunk's local fold of its increment slice;
    phase 2 folds the chunk summaries serially into incoming prefixes;
    phase 3 finalizes each chunk independently.  Returns the running
    values (one per increment), which must equal the sequential scan —
    this is the associativity argument PARALLEL_SCAN verdicts rest on.
    """
    fold, identity = _SCAN_OPS[op]
    n = len(increments)
    chunks = max(1, min(chunks, n)) if n else 1
    bounds = [
        (i * n // chunks, (i + 1) * n // chunks) for i in range(chunks)
    ]
    totals = []
    for start, end in bounds:
        acc = None
        for inc in increments[start:end]:
            acc = inc if acc is None else fold(acc, inc)
        totals.append(acc)
    out: list = [None] * n
    incoming = seed
    for (start, end), total in zip(bounds, totals):
        acc = incoming
        for k in range(start, end):
            acc = fold(acc, increments[k])
            out[k] = acc
        if total is not None:
            incoming = fold(incoming, total)
    return out


def blocked_affine_scan(
    pairs: list[tuple], seed, chunks: int = 3
) -> list:
    """Reference two-pass execution of ``x_k = a_k * x_{k-1} + b_k``.

    Affine maps compose associatively: ``(a2, b2) ∘ (a1, b1) =
    (a2*a1, a2*b1 + b2)`` — each chunk composes its maps locally, chunk
    compositions fold serially into incoming values, chunks finalize
    independently.
    """
    n = len(pairs)
    chunks = max(1, min(chunks, n)) if n else 1
    bounds = [
        (i * n // chunks, (i + 1) * n // chunks) for i in range(chunks)
    ]
    composed = []
    for start, end in bounds:
        ca, cb = 1, 0
        for a, b in pairs[start:end]:
            ca, cb = a * ca, a * cb + b
        composed.append((ca, cb))
    out: list = [None] * n
    incoming = seed
    for (start, end), (ca, cb) in zip(bounds, composed):
        x = incoming
        for k in range(start, end):
            a, b = pairs[k]
            x = a * x + b
            out[k] = x
        incoming = ca * incoming + cb
    return out
