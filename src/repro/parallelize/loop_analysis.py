"""Loop-carried dependence detection over GAR summaries (section 3.2.2).

For a DO loop with index ``i``:

1. flow dependences exist  iff ``UE_i ∩ MOD_{<i} ≠ ∅``
2. output dependences exist iff ``MOD_i ∩ (MOD_{<i} ∪ MOD_{>i}) ≠ ∅``
3. anti dependences exist  iff ``UE_i ∩ MOD_{>i} ≠ ∅`` (valid once 1 and 2
   are disproved, which is the order the classifier applies)

Because the summaries are flow-sensitive (uses already killed by
same-iteration writes are not in ``UE_i``), these tests are sharper than
the classical region-based formulas the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataflow.context import LoopSummaryRecord
from ..regions import GARList
from ..regions.gar_ops import lists_intersect_empty
from ..symbolic import Comparer


@dataclass(frozen=True)
class DependenceReport:
    """Per-variable carried-dependence verdict (True = cannot disprove)."""

    name: str
    flow: bool
    output: bool
    anti: bool

    @property
    def any(self) -> bool:
        return self.flow or self.output or self.anti

    def kinds(self) -> list[str]:
        """The carried dependence kinds as strings."""
        out = []
        if self.flow:
            out.append("flow")
        if self.output:
            out.append("output")
        if self.anti:
            out.append("anti")
        return out


def variable_dependences(
    name: str, record: LoopSummaryRecord, cmp: Comparer
) -> DependenceReport:
    """Carried-dependence report for one variable."""
    ue_i = record.ue_i.for_array(name)
    mod_i = record.mod_i.for_array(name)
    mod_lt = record.mod_lt.for_array(name)
    mod_gt = record.mod_gt.for_array(name)
    flow = not lists_intersect_empty(ue_i, mod_lt, cmp)
    output = not (
        lists_intersect_empty(mod_i, mod_lt, cmp)
        and lists_intersect_empty(mod_i, mod_gt, cmp)
    )
    anti = not lists_intersect_empty(ue_i, mod_gt, cmp)
    return DependenceReport(name, flow, output, anti)


def loop_dependences(
    record: LoopSummaryRecord, cmp: Comparer, skip: frozenset[str] = frozenset()
) -> dict[str, DependenceReport]:
    """Reports for every variable the loop touches (minus *skip*)."""
    names = sorted(
        (record.mod_i.arrays() | record.ue_i.arrays()) - skip - {record.var}
    )
    return {name: variable_dependences(name, record, cmp) for name in names}


def refined_anti_dependence(
    name: str,
    record: LoopSummaryRecord,
    de_i: GARList,
    cmp: Comparer,
) -> bool:
    """Anti-dependence test with the *downward-exposed* set (the paper's
    footnote): valid even in the presence of output dependences, because a
    use overwritten later in its own iteration cannot be anti-dependent on
    later iterations' writes — the same-iteration write intervenes.
    """
    return not lists_intersect_empty(
        de_i.for_array(name), record.mod_gt.for_array(name), cmp
    )


def dependence_report_with_de(
    name: str,
    record: LoopSummaryRecord,
    de_i: GARList,
    cmp: Comparer,
) -> DependenceReport:
    """Like :func:`variable_dependences`, with the precise anti test."""
    base = variable_dependences(name, record, cmp)
    return DependenceReport(
        name,
        base.flow,
        base.output,
        refined_anti_dependence(name, record, de_i, cmp),
    )
