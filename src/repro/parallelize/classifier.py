"""Loop classification: serial / parallel / parallel after transformation.

Combines the dependence tests, the privatizer, and reduction recognition
into a per-loop verdict with per-variable reasoning, in the order the
paper prescribes (flow first, then output, then anti):

* a variable with no carried dependences needs nothing;
* a carried flow dependence is fatal unless the variable is a recognized
  reduction;
* carried output/anti dependences disappear by privatizing the variable
  (if it is a privatizable candidate) — this is exactly the Table 1 story:
  the loop is parallel *after array privatization*.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

from ..dataflow.analyzer import SummaryAnalyzer
from ..dataflow.context import LoopSummaryRecord
from ..hsg.nodes import LoopNode
from ..privatize.privatizer import LoopPrivatization, privatize_loop
from ..resilience import faults
from .loop_analysis import DependenceReport, loop_dependences
from .reductions import Reduction, find_reductions

_OPAQUE_RE = re.compile(r"@(\d+)")


def _stable_opaques(text: str) -> str:
    """Renumber opaque-symbol ids (``name@k``) by first appearance.

    The interner's counter is process-global, so the raw ids depend on
    what else the process analyzed; renumbering keeps the printed
    conflicts identical between sequential and pooled runs (equal ids
    still print equal, distinct ids distinct).
    """
    seen: dict[str, str] = {}

    def sub(match: re.Match) -> str:
        return seen.setdefault(match.group(1), f"@{len(seen) + 1}")

    return _OPAQUE_RE.sub(sub, text)


class LoopStatus(Enum):
    """Final parallelization verdict of a DO loop."""

    PARALLEL = "parallel"
    PARALLEL_AFTER_PRIVATIZATION = "parallel (privatized)"
    PARALLEL_WITH_REDUCTION = "parallel (reduction)"
    #: a recognized scan/recurrence: parallel under the two-pass
    #: (chunk partials → prefix combine → finalize) schedule
    PARALLEL_SCAN = "parallel (scan)"
    SERIAL = "serial"
    #: the analysis budget ran out: the summary is the conservative
    #: whole-array fallback, so nothing can be proven either way — the
    #: loop is treated as serial but the verdict is explicitly "unknown"
    UNKNOWN = "unknown (budget)"


@dataclass
class VariableFinding:
    name: str
    deps: DependenceReport
    action: str  # 'none' | 'privatize' | 'reduction' | 'serializes'
    detail: str = ""


@dataclass
class LoopVerdict:
    routine: str
    var: str
    source_label: int | None
    status: LoopStatus
    findings: list[VariableFinding] = field(default_factory=list)
    privatized: list[str] = field(default_factory=list)
    reductions: list[str] = field(default_factory=list)
    #: recognized induction variables (parallelizable by rewriting the
    #: variable as a closed form of the loop index, paper section 5.2)
    inductions: list[str] = field(default_factory=list)
    #: variables whose carried flow dependence is a recognized
    #: scan/recurrence (frontier pass; docs/frontier.md)
    scans: list[str] = field(default_factory=list)
    #: the RecurrenceMatch records behind ``scans`` (evidence source)
    scan_matches: list = field(default_factory=list)
    serial_reasons: list[str] = field(default_factory=list)
    record: LoopSummaryRecord | None = None
    privatization: LoopPrivatization | None = None

    @property
    def parallel(self) -> bool:
        return self.status not in (LoopStatus.SERIAL, LoopStatus.UNKNOWN)

    def blocking_variables(self) -> list[str]:
        """Variables whose dependences serialize the loop."""
        return [f.name for f in self.findings if f.action == "serializes"]

    def status_modulo(self, assume_private: frozenset[str]) -> LoopStatus:
        """Status if the given variables were privatized by hand.

        Used by the Table 1 harness: the paper's measured loops privatize
        MDG's ``RL`` manually even though the implementation cannot
        (Figure 1(a)); everything else must still check out.
        """
        if self.status is not LoopStatus.SERIAL:
            return self.status
        blocking = set(self.blocking_variables())
        if blocking and blocking <= set(assume_private) and not any(
            "premature exit" in r for r in self.serial_reasons
        ):
            return LoopStatus.PARALLEL_AFTER_PRIVATIZATION
        return LoopStatus.SERIAL

    def conflicts(self) -> dict[str, str]:
        """The privatizer's recorded offending intersections, by variable.

        For every candidate that failed the ``MOD_<i ∩ UE_i = ∅`` test,
        the privatizer records the non-empty intersection — the exact
        GAR(s) flowing between iterations.  Surfaced here (and in the
        ``--json`` report) so a failed privatization is actionable.
        """
        if self.privatization is None:
            return {}
        return {
            v.name: _stable_opaques(str(v.conflict))
            for v in self.privatization.failed()
            if len(v.conflict)
        }

    def describe(self) -> str:
        """Multi-line human-readable verdict."""
        head = f"{self.routine}/{self.source_label or self.var}: {self.status.value}"
        lines = [head]
        conflicts = self.conflicts()
        for f in self.findings:
            if f.action != "none":
                lines.append(f"  {f.name}: {f.action} ({f.detail})")
                if f.name in conflicts:
                    lines.append(
                        f"    offending intersection: {conflicts[f.name]}"
                    )
        for reason in self.serial_reasons:
            lines.append(f"  ! {reason}")
        return "\n".join(lines)


def classify_loop(
    analyzer: SummaryAnalyzer, unit_name: str, loop: LoopNode
) -> LoopVerdict:
    """Classify one DO loop."""
    record = analyzer.loop_record(unit_name, loop)
    cmp = analyzer.comparer
    table = analyzer.hsg.analyzed.table(unit_name)
    verdict = LoopVerdict(
        routine=unit_name,
        var=loop.var,
        source_label=loop.source_label,
        status=LoopStatus.PARALLEL,
        record=record,
    )
    if record.degraded is not None:
        # budget-exhaustion fallback: the sets are the conservative
        # whole-array over-approximation — dependence reasoning over them
        # would only manufacture spurious findings, so stop here
        verdict.status = LoopStatus.UNKNOWN
        verdict.serial_reasons.append(
            f"analysis budget exhausted ({record.degraded}): conservative "
            "whole-array summary, loop not analyzed"
        )
        return verdict
    if loop.has_premature_exit:
        verdict.status = LoopStatus.SERIAL
        verdict.serial_reasons.append(
            "loop has a premature exit (GOTO/RETURN out of the body)"
        )
        return verdict
    from ..dataflow.sum_loop import recognized_inductions

    reductions = {r.name: r for r in find_reductions(loop.body)}
    recurrences = {}
    if analyzer.options.frontier:
        from .recurrences import find_recurrences

        recurrences = {m.name: m for m in find_recurrences(loop)}
    ctx = analyzer.context_for(unit_name)
    for idx in analyzer.enclosing_indices(unit_name, loop):
        ctx = ctx.with_index(idx)
    inductions = recognized_inductions(analyzer, loop, ctx)
    privatization = privatize_loop(record, table, cmp)
    verdict.privatization = privatization
    deps = loop_dependences(record, cmp)
    privatizable = {
        v.name for v in privatization.verdicts if v.privatizable
    }

    for name, report in deps.items():
        if not report.any:
            verdict.findings.append(VariableFinding(name, report, "none"))
            continue
        if report.flow:
            if name in inductions:
                verdict.findings.append(
                    VariableFinding(
                        name,
                        report,
                        "induction",
                        f"closed form {inductions[name]}",
                    )
                )
                verdict.inductions.append(name)
                continue
            if name in reductions:
                red = reductions[name]
                verdict.findings.append(
                    VariableFinding(
                        name, report, "reduction", f"operator {red.operator}"
                    )
                )
                verdict.reductions.append(name)
                continue
            if name in recurrences:
                match = recurrences[name]
                verdict.findings.append(
                    VariableFinding(
                        name,
                        report,
                        "scan",
                        f"{match.shape} over {match.operator} "
                        f"(distance {match.distance})",
                    )
                )
                verdict.scans.append(name)
                verdict.scan_matches.append(match)
                analyzer.stats.recurrence_matches += 1
                continue
            verdict.findings.append(
                VariableFinding(
                    name,
                    report,
                    "serializes",
                    "loop-carried flow dependence "
                    f"(UE_{record.var} ∩ MOD_<{record.var} not empty)",
                )
            )
            verdict.serial_reasons.append(
                f"flow dependence carried on {name}"
            )
            continue
        # output / anti only: privatization removes them
        if name in privatizable:
            verdict.findings.append(
                VariableFinding(
                    name,
                    report,
                    "privatize",
                    f"removes carried {'/'.join(report.kinds())} dependences",
                )
            )
            verdict.privatized.append(name)
            continue
        if name in reductions:
            verdict.findings.append(
                VariableFinding(
                    name, report, "reduction",
                    f"operator {reductions[name].operator}",
                )
            )
            verdict.reductions.append(name)
            continue
        verdict.findings.append(
            VariableFinding(
                name,
                report,
                "serializes",
                f"carried {'/'.join(report.kinds())} dependences and "
                f"not privatizable",
            )
        )
        verdict.serial_reasons.append(
            f"{'/'.join(report.kinds())} dependence carried on {name}"
        )

    if verdict.serial_reasons:
        verdict.status = LoopStatus.SERIAL
    elif verdict.scans:
        # the scan schedule subsumes privatization/reduction transforms
        # also present in the loop — it is the binding constraint
        verdict.status = LoopStatus.PARALLEL_SCAN
    elif verdict.privatized or verdict.inductions:
        verdict.status = LoopStatus.PARALLEL_AFTER_PRIVATIZATION
    elif verdict.reductions:
        verdict.status = LoopStatus.PARALLEL_WITH_REDUCTION
    # fault-injection seam (chaos/audit testing only): pretend the
    # classifier misreported a non-parallel loop as parallel, so the
    # static auditor's detection path can be exercised end to end
    if verdict.status in (LoopStatus.SERIAL, LoopStatus.UNKNOWN):
        key = f"{unit_name}/{loop.source_label or loop.var}"
        if faults.should_fire("classifier.misreport", key=key):
            verdict.status = LoopStatus.PARALLEL
            verdict.serial_reasons = []
    return verdict


def classify_all_loops(analyzer: SummaryAnalyzer) -> list[LoopVerdict]:
    """Classify every DO loop in the program (outermost first per routine)."""
    out = []
    for unit_name, loop in analyzer.hsg.all_loops():
        out.append(classify_loop(analyzer, unit_name, loop))
    return out
