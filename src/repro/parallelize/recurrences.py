"""Recurrence/scan recognition (the GRASSP-style frontier recognizer).

Layered on :mod:`.reductions`: where a reduction folds a loop's values
into one cell, a *scan* keeps every intermediate — the classic prefix
computation ``X(i) = X(i-d) ⊕ e(i)`` and its relatives.  Such loops
carry a true flow dependence (the GAR tests rightly refuse them), yet
they parallelize by decomposition: partition the iteration space,
compute local partials per chunk, combine chunk summaries in
logarithmic passes, then finalize each chunk with its incoming prefix.

Recognized shapes:

* ``prefix_scan`` — ``X(v) = X(v-d) ⊕ e`` with ``⊕ ∈ {+, *, min, max}``
  (``-`` folds into ``+``), constant distance ``d ≥ 1``, ``X`` touched
  nowhere else in the body, ``e`` loop-invariant apart from ``v``;
* ``affine_scan`` — ``X(v) = a*X(v-d) + e`` with constant ``a``: the
  linear first-order recurrence, parallelized by composing affine maps
  ``x ↦ a·x + b`` (function composition is associative);
* ``segmented_scan`` — one IF/ELSE whose arms are a ``prefix_scan``
  update and a restart ``X(v) = e₂``, guard free of ``X``: a scan that
  resets at segment boundaries, still two-pass parallelizable with a
  (value, restart-seen) combine;
* ``running_scalar`` — ``s = s ⊕ e`` where ``s`` is *also read
  elsewhere* in the body (what disqualifies it as a plain reduction):
  the per-iteration prefix values are reconstructed by an exclusive
  scan over the ``e`` stream.

Every guard against interleaving matters for soundness of the two-pass
schedule: the increment stream must be computable *before* the prefix
pass, so no name feeding ``e`` (or a guard) may be written in the body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..fortran.ast_nodes import Apply, Assign, BinOp, Continue, Expr, NameRef
from ..hsg.cfg import FlowGraph
from ..hsg.nodes import (
    BasicBlockNode,
    CallNode,
    CondensedNode,
    IfConditionNode,
    LoopNode,
)
from .reductions import _REDUCTION_INTRINSICS

#: shapes the recognizer emits
PREFIX_SCAN = "prefix_scan"
AFFINE_SCAN = "affine_scan"
SEGMENTED_SCAN = "segmented_scan"
RUNNING_SCALAR = "running_scalar"


@dataclass(frozen=True)
class RecurrenceMatch:
    """One recognized scan/recurrence, with its decomposition recipe."""

    name: str
    shape: str  # PREFIX_SCAN | AFFINE_SCAN | SEGMENTED_SCAN | RUNNING_SCALAR
    operator: str  # '+', '*', 'min', 'max', 'affine'
    distance: int = 1
    is_array: bool = True
    #: the recurrence is guarded (segmented or conditional update)
    guarded: bool = False
    #: multiplier of the affine form (None for pure ⊕ scans)
    coefficient: Optional[str] = None
    lineno: int = 0
    detail: str = ""

    def to_payload(self) -> dict[str, Any]:
        """Machine-checkable evidence record (docs/frontier.md)."""
        out: dict[str, Any] = {
            "kind": "recurrence",
            "variable": self.name,
            "shape": self.shape,
            "operator": self.operator,
            "distance": self.distance,
            "array": self.is_array,
            "guarded": self.guarded,
            "lineno": self.lineno,
        }
        if self.coefficient is not None:
            out["coefficient"] = self.coefficient
        if self.detail:
            out["detail"] = self.detail
        return out

    def matches_payload(self, payload: dict[str, Any]) -> bool:
        """True when this match re-derives *payload* (evidence replay).

        ``detail`` and ``lineno`` are presentation fields and carry no
        claim, so they are excluded from the comparison.
        """
        mine = self.to_payload()
        return all(
            mine.get(key) == value
            for key, value in payload.items()
            if key not in ("detail", "lineno")
        )


# --------------------------------------------------------------------------- #
# body shape helpers
# --------------------------------------------------------------------------- #


def _count(expr: Expr, name: str) -> int:
    return sum(
        1
        for node in expr.walk()
        if isinstance(node, (NameRef, Apply)) and node.name == name
    )


def _written_names(body: FlowGraph) -> set[str]:
    """Names assigned anywhere in the body (any depth)."""
    out: set[str] = set()

    def scan(graph: FlowGraph) -> None:
        for node in graph.nodes:
            if isinstance(node, BasicBlockNode):
                for stmt in node.stmts:
                    if isinstance(stmt, Assign):
                        out.add(stmt.target.name)  # type: ignore[union-attr]
            elif isinstance(node, LoopNode):
                out.add(node.var)
                scan(node.body)
            elif isinstance(node, CallNode):
                for arg in node.call.args:
                    for n in arg.walk():
                        if isinstance(n, (NameRef, Apply)):
                            out.add(n.name)
            elif isinstance(node, CondensedNode):
                for member in node.members:
                    if isinstance(member, BasicBlockNode):
                        for stmt in member.stmts:
                            if isinstance(stmt, Assign):
                                out.add(stmt.target.name)  # type: ignore[union-attr]

    scan(body)
    return out


def _flat_nodes(body: FlowGraph) -> Optional[list]:
    """Body nodes when the body is scan-analyzable (no nests/calls/cycles)."""
    for node in body.nodes:
        if isinstance(node, (LoopNode, CallNode, CondensedNode)):
            return None
    return [
        n
        for n in body.nodes
        if isinstance(n, (BasicBlockNode, IfConditionNode))
    ]


def _stream_ready(exprs: list[Expr], written: set[str], loop_var: str) -> bool:
    """Can these expressions be evaluated before the prefix pass?

    True when no name they read is written in the loop body (the loop
    index itself is fine: chunk workers know their iteration numbers).
    """
    for e in exprs:
        for node in e.walk():
            if isinstance(node, (NameRef, Apply)):
                if node.name != loop_var and node.name in written:
                    return False
    return True


def _linear_form(expr: Expr) -> Optional[tuple[dict[str, int], int]]:
    """``(coefficients by name, constant)`` of an integer-linear expr."""
    from ..fortran.ast_nodes import IntLit, UnOp

    if isinstance(expr, IntLit):
        return {}, expr.value
    if isinstance(expr, NameRef):
        return {expr.name: 1}, 0
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = _linear_form(expr.operand)
        if inner is None:
            return None
        coeffs, const = inner
        return {k: -v for k, v in coeffs.items()}, -const
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        left = _linear_form(expr.left)
        right = _linear_form(expr.right)
        if left is None or right is None:
            return None
        sign = -1 if expr.op == "-" else 1
        coeffs = dict(left[0])
        for k, v in right[0].items():
            coeffs[k] = coeffs.get(k, 0) + sign * v
        return coeffs, left[1] + sign * right[1]
    if isinstance(expr, BinOp) and expr.op == "*":
        left = _linear_form(expr.left)
        right = _linear_form(expr.right)
        if left is None or right is None:
            return None
        for (ca, ka), (cb, kb) in ((left, right), (right, left)):
            if not ca:  # pure constant times linear
                return {k: ka * v for k, v in cb.items()}, ka * kb
        return None
    return None


def _prev_read(
    expr: Expr, name: str, loop_var: str, target_args: list[Expr]
) -> Optional[int]:
    """Distance ``d`` if *expr* is exactly ``name(v - d)`` with ``d ≥ 1``."""
    if not (isinstance(expr, Apply) and expr.name == name):
        return None
    if len(expr.args) != 1 or len(target_args) != 1:
        return None
    sub = _linear_form(expr.args[0])
    tgt = _linear_form(target_args[0])
    if sub is None or tgt is None:
        return None
    coeffs = dict(tgt[0])
    for k, v in sub[0].items():
        coeffs[k] = coeffs.get(k, 0) - v
    if any(v != 0 for v in coeffs.values()):
        return None
    delta = tgt[1] - sub[1]
    if delta <= 0:
        return None
    return delta


def _scan_update_shape(
    stmt: Assign, loop_var: str
) -> Optional[tuple[str, int, Optional[str], list[Expr]]]:
    """Decompose ``X(v) = X(v-d) ⊕ e`` / ``a*X(v-d) + e``.

    Returns ``(operator, distance, coefficient, increment_exprs)``.
    """
    target = stmt.target
    if not isinstance(target, Apply):
        return None
    name = target.name
    value = stmt.value

    # min/max intrinsics: one argument is the previous cell
    if (
        isinstance(value, Apply)
        and value.is_array is False
        and value.name in _REDUCTION_INTRINSICS
    ):
        prevs = [
            (k, _prev_read(arg, name, loop_var, target.args))
            for k, arg in enumerate(value.args)
        ]
        hits = [(k, d) for k, d in prevs if d is not None]
        others = [arg for k, arg in enumerate(value.args) if (k, None) in prevs]
        if len(hits) == 1 and all(_count(o, name) == 0 for o in others):
            op = "min" if "min" in value.name else "max"
            return op, hits[0][1], None, others
        return None

    if not isinstance(value, BinOp):
        return None

    if value.op in ("+", "-"):
        # flatten the sum; exactly one term must be the previous cell
        # (optionally scaled by a constant — the affine recurrence)
        terms: list[tuple[Expr, int]] = []

        def flatten(e: Expr, sign: int) -> None:
            if isinstance(e, BinOp) and e.op in ("+", "-"):
                flatten(e.left, sign)
                flatten(e.right, -sign if e.op == "-" else sign)
            else:
                terms.append((e, sign))

        flatten(value, 1)
        prev_terms = []
        inc_terms = []
        for term, sign in terms:
            d = _prev_read(term, name, loop_var, target.args)
            if d is not None:
                prev_terms.append((term, sign, d, None))
                continue
            if (
                isinstance(term, BinOp)
                and term.op == "*"
                and _count(term, name) == 1
            ):
                for coef, prev in (
                    (term.left, term.right),
                    (term.right, term.left),
                ):
                    d = _prev_read(prev, name, loop_var, target.args)
                    if d is not None and _count(coef, name) == 0:
                        prev_terms.append((term, sign, d, coef))
                        break
                else:
                    return None
                continue
            if _count(term, name):
                return None
            inc_terms.append(term)
        if len(prev_terms) != 1:
            return None
        _term, sign, distance, coef = prev_terms[0]
        if coef is None and sign == 1:
            return "+", distance, None, inc_terms
        # a*X(v-d) + e — the general linear first-order form
        coef_text = str(coef) if coef is not None else "1"
        if sign == -1:
            coef_text = f"-({coef_text})"
        return "affine", distance, coef_text, inc_terms

    if value.op == "*":
        factors: list[Expr] = []

        def flat_mul(e: Expr) -> None:
            if isinstance(e, BinOp) and e.op == "*":
                flat_mul(e.left)
                flat_mul(e.right)
            else:
                factors.append(e)

        flat_mul(value)
        hits = [
            (f, _prev_read(f, name, loop_var, target.args)) for f in factors
        ]
        prevs = [(f, d) for f, d in hits if d is not None]
        others = [f for f, d in hits if d is None]
        if len(prevs) == 1 and all(_count(o, name) == 0 for o in others):
            return "*", prevs[0][1], None, others
        return None
    return None


# --------------------------------------------------------------------------- #
# the recognizer
# --------------------------------------------------------------------------- #


def find_recurrences(loop: LoopNode) -> list[RecurrenceMatch]:
    """Scan/recurrence matches over one loop body."""
    flat = _flat_nodes(loop.body)
    if flat is None:
        return []
    written = _written_names(loop.body)
    blocks = [n for n in flat if isinstance(n, BasicBlockNode)]
    conds = [n for n in flat if isinstance(n, IfConditionNode)]
    assigns: list[Assign] = [
        stmt
        for block in blocks
        for stmt in block.stmts
        if isinstance(stmt, Assign)
    ]
    if any(
        not isinstance(stmt, (Assign, Continue))
        for block in blocks
        for stmt in block.stmts
    ):
        return []

    out: list[RecurrenceMatch] = []
    out.extend(_array_scans(loop, assigns, conds, written))
    out.extend(_scalar_scans(loop, assigns, conds, written))
    return sorted(out, key=lambda m: m.name)


def _array_scans(
    loop: LoopNode,
    assigns: list[Assign],
    conds: list[IfConditionNode],
    written: set[str],
) -> list[RecurrenceMatch]:
    by_name: dict[str, list[Assign]] = {}
    for stmt in assigns:
        if isinstance(stmt.target, Apply):
            by_name.setdefault(stmt.target.name, []).append(stmt)

    out: list[RecurrenceMatch] = []
    for name, stmts in by_name.items():
        # the array may appear nowhere outside its own update statements
        other_reads = sum(
            _count(s.target, name) + _count(s.value, name)
            for s in assigns
            if s not in stmts
        )
        cond_reads = sum(_count(c.cond, name) for c in conds)
        if other_reads or cond_reads:
            continue

        if len(stmts) == 1 and not conds:
            # unguarded single update: plain or affine scan.  Guarded
            # single updates are NOT scans: an iteration that skips the
            # write leaves a stale cell the chain then reads.
            stmt = stmts[0]
            shape = _scan_update_shape(stmt, loop.var)
            if shape is None:
                continue
            op, distance, coef, incs = shape
            if not _stream_ready(incs, written, loop.var):
                continue
            out.append(
                RecurrenceMatch(
                    name=name,
                    shape=AFFINE_SCAN if op == "affine" else PREFIX_SCAN,
                    operator="+" if op == "affine" else op,
                    distance=distance,
                    is_array=True,
                    coefficient=coef,
                    lineno=stmt.lineno,
                    detail=str(stmt),
                )
            )
            continue

        if len(stmts) == 2 and len(conds) == 1:
            # segmented scan: IF (g) restart ELSE update (either order),
            # every iteration writing exactly one of the two
            cond = conds[0]
            if _count(cond.cond, name):
                continue
            if not _segment_arms(loop, cond, stmts):
                continue
            shapes = [_scan_update_shape(s, loop.var) for s in stmts]
            updates = [
                (s, sh) for s, sh in zip(stmts, shapes) if sh is not None
            ]
            restarts = [s for s, sh in zip(stmts, shapes) if sh is None]
            if len(updates) != 1 or len(restarts) != 1:
                continue
            restart = restarts[0]
            if _count(restart.value, name):
                continue
            if str(restart.target) != str(updates[0][0].target):
                continue
            op, distance, coef, incs = updates[0][1]
            if op == "affine" or distance != 1:
                continue
            streams = incs + [restart.value, cond.cond]
            if not _stream_ready(streams, written, loop.var):
                continue
            out.append(
                RecurrenceMatch(
                    name=name,
                    shape=SEGMENTED_SCAN,
                    operator=op,
                    distance=1,
                    is_array=True,
                    guarded=True,
                    lineno=updates[0][0].lineno,
                    detail=f"IF ({cond.cond}) segment restart; {updates[0][0]}",
                )
            )
    return out


def _segment_arms(
    loop: LoopNode, cond: IfConditionNode, stmts: list[Assign]
) -> bool:
    """Are *stmts* exactly the two single-assign arms of *cond*?"""
    arms: list[Assign] = []
    for succ, label in loop.body.succs(cond):
        if label not in (True, False):
            return False
        if not isinstance(succ, BasicBlockNode):
            return False
        if len(succ.stmts) != 1 or not isinstance(succ.stmts[0], Assign):
            return False
        arms.append(succ.stmts[0])
    return len(arms) == 2 and all(s in arms for s in stmts)


def _scalar_scans(
    loop: LoopNode,
    assigns: list[Assign],
    conds: list[IfConditionNode],
    written: set[str],
) -> list[RecurrenceMatch]:
    from .reductions import _reduction_shape

    by_name: dict[str, list[Assign]] = {}
    for stmt in assigns:
        if isinstance(stmt.target, NameRef):
            by_name.setdefault(stmt.target.name, []).append(stmt)

    out: list[RecurrenceMatch] = []
    for name, stmts in by_name.items():
        ops = {_reduction_shape(s) for s in stmts}
        if None in ops or len(ops) != 1:
            continue
        (op,) = ops
        if op not in ("+", "*", "min", "max"):
            continue
        # a *reduction* forbids other reads of the accumulator; a scan
        # requires at least one — otherwise the cheaper rewrite applies
        other_reads = sum(
            _count(s.value, name) + _count(s.target, name)
            for s in assigns
            if s not in stmts
        )
        if other_reads == 0:
            continue
        if any(_count(c.cond, name) for c in conds):
            continue
        if any(_count(s.value, name) != 1 for s in stmts):
            continue
        if conds:
            # the updates must be unconditional: a guarded update still
            # scans (identity increment) but pairing updates with guard
            # paths needs dominator info this recognizer does not build
            continue
        streams = [s.value for s in stmts]
        if not _stream_ready_minus_self(streams, written, loop.var, name):
            continue
        out.append(
            RecurrenceMatch(
                name=name,
                shape=RUNNING_SCALAR,
                operator=op,
                distance=1,
                is_array=False,
                lineno=stmts[0].lineno,
                detail=str(stmts[0]),
            )
        )
    return out


def _stream_ready_minus_self(
    exprs: list[Expr], written: set[str], loop_var: str, accumulator: str
) -> bool:
    """Stream readiness where the accumulator's own read is expected."""
    return _stream_ready(exprs, written - {accumulator}, loop_var)
