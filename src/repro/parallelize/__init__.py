"""Loop parallelization — client 2 of the dataflow analysis."""

from .classifier import (
    LoopStatus,
    LoopVerdict,
    VariableFinding,
    classify_all_loops,
    classify_loop,
)
from .loop_analysis import DependenceReport, loop_dependences, variable_dependences
from .recurrences import RecurrenceMatch, find_recurrences
from .reductions import Reduction, find_reductions

__all__ = [
    "DependenceReport",
    "LoopStatus",
    "LoopVerdict",
    "RecurrenceMatch",
    "Reduction",
    "VariableFinding",
    "classify_all_loops",
    "classify_loop",
    "find_recurrences",
    "find_reductions",
    "loop_dependences",
    "variable_dependences",
]
